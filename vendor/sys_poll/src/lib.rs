//! Minimal `poll(2)` / `pipe(2)` bindings — the offline stand-in for
//! the `libc` crate that the readiness-driven connection core
//! (`panacea-netcore`) needs.
//!
//! Everything here links against symbols the C runtime already provides
//! (std links libc unconditionally on Unix), so no new dependency is
//! introduced — this crate exists only so the raw `extern "C"`
//! declarations and their safety obligations live in one audited place,
//! the same pattern as the other `vendor/` shims. Linux/Unix only, like
//! the sockets it multiplexes.
//!
//! Exposed surface:
//!
//! * [`PollFd`] + [`poll_fds`] — the readiness syscall itself, with
//!   `EINTR` retried internally.
//! * [`Pipe`] — a nonblocking self-pipe wakeup token: any thread
//!   [`notify`](Pipe::notify)s, the poller sees `POLLIN` on
//!   [`read_fd`](Pipe::read_fd) and [`drain`](Pipe::drain)s.
//! * [`raise_nofile_limit`] — lifts the soft fd limit to the hard
//!   limit, for C10K-scale harnesses.

use std::io;
use std::os::raw::{c_int, c_ulong};

/// `poll(2)` event flag: data readable (or a peer hangup to collect).
pub const POLLIN: i16 = 0x001;
/// `poll(2)` event flag: writable without blocking.
pub const POLLOUT: i16 = 0x004;
/// `poll(2)` revent flag: error condition on the descriptor.
pub const POLLERR: i16 = 0x008;
/// `poll(2)` revent flag: peer hung up.
pub const POLLHUP: i16 = 0x010;
/// `poll(2)` revent flag: the descriptor is not open.
pub const POLLNVAL: i16 = 0x020;

/// One entry of a `poll(2)` descriptor set, ABI-identical to the C
/// `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// The descriptor to watch (negative entries are ignored by the
    /// kernel).
    pub fd: i32,
    /// Requested events (`POLLIN` / `POLLOUT`; error conditions are
    /// always reported).
    pub events: i16,
    /// Returned events, filled by the kernel.
    pub revents: i16,
}

impl PollFd {
    /// A set entry watching `fd` for `events`.
    pub fn new(fd: i32, events: i16) -> Self {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// Whether the kernel reported anything at all on this entry.
    pub fn ready(&self) -> bool {
        self.revents != 0
    }

    /// Readable — including hangup/error, which a read surfaces as
    /// EOF or an error the caller must collect.
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLHUP | POLLERR) != 0
    }

    /// Writable — including error, which a write surfaces.
    pub fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLERR | POLLHUP) != 0
    }

    /// The descriptor is not open (stale registration).
    pub fn invalid(&self) -> bool {
        self.revents & POLLNVAL != 0
    }
}

#[repr(C)]
struct RLimit {
    cur: u64,
    max: u64,
}

const F_GETFL: c_int = 3;
const F_SETFL: c_int = 4;
const O_NONBLOCK: c_int = 0o4000;
const RLIMIT_NOFILE: c_int = 7;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    fn pipe(fds: *mut c_int) -> c_int;
    fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
    fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
    fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
    fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const RLimit) -> c_int;
}

/// Blocks until at least one entry in `fds` is ready, or `timeout_ms`
/// elapses (`-1` blocks indefinitely, `0` polls). Returns the number of
/// ready entries; `EINTR` is retried internally so callers never see
/// spurious interruption.
///
/// # Errors
///
/// Any `poll(2)` failure other than `EINTR` (e.g. `ENOMEM`).
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        // SAFETY: `fds` is a valid, exclusively borrowed slice of
        // `#[repr(C)]` pollfd-layout entries for the whole call.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

fn set_nonblocking(fd: c_int) -> io::Result<()> {
    // SAFETY: fcntl on an owned, open descriptor; flag juggling only.
    unsafe {
        let flags = fcntl(fd, F_GETFL, 0);
        if flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0 {
            return Err(io::Error::last_os_error());
        }
    }
    Ok(())
}

/// A self-pipe wakeup token: the poller watches [`read_fd`](Pipe::read_fd)
/// for `POLLIN`; any thread calls [`notify`](Pipe::notify) to wake it.
/// Both ends are nonblocking, so a notify against an already-full pipe
/// is a no-op (the wakeup is already pending) and a drain never blocks.
#[derive(Debug)]
pub struct Pipe {
    read_fd: c_int,
    write_fd: c_int,
}

impl Pipe {
    /// Creates the pipe with both ends nonblocking.
    ///
    /// # Errors
    ///
    /// `pipe(2)` / `fcntl(2)` failures (fd exhaustion).
    pub fn new() -> io::Result<Pipe> {
        let mut fds = [0 as c_int; 2];
        // SAFETY: `fds` is a valid 2-element buffer for pipe(2).
        if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
            return Err(io::Error::last_os_error());
        }
        let p = Pipe {
            read_fd: fds[0],
            write_fd: fds[1],
        };
        set_nonblocking(p.read_fd)?;
        set_nonblocking(p.write_fd)?;
        Ok(p)
    }

    /// The end the poller registers for `POLLIN`.
    pub fn read_fd(&self) -> i32 {
        self.read_fd
    }

    /// Wakes the poller: writes one byte, ignoring a full pipe (the
    /// wakeup is then already pending) and any other failure (the
    /// poller's bounded timeout is the fallback).
    pub fn notify(&self) {
        let byte = [1u8];
        // SAFETY: one-byte write to an owned, open, nonblocking fd.
        let _ = unsafe { write(self.write_fd, byte.as_ptr(), 1) };
    }

    /// Consumes every pending wakeup byte so the next poll parks again.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        // SAFETY: bounded reads into a local buffer from an owned,
        // nonblocking fd; loop ends on EAGAIN (rc < 0) or EOF (rc == 0).
        while unsafe { read(self.read_fd, buf.as_mut_ptr(), buf.len()) } > 0 {}
    }
}

impl Drop for Pipe {
    fn drop(&mut self) {
        // SAFETY: closing fds this struct exclusively owns.
        unsafe {
            close(self.read_fd);
            close(self.write_fd);
        }
    }
}

/// Raises the soft `RLIMIT_NOFILE` to the hard limit and returns the
/// resulting soft limit. C10K harnesses call this so a conservative
/// container default (1024) does not cap the connection count under
/// test; serving code never needs it.
///
/// # Errors
///
/// `getrlimit(2)` / `setrlimit(2)` failures.
pub fn raise_nofile_limit() -> io::Result<u64> {
    let mut lim = RLimit { cur: 0, max: 0 };
    // SAFETY: `lim` is a valid rlimit-layout out-param.
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } < 0 {
        return Err(io::Error::last_os_error());
    }
    if lim.cur < lim.max {
        lim.cur = lim.max;
        // SAFETY: passing a valid rlimit by pointer; raising the soft
        // limit toward the hard limit needs no privilege.
        if unsafe { setrlimit(RLIMIT_NOFILE, &lim) } < 0 {
            return Err(io::Error::last_os_error());
        }
    }
    Ok(lim.cur)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipe_notify_wakes_poll_and_drain_resets() {
        let pipe = Pipe::new().expect("pipe");
        let mut fds = [PollFd::new(pipe.read_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 0).expect("poll"), 0, "spurious wake");
        pipe.notify();
        pipe.notify(); // coalesces; never blocks
        let mut fds = [PollFd::new(pipe.read_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 1000).expect("poll"), 1);
        assert!(fds[0].readable());
        pipe.drain();
        let mut fds = [PollFd::new(pipe.read_fd(), POLLIN)];
        assert_eq!(
            poll_fds(&mut fds, 0).expect("poll"),
            0,
            "drain missed bytes"
        );
    }

    #[test]
    fn poll_times_out_on_quiet_fds() {
        let pipe = Pipe::new().expect("pipe");
        let mut fds = [PollFd::new(pipe.read_fd(), POLLIN)];
        let started = std::time::Instant::now();
        assert_eq!(poll_fds(&mut fds, 50).expect("poll"), 0);
        assert!(started.elapsed() >= std::time::Duration::from_millis(45));
    }

    #[test]
    fn nofile_limit_is_raised_idempotently() {
        let first = raise_nofile_limit().expect("raise");
        let second = raise_nofile_limit().expect("raise again");
        assert_eq!(first, second);
        assert!(first >= 1024);
    }
}
