//! Offline shim of the `serde_json` surface the workspace uses: the
//! [`Value`] tree, the [`json!`] object/array builder, and
//! [`to_string_pretty`]. Serialization of arbitrary user types is not
//! supported (and not used) — values are built explicitly.

use std::fmt;

/// Maps are ordered so JSON output is deterministic.
pub type Map<K, V> = std::collections::BTreeMap<K, V>;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map<String, Value>),
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Number(v)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::Number(f64::from(v))
    }
}

macro_rules! impl_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                Value::Number(v as f64)
            }
        }
    )*};
}

impl_from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

/// Error type kept for API compatibility; this shim never fails.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json shim error (unreachable)")
    }
}

impl std::error::Error for Error {}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(v: f64, out: &mut String) {
    if !v.is_finite() {
        // JSON has no NaN/Infinity; mirror serde_json's null fallback.
        out.push_str("null");
    } else if v.fract() == 0.0 && v.abs() < 9e15 {
        out.push_str(&format!("{}", v as i64));
    } else {
        out.push_str(&format!("{v}"));
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad_in);
                write_pretty(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, val)) in map.iter().enumerate() {
                out.push_str(&pad_in);
                escape_into(k, out);
                out.push_str(": ");
                write_pretty(val, indent + 1, out);
                if i + 1 < map.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Pretty-prints a [`Value`] with two-space indentation.
///
/// # Errors
///
/// Never fails; the `Result` mirrors the real crate's signature.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(value, 0, &mut out);
    Ok(out)
}

/// Builds a [`Value`] from JSON-ish syntax. Supports objects, arrays,
/// `null`, and any expression convertible via `Into<Value>`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::Value::from($elem) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $( map.insert(($key).to_string(), $crate::Value::from($val)); )*
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_builder_and_pretty_print() {
        let v = json!({ "title": "t", "rows": vec![Value::String("a".into())] });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"title\": \"t\""));
        assert!(s.contains("\"a\""));
    }

    #[test]
    fn map_collects_pairs() {
        let m: Map<String, Value> = [("k".to_string(), Value::Number(1.0))]
            .into_iter()
            .collect();
        let s = to_string_pretty(&Value::Object(m)).unwrap();
        assert_eq!(s, "{\n  \"k\": 1\n}");
    }

    #[test]
    fn strings_are_escaped() {
        let s = to_string_pretty(&Value::String("a\"b\n".into())).unwrap();
        assert_eq!(s, "\"a\\\"b\\n\"");
    }
}
