//! Offline shim of the `serde_json` surface the workspace uses: the
//! [`Value`] tree, the [`json!`] object/array builder, the
//! [`to_string`]/[`to_string_pretty`] writers, and a [`from_str`]
//! parser (used by the gateway wire protocol). Serialization of
//! arbitrary user types is not supported (and not used) — values are
//! built and inspected explicitly.

use std::fmt;

/// Maps are ordered so JSON output is deterministic.
pub type Map<K, V> = std::collections::BTreeMap<K, V>;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map<String, Value>),
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Number(v)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::Number(f64::from(v))
    }
}

macro_rules! impl_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                Value::Number(v as f64)
            }
        }
    )*};
}

impl_from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl Value {
    /// Looks up a key of an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as `i64`, if this is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 && n.abs() < 9e15 => Some(*n as i64),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if this is a non-negative integral
    /// number.
    pub fn as_u64(&self) -> Option<u64> {
        match self.as_i64() {
            Some(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The key → value map, if this is an object.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }
}

/// Parse or serialization failure, with a human-readable message.
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(v: f64, out: &mut String) {
    if !v.is_finite() {
        // JSON has no NaN/Infinity; mirror serde_json's null fallback.
        out.push_str("null");
    } else if v == 0.0 && v.is_sign_negative() {
        // `0 as i64` would drop the sign; -0.0 must survive the wire so
        // bit-exact f32 payload round-trips hold.
        out.push_str("-0.0");
    } else if v.fract() == 0.0 && v.abs() < 9e15 {
        out.push_str(&format!("{}", v as i64));
    } else {
        out.push_str(&format!("{v}"));
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad_in);
                write_pretty(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, val)) in map.iter().enumerate() {
                out.push_str(&pad_in);
                escape_into(k, out);
                out.push_str(": ");
                write_pretty(val, indent + 1, out);
                if i + 1 < map.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
    }
}

/// Pretty-prints a [`Value`] with two-space indentation.
///
/// # Errors
///
/// Never fails; the `Result` mirrors the real crate's signature.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(value, 0, &mut out);
    Ok(out)
}

/// Serializes a [`Value`] on one line with no extra whitespace — the
/// form line-delimited wire protocols need.
///
/// # Errors
///
/// Never fails; the `Result` mirrors the real crate's signature.
pub fn to_string(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(value, &mut out);
    Ok(out)
}

/// Deepest permitted `[`/`{` nesting, mirroring real serde_json's
/// recursion limit. The parser is recursive-descent and its inputs are
/// untrusted (the gateway feeds it raw TCP lines), so without a bound a
/// line of a few hundred thousand `[` characters would overflow the
/// handler thread's stack and abort the process.
const RECURSION_LIMIT: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
            depth: 0,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.descend(Self::parse_array),
            Some(b'{') => self.descend(Self::parse_object),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(c) => Err(Error::new(format!(
                "unexpected character {:?} at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn descend(&mut self, parse: fn(&mut Self) -> Result<Value, Error>) -> Result<Value, Error> {
        if self.depth >= RECURSION_LIMIT {
            return Err(Error::new(format!(
                "recursion limit exceeded at byte {}",
                self.pos
            )));
        }
        self.depth += 1;
        let v = parse(self);
        self.depth -= 1;
        v
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            out.push(self.combine_surrogates(code)?);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape \\{}", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode from the byte position to keep multi-byte
                    // UTF-8 sequences intact.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("non-empty by construction");
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    /// Reads the four hex digits of a `\u` escape (cursor already past
    /// the `u`).
    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    /// Turns one decoded `\uXXXX` code unit into a character, consuming
    /// a following `\uXXXX` low surrogate when `code` is a high
    /// surrogate — how spec-conformant ASCII-escaping encoders (Python's
    /// `ensure_ascii`, Jackson) transmit astral characters. Unpaired
    /// surrogates become U+FFFD rather than failing, matching this
    /// shim's lenient escape handling.
    fn combine_surrogates(&mut self, code: u32) -> Result<char, Error> {
        if !(0xD800..0xDC00).contains(&code) {
            // Not a high surrogate: a lone low surrogate is unpaired by
            // construction; everything else maps directly.
            return Ok(char::from_u32(code).unwrap_or('\u{fffd}'));
        }
        if self.bytes[self.pos..].starts_with(b"\\u") {
            let rewind = self.pos;
            self.pos += 2;
            let low = self.parse_hex4()?;
            if (0xDC00..0xE000).contains(&low) {
                let astral = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                return Ok(char::from_u32(astral).unwrap_or('\u{fffd}'));
            }
            // Not a low surrogate: leave the escape for the main loop to
            // decode on its own and emit a replacement for the unpaired
            // high half.
            self.pos = rewind;
        }
        Ok('\u{fffd}')
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::new(format!("invalid number {text:?}")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

/// Parses a JSON document into a [`Value`].
///
/// Numbers are stored as `f64` (integers round-trip exactly up to
/// 2⁵³), matching this shim's [`Value::Number`] representation.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or trailing non-whitespace.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

/// Builds a [`Value`] from JSON-ish syntax. Supports objects, arrays,
/// `null`, and any expression convertible via `Into<Value>`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::Value::from($elem) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $( map.insert(($key).to_string(), $crate::Value::from($val)); )*
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_builder_and_pretty_print() {
        let v = json!({ "title": "t", "rows": vec![Value::String("a".into())] });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"title\": \"t\""));
        assert!(s.contains("\"a\""));
    }

    #[test]
    fn map_collects_pairs() {
        let m: Map<String, Value> = [("k".to_string(), Value::Number(1.0))]
            .into_iter()
            .collect();
        let s = to_string_pretty(&Value::Object(m)).unwrap();
        assert_eq!(s, "{\n  \"k\": 1\n}");
    }

    #[test]
    fn strings_are_escaped() {
        let s = to_string_pretty(&Value::String("a\"b\n".into())).unwrap();
        assert_eq!(s, "\"a\\\"b\\n\"");
    }

    #[test]
    fn compact_round_trips_through_parser() {
        let v = json!({
            "name": "gate\"way\n",
            "count": 42,
            "ratio": 0.5,
            "neg": -17,
            "flag": true,
            "nothing": Value::Null,
            "items": vec![1i32, 2, 3]
        });
        let s = to_string(&v).unwrap();
        assert!(!s.contains('\n'));
        assert_eq!(from_str(&s).unwrap(), v);
    }

    #[test]
    fn parser_handles_nesting_whitespace_and_unicode() {
        let v = from_str(" { \"a\" : [ { \"b\" : \"héllo\" } , 2e3 ] } ").unwrap();
        let arr = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(arr[0].get("b").and_then(Value::as_str), Some("héllo"));
        assert_eq!(arr[1].as_f64(), Some(2000.0));
        assert_eq!(
            from_str("\"\\u0041\\u00e9\"").unwrap(),
            Value::String("Aé".into())
        );
    }

    #[test]
    fn surrogate_pairs_decode_to_astral_characters() {
        // How Python's json.dumps (ensure_ascii=True) or Jackson emit
        // "m😀": the pair must reassemble, not become two U+FFFDs.
        assert_eq!(
            from_str("\"m\\ud83d\\ude00\"").unwrap(),
            Value::String("m😀".into())
        );
        // Unpaired halves stay lenient: replacement character.
        assert_eq!(
            from_str("\"a\\ud83db\"").unwrap(),
            Value::String("a\u{fffd}b".into())
        );
        assert_eq!(
            from_str("\"a\\ude00b\"").unwrap(),
            Value::String("a\u{fffd}b".into())
        );
        // High surrogate followed by a non-surrogate escape: the second
        // escape must survive as its own character.
        assert_eq!(
            from_str("\"a\\ud83d\\u0041b\"").unwrap(),
            Value::String("a\u{fffd}Ab".into())
        );
        // A truncated low half is still a hard error.
        assert!(from_str("\"a\\ud83d\\ud\"").is_err());
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1 2", "{\"a\" 1}"] {
            assert!(from_str(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing_the_stack() {
        // Within the limit: parses fine.
        let deep_ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(from_str(&deep_ok).is_ok());
        // Past the limit: a clean error, not a stack overflow — this is
        // what an untrusted TCP peer can cheaply send.
        for bomb in [
            "[".repeat(1_000_000),
            format!("{}1{}", "[".repeat(129), "]".repeat(129)),
            "{\"a\":".repeat(200_000),
        ] {
            let err = from_str(&bomb).expect_err("deep nesting accepted");
            assert!(
                err.to_string().contains("recursion limit"),
                "unexpected error: {err}"
            );
        }
    }

    #[test]
    fn accessors_select_the_right_variant() {
        let v = json!({ "n": 3, "s": "x", "b": false });
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("n").and_then(Value::as_i64), Some(3));
        assert_eq!(v.get("s").and_then(Value::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(Value::as_bool), Some(false));
        assert!(v.get("missing").is_none());
        assert!(v.as_array().is_none());
        assert_eq!(v.as_object().unwrap().len(), 3);
        assert_eq!(Value::Number(-1.0).as_u64(), None);
        assert_eq!(Value::Number(1.5).as_i64(), None);
    }

    #[test]
    fn integers_round_trip_bit_exactly() {
        let vals = [i32::MIN, -1, 0, 1, i32::MAX];
        let v = Value::Array(vals.iter().map(|&x| Value::from(x)).collect());
        let parsed = from_str(&to_string(&v).unwrap()).unwrap();
        let back: Vec<i64> = parsed
            .as_array()
            .unwrap()
            .iter()
            .map(|x| x.as_i64().unwrap())
            .collect();
        assert_eq!(back, vals.iter().map(|&x| i64::from(x)).collect::<Vec<_>>());
    }

    #[test]
    fn finite_floats_round_trip_bit_exactly_including_negative_zero() {
        let vals = [
            0.0f64,
            -0.0,
            0.1,
            -1.5e-38,
            f64::from(f32::MIN_POSITIVE),
            9e15, // just past the integer fast path
        ];
        let v = Value::Array(vals.iter().map(|&x| Value::Number(x)).collect());
        let encoded = to_string(&v).unwrap();
        let parsed = from_str(&encoded).unwrap();
        for (orig, back) in vals.iter().zip(parsed.as_array().unwrap()) {
            let back = back.as_f64().unwrap();
            assert_eq!(
                orig.to_bits(),
                back.to_bits(),
                "{orig} mangled into {back} via {encoded}"
            );
        }
    }
}
