//! Offline shim of the `criterion` API surface the bench crate uses.
//!
//! With no crates.io access, this crate provides a small wall-clock
//! benchmark harness with criterion-compatible types and macros:
//! [`Criterion`] (builder + `bench_function` + `benchmark_group`),
//! [`Bencher::iter`], [`BenchmarkId`], and the `criterion_group!` /
//! `criterion_main!` macros. Each benchmark warms up for the configured
//! warm-up time, then measures batches until the measurement time is
//! spent, and reports the per-iteration mean, minimum, and maximum.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched
/// work. Re-exported so benches can use `criterion::black_box`.
pub fn black_box<T>(v: T) -> T {
    std_black_box(v)
}

/// Top-level harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Sets the number of measured samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration before measurement starts.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the total measurement duration budget per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(id, &self.clone(), &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` against `input` under `group/id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.0);
        run_one(&full, &self.criterion.clone(), &mut |b| f(b, input));
        self
    }

    /// Runs one named benchmark inside the group.
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, &self.criterion.clone(), &mut f);
        self
    }

    /// Ends the group (a no-op in this shim, kept for API parity).
    pub fn finish(self) {}
}

/// A benchmark identifier: a function name plus a parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(format!("{parameter}"))
    }
}

/// Passed to benchmark closures; [`iter`](Bencher::iter) runs the
/// measured routine.
pub struct Bencher<'a> {
    config: &'a Criterion,
    /// Mean/min/max ns per iteration, filled by `iter`.
    result: Option<(f64, f64, f64, u64)>,
}

impl Bencher<'_> {
    /// Measures `f`, running it repeatedly for the configured warm-up and
    /// measurement windows.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: also estimates per-iteration cost for batch sizing.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.config.warm_up_time || warm_iters == 0 {
            std_black_box(f());
            warm_iters += 1;
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);

        // Size batches so `sample_size` samples fit in measurement_time.
        let budget_ns = self.config.measurement_time.as_nanos() as f64;
        let per_sample_ns = budget_ns / self.config.sample_size as f64;
        let batch = ((per_sample_ns / est_ns).round() as u64).max(1);

        let mut samples = Vec::with_capacity(self.config.sample_size);
        let mut total_iters: u64 = 0;
        let run_start = Instant::now();
        for _ in 0..self.config.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                std_black_box(f());
            }
            samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
            total_iters += batch;
            if run_start.elapsed() > self.config.measurement_time * 2 {
                break; // never run wildly past budget on slow benches
            }
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        self.result = Some((mean, min, max, total_iters));
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn run_one(id: &str, config: &Criterion, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        config,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((mean, min, max, iters)) => println!(
            "{id:<48} time: [{} {} {}]  ({iters} iterations)",
            format_ns(min),
            format_ns(mean),
            format_ns(max),
        ),
        None => println!("{id:<48} (no measurement: closure never called iter)"),
    }
}

/// Declares a benchmark group function, in either criterion form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(4));
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::new("f", 3), &3u32, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
    }
}
