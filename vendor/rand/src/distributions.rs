//! The [`Standard`] distribution and uniform range sampling.

use crate::RngCore;

/// A distribution that can produce values of `T` from an RNG.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution: uniform `[0, 1)` for floats, uniform over
/// the whole domain for integers and `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        // 24 high bits → [0, 1) with full f32 mantissa coverage.
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 high bits → [0, 1) with full f64 mantissa coverage.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled uniformly — the receiver of
/// [`Rng::gen_range`](crate::Rng::gen_range).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u: $t = Standard.sample(rng);
                self.start + u * (self.end - self.start)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u: $t = Standard.sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);
