//! Offline shim of the `rand 0.8` API surface used by this workspace.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a minimal, dependency-free implementation: the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`], and a
//! deterministic [`rngs::StdRng`] built on xoshiro256++ seeded via
//! SplitMix64. It is *not* cryptographically secure and is only intended
//! for the reproducible synthetic-data generation the workspace performs.

pub mod distributions;
pub mod rngs;

pub use distributions::{Distribution, Standard};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the [`Standard`] distribution (uniform
    /// `[0, 1)` for floats, uniform over all values for integers).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it into the
    /// full internal state.
    fn seed_from_u64(seed: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_per_seed() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = rngs::StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut rng = rngs::StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            assert!((-7..=7).contains(&rng.gen_range(-7i32..=7)));
            assert!((0..16).contains(&rng.gen_range(0usize..16)));
            assert!((0..100).contains(&rng.gen_range(0u64..100)));
        }
    }

    #[test]
    fn mean_is_roughly_centred() {
        let mut rng = rngs::StdRng::seed_from_u64(11);
        let sum: f64 = (0..10_000).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn works_through_mut_reference() {
        fn take(rng: &mut impl Rng) -> f32 {
            rng.gen()
        }
        let mut rng = rngs::StdRng::seed_from_u64(3);
        take(&mut rng);
    }
}
