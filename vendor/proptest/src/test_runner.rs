//! Test configuration and per-case RNG derivation.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` iterations per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the suite fast while
        // still sweeping a broad input space deterministically.
        ProptestConfig { cases: 64 }
    }
}

/// Derives the deterministic RNG for one test case from the fully
/// qualified test name and the case index (FNV-1a over both).
pub fn case_rng(test_path: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= u64::from(case);
    h = h.wrapping_mul(0x0000_0100_0000_01b3);
    StdRng::seed_from_u64(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn rng_differs_by_case_and_test() {
        let a = case_rng("m::t", 0).next_u64();
        let b = case_rng("m::t", 1).next_u64();
        let c = case_rng("m::u", 0).next_u64();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
