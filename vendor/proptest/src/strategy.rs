//! The [`Strategy`] trait and combinators.

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no shrinking: a strategy is just a
/// deterministic sampler over an input space.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategies behind references delegate to the referent, so range
/// expressions and locals can be used without moving.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut StdRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn new_value(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_and_map_compose() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = (0u8..10).prop_map(|v| v as u32 * 2);
        for _ in 0..100 {
            let v = s.new_value(&mut rng);
            assert!(v % 2 == 0 && v < 20);
        }
    }

    #[test]
    fn inclusive_range_hits_endpoints() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[((-1i32..=1).new_value(&mut rng) + 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }
}
