//! `Vec` strategies with exact or ranged lengths.

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// A length specification: an exact size or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// The strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = if self.size.lo + 1 == self.size.hi {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..self.size.hi)
        };
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Generates a `Vec` whose elements come from `element` and whose length
/// comes from `size` (a `usize` for exact length, or a range).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn exact_and_ranged_lengths() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(vec(0u8..4, 64).new_value(&mut rng).len(), 64);
        for _ in 0..50 {
            let v = vec(0u8..4, 0..200).new_value(&mut rng);
            assert!(v.len() < 200);
            assert!(v.iter().all(|&x| x < 4));
        }
    }
}
