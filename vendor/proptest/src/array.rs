//! Fixed-size array strategies.

use rand::rngs::StdRng;

use crate::strategy::Strategy;

/// The strategy returned by [`uniform4`].
#[derive(Debug, Clone)]
pub struct Uniform4<S> {
    element: S,
}

impl<S: Strategy> Strategy for Uniform4<S> {
    type Value = [S::Value; 4];

    fn new_value(&self, rng: &mut StdRng) -> [S::Value; 4] {
        [
            self.element.new_value(rng),
            self.element.new_value(rng),
            self.element.new_value(rng),
            self.element.new_value(rng),
        ]
    }
}

/// Generates `[T; 4]` with each element drawn from `element`.
pub fn uniform4<S: Strategy>(element: S) -> Uniform4<S> {
    Uniform4 { element }
}
