//! Offline shim of the `proptest` API surface used by this workspace.
//!
//! With no crates.io access, this crate re-implements the pieces the test
//! suites rely on: the [`Strategy`] trait (integer ranges, `prop_map`),
//! [`collection::vec`], [`array::uniform4`], [`test_runner::ProptestConfig`]
//! (`test_runner::ProptestConfig::with_cases`), and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Semantics are simplified relative to real proptest: each test runs
//! `cases` iterations with values drawn from a deterministic RNG seeded
//! from the test's module path and case index, and failures panic
//! immediately (no shrinking). That preserves what the suites assert —
//! the properties hold across a broad sampled input space — while staying
//! dependency-free.

pub mod array;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::Strategy;

/// Common imports for property tests, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Defines property tests. Mirrors `proptest!`'s block form, with an
/// optional leading `#![proptest_config(...)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::case_rng(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg =
                    $crate::strategy::Strategy::new_value(&($strat), &mut __rng);)+
                $body
            }
        }
    )*};
}

/// Asserts a property, reporting the failing expression on panic.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts two values are equal, reporting both on panic.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}
