//! Offline shim of `serde`'s derive macros.
//!
//! The workspace annotates many types with
//! `#[derive(Serialize, Deserialize)]`, but the only serialization it
//! actually performs goes through the vendored `serde_json::Value`
//! builder API, which needs no trait impls. With no crates.io access,
//! this proc-macro crate supplies the two derives as no-ops: they accept
//! the item (including any `#[serde(...)]` helper attributes) and expand
//! to nothing, so every annotated type compiles unchanged.

use proc_macro::TokenStream;

/// No-op stand-in for `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
