//! Validates the analytical Panacea cycle model against the event-level
//! functional executor on concrete sliced data — the model's expected
//! workloads must track the exact list-scheduled drain times.

use panacea::bitslice::{SlicedActivation, SlicedWeight};
use panacea::quant::DbsType;
use panacea::sim::arch::{PanaceaConfig, TileConfig};
use panacea::sim::exec::PeaExecutor;
use panacea::sim::panacea::PanaceaSim;
use panacea::sim::workload::LayerWork;
use panacea::sim::Accelerator;
use panacea::tensor::{seeded_rng, Matrix};
use rand::Rng;

/// Builds one exact Panacea tile (TM = 64 rows, TK = 32, TN = 64) with the
/// requested element-level sparsity, slices it, and compares the
/// analytical layer model against the per-PEA exact drain.
fn validate_tile(ws: f64, xs: f64, r: u8, seed: u64, dtp: bool) {
    let t = TileConfig::default();
    let mut rng = seeded_rng(seed);
    let w = Matrix::from_fn(t.tm, t.tk, |_, _| {
        if rng.gen::<f64>() < ws {
            rng.gen_range(-7i32..=7)
        } else {
            rng.gen_range(-64i32..64)
        }
    });
    let x = Matrix::from_fn(t.tk, t.tn, |_, _| {
        if rng.gen::<f64>() < xs {
            (i32::from(r) << 4) | rng.gen_range(0..16)
        } else {
            rng.gen_range(0i32..256)
        }
    });
    let sw = SlicedWeight::from_int(&w, 1).expect("weights");
    let sx = SlicedActivation::from_uint(&x, 1, DbsType::Type1).expect("acts");

    // Exact: each PEA owns a 4-row strip; the tile drains when the slowest
    // PEA finishes.
    let exec = PeaExecutor::new(4, 8, dtp);
    let mut exact_cycles = 0u64;
    for pea in 0..16 {
        let strip = w.submatrix(pea * 4, 0, 4, t.tk);
        let ssw = SlicedWeight::from_int(&strip, 1).expect("strip");
        let (out, rep) = exec.run_tile(&ssw, &sx, r);
        assert_eq!(out, strip.gemm(&x).expect("shapes"), "PEA {pea} wrong");
        exact_cycles = exact_cycles.max(rep.cycles);
    }

    // Analytical: one-tile layer, DTP disabled to match the single-tile
    // exec semantics unless requested.
    let sim = PanaceaSim::new(PanaceaConfig {
        dtp,
        ..PanaceaConfig::default()
    });
    let layer = LayerWork {
        name: "tile".into(),
        m: t.tm,
        k: t.tk,
        n: t.tn,
        count: 1,
        w_planes: 2,
        x_planes: 2,
        rho_w: measured_rho_w(&sw),
        rho_x: measured_rho_x(&sx, r),
    };
    let perf = sim.simulate(&layer);
    // The executor models compute only, so compare against the model's
    // compute portion. The analytical count is an expectation plus fixed
    // per-tile overhead; agreement within 35% (plus a small absolute
    // floor) validates it.
    let model = perf.compute_cycles;
    let exact = exact_cycles as f64;
    let rel = (model - exact).abs() / exact.max(1.0);
    assert!(
        rel < 0.35 || (model - exact).abs() < 24.0,
        "ws={ws} xs={xs} dtp={dtp}: model {model} vs exact {exact} (rel {rel:.2})"
    );
}

fn measured_rho_w(sw: &SlicedWeight) -> f64 {
    panacea::bitslice::sparsity::weight_vector_sparsity(sw.ho())
}

fn measured_rho_x(sx: &SlicedActivation, r: u8) -> f64 {
    panacea::bitslice::sparsity::act_vector_sparsity(sx.ho(), r)
}

#[test]
fn analytical_model_tracks_exact_execution_dense() {
    validate_tile(0.0, 0.0, 9, 70, false);
}

#[test]
fn analytical_model_tracks_exact_execution_mixed() {
    validate_tile(0.7, 0.8, 9, 71, false);
}

#[test]
fn analytical_model_tracks_exact_execution_sparse() {
    validate_tile(0.97, 0.98, 9, 72, false);
}

#[test]
fn analytical_model_tracks_exact_execution_with_dtp() {
    validate_tile(0.97, 0.98, 9, 73, true);
}
