//! Workspace-level gateway test through the `panacea` facade: a TCP
//! round trip covering routing, caching, and stats — the same contract
//! `examples/gateway_demo.rs` gates in CI, in miniature.

use std::sync::Arc;

use panacea::gateway::testutil::models;
use panacea::gateway::{Gateway, GatewayClient, GatewayConfig, GatewayServer};
use panacea::tensor::Matrix;

#[test]
fn deep_nesting_request_line_is_rejected_not_fatal() {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    let gateway = Arc::new(Gateway::new(models(&["m"], 3), GatewayConfig::default()));
    let server = GatewayServer::bind(Arc::clone(&gateway), "127.0.0.1:0").expect("bind");

    // The review-scenario payload: a line of a million '[' characters.
    // The parser must answer with a recursion-limit error instead of
    // overflowing the handler thread's stack and aborting the process.
    let mut raw = TcpStream::connect(server.local_addr()).expect("connect");
    let mut bomb = "[".repeat(1_000_000);
    bomb.push('\n');
    raw.write_all(bomb.as_bytes()).expect("send bomb");
    let mut reply = String::new();
    BufReader::new(&raw)
        .read_line(&mut reply)
        .expect("answered");
    assert!(
        reply.contains("\"ok\":false"),
        "bomb was not rejected: {reply}"
    );
    assert!(
        reply.contains("recursion limit"),
        "wrong rejection for the bomb: {reply}"
    );

    // The server must still serve real traffic afterwards.
    let mut client = GatewayClient::connect(server.local_addr()).expect("connect");
    let model = gateway.router().model("m").expect("registered");
    let codes = Matrix::from_fn(model.in_features(), 1, |r, c| ((r * 5 + c) % 100) as i32);
    let (expect, _) = model.forward_codes(&codes);
    let reply = client.infer_codes("m", codes).expect("served after bomb");
    assert_eq!(reply.payload, expect.into());
}

#[test]
fn facade_gateway_round_trip_with_cache_and_stats() {
    let models = models(&["a", "b"], 1);
    let gateway = Arc::new(Gateway::new(models, GatewayConfig::default()));
    let server = GatewayServer::bind(Arc::clone(&gateway), "127.0.0.1:0").expect("bind");
    let mut client = GatewayClient::connect(server.local_addr()).expect("connect");

    for name in ["a", "b"] {
        let model = gateway.router().model(name).expect("registered");
        let codes = Matrix::from_fn(model.in_features(), 2, |r, c| {
            ((r * 7 + c * 3) % 150) as i32
        });
        let (expect, _) = model.forward_codes(&codes);

        let cold = client.infer_codes(name, codes.clone()).expect("served");
        assert_eq!(
            cold.payload,
            expect.clone().into(),
            "gateway diverged for {name}"
        );
        assert!(!cold.cache_hit);

        let warm = client.infer_codes(name, codes).expect("served");
        assert!(warm.cache_hit, "repeat of {name} missed the cache");
        assert_eq!(
            warm.payload,
            expect.into(),
            "cache replay diverged for {name}"
        );
    }

    let stats = client.stats().expect("stats");
    assert_eq!(stats.shards.len(), 2);
    assert_eq!(stats.cache.hits, 2);
    assert_eq!(stats.cache.misses, 2);
    assert_eq!(stats.admission.admitted, 2);
    assert_eq!(stats.shards.iter().map(|s| s.requests).sum::<u64>(), 2);
}
