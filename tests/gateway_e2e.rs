//! Workspace-level gateway test through the `panacea` facade: a TCP
//! round trip covering routing, caching, and stats — the same contract
//! `examples/gateway_demo.rs` gates in CI, in miniature.

use std::sync::Arc;

use panacea::gateway::{Gateway, GatewayClient, GatewayConfig, GatewayServer};
use panacea::serve::{LayerSpec, PrepareOptions, PreparedModel};
use panacea::tensor::{dist::DistributionKind, seeded_rng, Matrix};

fn prepared(name: &str, seed: u64) -> PreparedModel {
    let mut rng = seeded_rng(seed);
    let w = DistributionKind::Gaussian {
        mean: 0.0,
        std: 0.05,
    }
    .sample_matrix(8, 16, &mut rng);
    let calib = DistributionKind::Gaussian {
        mean: 0.2,
        std: 0.5,
    }
    .sample_matrix(16, 16, &mut rng);
    PreparedModel::prepare(
        name,
        &[LayerSpec::unbiased(w)],
        &calib,
        PrepareOptions::default(),
    )
    .expect("prepare")
}

#[test]
fn facade_gateway_round_trip_with_cache_and_stats() {
    let models = vec![prepared("a", 1), prepared("b", 2)];
    let gateway = Arc::new(Gateway::new(models, GatewayConfig::default()));
    let server = GatewayServer::bind(Arc::clone(&gateway), "127.0.0.1:0").expect("bind");
    let mut client = GatewayClient::connect(server.local_addr()).expect("connect");

    for name in ["a", "b"] {
        let model = gateway.router().model(name).expect("registered");
        let codes = Matrix::from_fn(model.in_features(), 2, |r, c| {
            ((r * 7 + c * 3) % 150) as i32
        });
        let (expect, _) = model.forward_codes(&codes);

        let cold = client.infer_codes(name, codes.clone()).expect("served");
        assert_eq!(cold.acc, expect, "gateway diverged for {name}");
        assert!(!cold.cache_hit);

        let warm = client.infer_codes(name, codes).expect("served");
        assert!(warm.cache_hit, "repeat of {name} missed the cache");
        assert_eq!(warm.acc, expect, "cache replay diverged for {name}");
    }

    let stats = client.stats().expect("stats");
    assert_eq!(stats.shards.len(), 2);
    assert_eq!(stats.cache.hits, 2);
    assert_eq!(stats.cache.misses, 2);
    assert_eq!(stats.admission.admitted, 2);
    assert_eq!(stats.shards.iter().map(|s| s.requests).sum::<u64>(), 2);
}
