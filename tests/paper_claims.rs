//! Integration tests pinning the paper's qualitative claims — the
//! "shape" of every major result, as reproduced by this library.

use panacea::core::workload::table1;
use panacea::models::proxy::aggregate_sqnr_db;
use panacea::models::zoo::Benchmark;
use panacea::models::{profile_model, ProfileOptions};
use panacea::quant::zpm::manipulate_zero_point;
use panacea::sim::arch::PanaceaConfig;
use panacea::sim::baselines::{SibiaSim, SimdSim};
use panacea::sim::panacea::PanaceaSim;
use panacea::sim::workload::LayerWork;
use panacea::sim::{simulate_model, Accelerator};

fn quick_opts() -> ProfileOptions {
    ProfileOptions {
        sample_m: 64,
        sample_k: 96,
        sample_n: 64,
        ..ProfileOptions::default()
    }
}

fn to_work(p: &panacea::models::LayerProfile, sibia: bool) -> LayerWork {
    LayerWork {
        name: p.spec.name.clone(),
        m: p.spec.m,
        k: p.spec.k,
        n: p.spec.n,
        count: p.spec.count,
        w_planes: usize::from((p.spec.weight_bits - 4) / 3) + 1,
        x_planes: p.spec.act_lo_slices + 1,
        rho_w: p.rho_w,
        rho_x: if sibia { p.rho_x_sibia } else { p.rho_x },
    }
}

/// §I / Fig. 16–17: Panacea is more energy-efficient than Sibia and SIMD
/// on every benchmark model, with ratios in the paper's 1.1×–6× band.
#[test]
fn panacea_wins_efficiency_on_every_benchmark() {
    let pan = PanaceaSim::new(PanaceaConfig::default());
    let budget = PanaceaConfig::default().budget;
    let sibia = SibiaSim::new(budget);
    let simd = SimdSim::new(budget);
    for b in Benchmark::all() {
        let profiles = profile_model(&b.spec(), &quick_opts());
        let pan_layers: Vec<_> = profiles.iter().map(|p| to_work(p, false)).collect();
        let sib_layers: Vec<_> = profiles.iter().map(|p| to_work(p, true)).collect();
        let dense: Vec<_> = pan_layers
            .iter()
            .map(|l| LayerWork {
                rho_w: 0.0,
                rho_x: 0.0,
                ..l.clone()
            })
            .collect();
        let p = simulate_model(&pan, &pan_layers, 400.0);
        let s = simulate_model(&sibia, &sib_layers, 400.0);
        let v = simulate_model(&simd, &dense, 400.0);
        let vs_sibia = p.tops_per_w / s.tops_per_w;
        let vs_simd = p.tops_per_w / v.tops_per_w;
        assert!(vs_sibia > 1.0, "{:?}: vs Sibia {vs_sibia}", b);
        assert!(vs_simd > 1.0, "{:?}: vs SIMD {vs_simd}", b);
        assert!(
            vs_sibia < 6.0 && vs_simd < 8.0,
            "{:?}: ratios out of band",
            b
        );
    }
}

/// §III-C / Fig. 8: ZPM moves the zero-point by at most half a skip range
/// and centres it; coverage can only improve (sparsity-aware calibration).
#[test]
fn zpm_centres_all_zero_points() {
    for zp in 1..=255 {
        let z = manipulate_zero_point(zp, 8, 4);
        assert!(z.skip_lo <= z.zero_point && z.zero_point <= z.skip_hi + 1);
        assert!((z.zero_point - zp).abs() <= 8);
    }
}

/// Table I limits: Panacea's workload at zero sparsity equals the dense
/// bit-slice cost, and at full sparsity exactly the LO×LO quarter remains.
#[test]
fn table1_limits_hold() {
    let k = 128;
    assert_eq!(table1::panacea_mul(k, 0.0, 0.0), table1::dense_mul(k));
    assert_eq!(table1::panacea_mul(k, 1.0, 1.0), table1::dense_mul(k) / 4.0);
    assert_eq!(table1::sibia_mul(k, 1.0, 1.0), table1::dense_mul(k) / 2.0);
}

/// Fig. 5(b) / Fig. 1: asymmetric activation quantization preserves more
/// model quality than the symmetric scheme on every transformer benchmark.
#[test]
fn asymmetric_quality_wins_aggregate() {
    for b in [
        Benchmark::DeitBase,
        Benchmark::BertBase,
        Benchmark::Gpt2,
        Benchmark::Opt2_7b,
    ] {
        let profiles = profile_model(&b.spec(), &quick_opts());
        let asym = aggregate_sqnr_db(
            &profiles
                .iter()
                .map(|p| (p.sqnr_asym_db, p.spec.total_macs()))
                .collect::<Vec<_>>(),
        );
        let sym = aggregate_sqnr_db(
            &profiles
                .iter()
                .map(|p| (p.sqnr_sym_db, p.spec.total_macs()))
                .collect::<Vec<_>>(),
        );
        assert!(asym > sym, "{:?}: asym {asym} dB ≤ sym {sym} dB", b);
    }
}

/// Fig. 15 ablation direction: enabling ZPM+DBS must not reduce measured
/// activation sparsity on any benchmark layer.
#[test]
fn optimizations_never_reduce_sparsity() {
    for b in [Benchmark::DeitBase, Benchmark::Gpt2, Benchmark::Opt2_7b] {
        let base = profile_model(
            &b.spec(),
            &ProfileOptions {
                zpm: false,
                dbs: None,
                ..quick_opts()
            },
        );
        let full = profile_model(&b.spec(), &quick_opts());
        for (bp, fp) in base.iter().zip(&full) {
            assert!(
                fp.rho_x + 1e-9 >= bp.rho_x,
                "{}: optimized {} < baseline {}",
                fp.spec.name,
                fp.rho_x,
                bp.rho_x
            );
        }
    }
}

/// Fig. 19 shape: 4-bit weights (single plane) make Panacea strictly
/// cheaper than 7-bit weights in both cycles and energy.
#[test]
fn four_bit_weights_cut_cost() {
    let pan = PanaceaSim::new(PanaceaConfig::default());
    let mk = |planes: usize| LayerWork {
        name: "fc".into(),
        m: 2560,
        k: 2560,
        n: 256,
        count: 1,
        w_planes: planes,
        x_planes: 2,
        rho_w: 0.5,
        rho_x: 0.95,
    };
    let w7 = pan.simulate(&mk(2));
    let w4 = pan.simulate(&mk(1));
    assert!(w4.cycles < w7.cycles);
    assert!(w4.energy.total_pj() < w7.energy.total_pj());
}
