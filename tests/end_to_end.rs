//! Cross-crate integration tests: the full PTQ → bit-slice → AQS-GEMM
//! pipeline, the Eq. 3 zero-point folding, and the simulator orderings the
//! paper's evaluation depends on.

use panacea::bitslice::{SlicedActivation, SlicedWeight};
use panacea::core::aqs::aqs_gemm;
use panacea::core::sibia::{choose_skip_side, sibia_gemm};
use panacea::models::zoo::Benchmark;
use panacea::models::{profile_model, ProfileOptions};
use panacea::quant::dbs::{dbs_truncate, DbsConfig};
use panacea::quant::integer::{asym_integer_gemm, fold_zero_point_bias};
use panacea::quant::{ActivationCalibrator, Quantizer, SymmetricQuantizer};
use panacea::sim::arch::PanaceaConfig;
use panacea::sim::panacea::PanaceaSim;
use panacea::sim::simulate_model;
use panacea::sim::workload::LayerWork;
use panacea::tensor::{dist::DistributionKind, seeded_rng, Matrix};

/// Full pipeline on realistic data: calibrate, quantize, slice, AQS-GEMM,
/// fold the zero-point into the bias — every step must compose exactly.
#[test]
fn full_pipeline_is_bit_exact() {
    let mut rng = seeded_rng(1);
    let w_f = DistributionKind::OutlierChannels {
        core_std: 0.02,
        outlier_scale: 5.0,
        outlier_frac: 0.02,
    }
    .sample_matrix(32, 64, &mut rng);
    let x_f = DistributionKind::TransformerAct {
        core_mean: 0.1,
        core_std: 0.4,
        pos_scale: 12.0,
        neg_scale: 7.0,
        outlier_frac: 0.02,
    }
    .sample_matrix(64, 32, &mut rng);

    let wq = SymmetricQuantizer::calibrate(w_f.as_slice(), 7);
    let w_int = wq.quantize_matrix(&w_f);
    let mut cal = ActivationCalibrator::new(8)
        .with_zpm(true)
        .with_dbs(DbsConfig::default());
    cal.observe(&x_f);
    let cfg = cal.finalize();
    let x_int = cfg.quantizer.quantize_matrix(&x_f);
    let x_eff = x_int.map(|&v| dbs_truncate(v, cfg.dbs_type));

    let sw = SlicedWeight::from_int(&w_int, 1).expect("weights");
    let sx = SlicedActivation::from_uint(&x_int, 1, cfg.dbs_type).expect("acts");
    let (acc, _) = aqs_gemm(&sw, &sx, cfg.frequent_ho_slice);
    // 1. The sliced path equals the dense product of the effective operands.
    assert_eq!(acc, w_int.gemm(&x_eff).expect("shapes"));

    // 2. Eq. 3: folding zp·W·1 into the bias equals centring activations.
    let zp = cfg.quantizer.params().zero_point;
    let bias = vec![0i32; w_int.rows()];
    let bhat = fold_zero_point_bias(&w_int, zp, &bias);
    let folded = asym_integer_gemm(&w_int, &x_eff, &bhat).expect("shapes");
    let centered = w_int.gemm(&x_eff.map(|&v| v - zp)).expect("shapes");
    assert_eq!(folded, centered);
}

/// AQS-GEMM and Sibia agree with each other on data both can represent
/// (zero-centred symmetric values, r = 0).
#[test]
fn aqs_and_sibia_agree_on_symmetric_data() {
    let mut rng = seeded_rng(2);
    let w = Matrix::from_fn(8, 16, |_, _| rand::Rng::gen_range(&mut rng, -60i32..=60));
    let x = Matrix::from_fn(16, 8, |_, _| rand::Rng::gen_range(&mut rng, 0i32..=63));
    let sw = SlicedWeight::from_int(&w, 1).expect("weights");
    let sx_aqs = SlicedActivation::from_uint(&x, 1, panacea::quant::DbsType::Type1).expect("acts");
    let sx_sibia = SlicedWeight::from_int(&x, 1).expect("acts as SBR");
    let reference = w.gemm(&x).expect("shapes");
    let (a, _) = aqs_gemm(&sw, &sx_aqs, 0);
    let side = choose_skip_side(&sw, &sx_sibia);
    let (b, _) = sibia_gemm(&sw, &sx_sibia, side);
    assert_eq!(a, reference);
    assert_eq!(b, reference);
}

/// Profiling every benchmark model produces valid simulator inputs, and
/// the simulator reproduces the paper's headline ordering on all of them.
#[test]
fn all_benchmarks_profile_and_simulate() {
    let opts = ProfileOptions {
        sample_m: 64,
        sample_k: 96,
        sample_n: 64,
        ..ProfileOptions::default()
    };
    let pan = PanaceaSim::new(PanaceaConfig::default());
    for b in Benchmark::all() {
        let model = b.spec();
        let profiles = profile_model(&model, &opts);
        let layers: Vec<LayerWork> = profiles
            .iter()
            .map(|p| LayerWork {
                name: p.spec.name.clone(),
                m: p.spec.m,
                k: p.spec.k,
                n: p.spec.n,
                count: p.spec.count,
                w_planes: usize::from((p.spec.weight_bits - 4) / 3) + 1,
                x_planes: p.spec.act_lo_slices + 1,
                rho_w: p.rho_w,
                rho_x: p.rho_x,
            })
            .collect();
        for l in &layers {
            l.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", model.name));
        }
        let perf = simulate_model(&pan, &layers, 400.0);
        assert!(perf.tops > 0.0, "{}", model.name);
        assert!(perf.tops_per_w > 0.0, "{}", model.name);
    }
}

/// The central evaluation claim: on a sparse asymmetric workload Panacea
/// beats the zero-skip-only configuration of itself (Fig. 18(b) shape).
#[test]
fn aqs_outperforms_zero_skip_only_end_to_end() {
    let opts = ProfileOptions {
        sample_m: 64,
        sample_k: 96,
        sample_n: 64,
        ..ProfileOptions::default()
    };
    let model = Benchmark::Opt2_7b.spec();
    let profiles = profile_model(&model, &opts);
    let pan = PanaceaSim::new(PanaceaConfig::default());
    let mk = |zero_only: bool| -> Vec<LayerWork> {
        profiles
            .iter()
            .map(|p| LayerWork {
                name: p.spec.name.clone(),
                m: p.spec.m,
                k: p.spec.k,
                n: p.spec.n,
                count: p.spec.count,
                w_planes: 2,
                x_planes: p.spec.act_lo_slices + 1,
                rho_w: p.rho_w,
                rho_x: if zero_only {
                    p.rho_x_zero_only
                } else {
                    p.rho_x
                },
            })
            .collect()
    };
    let full = simulate_model(&pan, &mk(false), 400.0);
    let zero = simulate_model(&pan, &mk(true), 400.0);
    assert!(
        full.tops > zero.tops,
        "AQS {} must beat zero-skip-only {}",
        full.tops,
        zero.tops
    );
    assert!(full.tops_per_w > zero.tops_per_w);
}

/// Requantized outputs of one layer are valid inputs for the next layer's
/// sliced path (the PPU loop of Fig. 11).
#[test]
fn requantized_outputs_feed_next_layer() {
    let mut rng = seeded_rng(5);
    let w = Matrix::from_fn(16, 16, |_, _| rand::Rng::gen_range(&mut rng, -50i32..=50));
    let x = Matrix::from_fn(16, 16, |_, _| rand::Rng::gen_range(&mut rng, 0i32..=255));
    let sw = SlicedWeight::from_int(&w, 1).expect("weights");
    let sx = SlicedActivation::from_uint(&x, 1, panacea::quant::DbsType::Type1).expect("acts");
    let (acc, _) = aqs_gemm(&sw, &sx, 3);

    let out_q = panacea::quant::AsymmetricQuantizer::from_params(0.1, 117, 8).expect("params");
    let rq = panacea::quant::requant::Requantizer::new(1e-4, out_q).expect("requantizer");
    let next_input = rq.requantize_matrix(&acc);
    assert!(next_input.iter().all(|&v| (0..=255).contains(&v)));
    // And it slices cleanly for the next layer.
    let sliced = SlicedActivation::from_uint(&next_input, 1, panacea::quant::DbsType::Type1);
    assert!(sliced.is_ok());
}
