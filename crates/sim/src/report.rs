//! Aggregation of per-layer results into the paper's reporting units.

use serde::{Deserialize, Serialize};

use crate::energy::EnergyBreakdown;
use crate::workload::LayerWork;
use crate::Accelerator;

/// Whole-model simulation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelPerf {
    /// Accelerator name.
    pub accelerator: String,
    /// Total cycles.
    pub cycles: f64,
    /// Wall-clock seconds at the configured frequency.
    pub seconds: f64,
    /// Itemized energy (picojoules).
    pub energy: EnergyBreakdown,
    /// Nominal operations executed (2·MACs, dense-equivalent).
    pub ops: f64,
    /// Effective throughput in TOPS (nominal ops / time — skipping raises
    /// it, the convention the paper's Fig. 15–16 use).
    pub tops: f64,
    /// Energy efficiency in TOPS/W (= nominal ops per joule / 1e12).
    pub tops_per_w: f64,
    /// Total DRAM traffic in bytes.
    pub dram_bytes: f64,
    /// Total SRAM traffic in bytes.
    pub sram_bytes: f64,
}

/// Simulates a full model (list of layers) on one accelerator.
///
/// # Examples
///
/// ```
/// use panacea_sim::{simulate_model, Accelerator};
/// use panacea_sim::arch::PanaceaConfig;
/// use panacea_sim::panacea::PanaceaSim;
/// use panacea_sim::workload::LayerWork;
///
/// let sim = PanaceaSim::new(PanaceaConfig::default());
/// let layers = vec![LayerWork {
///     name: "fc1".into(), m: 256, k: 256, n: 64, count: 2,
///     w_planes: 2, x_planes: 2, rho_w: 0.4, rho_x: 0.9,
/// }];
/// let perf = simulate_model(&sim, &layers, 400.0);
/// assert!(perf.tops > 0.0 && perf.tops_per_w > 0.0);
/// ```
pub fn simulate_model(acc: &dyn Accelerator, layers: &[LayerWork], clock_mhz: f64) -> ModelPerf {
    let mut cycles = 0.0;
    let mut energy = EnergyBreakdown::default();
    let mut ops = 0.0;
    let mut dram_bits = 0.0;
    let mut sram_bits = 0.0;
    for l in layers {
        let p = acc.simulate(l);
        cycles += p.cycles;
        energy = energy.merged(&p.energy);
        ops += l.total_ops();
        dram_bits += p.dram_bits;
        sram_bits += p.sram_bits;
    }
    let seconds = cycles / (clock_mhz * 1e6);
    let joules = energy.total_pj() * 1e-12;
    ModelPerf {
        accelerator: acc.name().to_string(),
        cycles,
        seconds,
        energy,
        ops,
        tops: if seconds > 0.0 {
            ops / seconds / 1e12
        } else {
            0.0
        },
        tops_per_w: if joules > 0.0 {
            ops / joules / 1e12
        } else {
            0.0
        },
        dram_bytes: dram_bits / 8.0,
        sram_bytes: sram_bits / 8.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{HardwareBudget, PanaceaConfig};
    use crate::baselines::{SibiaSim, SimdSim, SystolicFlow, SystolicSim};
    use crate::panacea::PanaceaSim;

    fn layers(rho_w: f64, rho_x: f64) -> Vec<LayerWork> {
        vec![
            LayerWork {
                name: "qkv".into(),
                m: 2304,
                k: 768,
                n: 196,
                count: 12,
                w_planes: 2,
                x_planes: 2,
                rho_w,
                rho_x,
            },
            LayerWork {
                name: "fc2".into(),
                m: 768,
                k: 3072,
                n: 196,
                count: 12,
                w_planes: 2,
                x_planes: 2,
                rho_w,
                rho_x,
            },
        ]
    }

    #[test]
    fn panacea_beats_baselines_at_paper_sparsity() {
        // The paper's regime: very sparse activations, moderately sparse
        // weights — Panacea must win on both throughput and efficiency.
        let budget = HardwareBudget::default();
        let pan = PanaceaSim::new(PanaceaConfig::default());
        let sibia = SibiaSim::new(budget);
        let simd = SimdSim::new(budget);
        let ws = SystolicSim::new(SystolicFlow::WeightStationary, budget);

        let sparse = layers(0.4, 0.95);
        // Sibia sees lower activation sparsity (symmetric quantization
        // cannot expose the asymmetric distribution's sparsity).
        let sibia_layers = layers(0.4, 0.15);
        let p = simulate_model(&pan, &sparse, 400.0);
        let s = simulate_model(&sibia, &sibia_layers, 400.0);
        let v = simulate_model(&simd, &sparse, 400.0);
        let w = simulate_model(&ws, &sparse, 400.0);

        assert!(p.tops > s.tops, "Panacea {} ≤ Sibia {}", p.tops, s.tops);
        assert!(p.tops > v.tops, "Panacea {} ≤ SIMD {}", p.tops, v.tops);
        assert!(p.tops_per_w > s.tops_per_w);
        assert!(p.tops_per_w > v.tops_per_w);
        assert!(p.tops_per_w > w.tops_per_w);
        // The winning ratios should be in the paper's ballpark (1.2×–4×).
        let ratio = p.tops_per_w / s.tops_per_w;
        assert!(
            (1.05..6.0).contains(&ratio),
            "Panacea/Sibia efficiency ratio {ratio}"
        );
    }

    #[test]
    fn panacea_loses_to_simd_when_dense() {
        // Fig. 13: at very low sparsity Panacea's DWO pool is the
        // bottleneck and the dense designs win.
        let pan = PanaceaSim::new(PanaceaConfig {
            dtp: false,
            ..PanaceaConfig::default()
        });
        let simd = SimdSim::new(HardwareBudget::default());
        let dense = layers(0.0, 0.0);
        let p = simulate_model(&pan, &dense, 400.0);
        let v = simulate_model(&simd, &dense, 400.0);
        assert!(
            p.tops < v.tops,
            "Panacea {} should trail SIMD {} when dense",
            p.tops,
            v.tops
        );
    }

    #[test]
    fn energy_breakdown_components_all_populated() {
        let pan = PanaceaSim::new(PanaceaConfig::default());
        let perf = simulate_model(&pan, &layers(0.3, 0.9), 400.0);
        assert!(perf.energy.compute_pj > 0.0);
        assert!(perf.energy.sram_pj > 0.0);
        assert!(perf.energy.dram_pj > 0.0);
        assert!(perf.energy.buffer_pj > 0.0);
        assert!(perf.energy.static_pj > 0.0);
    }

    #[test]
    fn tops_is_frequency_proportional_efficiency_is_not() {
        let pan = PanaceaSim::new(PanaceaConfig::default());
        let l = layers(0.3, 0.9);
        let a = simulate_model(&pan, &l, 400.0);
        let b = simulate_model(&pan, &l, 800.0);
        assert!((b.tops / a.tops - 2.0).abs() < 1e-9);
        assert!((b.tops_per_w - a.tops_per_w).abs() < 1e-9);
    }
}
