//! The layer descriptor consumed by every accelerator model, and the
//! per-layer simulation result.

use serde::{Deserialize, Serialize};

use crate::energy::EnergyBreakdown;

/// One GEMM layer with measured sparsity, as fed to a simulator.
///
/// `rho_x` must be measured under the *target accelerator's* semantics:
/// all-`r` vector sparsity for Panacea, all-zero vector sparsity of
/// symmetric activations for Sibia, zero for the dense baselines (they
/// ignore it).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerWork {
    /// Layer name for reports.
    pub name: String,
    /// Weight rows.
    pub m: usize,
    /// Inner dimension.
    pub k: usize,
    /// Activation columns.
    pub n: usize,
    /// Number of identical instances executed.
    pub count: usize,
    /// Weight slice planes (`n+1`; 2 for 7-bit, 3 for 10-bit, 1 for 4-bit).
    pub w_planes: usize,
    /// Activation slice planes (`k+1`; 2 for 8-bit, 3 for 12-bit).
    pub x_planes: usize,
    /// Weight HO vector sparsity `ρ_w ∈ [0, 1]`.
    pub rho_w: f64,
    /// Activation HO vector sparsity `ρ_x ∈ [0, 1]`.
    pub rho_x: f64,
}

impl LayerWork {
    /// Dense MAC count of one instance.
    pub fn macs(&self) -> f64 {
        self.m as f64 * self.k as f64 * self.n as f64
    }

    /// Nominal operations (2 per MAC) across all instances — the
    /// numerator of "effective TOPS".
    pub fn total_ops(&self) -> f64 {
        2.0 * self.macs() * self.count as f64
    }

    /// Validates ranges.
    pub fn validate(&self) -> Result<(), String> {
        if self.m == 0 || self.k == 0 || self.n == 0 || self.count == 0 {
            return Err(format!("{}: degenerate dimensions", self.name));
        }
        if self.w_planes == 0 || self.x_planes == 0 {
            return Err(format!("{}: zero slice planes", self.name));
        }
        for (label, v) in [("rho_w", self.rho_w), ("rho_x", self.rho_x)] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{}: {label} = {v} outside [0, 1]", self.name));
            }
        }
        Ok(())
    }
}

/// Result of simulating one layer (all `count` instances).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerPerf {
    /// Total cycles (max of compute and memory under double buffering).
    pub cycles: f64,
    /// Compute-only cycles (operator-pool drain time).
    pub compute_cycles: f64,
    /// Itemized energy (pJ).
    pub energy: EnergyBreakdown,
    /// DRAM traffic in bits.
    pub dram_bits: f64,
    /// On-chip SRAM traffic in bits (reads + writes).
    pub sram_bits: f64,
    /// Mean utilization of the sparse-workload operator pool (DWOs for
    /// Panacea; overall MAC utilization for other designs).
    pub util_primary: f64,
    /// Mean utilization of the dense pool (SWOs); 0 where not applicable.
    pub util_secondary: f64,
    /// Whether double-tile processing was active (Panacea only).
    pub dtp_active: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer() -> LayerWork {
        LayerWork {
            name: "t".into(),
            m: 64,
            k: 64,
            n: 64,
            count: 2,
            w_planes: 2,
            x_planes: 2,
            rho_w: 0.5,
            rho_x: 0.5,
        }
    }

    #[test]
    fn ops_count_both_instances() {
        let l = layer();
        assert_eq!(l.total_ops(), 2.0 * 64.0 * 64.0 * 64.0 * 2.0);
    }

    #[test]
    fn validation_catches_bad_inputs() {
        assert!(layer().validate().is_ok());
        assert!(LayerWork { m: 0, ..layer() }.validate().is_err());
        assert!(LayerWork {
            rho_x: 1.5,
            ..layer()
        }
        .validate()
        .is_err());
        assert!(LayerWork {
            w_planes: 0,
            ..layer()
        }
        .validate()
        .is_err());
    }
}
