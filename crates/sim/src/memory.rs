//! Explicit on-chip memory planning.
//!
//! The analytical models check tile-fit conditions inline; this module
//! exposes the same arithmetic as a first-class planner so configurations
//! can be validated (and sized) ahead of simulation: WMEM / AMEM / OMEM
//! partitioning of the 192 KB budget, compressed tile footprints, the
//! double-buffering requirement, and the DTP capacity condition.

use serde::{Deserialize, Serialize};

use crate::arch::{PanaceaConfig, TileConfig};
use crate::workload::LayerWork;

/// A partition of the on-chip SRAM budget (bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryPlan {
    /// Weight memory capacity.
    pub wmem: usize,
    /// Activation memory capacity.
    pub amem: usize,
    /// Output memory capacity.
    pub omem: usize,
}

impl MemoryPlan {
    /// Derives the plan from a Panacea configuration (AMEM takes 3/4 of
    /// the non-weight share, OMEM the rest — the split used throughout
    /// the simulator).
    pub fn from_config(cfg: &PanaceaConfig) -> Self {
        let wmem = cfg.wmem_bytes();
        let rest = cfg.budget.sram_bytes - wmem;
        MemoryPlan {
            wmem,
            amem: rest * 3 / 4,
            omem: rest - rest * 3 / 4,
        }
    }

    /// Total capacity.
    pub fn total(&self) -> usize {
        self.wmem + self.amem + self.omem
    }
}

/// Compressed footprint (bytes) of one `TM × K` weight tile.
///
/// Dense LO planes cost 4 bits per element; the HO plane costs
/// `(4 + 1)·(1 − ρ_w)` bits (slice + amortized RLE index). Single-plane
/// weights are dense 4-bit.
pub fn weight_tile_bytes(tile: &TileConfig, l: &LayerWork) -> f64 {
    let bpe = if l.w_planes == 1 {
        4.0
    } else {
        4.0 * (l.w_planes as f64 - 1.0) + 5.0 * (1.0 - l.rho_w)
    };
    tile.tm as f64 * l.k as f64 * bpe / 8.0
}

/// Compressed footprint (bytes) of one `TK × TN` activation tile.
pub fn act_tile_bytes(tile: &TileConfig, l: &LayerWork) -> f64 {
    let bpe = 4.0 * (l.x_planes as f64 - 1.0) + 5.0 * (1.0 - l.rho_x);
    tile.tk as f64 * tile.tn as f64 * bpe / 8.0
}

/// Output-tile footprint (bytes): `TM × TN` requantized 8-bit outputs.
pub fn out_tile_bytes(tile: &TileConfig) -> f64 {
    (tile.tm * tile.tn) as f64
}

/// Result of checking one layer against a plan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FitReport {
    /// The full `TM × K` weight tile is resident in WMEM (weights are
    /// fetched once and reused across the whole N sweep).
    pub weight_tile_fits: bool,
    /// The minimum `TM × TK` weight working set fits WMEM
    /// double-buffered (required for execution at all).
    pub weight_subtile_fits: bool,
    /// Two weight tiles fit — the DTP enable condition (§III-D).
    pub dtp_capacity: bool,
    /// The activation tile fits AMEM double-buffered.
    pub act_tile_fits: bool,
    /// The whole activation matrix fits AMEM (no re-fetch passes).
    pub full_act_fits: bool,
    /// The output tile fits OMEM double-buffered.
    pub out_tile_fits: bool,
}

impl FitReport {
    /// The layer is executable under this plan (every minimum per-tile
    /// working set fits; non-resident tiles just re-fetch).
    pub fn executable(&self) -> bool {
        self.weight_subtile_fits && self.act_tile_fits && self.out_tile_fits
    }
}

/// Checks one layer's working sets against a plan.
pub fn check_fit(plan: &MemoryPlan, tile: &TileConfig, l: &LayerWork) -> FitReport {
    let w = weight_tile_bytes(tile, l);
    let a = act_tile_bytes(tile, l);
    let o = out_tile_bytes(tile);
    let full_act =
        l.k as f64 * l.n as f64 * (4.0 * (l.x_planes as f64 - 1.0) + 5.0 * (1.0 - l.rho_x)) / 8.0;
    let w_sub = w * tile.tk as f64 / l.k as f64;
    FitReport {
        weight_tile_fits: w <= plan.wmem as f64,
        weight_subtile_fits: 2.0 * w_sub <= plan.wmem as f64,
        dtp_capacity: 2.0 * w <= plan.wmem as f64,
        act_tile_fits: 2.0 * a <= plan.amem as f64,
        full_act_fits: full_act <= plan.amem as f64,
        out_tile_fits: 2.0 * o <= plan.omem as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::PanaceaConfig;

    fn layer(k: usize, n: usize, rho_w: f64, rho_x: f64) -> LayerWork {
        LayerWork {
            name: "l".into(),
            m: 768,
            k,
            n,
            count: 1,
            w_planes: 2,
            x_planes: 2,
            rho_w,
            rho_x,
        }
    }

    #[test]
    fn plan_partitions_the_full_budget() {
        let plan = MemoryPlan::from_config(&PanaceaConfig::default());
        assert_eq!(plan.total(), 192 * 1024);
        assert_eq!(plan.wmem, 96 * 1024);
    }

    #[test]
    fn compression_shrinks_tile_footprints() {
        let t = TileConfig::default();
        let dense = weight_tile_bytes(&t, &layer(2048, 512, 0.0, 0.0));
        let sparse = weight_tile_bytes(&t, &layer(2048, 512, 0.9, 0.0));
        assert!(sparse < dense);
        // Dense two-plane tile: TM·K·9 bits.
        assert!((dense - 64.0 * 2048.0 * 9.0 / 8.0).abs() < 1e-6);
    }

    #[test]
    fn single_plane_weights_are_plain_4bit() {
        let t = TileConfig::default();
        let mut l = layer(1024, 256, 0.7, 0.0);
        l.w_planes = 1;
        assert!((weight_tile_bytes(&t, &l) - 64.0 * 1024.0 * 4.0 / 8.0).abs() < 1e-6);
    }

    #[test]
    fn typical_transformer_layers_are_executable() {
        let plan = MemoryPlan::from_config(&PanaceaConfig::default());
        let t = TileConfig::default();
        for (k, n) in [(768, 196), (3072, 1024), (2560, 2048)] {
            let rep = check_fit(&plan, &t, &layer(k, n, 0.5, 0.9));
            assert!(rep.executable(), "K={k} N={n}: {rep:?}");
        }
    }

    #[test]
    fn huge_k_disables_weight_residency_but_stays_executable() {
        let plan = MemoryPlan::from_config(&PanaceaConfig::default());
        let t = TileConfig::default();
        // K so large that even one TM-tile exceeds WMEM — still executable
        // through per-TK sub-tiles.
        let rep = check_fit(&plan, &t, &layer(300_000, 128, 0.0, 0.5));
        assert!(!rep.weight_tile_fits);
        assert!(rep.weight_subtile_fits);
        assert!(rep.executable());
    }

    #[test]
    fn small_activations_fit_entirely() {
        let plan = MemoryPlan::from_config(&PanaceaConfig::default());
        let t = TileConfig::default();
        let rep = check_fit(&plan, &t, &layer(768, 16, 0.5, 0.9));
        assert!(rep.full_act_fits);
        let rep = check_fit(&plan, &t, &layer(3072, 2048, 0.5, 0.2));
        assert!(!rep.full_act_fits);
    }
}
