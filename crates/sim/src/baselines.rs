//! Baseline accelerator models under the iso-resource budget:
//! SA-WS / SA-OS systolic arrays, the SIMD design, and Sibia.

use serde::{Deserialize, Serialize};

use crate::arch::{AreaModel, HardwareBudget};
use crate::energy::EnergyBreakdown;
use crate::workload::{LayerPerf, LayerWork};
use crate::Accelerator;

/// Systolic-array dataflow variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SystolicFlow {
    /// Weight-stationary.
    WeightStationary,
    /// Output-stationary.
    OutputStationary,
}

/// A 32×24 systolic array of 768 8b×8b MACs (= 3072 4b×4b equivalents).
#[derive(Debug, Clone)]
pub struct SystolicSim {
    flow: SystolicFlow,
    budget: HardwareBudget,
    rows: usize,
    cols: usize,
    area: AreaModel,
}

impl SystolicSim {
    /// Creates an SA-WS or SA-OS model with the default 32×24 geometry.
    pub fn new(flow: SystolicFlow, budget: HardwareBudget) -> Self {
        SystolicSim {
            flow,
            budget,
            rows: 32,
            cols: 24,
            area: AreaModel::default(),
        }
    }
}

/// Shared dense-operand DRAM/SRAM traffic model: operands are moved in
/// 8-bit format; an operand is re-fetched from DRAM once per pass of the
/// non-stationary loop unless it fits its SRAM partition.
fn dense_traffic(
    l: &LayerWork,
    budget: &HardwareBudget,
    w_passes: f64,
    x_passes: f64,
) -> (f64, f64, f64) {
    let half = budget.sram_bytes as f64 / 2.0;
    let w_base = l.m as f64 * l.k as f64 * 8.0;
    let x_base = l.k as f64 * l.n as f64 * 8.0;
    let w_bits = w_base * if w_base / 8.0 <= half { 1.0 } else { w_passes };
    let x_bits = x_base
        * if x_base / 8.0 <= half * 0.75 {
            1.0
        } else {
            x_passes
        };
    let out_bits = l.m as f64 * l.n as f64 * 8.0;
    (w_bits, x_bits, out_bits)
}

/// Dense 8-bit MAC energy (4 mul4 + reduction + accumulate + operand regs).
fn mac8_energy_pj(budget: &HardwareBudget) -> f64 {
    let t = budget.tech;
    4.0 * t.mul4_pj + 3.0 * t.add8_pj + t.acc32_pj + 16.0 * 2.0 * t.buf_pj_bit
}

impl Accelerator for SystolicSim {
    fn name(&self) -> &str {
        match self.flow {
            SystolicFlow::WeightStationary => "SA-WS",
            SystolicFlow::OutputStationary => "SA-OS",
        }
    }

    fn simulate(&self, l: &LayerWork) -> LayerPerf {
        l.validate().expect("invalid layer");
        let t = self.budget.tech;
        let fill_drain = (self.rows + self.cols) as f64;
        let (cycles, psum_sram_bits, w_passes, x_passes) = match self.flow {
            SystolicFlow::WeightStationary => {
                let kt = (l.k as f64 / self.rows as f64).ceil();
                let mt = (l.m as f64 / self.cols as f64).ceil();
                let cycles = kt * mt * (l.n as f64 + fill_drain);
                // Partial sums spill to SRAM between k-tiles.
                let psum = l.m as f64 * l.n as f64 * 32.0 * 2.0 * (kt - 1.0).max(0.0);
                (cycles, psum, 1.0, mt)
            }
            SystolicFlow::OutputStationary => {
                let mt = (l.m as f64 / self.rows as f64).ceil();
                let nt = (l.n as f64 / self.cols as f64).ceil();
                let cycles = mt * nt * (l.k as f64 + fill_drain);
                (cycles, 0.0, nt, mt)
            }
        };
        let (w_bits, x_bits, out_bits) = dense_traffic(l, &self.budget, w_passes, x_passes);
        let dram_bits = w_bits + x_bits + out_bits;
        let dram_cycles = dram_bits / self.budget.dram_bits_per_cycle as f64;
        let total_cycles = cycles.max(dram_cycles);

        let macs = l.macs();
        let compute_pj = macs * mac8_energy_pj(&self.budget);
        let sram_rd = w_bits.max(l.m as f64 * l.k as f64 * 8.0 * x_passes)
            + x_bits.max(l.k as f64 * l.n as f64 * 8.0 * w_passes)
            + psum_sram_bits / 2.0;
        let sram_wr = w_bits + x_bits + out_bits + psum_sram_bits / 2.0;
        let sram_pj = sram_rd * t.sram_rd_pj_bit + sram_wr * t.sram_wr_pj_bit;
        let ppu = l.m as f64 * l.n as f64 * t.ppu_pj_elem;
        let energy = EnergyBreakdown {
            compute_pj,
            sram_pj,
            buffer_pj: 0.0, // operand registers already in the MAC energy
            dram_pj: dram_bits * t.dram_pj_bit,
            other_pj: ppu,
            static_pj: 0.0,
        }
        .with_static(t.static_overhead)
        .scaled(l.count as f64);

        let util = (macs / ((self.rows * self.cols) as f64 * total_cycles)).min(1.0);
        LayerPerf {
            cycles: total_cycles * l.count as f64,
            compute_cycles: cycles * l.count as f64,
            energy,
            dram_bits: dram_bits * l.count as f64,
            sram_bits: (sram_rd + sram_wr) * l.count as f64,
            util_primary: util,
            util_secondary: 0.0,
            dtp_active: false,
        }
    }

    fn area_mm2(&self) -> f64 {
        // 768 8b MACs = 3072 mul4-equivalents + accumulators.
        self.area
            .core_area_mm2(3072, 3072, 768, self.budget.sram_bytes as f64 / 1024.0, 4.0)
    }
}

/// A 768-lane 8-bit SIMD MAC engine (the per-vector-scaled design of
/// Keller et al., JSSC'23, reduced to its dense-GEMM behaviour).
#[derive(Debug, Clone)]
pub struct SimdSim {
    budget: HardwareBudget,
    lanes: usize,
    area: AreaModel,
}

impl SimdSim {
    /// Creates the SIMD model (768 lanes under the default budget).
    pub fn new(budget: HardwareBudget) -> Self {
        SimdSim {
            budget,
            lanes: 768,
            area: AreaModel::default(),
        }
    }
}

impl Accelerator for SimdSim {
    fn name(&self) -> &str {
        "SIMD"
    }

    fn simulate(&self, l: &LayerWork) -> LayerPerf {
        l.validate().expect("invalid layer");
        let t = self.budget.tech;
        // No fill/drain; small issue overhead.
        let compute_cycles = l.macs() / self.lanes as f64 / 0.95;
        let n_m_tiles = (l.m as f64 / 64.0).ceil();
        let n_n_tiles = (l.n as f64 / 64.0).ceil();
        let (w_bits, x_bits, out_bits) = dense_traffic(l, &self.budget, n_n_tiles, n_m_tiles);
        let dram_bits = w_bits + x_bits + out_bits;
        let dram_cycles = dram_bits / self.budget.dram_bits_per_cycle as f64;
        let cycles = compute_cycles.max(dram_cycles);

        let compute_pj = l.macs() * mac8_energy_pj(&self.budget);
        let sram_rd = w_bits + x_bits;
        let sram_wr = w_bits + x_bits + out_bits;
        let energy = EnergyBreakdown {
            compute_pj,
            sram_pj: sram_rd * t.sram_rd_pj_bit + sram_wr * t.sram_wr_pj_bit,
            buffer_pj: 0.0,
            dram_pj: dram_bits * t.dram_pj_bit,
            other_pj: l.m as f64 * l.n as f64 * t.ppu_pj_elem,
            static_pj: 0.0,
        }
        .with_static(t.static_overhead)
        .scaled(l.count as f64);

        LayerPerf {
            cycles: cycles * l.count as f64,
            compute_cycles: compute_cycles * l.count as f64,
            energy,
            dram_bits: dram_bits * l.count as f64,
            sram_bits: (sram_rd + sram_wr) * l.count as f64,
            util_primary: (l.macs() / (self.lanes as f64 * cycles)).min(1.0),
            util_secondary: 0.0,
            dtp_active: false,
        }
    }

    fn area_mm2(&self) -> f64 {
        self.area
            .core_area_mm2(3072, 3072, 768, self.budget.sram_bytes as f64 / 1024.0, 3.0)
    }
}

/// The Sibia bit-slice accelerator (Im et al., HPCA'23): 192 OPCs, SBR on
/// both (symmetric) operands, zero-vector skipping on the more-sparse
/// operand only, uncompressed DRAM format.
#[derive(Debug, Clone)]
pub struct SibiaSim {
    budget: HardwareBudget,
    opcs: usize,
    area: AreaModel,
}

impl SibiaSim {
    /// Creates the Sibia model (192 OPCs = 3072 multipliers).
    pub fn new(budget: HardwareBudget) -> Self {
        SibiaSim {
            budget,
            opcs: 192,
            area: AreaModel::default(),
        }
    }
}

impl Accelerator for SibiaSim {
    fn name(&self) -> &str {
        "Sibia"
    }

    fn simulate(&self, l: &LayerWork) -> LayerPerf {
        l.validate().expect("invalid layer");
        let t = self.budget.tech;
        let pw = l.w_planes as f64;
        let px = l.x_planes as f64;
        // Skip the side with more savings; the other side's sparsity is
        // left unexploited (Table I's max(ρw, ρx)). A single-plane operand
        // has no HO slices to skip.
        let skip_x = if l.x_planes >= 2 { pw * l.rho_x } else { 0.0 };
        let skip_w = if l.w_planes >= 2 { px * l.rho_w } else { 0.0 };
        let skipped = skip_x.max(skip_w);
        let classes = (pw * px - skipped).max(0.0);
        let vec_pairs = l.m as f64 / 4.0 * l.k as f64 * (l.n as f64 / 4.0);
        let exec_ops = vec_pairs * classes;
        let compute_cycles = exec_ops / self.opcs as f64;

        // Uncompressed (3n+4)-bit packed operand format from DRAM.
        let w_bpe = 3.0 * (pw - 1.0) + 4.0;
        let x_bpe = 3.0 * (px - 1.0) + 4.0;
        let half = self.budget.sram_bytes as f64 / 2.0;
        let n_m_tiles = (l.m as f64 / 64.0).ceil();
        let n_n_tiles = (l.n as f64 / 64.0).ceil();
        let w_base = l.m as f64 * l.k as f64 * w_bpe;
        let x_base = l.k as f64 * l.n as f64 * x_bpe;
        let w_bits = w_base
            * if 64.0 * l.k as f64 * w_bpe / 8.0 <= half {
                1.0
            } else {
                n_n_tiles
            };
        let x_bits = x_base
            * if x_base / 8.0 <= half * 0.75 {
                1.0
            } else {
                n_m_tiles
            };
        let out_bits = l.m as f64 * l.n as f64 * 8.0;
        let dram_bits = w_bits + x_bits + out_bits;
        let dram_cycles = dram_bits / self.budget.dram_bits_per_cycle as f64;
        let cycles = compute_cycles.max(dram_cycles);

        let compute_pj = exec_ops
            * (16.0 * t.mul4_pj + 16.0 * t.add8_pj + 16.0 * t.shift_pj + 16.0 * t.acc32_pj);
        let buffer_pj = exec_ops * ((8.0 * 4.0) + 16.0 * 24.0 * 2.0) * t.buf_pj_bit;
        let sram_rd = w_bits + x_bits;
        let sram_wr = w_bits + x_bits + out_bits;
        let rle = vec_pairs / l.k as f64 * (1.0 - l.rho_w.max(l.rho_x));
        let energy = EnergyBreakdown {
            compute_pj,
            sram_pj: sram_rd * t.sram_rd_pj_bit + sram_wr * t.sram_wr_pj_bit,
            buffer_pj,
            dram_pj: dram_bits * t.dram_pj_bit,
            other_pj: l.m as f64 * l.n as f64 * t.ppu_pj_elem + rle * t.rle_decode_pj,
            static_pj: 0.0,
        }
        .with_static(t.static_overhead)
        .scaled(l.count as f64);

        LayerPerf {
            cycles: cycles * l.count as f64,
            compute_cycles: compute_cycles * l.count as f64,
            energy,
            dram_bits: dram_bits * l.count as f64,
            sram_bits: (sram_rd + sram_wr) * l.count as f64,
            util_primary: (exec_ops / (self.opcs as f64 * cycles)).min(1.0),
            util_secondary: 0.0,
            dtp_active: false,
        }
    }

    fn area_mm2(&self) -> f64 {
        self.area
            .core_area_mm2(3072, 3072, 64, self.budget.sram_bytes as f64 / 1024.0, 6.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(rho_w: f64, rho_x: f64) -> LayerWork {
        LayerWork {
            name: "t".into(),
            m: 768,
            k: 768,
            n: 512,
            count: 1,
            w_planes: 2,
            x_planes: 2,
            rho_w,
            rho_x,
        }
    }

    fn budget() -> HardwareBudget {
        HardwareBudget::default()
    }

    #[test]
    fn dense_designs_ignore_sparsity() {
        {
            let acc = SystolicSim::new(SystolicFlow::WeightStationary, budget());
            let a = acc.simulate(&layer(0.0, 0.0));
            let b = acc.simulate(&layer(0.9, 0.9));
            assert_eq!(a.cycles, b.cycles, "{}", acc.name());
        }
        let simd = SimdSim::new(budget());
        assert_eq!(
            simd.simulate(&layer(0.0, 0.0)).cycles,
            simd.simulate(&layer(0.9, 0.9)).cycles
        );
    }

    #[test]
    fn sibia_exploits_one_side_only() {
        let sibia = SibiaSim::new(budget());
        let both = sibia.simulate(&layer(0.9, 0.9));
        let one = sibia.simulate(&layer(0.0, 0.9));
        // Same max(ρw, ρx) ⇒ same cycles.
        assert_eq!(both.cycles, one.cycles);
        let dense = sibia.simulate(&layer(0.0, 0.0));
        assert!(both.cycles < dense.cycles);
    }

    #[test]
    fn ws_prefers_large_n_os_prefers_large_k() {
        let ws = SystolicSim::new(SystolicFlow::WeightStationary, budget());
        let os = SystolicSim::new(SystolicFlow::OutputStationary, budget());
        // Tall-skinny (small n): WS pays fill/drain per weight tile.
        let small_n = LayerWork {
            n: 8,
            ..layer(0.0, 0.0)
        };
        assert!(os.simulate(&small_n).cycles < ws.simulate(&small_n).cycles);
    }

    #[test]
    fn simd_has_highest_dense_utilization() {
        let simd = SimdSim::new(budget()).simulate(&layer(0.0, 0.0));
        let ws =
            SystolicSim::new(SystolicFlow::WeightStationary, budget()).simulate(&layer(0.0, 0.0));
        assert!(simd.util_primary >= ws.util_primary);
    }

    #[test]
    fn all_baselines_have_positive_energy_and_area() {
        let l = layer(0.5, 0.5);
        let accs: Vec<Box<dyn Accelerator>> = vec![
            Box::new(SystolicSim::new(SystolicFlow::WeightStationary, budget())),
            Box::new(SystolicSim::new(SystolicFlow::OutputStationary, budget())),
            Box::new(SimdSim::new(budget())),
            Box::new(SibiaSim::new(budget())),
        ];
        for a in accs {
            let p = a.simulate(&l);
            assert!(p.energy.total_pj() > 0.0, "{}", a.name());
            assert!(p.cycles > 0.0, "{}", a.name());
            assert!(a.area_mm2() > 0.5, "{}", a.name());
        }
    }

    #[test]
    fn sibia_mixed_precision_costs_more() {
        let sibia = SibiaSim::new(budget());
        let base = sibia.simulate(&layer(0.0, 0.5));
        let mut mp = layer(0.0, 0.5);
        mp.w_planes = 3;
        let more = sibia.simulate(&mp);
        assert!(more.cycles > base.cycles);
    }
}
