//! Cycle- and energy-level simulator of the Panacea accelerator and its
//! baselines (paper §III-D and §IV).
//!
//! The paper estimates performance by counting, for a given architecture
//! and dataflow, the number of cycles and the number of activated modules
//! during inference — with bit-slice sparsity measured on real benchmarks —
//! then pricing module activations with 28 nm post-layout energies and
//! CACTI DRAM numbers. This crate implements the same methodology:
//!
//! * [`energy`] — 28 nm per-operation energy constants and itemized
//!   energy breakdowns;
//! * [`arch`] — hardware configurations under the paper's iso-resource
//!   budget (3072 4b×4b multipliers, 192 KB SRAM, 256 bit/cycle DRAM) and
//!   the area model behind Fig. 20;
//! * [`workload`] — the [`LayerWork`] descriptor every accelerator model
//!   consumes (GEMM dims + measured HO vector sparsities);
//! * [`panacea`] — the Panacea model: PEAs with DWO/SWO operator pools,
//!   compensators, RLE-compressed traffic, output-stationary tiling
//!   (v=4, P=16, TM=64, TK=32, TN=64, R=16), and double-tile processing;
//! * [`baselines`] — SA-WS, SA-OS systolic arrays, the SIMD design, and
//!   Sibia under identical budgets;
//! * [`exec`] — an event-level functional executor that list-schedules
//!   real sliced tiles onto the operator pools cycle-by-cycle, used to
//!   validate the analytical model;
//! * [`report`] — aggregation into the paper's reporting units
//!   (throughput, TOPS/W, energy breakdowns);
//! * [`sweep`] — design-space sweep utilities (the machinery behind
//!   Fig. 13);
//! * [`memory`] — explicit WMEM/AMEM/OMEM capacity planning (tile
//!   footprints, double-buffering, the DTP enable condition).
//!
//! # Examples
//!
//! ```
//! use panacea_sim::arch::PanaceaConfig;
//! use panacea_sim::panacea::PanaceaSim;
//! use panacea_sim::workload::LayerWork;
//! use panacea_sim::Accelerator;
//!
//! let sim = PanaceaSim::new(PanaceaConfig::default());
//! let layer = LayerWork {
//!     name: "fc".into(), m: 768, k: 768, n: 196, count: 1,
//!     w_planes: 2, x_planes: 2, rho_w: 0.3, rho_x: 0.9,
//! };
//! let perf = sim.simulate(&layer);
//! assert!(perf.cycles > 0.0);
//! assert!(perf.energy.total_pj() > 0.0);
//! ```

pub mod arch;
pub mod baselines;
pub mod energy;
pub mod exec;
pub mod memory;
pub mod panacea;
pub mod report;
pub mod sweep;
pub mod workload;

pub use arch::{HardwareBudget, PanaceaConfig};
pub use energy::EnergyBreakdown;
pub use report::{simulate_model, ModelPerf};
pub use workload::{LayerPerf, LayerWork};

/// Common interface of all modeled accelerators.
pub trait Accelerator {
    /// Display name used in reports.
    fn name(&self) -> &str;

    /// Simulates one layer (all `count` instances).
    fn simulate(&self, layer: &LayerWork) -> LayerPerf;

    /// Core area in mm² (28 nm), for the Fig. 20 comparison.
    fn area_mm2(&self) -> f64;
}
