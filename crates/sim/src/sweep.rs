//! Design-space sweep utilities (the machinery behind Fig. 13).
//!
//! A [`SweepGrid`] enumerates Panacea configurations × sparsity points ×
//! GEMM shapes and evaluates them under a shared budget, producing the
//! flat records the harness binaries and downstream analyses consume.

use serde::{Deserialize, Serialize};

use crate::arch::PanaceaConfig;
use crate::panacea::PanaceaSim;
use crate::workload::LayerWork;
use crate::Accelerator;

/// One point of a design-space sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// DWOs per PEA.
    pub dwo: usize,
    /// SWOs per PEA.
    pub swo: usize,
    /// DTP enabled.
    pub dtp: bool,
    /// GEMM shape `(M, K, N)`.
    pub shape: (usize, usize, usize),
    /// Weight HO vector sparsity.
    pub rho_w: f64,
    /// Activation HO vector sparsity.
    pub rho_x: f64,
    /// Effective throughput in TOPS at the budget clock.
    pub tops: f64,
    /// Energy efficiency in TOPS/W.
    pub tops_per_w: f64,
    /// DWO utilization.
    pub util_dwo: f64,
    /// SWO utilization.
    pub util_swo: f64,
    /// Whether DTP was actually active (capacity condition).
    pub dtp_active: bool,
}

/// Sweep specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepGrid {
    /// Operator splits to evaluate, as `(dwo, swo)` per PEA.
    pub splits: Vec<(usize, usize)>,
    /// DTP settings to evaluate.
    pub dtp: Vec<bool>,
    /// GEMM shapes `(M, K, N)`.
    pub shapes: Vec<(usize, usize, usize)>,
    /// Sparsity points applied to both operands (`ρ_w = ρ_x = ρ`).
    pub sparsities: Vec<f64>,
}

impl Default for SweepGrid {
    fn default() -> Self {
        SweepGrid {
            splits: vec![(4, 8), (8, 4)],
            dtp: vec![false, true],
            shapes: vec![(512, 512, 512), (2048, 2048, 2048)],
            sparsities: vec![0.0, 0.25, 0.5, 0.75, 0.9, 0.95, 1.0],
        }
    }
}

impl SweepGrid {
    /// Runs the sweep under `base` (clock/budget/tiling taken from it).
    ///
    /// # Panics
    ///
    /// Panics if any produced configuration violates the budget.
    pub fn run(&self, base: &PanaceaConfig) -> Vec<SweepPoint> {
        let mut out = Vec::new();
        for &(dwo, swo) in &self.splits {
            for &dtp in &self.dtp {
                let sim = PanaceaSim::new(PanaceaConfig {
                    dwo_per_pea: dwo,
                    swo_per_pea: swo,
                    dtp,
                    ..*base
                });
                for &(m, k, n) in &self.shapes {
                    for &rho in &self.sparsities {
                        let layer = LayerWork {
                            name: format!("sweep{m}x{k}x{n}"),
                            m,
                            k,
                            n,
                            count: 1,
                            w_planes: 2,
                            x_planes: 2,
                            rho_w: rho,
                            rho_x: rho,
                        };
                        let perf = sim.simulate(&layer);
                        let seconds = perf.cycles / (base.budget.clock_mhz * 1e6);
                        let joules = perf.energy.total_pj() * 1e-12;
                        out.push(SweepPoint {
                            dwo,
                            swo,
                            dtp,
                            shape: (m, k, n),
                            rho_w: rho,
                            rho_x: rho,
                            tops: layer.total_ops() / seconds / 1e12,
                            tops_per_w: layer.total_ops() / joules / 1e12,
                            util_dwo: perf.util_primary,
                            util_swo: perf.util_secondary,
                            dtp_active: perf.dtp_active,
                        });
                    }
                }
            }
        }
        out
    }

    /// The best configuration (by throughput) at a given sparsity point
    /// and shape, if present in the sweep results.
    pub fn best_at(
        points: &[SweepPoint],
        shape: (usize, usize, usize),
        rho: f64,
    ) -> Option<&SweepPoint> {
        points
            .iter()
            .filter(|p| p.shape == shape && (p.rho_x - rho).abs() < 1e-9)
            .max_by(|a, b| a.tops.total_cmp(&b.tops))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_grid() -> SweepGrid {
        SweepGrid {
            splits: vec![(4, 8), (8, 4)],
            dtp: vec![false, true],
            shapes: vec![(512, 512, 512)],
            sparsities: vec![0.0, 0.9],
        }
    }

    #[test]
    fn sweep_enumerates_full_grid() {
        let points = small_grid().run(&PanaceaConfig::default());
        assert_eq!(points.len(), (2 * 2) * 2);
    }

    #[test]
    fn throughput_monotone_in_sparsity_per_config() {
        let points = small_grid().run(&PanaceaConfig::default());
        for &(dwo, swo) in &[(4, 8), (8, 4)] {
            for &dtp in &[false, true] {
                let same: Vec<&SweepPoint> = points
                    .iter()
                    .filter(|p| p.dwo == dwo && p.swo == swo && p.dtp == dtp)
                    .collect();
                assert!(same[0].rho_x < same[1].rho_x);
                assert!(
                    same[1].tops >= same[0].tops,
                    "({dwo},{swo},dtp={dtp}): sparsity reduced throughput"
                );
            }
        }
    }

    #[test]
    fn best_at_prefers_dtp_at_high_sparsity() {
        let points = small_grid().run(&PanaceaConfig::default());
        let best = SweepGrid::best_at(&points, (512, 512, 512), 0.9).expect("point exists");
        assert!(best.dtp, "DTP should win at ρ = 0.9, got {best:?}");
    }

    #[test]
    fn dense_point_prefers_more_dwos() {
        let points = small_grid().run(&PanaceaConfig::default());
        let best = SweepGrid::best_at(&points, (512, 512, 512), 0.0).expect("point exists");
        assert_eq!(
            (best.dwo, best.swo),
            (8, 4),
            "dense GEMMs want the DWO-heavy split"
        );
    }
}
