//! Hardware configurations and the area model.
//!
//! Every design is constrained to the paper's iso-resource budget:
//! 3072 4b×4b multipliers (= 768 8b×8b), 192 KB of on-chip SRAM, and a
//! 256 bit/cycle DRAM interface, in 28 nm.

use serde::{Deserialize, Serialize};

use crate::energy::Tech28;

/// The shared iso-resource budget (paper §IV, Figs. 15–16 caption).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HardwareBudget {
    /// Total 4b×4b multipliers.
    pub multipliers_4b: usize,
    /// Total on-chip SRAM in bytes.
    pub sram_bytes: usize,
    /// DRAM interface width in bits per cycle.
    pub dram_bits_per_cycle: usize,
    /// Clock frequency in MHz (absolute scale only; ratios are
    /// frequency-independent).
    pub clock_mhz: f64,
    /// Energy constants.
    pub tech: Tech28,
}

impl Default for HardwareBudget {
    fn default() -> Self {
        HardwareBudget {
            multipliers_4b: 3072,
            sram_bytes: 192 * 1024,
            dram_bits_per_cycle: 256,
            clock_mhz: 400.0,
            tech: Tech28::default(),
        }
    }
}

/// Tiling parameters of Panacea's output-stationary dataflow (§III-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileConfig {
    /// Output-row tile (`TM = P·v`).
    pub tm: usize,
    /// Inner-dimension tile.
    pub tk: usize,
    /// Output-column tile (`TN = R·v`).
    pub tn: usize,
    /// Slice-vector length.
    pub v: usize,
}

impl Default for TileConfig {
    fn default() -> Self {
        TileConfig {
            tm: 64,
            tk: 32,
            tn: 64,
            v: 4,
        }
    }
}

/// Panacea configuration (Fig. 11).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PanaceaConfig {
    /// Number of processing element arrays.
    pub n_peas: usize,
    /// Dynamic workload operators per PEA (default 4, Fig. 13(a)).
    pub dwo_per_pea: usize,
    /// Static workload operators per PEA (default 8).
    pub swo_per_pea: usize,
    /// Double-tile processing enabled.
    pub dtp: bool,
    /// ZPM active during calibration (affects only which `ρ_x` the caller
    /// feeds in; recorded here for reporting).
    pub zpm: bool,
    /// DBS active during calibration (idem; adds shifter area/energy).
    pub dbs: bool,
    /// Tiling parameters.
    pub tile: TileConfig,
    /// Shared budget.
    pub budget: HardwareBudget,
    /// Fraction of SRAM dedicated to weights (rest split between
    /// activations and outputs).
    pub wmem_fraction: f64,
}

impl Default for PanaceaConfig {
    fn default() -> Self {
        PanaceaConfig {
            n_peas: 16,
            dwo_per_pea: 4,
            swo_per_pea: 8,
            dtp: true,
            zpm: true,
            dbs: true,
            tile: TileConfig::default(),
            budget: HardwareBudget::default(),
            wmem_fraction: 0.5,
        }
    }
}

impl PanaceaConfig {
    /// Total OPCs (each OPC = 16 4b×4b multipliers).
    pub fn total_opcs(&self) -> usize {
        self.n_peas * (self.dwo_per_pea + self.swo_per_pea)
    }

    /// Total 4b×4b multipliers implied by the operator pools.
    pub fn total_multipliers(&self) -> usize {
        self.total_opcs() * 16
    }

    /// Weight-memory capacity in bytes.
    pub fn wmem_bytes(&self) -> usize {
        (self.budget.sram_bytes as f64 * self.wmem_fraction) as usize
    }

    /// Checks the configuration respects the multiplier budget.
    pub fn validate(&self) -> Result<(), String> {
        if self.total_multipliers() > self.budget.multipliers_4b {
            return Err(format!(
                "{} multipliers exceed the {}-multiplier budget",
                self.total_multipliers(),
                self.budget.multipliers_4b
            ));
        }
        if self.tile.tm != self.n_peas * self.tile.v {
            return Err(format!(
                "TM = {} must equal P·v = {}",
                self.tile.tm,
                self.n_peas * self.tile.v
            ));
        }
        Ok(())
    }
}

/// Area constants (µm², 28 nm) for the Fig. 20 bookkeeping model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    /// One 4b×4b multiplier.
    pub mul4_um2: f64,
    /// One 8-bit adder.
    pub add8_um2: f64,
    /// One 32-bit shift-accumulator.
    pub sacc_um2: f64,
    /// SRAM per KB (including periphery).
    pub sram_um2_per_kb: f64,
    /// Buffer per KB (flip-flop based, denser logic but costlier per bit).
    pub buf_um2_per_kb: f64,
    /// Control overhead fraction of the datapath.
    pub control_overhead: f64,
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel {
            mul4_um2: 95.0,
            add8_um2: 30.0,
            sacc_um2: 260.0,
            sram_um2_per_kb: 6200.0,
            buf_um2_per_kb: 14000.0,
            control_overhead: 0.15,
        }
    }
}

impl AreaModel {
    /// Area of a design described by its module inventory, in mm².
    pub fn core_area_mm2(
        &self,
        muls: usize,
        adders: usize,
        saccs: usize,
        sram_kb: f64,
        buf_kb: f64,
    ) -> f64 {
        let datapath = muls as f64 * self.mul4_um2
            + adders as f64 * self.add8_um2
            + saccs as f64 * self.sacc_um2
            + sram_kb * self.sram_um2_per_kb
            + buf_kb * self.buf_um2_per_kb;
        datapath * (1.0 + self.control_overhead) / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_fits_budget() {
        let cfg = PanaceaConfig::default();
        cfg.validate().expect("default config must validate");
        assert_eq!(cfg.total_multipliers(), 3072);
    }

    #[test]
    fn alternate_8d4s_config_also_fits() {
        let cfg = PanaceaConfig {
            dwo_per_pea: 8,
            swo_per_pea: 4,
            ..PanaceaConfig::default()
        };
        cfg.validate().unwrap();
        assert_eq!(cfg.total_multipliers(), 3072);
    }

    #[test]
    fn oversized_config_rejected() {
        let cfg = PanaceaConfig {
            dwo_per_pea: 10,
            swo_per_pea: 10,
            ..PanaceaConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn mismatched_tiling_rejected() {
        let cfg = PanaceaConfig {
            n_peas: 8,
            ..PanaceaConfig::default()
        };
        assert!(cfg.validate().is_err(), "TM = 64 ≠ 8·4");
    }

    #[test]
    fn area_model_scales_with_inventory() {
        let a = AreaModel::default();
        let small = a.core_area_mm2(3072, 3072, 32, 192.0, 8.0);
        let big = a.core_area_mm2(6144, 6144, 64, 192.0, 16.0);
        assert!(big > small);
        // A 3072-multiplier, 192 KB design lands in the low-mm² range
        // typical of 28 nm edge accelerators.
        assert!((1.0..10.0).contains(&small), "area {small} mm²");
    }
}
