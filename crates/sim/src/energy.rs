//! 28 nm energy constants and itemized energy accounting.
//!
//! Values are representative post-layout numbers for a 28 nm CMOS node,
//! assembled from the public literature the paper builds on (Horowitz's
//! ISSCC'14 energy survey scaled from 45 nm, CACTI 7.0 for DRAM, and the
//! Sibia/LUTein papers' reported figures). Absolute joules differ from the
//! authors' proprietary library, but every design is priced with the same
//! constants, so the *ratios* the paper reports are preserved — which is
//! also the paper's own iso-resource argument.

use serde::{Deserialize, Serialize};

/// Per-operation energy constants (picojoules) for a 28 nm implementation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Tech28 {
    /// One 4b×4b multiply.
    pub mul4_pj: f64,
    /// One 8-bit add (partial-product reduction inside an OPC).
    pub add8_pj: f64,
    /// One 24/32-bit accumulate (S-ACC / systolic accumulator).
    pub acc32_pj: f64,
    /// One barrel-shift (S-ACC slice alignment, DBS shifting).
    pub shift_pj: f64,
    /// One RLE index decode.
    pub rle_decode_pj: f64,
    /// SRAM read, per bit (192 KB-class banks).
    pub sram_rd_pj_bit: f64,
    /// SRAM write, per bit.
    pub sram_wr_pj_bit: f64,
    /// Small local buffer (WBUF/psum/global buffer) access, per bit.
    pub buf_pj_bit: f64,
    /// External DRAM access, per bit (CACTI 7.0, LPDDR4-class).
    pub dram_pj_bit: f64,
    /// Post-processing (requantization + piecewise non-linearity), per
    /// output element.
    pub ppu_pj_elem: f64,
    /// Static/clock overhead as a fraction of dynamic energy.
    pub static_overhead: f64,
}

impl Default for Tech28 {
    fn default() -> Self {
        Tech28 {
            mul4_pj: 0.07,
            add8_pj: 0.012,
            acc32_pj: 0.045,
            shift_pj: 0.006,
            rle_decode_pj: 0.02,
            sram_rd_pj_bit: 0.014,
            sram_wr_pj_bit: 0.018,
            buf_pj_bit: 0.004,
            dram_pj_bit: 20.0,
            ppu_pj_elem: 0.8,
            static_overhead: 0.10,
        }
    }
}

/// Itemized energy of a simulated run (picojoules).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Multipliers + adders + shifters (the operator pools).
    pub compute_pj: f64,
    /// On-chip SRAM (WMEM/AMEM/OMEM) traffic.
    pub sram_pj: f64,
    /// Local buffers (WBUF, global activation buffer, psum buffers).
    pub buffer_pj: f64,
    /// External DRAM traffic.
    pub dram_pj: f64,
    /// Everything else (RLE decode, PPU, compensators bookkeeping).
    pub other_pj: f64,
    /// Static/clock overhead.
    pub static_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.compute_pj
            + self.sram_pj
            + self.buffer_pj
            + self.dram_pj
            + self.other_pj
            + self.static_pj
    }

    /// Element-wise sum.
    pub fn merged(&self, o: &EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            compute_pj: self.compute_pj + o.compute_pj,
            sram_pj: self.sram_pj + o.sram_pj,
            buffer_pj: self.buffer_pj + o.buffer_pj,
            dram_pj: self.dram_pj + o.dram_pj,
            other_pj: self.other_pj + o.other_pj,
            static_pj: self.static_pj + o.static_pj,
        }
    }

    /// Scales every component (e.g. by a layer's `count`).
    pub fn scaled(&self, f: f64) -> EnergyBreakdown {
        EnergyBreakdown {
            compute_pj: self.compute_pj * f,
            sram_pj: self.sram_pj * f,
            buffer_pj: self.buffer_pj * f,
            dram_pj: self.dram_pj * f,
            other_pj: self.other_pj * f,
            static_pj: self.static_pj * f,
        }
    }

    /// Applies the static overhead fraction to the dynamic total.
    pub fn with_static(mut self, overhead: f64) -> EnergyBreakdown {
        let dynamic =
            self.compute_pj + self.sram_pj + self.buffer_pj + self.dram_pj + self.other_pj;
        self.static_pj = dynamic * overhead;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_constants_are_ordered_sensibly() {
        let t = Tech28::default();
        // DRAM ≫ SRAM ≫ buffer, multiply ≫ add.
        assert!(t.dram_pj_bit > 100.0 * t.sram_rd_pj_bit);
        assert!(t.sram_rd_pj_bit > t.buf_pj_bit);
        assert!(t.mul4_pj > t.add8_pj);
    }

    #[test]
    fn total_includes_all_components() {
        let e = EnergyBreakdown {
            compute_pj: 1.0,
            sram_pj: 2.0,
            buffer_pj: 3.0,
            dram_pj: 4.0,
            other_pj: 5.0,
            static_pj: 6.0,
        };
        assert_eq!(e.total_pj(), 21.0);
    }

    #[test]
    fn merged_and_scaled_compose() {
        let e = EnergyBreakdown {
            compute_pj: 1.0,
            ..EnergyBreakdown::default()
        };
        let two = e.merged(&e);
        assert_eq!(two.compute_pj, 2.0);
        assert_eq!(two.scaled(3.0).compute_pj, 6.0);
    }

    #[test]
    fn static_overhead_is_fraction_of_dynamic() {
        let e = EnergyBreakdown {
            compute_pj: 50.0,
            sram_pj: 50.0,
            ..EnergyBreakdown::default()
        }
        .with_static(0.1);
        assert!((e.static_pj - 10.0).abs() < 1e-12);
    }
}
