//! Event-level functional execution of one AQS-GEMM tile on a PEA.
//!
//! The analytical model in [`crate::panacea`] prices *expected* workloads.
//! This module executes a real sliced tile: it enumerates the surviving
//! outer products exactly as the workload scheduler would, list-schedules
//! them cycle-by-cycle onto the DWO/SWO pools (LO×LO work may overflow to
//! idle DWOs when double-tile processing is active), runs the arithmetic,
//! and returns both the bit-exact result and the exact cycle count. It is
//! the ground truth the analytical model is validated against in tests,
//! and the engine behind the scheduling ablations.

use panacea_bitslice::{SlicedActivation, SlicedWeight, VECTOR_LEN};
use panacea_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// One outer-product job emitted by the workload scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OuterProductJob {
    /// Weight plane index.
    pub w_plane: usize,
    /// Activation plane index.
    pub x_plane: usize,
    /// Weight row group (4 rows starting at `4·mg`).
    pub mg: usize,
    /// Inner-dimension index.
    pub k: usize,
    /// Activation column group (4 columns starting at `4·ng`).
    pub ng: usize,
    /// `true` if the job must run on a DWO (touches an HO plane).
    pub dynamic: bool,
}

/// Cycle-by-cycle execution trace summary of one tile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecReport {
    /// Exact cycles to drain the schedule.
    pub cycles: u64,
    /// Jobs executed on the dynamic pool.
    pub dwo_jobs: u64,
    /// Jobs executed on the static pool (or overflowed to DWOs).
    pub swo_jobs: u64,
    /// Jobs skipped by compression.
    pub skipped: u64,
    /// Mean DWO occupancy over the drain interval.
    pub dwo_occupancy: f64,
    /// Mean SWO occupancy over the drain interval.
    pub swo_occupancy: f64,
}

/// A functional PEA executor with `n_dwo` dynamic and `n_swo` static
/// operators.
///
/// # Examples
///
/// ```
/// use panacea_bitslice::{SlicedActivation, SlicedWeight};
/// use panacea_quant::dbs::DbsType;
/// use panacea_sim::exec::PeaExecutor;
/// use panacea_tensor::Matrix;
///
/// let w = Matrix::from_fn(4, 8, |r, c| (r as i32 + c as i32) % 13 - 6);
/// let x = Matrix::from_fn(8, 4, |r, c| ((r * 31 + c) % 256) as i32);
/// let sw = SlicedWeight::from_int(&w, 1).unwrap();
/// let sx = SlicedActivation::from_uint(&x, 1, DbsType::Type1).unwrap();
/// let exec = PeaExecutor::new(4, 8, false);
/// let (out, report) = exec.run_tile(&sw, &sx, 5);
/// assert_eq!(out, w.gemm(&x).unwrap());
/// assert!(report.cycles > 0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct PeaExecutor {
    n_dwo: usize,
    n_swo: usize,
    /// DTP mode: static jobs may run on idle DWOs.
    dtp: bool,
}

impl PeaExecutor {
    /// Creates an executor.
    ///
    /// # Panics
    ///
    /// Panics if either pool is empty.
    pub fn new(n_dwo: usize, n_swo: usize, dtp: bool) -> Self {
        assert!(n_dwo > 0 && n_swo > 0, "operator pools must be non-empty");
        PeaExecutor { n_dwo, n_swo, dtp }
    }

    /// Enumerates the surviving outer-product jobs of a tile, exactly as
    /// the hardware's workload scheduler (IDXD + index matching) would.
    pub fn schedule(
        &self,
        w: &SlicedWeight,
        x: &SlicedActivation,
        r: u8,
    ) -> (Vec<OuterProductJob>, u64) {
        let m = w.plane(0).rows();
        let k_dim = w.plane(0).cols();
        let n = x.plane(0).cols();
        assert_eq!(k_dim, x.plane(0).rows(), "inner dimensions differ");
        assert_eq!(m % VECTOR_LEN, 0, "M must be a multiple of {VECTOR_LEN}");
        assert_eq!(n % VECTOR_LEN, 0, "N must be a multiple of {VECTOR_LEN}");
        let w_ho = w.num_planes() - 1;
        let x_ho = x.num_planes() - 1;
        let w_has_ho = w.num_planes() >= 2;
        let mut jobs = Vec::new();
        let mut skipped = 0u64;
        for i in 0..w.num_planes() {
            for j in 0..x.num_planes() {
                let dynamic = (i == w_ho && w_has_ho) || j == x_ho;
                for mg in 0..m / VECTOR_LEN {
                    for k in 0..k_dim {
                        let w_zero = w_has_ho
                            && i == w_ho
                            && (0..VECTOR_LEN)
                                .all(|d| w.plane(w_ho)[(mg * VECTOR_LEN + d, k)] == 0);
                        for ng in 0..n / VECTOR_LEN {
                            let x_comp = j == x_ho
                                && (0..VECTOR_LEN)
                                    .all(|d| x.plane(x_ho)[(k, ng * VECTOR_LEN + d)] == r);
                            if w_zero || x_comp {
                                skipped += 1;
                            } else {
                                jobs.push(OuterProductJob {
                                    w_plane: i,
                                    x_plane: j,
                                    mg,
                                    k,
                                    ng,
                                    dynamic,
                                });
                            }
                        }
                    }
                }
            }
        }
        (jobs, skipped)
    }

    /// Executes a tile: schedules, runs the arithmetic, applies the Eq. 6
    /// compensation, and reports exact cycles. Returns the product of the
    /// represented operands (bit-exact for DBS type-1).
    pub fn run_tile(
        &self,
        w: &SlicedWeight,
        x: &SlicedActivation,
        r: u8,
    ) -> (Matrix<i32>, ExecReport) {
        let (jobs, skipped) = self.schedule(w, x, r);
        let m = w.plane(0).rows();
        let n = x.plane(0).cols();
        let mut out = Matrix::<i32>::zeros(m, n);

        // Arithmetic (order-independent, so pool assignment is for timing
        // only).
        for job in &jobs {
            let wp = w.plane(job.w_plane);
            let xp = x.plane(job.x_plane);
            let scale = w.plane_weight(job.w_plane) * x.plane_weight(job.x_plane);
            for dm in 0..VECTOR_LEN {
                let wv = i32::from(wp[(job.mg * VECTOR_LEN + dm, job.k)]) * scale;
                if wv == 0 {
                    continue;
                }
                for dn in 0..VECTOR_LEN {
                    out[(job.mg * VECTOR_LEN + dm, job.ng * VECTOR_LEN + dn)] +=
                        wv * i32::from(xp[(job.k, job.ng * VECTOR_LEN + dn)]);
                }
            }
        }

        // Compensation (Eq. 6): per compressed x-HO vector, add r_eff·W.
        let x_ho = x.num_planes() - 1;
        let r_eff = i64::from(r) * i64::from(x.plane_weight(x_ho));
        if r_eff != 0 {
            let w_int = w.reconstruct();
            for k in 0..x.plane(0).rows() {
                for ng in 0..n / VECTOR_LEN {
                    let compressed =
                        (0..VECTOR_LEN).all(|d| x.plane(x_ho)[(k, ng * VECTOR_LEN + d)] == r);
                    if !compressed {
                        continue;
                    }
                    for mm in 0..m {
                        let add = r_eff * i64::from(w_int[(mm, k)]);
                        for dn in 0..VECTOR_LEN {
                            let cell = &mut out[(mm, ng * VECTOR_LEN + dn)];
                            *cell = (i64::from(*cell) + add) as i32;
                        }
                    }
                }
            }
        }

        // Timing: greedy list schedule. Each operator completes one job
        // per cycle; dynamic jobs only on DWOs; static jobs prefer SWOs
        // and may spill to idle DWOs when DTP is on.
        let dyn_jobs = jobs.iter().filter(|j| j.dynamic).count() as u64;
        let stat_jobs = jobs.len() as u64 - dyn_jobs;
        let cycles = self.drain_cycles(dyn_jobs, stat_jobs);
        let report = ExecReport {
            cycles,
            dwo_jobs: dyn_jobs,
            swo_jobs: stat_jobs,
            skipped,
            dwo_occupancy: if cycles == 0 {
                0.0
            } else {
                dyn_jobs as f64 / (cycles * self.n_dwo as u64) as f64
            },
            swo_occupancy: if cycles == 0 {
                0.0
            } else {
                stat_jobs as f64 / (cycles * self.n_swo as u64) as f64
            },
        };
        (out, report)
    }

    /// Exact drain time of `d` dynamic and `s` static jobs under the pool
    /// constraints (cycle-stepped, not closed-form, so odd remainders are
    /// handled exactly).
    pub fn drain_cycles(&self, mut d: u64, mut s: u64) -> u64 {
        let mut cycles = 0u64;
        while d > 0 || s > 0 {
            // DWOs take dynamic jobs first; with DTP, leftover DWO slots
            // take static jobs.
            let dwo_taken = d.min(self.n_dwo as u64);
            d -= dwo_taken;
            let mut free_dwo = self.n_dwo as u64 - dwo_taken;
            if !self.dtp {
                free_dwo = 0;
            }
            let swo_taken = s.min(self.n_swo as u64 + free_dwo);
            s -= swo_taken;
            cycles += 1;
        }
        cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panacea_quant::dbs::DbsType;
    use rand::Rng;

    fn operands(
        m: usize,
        k: usize,
        n: usize,
        ws: f64,
        xs: f64,
        r: u8,
        seed: u64,
    ) -> (SlicedWeight, SlicedActivation, Matrix<i32>, Matrix<i32>) {
        let mut rng = panacea_tensor::seeded_rng(seed);
        let w = Matrix::from_fn(m, k, |_, _| {
            if rng.gen::<f64>() < ws {
                rng.gen_range(-7i32..=7)
            } else {
                rng.gen_range(-64i32..64)
            }
        });
        let x = Matrix::from_fn(k, n, |_, _| {
            if rng.gen::<f64>() < xs {
                (i32::from(r) << 4) | rng.gen_range(0..16)
            } else {
                rng.gen_range(0i32..256)
            }
        });
        let sw = SlicedWeight::from_int(&w, 1).expect("weights");
        let sx = SlicedActivation::from_uint(&x, 1, DbsType::Type1).expect("acts");
        (sw, sx, w, x)
    }

    #[test]
    fn executes_bit_exact_across_sparsities() {
        for (i, &(ws, xs)) in [(0.0, 0.0), (0.6, 0.9), (1.0, 1.0)].iter().enumerate() {
            let (sw, sx, w, x) = operands(8, 16, 8, ws, xs, 11, 40 + i as u64);
            let exec = PeaExecutor::new(4, 8, true);
            let (out, _) = exec.run_tile(&sw, &sx, 11);
            assert_eq!(out, w.gemm(&x).unwrap(), "ws={ws} xs={xs}");
        }
    }

    #[test]
    fn cycle_count_matches_hand_schedule() {
        // 10 dynamic + 20 static on 4 DWO + 8 SWO, no DTP:
        // DWOs need ceil(10/4)=3 cycles, SWOs ceil(20/8)=3 → 3 cycles.
        let exec = PeaExecutor::new(4, 8, false);
        assert_eq!(exec.drain_cycles(10, 20), 3);
        // All-static with DTP: 24 jobs over 12 operators → 2 cycles.
        let exec = PeaExecutor::new(4, 8, true);
        assert_eq!(exec.drain_cycles(0, 24), 2);
        // Without DTP the same load needs 3 cycles on the 8 SWOs.
        let exec = PeaExecutor::new(4, 8, false);
        assert_eq!(exec.drain_cycles(0, 24), 3);
    }

    #[test]
    fn dtp_never_slows_a_schedule() {
        let with = PeaExecutor::new(4, 8, true);
        let without = PeaExecutor::new(4, 8, false);
        let mut rng = panacea_tensor::seeded_rng(9);
        for _ in 0..50 {
            let d = rng.gen_range(0u64..100);
            let s = rng.gen_range(0u64..100);
            assert!(
                with.drain_cycles(d, s) <= without.drain_cycles(d, s),
                "d={d} s={s}"
            );
        }
    }

    #[test]
    fn schedule_partitions_jobs_consistently() {
        let (sw, sx, ..) = operands(8, 12, 8, 0.5, 0.8, 7, 50);
        let exec = PeaExecutor::new(4, 8, false);
        let (jobs, skipped) = exec.schedule(&sw, &sx, 7);
        let total_pairs = 2 * 2 * 2 * 12 * 2; // planes² × m-groups × K × n-groups
        assert_eq!(jobs.len() as u64 + skipped, total_pairs as u64);
        // Every LO×LO job is static, everything else dynamic.
        for j in &jobs {
            let is_lo_lo = j.w_plane == 0 && j.x_plane == 0;
            assert_eq!(!j.dynamic, is_lo_lo, "{j:?}");
        }
    }

    #[test]
    fn exact_cycles_track_analytical_model_within_rounding() {
        // The analytical model uses expectations; on a concrete tile the
        // exact drain must agree within the per-pool ceiling slack.
        let (sw, sx, ..) = operands(4, 32, 64, 0.4, 0.9, 7, 51);
        let exec = PeaExecutor::new(4, 8, false);
        let (_, rep) = exec.run_tile(&sw, &sx, 7);
        let lower = (rep.dwo_jobs as f64 / 4.0)
            .max(rep.swo_jobs as f64 / 8.0)
            .floor() as u64;
        assert!(
            rep.cycles >= lower && rep.cycles <= lower + 2,
            "cycles {} outside [{lower}, {}]",
            rep.cycles,
            lower + 2
        );
    }

    #[test]
    fn occupancies_are_fractions_and_reflect_imbalance() {
        let (sw, sx, ..) = operands(8, 32, 32, 0.99, 0.99, 3, 52);
        let exec = PeaExecutor::new(4, 8, false);
        let (_, rep) = exec.run_tile(&sw, &sx, 3);
        assert!((0.0..=1.0).contains(&rep.dwo_occupancy));
        assert!((0.0..=1.0).contains(&rep.swo_occupancy));
        // At high sparsity the static pool dominates the drain.
        assert!(rep.swo_occupancy > rep.dwo_occupancy);
    }

    #[test]
    fn single_plane_weights_make_everything_static_but_x_ho() {
        let mut rng = panacea_tensor::seeded_rng(53);
        let w = Matrix::from_fn(4, 8, |_, _| rng.gen_range(-8i32..8));
        let x = Matrix::from_fn(8, 4, |_, _| rng.gen_range(0i32..256));
        let sw = SlicedWeight::from_int(&w, 0).expect("4-bit weights");
        let sx = SlicedActivation::from_uint(&x, 1, DbsType::Type1).expect("acts");
        let exec = PeaExecutor::new(4, 8, false);
        let (out, rep) = exec.run_tile(&sw, &sx, 0);
        assert_eq!(out, w.gemm(&x).unwrap());
        // Jobs: W×x_LO static, W×x_HO dynamic.
        assert_eq!(rep.dwo_jobs + rep.swo_jobs + rep.skipped, (2 * 8) as u64);
    }
}
