//! The Panacea accelerator performance model (paper §III-D, Fig. 11–12).
//!
//! Cycle model: each PEA owns a `v × TK` weight sub-tile (HO + LO planes)
//! and shares the `TK × TN` activation tile. Per activation sub-tile
//! (`R = TN/v` of them) and per `k`, the workload scheduler issues one
//! outer product per (weight-plane, activation-plane) pair that survives
//! compression: products touching an HO plane go to the **DWO** pool,
//! `LO×LO` products to the **SWO** pool. A tile completes when the slower
//! pool drains; with **DTP**, a second weight sub-tile's `LO×LO` work may
//! overflow onto idle DWOs. Compensators run in parallel with the operator
//! pools (the paper's "negligible overhead"), so they cost energy but not
//! cycles. Memory cycles follow the 256 bit/cycle DRAM budget with
//! double-buffered overlap: `tile latency = max(compute, memory)`.

use crate::arch::{AreaModel, PanaceaConfig};
use crate::energy::EnergyBreakdown;
use crate::workload::{LayerPerf, LayerWork};
use crate::Accelerator;

/// RLE index overhead per stored HO vector, amortized per element
/// (4 bits per 4-element vector).
const RLE_BITS_PER_ELEM: f64 = 1.0;

/// The Panacea simulator.
#[derive(Debug, Clone)]
pub struct PanaceaSim {
    cfg: PanaceaConfig,
    area: AreaModel,
}

impl PanaceaSim {
    /// Creates a simulator.
    ///
    /// # Panics
    ///
    /// Panics if the configuration violates the hardware budget.
    pub fn new(cfg: PanaceaConfig) -> Self {
        cfg.validate().expect("invalid Panacea configuration");
        PanaceaSim {
            cfg,
            area: AreaModel::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &PanaceaConfig {
        &self.cfg
    }

    /// Compressed weight bits per element (dense LO planes + RLE'd HO).
    /// Single-plane (4-bit) weights have no HO plane to compress and move
    /// as plain dense slices.
    fn w_bits_per_elem(&self, l: &LayerWork) -> f64 {
        if l.w_planes == 1 {
            4.0
        } else {
            4.0 * (l.w_planes as f64 - 1.0) + (4.0 + RLE_BITS_PER_ELEM) * (1.0 - l.rho_w)
        }
    }

    /// Compressed activation bits per element.
    fn x_bits_per_elem(&self, l: &LayerWork) -> f64 {
        4.0 * (l.x_planes as f64 - 1.0) + (4.0 + RLE_BITS_PER_ELEM) * (1.0 - l.rho_x)
    }

    /// Whether DTP can be enabled for this layer: WMEM must hold the
    /// weight slices of a `2·TM × K` tile (paper §III-D).
    fn dtp_enabled(&self, l: &LayerWork) -> bool {
        if !self.cfg.dtp {
            return false;
        }
        let bits = 2.0 * self.cfg.tile.tm as f64 * l.k as f64 * self.w_bits_per_elem(l);
        bits / 8.0 <= self.cfg.wmem_bytes() as f64
    }
}

impl Accelerator for PanaceaSim {
    fn name(&self) -> &str {
        "Panacea"
    }

    fn simulate(&self, l: &LayerWork) -> LayerPerf {
        l.validate().expect("invalid layer");
        let t = self.cfg.tile;
        let tech = self.cfg.budget.tech;
        let n_m_tiles = l.m.div_ceil(t.tm) as f64;
        let n_k_tiles = l.k.div_ceil(t.tk) as f64;
        let n_n_tiles = l.n.div_ceil(t.tn) as f64;
        let tiles = n_m_tiles * n_k_tiles * n_n_tiles;

        let pw = l.w_planes as f64;
        let px = l.x_planes as f64;
        // A compressible HO plane exists only when there are ≥ 2 planes;
        // a single-plane operand is all-dense (the 4-bit weight case of
        // Fig. 19, where every product is static work).
        let w_ho = l.w_planes >= 2;
        let x_ho = l.x_planes >= 2;
        let rho_w = if w_ho { l.rho_w } else { 0.0 };
        let rho_x = if x_ho { l.rho_x } else { 0.0 };
        let n_w_lo = pw - f64::from(w_ho);
        let n_x_lo = px - f64::from(x_ho);
        // Expected surviving outer products per (k, activation-sub-tile)
        // pair handled by one PEA: products touching a compressible HO
        // plane are dynamic (DWO), dense LO×LO products are static (SWO).
        let dwo_classes = f64::from(x_ho)
            * (n_w_lo * (1.0 - rho_x) + f64::from(w_ho) * (1.0 - rho_w) * (1.0 - rho_x))
            + f64::from(w_ho) * n_x_lo * (1.0 - rho_w);
        let swo_classes = n_w_lo * n_x_lo;
        // Exact number of (k, sub-tile) pairs each PEA sweeps for the whole
        // layer (partial tiles contribute only their real data).
        let pairs_per_pea = n_m_tiles * l.k as f64 * (l.n as f64 / t.v as f64).ceil();
        let dwo_ops = pairs_per_pea * dwo_classes;
        let swo_ops = pairs_per_pea * swo_classes;

        let n_dwo = self.cfg.dwo_per_pea as f64;
        let n_swo = self.cfg.swo_per_pea as f64;
        let dtp = self.dtp_enabled(l);
        let compute_cycles = if dtp {
            // LO×LO work of the second in-flight tile may run on DWOs; the
            // balanced schedule is limited by either the DWO-only work or
            // the overall pool.
            ((dwo_ops + swo_ops) / (n_dwo + n_swo)).max(dwo_ops / n_dwo)
        } else {
            (dwo_ops / n_dwo).max(swo_ops / n_swo)
        }
        // Per-tile scheduling/drain overhead.
        + tiles * 4.0;

        // --- DRAM traffic (bits). Weight m-tiles stream once each and are
        // reused across the full N sweep when they fit WMEM; otherwise
        // they are re-fetched for every output-column pass.
        let w_bpe = self.w_bits_per_elem(l);
        let x_bpe = self.x_bits_per_elem(l);
        let w_tile_fits = (if dtp { 2.0 } else { 1.0 }) * t.tm as f64 * l.k as f64 * w_bpe / 8.0
            <= self.cfg.wmem_bytes() as f64;
        let w_reload = if w_tile_fits { 1.0 } else { n_n_tiles };
        let amem_bytes = (self.cfg.budget.sram_bytes - self.cfg.wmem_bytes()) as f64 * 0.75;
        let x_fits = l.k as f64 * l.n as f64 * x_bpe / 8.0 <= amem_bytes;
        // DTP processes two weight tiles per activation load, halving the
        // number of activation re-fetch passes (§III-D).
        let x_reload = if x_fits {
            1.0
        } else {
            (n_m_tiles / if dtp { 2.0 } else { 1.0 }).ceil()
        };
        let w_bits = l.m as f64 * l.k as f64 * w_bpe * w_reload;
        let x_bits = l.k as f64 * l.n as f64 * x_bpe * x_reload;
        let out_bits = l.m as f64 * l.n as f64 * 8.0;
        let dram_bits = w_bits + x_bits + out_bits;
        let dram_cycles = dram_bits / self.cfg.budget.dram_bits_per_cycle as f64;

        let cycles = compute_cycles.max(dram_cycles);

        // --- Energy.
        let peas = self.cfg.n_peas as f64;
        let exec_ops = (dwo_ops + swo_ops) * peas;
        let compute_pj = exec_ops
            * (16.0 * tech.mul4_pj + 16.0 * tech.add8_pj + 16.0 * tech.shift_pj)
            // S-ACC accumulation of each 4×4 partial-sum tile.
            + exec_ops * 16.0 * tech.acc32_pj;
        // Compensators: per (PEA, m-tile, activation sub-tile): accumulate
        // the loaded weight slices of uncompressed activation positions,
        // then one 16-multiply outer product with the r-vector.
        let comp_acc = peas * pairs_per_pea * (1.0 - rho_x) * 4.0 * pw * tech.acc32_pj;
        let sub_tiles = n_m_tiles * (l.n as f64 / t.v as f64).ceil();
        let comp_mul = peas * sub_tiles * 16.0 * tech.mul4_pj;
        // Buffer traffic: per outer product, 4 weight + 4 activation slice
        // reads (4 bits each) and a 16-element 24-bit psum read-modify-write.
        let buffer_pj = exec_ops * ((8.0 * 4.0) + 16.0 * 24.0 * 2.0) * tech.buf_pj_bit;
        // SRAM traffic: tiles written once from DRAM and read once per use.
        let sram_rd_bits = w_bits + x_bits * (n_m_tiles / x_reload).max(1.0);
        let sram_wr_bits = w_bits + x_bits + out_bits;
        let sram_pj = sram_rd_bits * tech.sram_rd_pj_bit + sram_wr_bits * tech.sram_wr_pj_bit;
        // RLE decode: one per stored HO vector of both operands.
        let rle_entries = f64::from(w_ho) * l.m as f64 * l.k as f64 * (1.0 - rho_w) / t.v as f64
            + l.k as f64 * l.n as f64 * (1.0 - rho_x) / t.v as f64;
        let ppu = l.m as f64 * l.n as f64 * tech.ppu_pj_elem;
        let other_pj = rle_entries * tech.rle_decode_pj + ppu + comp_acc + comp_mul;
        let dram_pj = dram_bits * tech.dram_pj_bit;

        let energy = EnergyBreakdown {
            compute_pj,
            sram_pj,
            buffer_pj,
            dram_pj,
            other_pj,
            static_pj: 0.0,
        }
        .with_static(tech.static_overhead)
        .scaled(l.count as f64);

        let denom_d = cycles * n_dwo;
        let denom_s = cycles * n_swo;
        LayerPerf {
            cycles: cycles * l.count as f64,
            compute_cycles: compute_cycles * l.count as f64,
            energy,
            dram_bits: dram_bits * l.count as f64,
            sram_bits: (sram_rd_bits + sram_wr_bits) * l.count as f64,
            util_primary: if denom_d > 0.0 {
                (dwo_ops / denom_d).min(1.0)
            } else {
                0.0
            },
            util_secondary: if denom_s > 0.0 {
                (swo_ops / denom_s).min(1.0)
            } else {
                0.0
            },
            dtp_active: dtp,
        }
    }

    fn area_mm2(&self) -> f64 {
        let opcs = self.cfg.total_opcs();
        let muls = opcs * 16;
        let adders = opcs * 16;
        // 2 S-ACCs + 2 compensators (4 small S-ACCs each) per PEA, plus
        // DBS shifters.
        let saccs = self.cfg.n_peas * (2 + 2 * 4) + if self.cfg.dbs { self.cfg.n_peas } else { 0 };
        let sram_kb = self.cfg.budget.sram_bytes as f64 / 1024.0;
        // WBUF + global activation buffer + psum buffers (doubled by DTP).
        let buf_kb = if self.cfg.dtp { 12.0 } else { 8.0 };
        self.area
            .core_area_mm2(muls, adders, saccs, sram_kb, buf_kb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(m: usize, k: usize, n: usize, rho_w: f64, rho_x: f64) -> LayerWork {
        LayerWork {
            name: "l".into(),
            m,
            k,
            n,
            count: 1,
            w_planes: 2,
            x_planes: 2,
            rho_w,
            rho_x,
        }
    }

    fn sim(dtp: bool) -> PanaceaSim {
        PanaceaSim::new(PanaceaConfig {
            dtp,
            ..PanaceaConfig::default()
        })
    }

    #[test]
    fn sparsity_reduces_cycles_and_energy() {
        let s = sim(false);
        let dense = s.simulate(&layer(768, 768, 768, 0.0, 0.0));
        let sparse = s.simulate(&layer(768, 768, 768, 0.5, 0.95));
        assert!(sparse.cycles < dense.cycles);
        assert!(sparse.energy.total_pj() < dense.energy.total_pj());
        assert!(sparse.dram_bits < dense.dram_bits);
    }

    #[test]
    fn dtp_helps_when_swo_bound() {
        // High sparsity on both operands makes the SWO pool the bottleneck
        // (Fig. 13); DTP rebalances LO×LO work onto idle DWOs.
        let no_dtp = sim(false).simulate(&layer(512, 512, 512, 0.95, 0.95));
        let dtp = sim(true).simulate(&layer(512, 512, 512, 0.95, 0.95));
        assert!(
            dtp.cycles < no_dtp.cycles,
            "DTP {} should beat no-DTP {}",
            dtp.cycles,
            no_dtp.cycles
        );
        assert!(dtp.dtp_active);
    }

    #[test]
    fn dtp_disabled_for_huge_weight_tiles() {
        // A 2·TM×K compressed tile beyond WMEM capacity disables DTP.
        let s = sim(true);
        let big = s.simulate(&layer(1024, 16384, 512, 0.0, 0.5));
        assert!(!big.dtp_active, "oversized tile must disable DTP");
        let small = s.simulate(&layer(1024, 512, 512, 0.0, 0.5));
        assert!(small.dtp_active);
    }

    #[test]
    fn compute_bound_dense_memory_bound_tiny() {
        let s = sim(false);
        // Large dense layer: compute dominates.
        let dense = s.simulate(&layer(2048, 2048, 2048, 0.0, 0.0));
        assert!(dense.util_primary > 0.5);
        // Skinny layer with huge K: DRAM dominates, utilization collapses.
        let skinny = s.simulate(&layer(64, 8192, 4, 0.0, 0.0));
        assert!(skinny.cycles > 0.0);
        assert!(skinny.util_primary < dense.util_primary);
    }

    #[test]
    fn utilizations_are_fractions() {
        let s = sim(true);
        for &(rw, rx) in &[(0.0, 0.0), (0.5, 0.9), (1.0, 1.0)] {
            let p = s.simulate(&layer(256, 256, 256, rw, rx));
            assert!((0.0..=1.0).contains(&p.util_primary), "rw={rw} rx={rx}");
            assert!((0.0..=1.0).contains(&p.util_secondary));
        }
    }

    #[test]
    fn count_scales_linearly() {
        let s = sim(true);
        let one = s.simulate(&layer(256, 256, 256, 0.3, 0.8));
        let mut l = layer(256, 256, 256, 0.3, 0.8);
        l.count = 12;
        let twelve = s.simulate(&l);
        assert!((twelve.cycles / one.cycles - 12.0).abs() < 1e-9);
        assert!((twelve.energy.total_pj() / one.energy.total_pj() - 12.0).abs() < 1e-6);
    }

    #[test]
    fn area_grows_with_dtp_buffers() {
        let with = sim(true).area_mm2();
        let without = sim(false).area_mm2();
        assert!(with > without);
        assert!((1.0..12.0).contains(&with), "area {with} mm²");
    }

    #[test]
    fn mixed_precision_planes_increase_work() {
        let s = sim(false);
        let w2 = s.simulate(&layer(512, 512, 512, 0.5, 0.9));
        let mut l3 = layer(512, 512, 512, 0.5, 0.9);
        l3.w_planes = 3; // 10-bit weights
        let w3 = s.simulate(&l3);
        assert!(w3.cycles > w2.cycles);
    }
}
