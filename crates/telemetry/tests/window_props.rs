//! Property tests for sliding-window metrics: rotation boundaries,
//! record-during-rotate determinism, and empty-window quantiles,
//! driven through the deterministic explicit-elapsed hooks so no test
//! depends on the wall clock.

use std::time::Duration;

use panacea_telemetry::{Histogram, WindowConfig, WindowedCounter, WindowedHistogram};
use proptest::collection::vec;
use proptest::prelude::*;

const BUCKET_MS: u64 = 100;
const RING: usize = 16;

fn cfg() -> WindowConfig {
    WindowConfig {
        bucket: Duration::from_millis(BUCKET_MS),
        buckets: RING,
    }
}

/// Observes (rotates) at the start of epoch `e`, then records; the
/// per-epoch observation mirrors a production metrics poller keeping
/// boundary fidelity at bucket granularity.
fn replay(h: &WindowedHistogram, per_epoch: &[Vec<u64>]) {
    for (e, samples) in per_epoch.iter().enumerate() {
        h.window_at(
            Duration::from_millis(BUCKET_MS),
            Duration::from_millis(e as u64 * BUCKET_MS),
        );
        for &v in samples {
            h.record(v);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A window of `w` buckets queried at the last replayed epoch sees
    /// exactly the samples of the last `w` epochs — rotation boundaries
    /// neither leak old samples in nor drop in-window ones.
    #[test]
    fn window_matches_exact_epoch_slice(
        per_epoch in vec(vec(0u64..1_000_000, 0..40), 1..12),
        w in 1usize..12,
    ) {
        let h = WindowedHistogram::new(cfg());
        replay(&h, &per_epoch);
        let last = per_epoch.len() - 1;
        let got = h.window_at(
            Duration::from_millis(w as u64 * BUCKET_MS),
            Duration::from_millis(last as u64 * BUCKET_MS + BUCKET_MS / 2),
        );
        let reference = Histogram::with_shards(1);
        for samples in per_epoch.iter().skip(per_epoch.len().saturating_sub(w)) {
            for &v in samples {
                reference.record(v);
            }
        }
        let expect = reference.snapshot();
        prop_assert_eq!(got.buckets, expect.buckets);
        prop_assert_eq!(got.count, expect.count);
        prop_assert_eq!(got.sum, expect.sum);
        // The windowed max is re-estimated from bucket bounds: exact
        // when the all-time max is in-window, bracketed otherwise.
        if expect.count > 0 {
            prop_assert!(got.max >= expect.max);
            prop_assert!(got.max <= expect.max + expect.max / 32 + 1);
        } else {
            prop_assert_eq!(got.max, 0);
        }
    }

    /// Concurrent recording racing window rotations never loses or
    /// duplicates a sample: once writers are joined, the cumulative
    /// view equals sequential recording and a full-ring window equals
    /// everything still in the ring.
    #[test]
    fn record_during_rotate_is_deterministic(
        samples in vec(0u64..10_000_000, 8..200),
        threads in 2usize..5,
    ) {
        let h = std::sync::Arc::new(WindowedHistogram::new(cfg()));
        let chunks: Vec<Vec<u64>> = samples
            .chunks(samples.len().div_ceil(threads))
            .map(<[u64]>::to_vec)
            .collect();
        let handles: Vec<_> = chunks
            .into_iter()
            .enumerate()
            .map(|(t, chunk)| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for (i, v) in chunk.into_iter().enumerate() {
                        h.record(v);
                        if i % 7 == 0 {
                            // Rotate mid-stream from racing threads.
                            h.window_at(
                                Duration::from_millis(BUCKET_MS),
                                Duration::from_millis(((t * 13 + i) as u64) * BUCKET_MS),
                            );
                        }
                    }
                })
            })
            .collect();
        for th in handles {
            th.join().unwrap();
        }
        let sequential = Histogram::with_shards(1);
        for &v in &samples {
            sequential.record(v);
        }
        // No sample was lost to rotation: the cumulative view is
        // bit-identical to sequential recording.
        prop_assert_eq!(h.total().buckets, sequential.snapshot().buckets);
        prop_assert_eq!(h.total().count, samples.len() as u64);
    }

    /// Epochs with no samples serve all-zero windows whose quantiles
    /// are 0 — never stale data, never a panic.
    #[test]
    fn empty_windows_have_zero_quantiles(
        samples in vec(0u64..1_000_000, 1..50),
        idle_epochs in 1u64..100,
        w in 1usize..12,
    ) {
        let h = WindowedHistogram::new(cfg());
        for &v in &samples {
            h.record(v);
        }
        // Observe now, then jump far past the ring: every in-window
        // epoch is idle.
        h.window_at(Duration::from_millis(BUCKET_MS), Duration::ZERO);
        let far = Duration::from_millis((RING as u64 + idle_epochs) * BUCKET_MS);
        let win = h.window_at(Duration::from_millis(w as u64 * BUCKET_MS), far);
        prop_assert!(win.is_empty());
        prop_assert_eq!(win.count, 0);
        prop_assert_eq!(win.max, 0);
        for q in [0.01, 0.5, 0.99, 1.0] {
            prop_assert_eq!(win.quantile(q), 0);
        }
        // The cumulative view is untouched by idleness.
        prop_assert_eq!(h.total().count, samples.len() as u64);
    }

    /// Windowed counters agree with an exact per-epoch replay.
    #[test]
    fn counter_windows_match_exact_epoch_slice(
        per_epoch in vec(0u64..1_000, 1..12),
        w in 1usize..12,
    ) {
        let c = WindowedCounter::new(cfg());
        for (e, &n) in per_epoch.iter().enumerate() {
            c.window_at(
                Duration::from_millis(BUCKET_MS),
                Duration::from_millis(e as u64 * BUCKET_MS),
            );
            c.add(n);
        }
        let last = per_epoch.len() - 1;
        let got = c.window_at(
            Duration::from_millis(w as u64 * BUCKET_MS),
            Duration::from_millis(last as u64 * BUCKET_MS + BUCKET_MS / 2),
        );
        let expect: u64 = per_epoch
            .iter()
            .skip(per_epoch.len().saturating_sub(w))
            .sum();
        prop_assert_eq!(got, expect);
        prop_assert_eq!(c.total(), per_epoch.iter().sum::<u64>());
    }
}
