//! Property tests: histogram quantiles against exact sorted-vector
//! quantiles across adversarial distributions, and determinism of
//! concurrent recording + snapshot merging.

use panacea_telemetry::{Histogram, HistogramSnapshot, SUB_BUCKETS};
use proptest::collection::vec;
use proptest::prelude::*;

/// The exact order statistic the histogram's `quantile(q)` brackets:
/// rank `ceil(q·n)` (1-based) of the sorted samples.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Asserts the histogram estimate brackets the exact quantile with the
/// documented log-linear error bound: `exact ≤ est ≤ exact + exact/32 + 1`.
fn check_quantiles(samples: &[u64]) {
    let h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    let snap = h.snapshot();
    assert_eq!(snap.count, samples.len() as u64);
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    assert_eq!(snap.max, *sorted.last().unwrap());
    for q in [0.01, 0.25, 0.50, 0.90, 0.99, 1.0] {
        let exact = exact_quantile(&sorted, q);
        let est = snap.quantile(q);
        assert!(est >= exact, "q={q}: est {est} < exact {exact}");
        assert!(
            est <= exact.saturating_add(exact / SUB_BUCKETS).saturating_add(1),
            "q={q}: est {est} too far above exact {exact}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quantiles_bracket_exact_uniform(samples in vec(0u64..100_000, 1..400)) {
        check_quantiles(&samples);
    }

    #[test]
    fn quantiles_bracket_exact_heavy_tail(
        body in vec(0u64..200, 1..200),
        tail in vec(1_000_000_000u64..4_000_000_000_000, 0..20),
    ) {
        let mut samples = body;
        samples.extend_from_slice(&tail);
        check_quantiles(&samples);
    }

    #[test]
    fn quantiles_bracket_exact_bucket_boundaries(
        tiers in vec(1u32..40, 1..100),
        offsets in vec(0u64..SUB_BUCKETS, 1..100),
    ) {
        // Values of the form (32 + offset) << tier sit exactly on bucket
        // lower bounds — the adversarial case for an upper-bound report.
        let samples: Vec<u64> = tiers
            .iter()
            .zip(offsets.iter().cycle())
            .map(|(&t, &off)| (SUB_BUCKETS + off) << t)
            .collect();
        check_quantiles(&samples);
    }

    #[test]
    fn single_sample_is_reported_within_bound(v in 0u64..u64::MAX) {
        check_quantiles(&[v]);
    }

    #[test]
    fn merge_matches_combined_recording(
        left in vec(0u64..1_000_000, 0..200),
        right in vec(0u64..1_000_000, 0..200),
    ) {
        let a = Histogram::new();
        let b = Histogram::new();
        let combined = Histogram::new();
        for &v in &left {
            a.record(v);
            combined.record(v);
        }
        for &v in &right {
            b.record(v);
            combined.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        prop_assert_eq!(merged, combined.snapshot());
    }

    #[test]
    fn concurrent_recording_matches_sequential(
        samples in vec(0u64..10_000_000, 8..256),
        threads in 2usize..6,
    ) {
        let shared = std::sync::Arc::new(Histogram::new());
        let chunks: Vec<Vec<u64>> = samples
            .chunks(samples.len().div_ceil(threads))
            .map(<[u64]>::to_vec)
            .collect();
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                let h = shared.clone();
                std::thread::spawn(move || {
                    for v in chunk {
                        h.record(v);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let sequential = Histogram::with_shards(1);
        for &v in &samples {
            sequential.record(v);
        }
        prop_assert_eq!(shared.snapshot(), sequential.snapshot());
    }
}

#[test]
fn merging_empty_snapshots_is_identity() {
    let h = Histogram::new();
    h.record(42);
    let mut snap = h.snapshot();
    snap.merge(&HistogramSnapshot::empty());
    assert_eq!(snap, h.snapshot());
}
