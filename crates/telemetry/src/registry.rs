//! A dimensional metric registry keyed by (model, verb, stage).
//!
//! The serving stack's aggregate metrics answer "how is the process
//! doing"; operators also need "how is *model X's decode path* doing,
//! right now". [`MetricRegistry`] keys windowed latency histograms and
//! outcome counters by [`MetricKey`] — `(model, verb, stage)` — so
//! per-model, per-verb latency and error/shed rates are first-class.
//!
//! The registry is a cheap [`Clone`] handle over shared state: one
//! instance is created at the gateway and threaded down through the
//! router, runtime, session manager, and decode batcher, each layer
//! recording under its own stage name. Cells are created on first use
//! and live for the registry's lifetime (the dimension space is small:
//! models × a handful of verbs × a handful of stages).
//!
//! Hot paths should resolve a cell once ([`MetricRegistry::cell`], one
//! mutex + hash lookup) and hold the returned [`Arc`] where the key is
//! static; per-request resolution is still far cheaper than the GEMM
//! work behind every request.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::histogram::HistogramSnapshot;
use crate::window::{WindowConfig, WindowedCounter, WindowedHistogram};

/// The gateway-facing request stage — the one SLO targets evaluate.
pub const STAGE_REQUEST: &str = "request";

/// A metric dimension: which model, through which wire verb, at which
/// pipeline stage.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MetricKey {
    /// Model name ("-" where no model applies).
    pub model: String,
    /// Wire verb or internal path ("infer", "decode", "batch", …).
    pub verb: String,
    /// Pipeline stage ("request", "execute", "step", "fused_pass", …).
    pub stage: String,
}

impl MetricKey {
    /// Builds a key from string-likes.
    pub fn new(
        model: impl Into<String>,
        verb: impl Into<String>,
        stage: impl Into<String>,
    ) -> Self {
        MetricKey {
            model: model.into(),
            verb: verb.into(),
            stage: stage.into(),
        }
    }
}

/// One dimension's metrics: a windowed latency histogram plus windowed
/// ok/error/shed outcome counters.
#[derive(Debug)]
pub struct DimCell {
    latency: WindowedHistogram,
    ok: WindowedCounter,
    error: WindowedCounter,
    shed: WindowedCounter,
}

impl DimCell {
    fn new(config: WindowConfig) -> Self {
        DimCell {
            latency: WindowedHistogram::new(config),
            ok: WindowedCounter::new(config),
            error: WindowedCounter::new(config),
            shed: WindowedCounter::new(config),
        }
    }

    /// Records one latency sample (lock-free).
    pub fn record_latency(&self, d: Duration) {
        self.latency.record_duration(d);
    }

    /// Counts one successful outcome.
    pub fn record_ok(&self) {
        self.ok.add(1);
    }

    /// Counts one failed outcome (excluding sheds).
    pub fn record_error(&self) {
        self.error.add(1);
    }

    /// Counts one shed (overload-rejected) outcome.
    pub fn record_shed(&self) {
        self.shed.add(1);
    }

    /// The windowed latency histogram.
    pub fn latency(&self) -> &WindowedHistogram {
        &self.latency
    }

    /// A point-in-time view over roughly the last `window`.
    pub fn window(&self, window: Duration) -> DimWindow {
        DimWindow {
            latency: self.latency.window(window),
            ok: self.ok.window(window),
            error: self.error.window(window),
            shed: self.shed.window(window),
        }
    }
}

/// A merged windowed view of one or more dimensions.
#[derive(Debug, Clone)]
pub struct DimWindow {
    /// Windowed latency samples (nanoseconds).
    pub latency: HistogramSnapshot,
    /// Successful outcomes in the window.
    pub ok: u64,
    /// Failed outcomes in the window.
    pub error: u64,
    /// Shed outcomes in the window.
    pub shed: u64,
}

impl Default for DimWindow {
    fn default() -> Self {
        DimWindow::empty()
    }
}

impl DimWindow {
    /// An all-zero window.
    pub fn empty() -> Self {
        DimWindow {
            latency: HistogramSnapshot::empty(),
            ok: 0,
            error: 0,
            shed: 0,
        }
    }

    /// Folds another window into this one.
    pub fn merge(&mut self, other: &DimWindow) {
        self.latency.merge(&other.latency);
        self.ok += other.ok;
        self.error += other.error;
        self.shed += other.shed;
    }

    /// Total outcomes (ok + error + shed).
    pub fn outcomes(&self) -> u64 {
        self.ok + self.error + self.shed
    }

    /// Errors over total outcomes; 0 when nothing happened.
    pub fn error_rate(&self) -> f64 {
        if self.outcomes() == 0 {
            0.0
        } else {
            self.error as f64 / self.outcomes() as f64
        }
    }

    /// Sheds over total outcomes; 0 when nothing happened.
    pub fn shed_rate(&self) -> f64 {
        if self.outcomes() == 0 {
            0.0
        } else {
            self.shed as f64 / self.outcomes() as f64
        }
    }
}

#[derive(Debug)]
struct Inner {
    config: WindowConfig,
    cells: Mutex<HashMap<MetricKey, Arc<DimCell>>>,
}

/// Shared, cloneable registry of per-dimension windowed metrics.
#[derive(Debug, Clone)]
pub struct MetricRegistry {
    inner: Arc<Inner>,
}

impl Default for MetricRegistry {
    fn default() -> Self {
        MetricRegistry::new(WindowConfig::default())
    }
}

impl MetricRegistry {
    /// A registry whose cells use the given ring geometry.
    pub fn new(config: WindowConfig) -> Self {
        MetricRegistry {
            inner: Arc::new(Inner {
                config,
                cells: Mutex::new(HashMap::new()),
            }),
        }
    }

    /// Resolves (creating on first use) the cell for a dimension.
    pub fn cell(&self, model: &str, verb: &str, stage: &str) -> Arc<DimCell> {
        let mut cells = self.inner.cells.lock().expect("registry poisoned");
        if let Some(cell) = cells.get(&MetricKey::new(model, verb, stage)) {
            return Arc::clone(cell);
        }
        let cell = Arc::new(DimCell::new(self.inner.config));
        cells.insert(MetricKey::new(model, verb, stage), Arc::clone(&cell));
        cell
    }

    /// All registered dimensions, sorted.
    pub fn keys(&self) -> Vec<MetricKey> {
        let cells = self.inner.cells.lock().expect("registry poisoned");
        let mut keys: Vec<MetricKey> = cells.keys().cloned().collect();
        keys.sort();
        keys
    }

    /// Windowed views of every dimension, sorted by key.
    pub fn windows(&self, window: Duration) -> Vec<(MetricKey, DimWindow)> {
        let cells: Vec<(MetricKey, Arc<DimCell>)> = {
            let cells = self.inner.cells.lock().expect("registry poisoned");
            cells
                .iter()
                .map(|(k, v)| (k.clone(), Arc::clone(v)))
                .collect()
        };
        let mut out: Vec<(MetricKey, DimWindow)> = cells
            .into_iter()
            .map(|(k, cell)| (k, cell.window(window)))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Merged window over every dimension matching the filter (`None`
    /// matches any value for that axis).
    pub fn window_for(
        &self,
        model: Option<&str>,
        verb: Option<&str>,
        stage: Option<&str>,
        window: Duration,
    ) -> DimWindow {
        let mut merged = DimWindow::empty();
        for (key, w) in self.windows(window) {
            let matches = model.is_none_or(|m| m == key.model)
                && verb.is_none_or(|v| v == key.verb)
                && stage.is_none_or(|s| s == key.stage);
            if matches {
                merged.merge(&w);
            }
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_are_shared_per_key() {
        let reg = MetricRegistry::default();
        let a = reg.cell("m", "infer", STAGE_REQUEST);
        let b = reg.cell("m", "infer", STAGE_REQUEST);
        assert!(Arc::ptr_eq(&a, &b));
        let c = reg.cell("m", "decode", STAGE_REQUEST);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(reg.keys().len(), 2);
    }

    #[test]
    fn window_for_merges_matching_dims() {
        let reg = MetricRegistry::default();
        let infer = reg.cell("m", "infer", STAGE_REQUEST);
        infer.record_latency(Duration::from_micros(100));
        infer.record_ok();
        let decode = reg.cell("m", "decode", STAGE_REQUEST);
        decode.record_latency(Duration::from_micros(300));
        decode.record_ok();
        decode.record_shed();
        let other = reg.cell("n", "infer", STAGE_REQUEST);
        other.record_error();

        let w = Duration::from_secs(10);
        let all = reg.window_for(None, None, Some(STAGE_REQUEST), w);
        assert_eq!(all.latency.count, 2);
        assert_eq!((all.ok, all.error, all.shed), (2, 1, 1));
        assert!((all.shed_rate() - 0.25).abs() < 1e-9);
        assert!((all.error_rate() - 0.25).abs() < 1e-9);

        let m_only = reg.window_for(Some("m"), None, None, w);
        assert_eq!(m_only.outcomes(), 3);
        let decode_only = reg.window_for(Some("m"), Some("decode"), None, w);
        assert_eq!(decode_only.latency.count, 1);
        assert!(decode_only.latency.p99() >= 300_000);

        let ghost = reg.window_for(Some("ghost"), None, None, w);
        assert_eq!(ghost.outcomes(), 0);
        assert_eq!(ghost.latency.p99(), 0);
        assert_eq!(ghost.error_rate(), 0.0);
    }
}
