//! Cross-thread trace context propagation.
//!
//! A [`TraceBuilder`](crate::TraceBuilder) is request-local by design —
//! recording a span touches no shared state — which means it cannot
//! leave the thread that owns it. But the serving stack executes most
//! of a request's work on *other* threads: the runtime's batch workers
//! and the decode batcher both pick jobs off a queue and answer over a
//! channel. A [`TraceContext`] is the piece of a trace that crosses
//! that boundary: the trace id, the builder span to parent under, the
//! trace's start instant (so remote offsets land on the same timeline),
//! and a handle to the owning [`Tracer`](crate::Tracer)'s span
//! collector.
//!
//! Workers call [`TraceContext::record_span`] (or
//! [`record_span_linked`](TraceContext::record_span_linked) for spans
//! shared across requests, like a fused decode pass) *before* sending
//! their response — the requesting thread is blocked on that channel,
//! so by the time `Tracer::finish` runs, every remote span is already
//! in the collector and gets merged into the finished trace. Spans
//! recorded for a trace that already finished (for example a request
//! shed while its job was still queued) are dropped: the collector
//! entry only exists between [`Tracer::context`](crate::Tracer::context)
//! and `finish`.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A span recorded off-thread, waiting to be merged into its trace at
/// finish time. Offsets are microseconds from the trace's start.
#[derive(Debug, Clone)]
pub(crate) struct RemoteSpan {
    pub(crate) stage: &'static str,
    pub(crate) parent: u64,
    pub(crate) start_us: u64,
    pub(crate) dur_us: u64,
    pub(crate) links: Vec<u64>,
}

/// Pending remote spans keyed by trace id. An entry exists only while
/// its trace is in flight *and* has handed out a context.
pub(crate) type SpanCollector = Arc<Mutex<HashMap<u64, Vec<RemoteSpan>>>>;

/// The portable slice of an in-flight trace: everything a worker thread
/// needs to record spans that end up parented inside the request's span
/// tree. Cheap to clone; send it along with the queued job.
#[derive(Debug, Clone)]
pub struct TraceContext {
    trace_id: u64,
    parent_span: u64,
    origin: Instant,
    collector: SpanCollector,
}

impl TraceContext {
    pub(crate) fn new(
        trace_id: u64,
        parent_span: u64,
        origin: Instant,
        collector: SpanCollector,
    ) -> Self {
        TraceContext {
            trace_id,
            parent_span,
            origin,
            collector,
        }
    }

    /// The id of the trace this context belongs to.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// The builder span remote spans will be parented under.
    pub fn parent_span(&self) -> u64 {
        self.parent_span
    }

    fn offset_us(&self, at: Instant) -> u64 {
        u64::try_from(at.saturating_duration_since(self.origin).as_micros()).unwrap_or(u64::MAX)
    }

    /// Records one remote span covering `start..end` on the trace's
    /// timeline. Dropped silently if the trace already finished.
    pub fn record_span(&self, stage: &'static str, start: Instant, end: Instant) {
        self.record_span_linked(stage, start, end, Vec::new());
    }

    /// Like [`record_span`](Self::record_span), with span links to
    /// other traces — used when one unit of work (a fused decode pass)
    /// serves several requests at once: each request's span links to
    /// every other participant's trace id.
    pub fn record_span_linked(
        &self,
        stage: &'static str,
        start: Instant,
        end: Instant,
        links: Vec<u64>,
    ) {
        let start_us = self.offset_us(start);
        let end_us = self.offset_us(end);
        let span = RemoteSpan {
            stage,
            parent: self.parent_span,
            start_us,
            dur_us: end_us.saturating_sub(start_us),
            links,
        };
        let mut pending = self.collector.lock().expect("span collector poisoned");
        if let Some(spans) = pending.get_mut(&self.trace_id) {
            spans.push(span);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceConfig, Tracer, ROOT_SPAN};
    use std::time::Duration;

    #[test]
    fn remote_spans_merge_into_the_finished_trace() {
        let tracer = Tracer::new(TraceConfig {
            slow_threshold: Duration::ZERO,
            ..TraceConfig::default()
        });
        let mut tb = tracer.begin("decode");
        let execute = tb.start_span("execute", ROOT_SPAN);
        let ctx = tracer.context(&tb, execute);
        let start = Instant::now();
        let worker = std::thread::spawn(move || {
            let end = Instant::now();
            ctx.record_span("queue_wait", start, end);
            ctx.record_span_linked("decode_pass", end, Instant::now(), vec![41, 43]);
        });
        worker.join().expect("worker");
        tb.end_span(execute);
        tracer.finish(tb);

        let trace = &tracer.slow(1)[0];
        let stages: Vec<&str> = trace.spans.iter().map(|s| s.stage).collect();
        assert_eq!(
            stages,
            vec!["decode", "execute", "queue_wait", "decode_pass"]
        );
        for span in &trace.spans[2..] {
            assert_eq!(span.parent, Some(execute), "remote span lost its parent");
            assert!(span.id > execute);
            assert!(span.start_us <= trace.total_us);
            assert!(span.dur_us <= trace.total_us);
        }
        assert_eq!(trace.spans[3].links, vec![41, 43]);
        assert!(trace.spans[2].links.is_empty());
    }

    #[test]
    fn spans_for_finished_traces_are_dropped_not_leaked() {
        let tracer = Tracer::new(TraceConfig {
            slow_threshold: Duration::ZERO,
            ..TraceConfig::default()
        });
        let mut tb = tracer.begin("infer");
        let execute = tb.start_span("execute", ROOT_SPAN);
        let ctx = tracer.context(&tb, execute);
        tb.end_span(execute);
        tracer.finish(tb);

        // A straggler span after finish: no entry to append to.
        let now = Instant::now();
        ctx.record_span("queue_wait", now, now);
        assert_eq!(tracer.pending_contexts(), 0, "collector entry leaked");
        let trace = &tracer.slow(1)[0];
        assert_eq!(trace.spans.len(), 2, "straggler span resurrected");
    }

    #[test]
    fn context_offsets_clamp_to_the_trace_window() {
        let tracer = Tracer::new(TraceConfig {
            slow_threshold: Duration::ZERO,
            ..TraceConfig::default()
        });
        let before = Instant::now();
        std::thread::sleep(Duration::from_millis(1));
        let mut tb = tracer.begin("infer");
        let execute = tb.start_span("execute", ROOT_SPAN);
        let ctx = tracer.context(&tb, execute);
        // A start before the trace began saturates to offset zero
        // instead of underflowing.
        ctx.record_span("queue_wait", before, Instant::now());
        tb.end_span(execute);
        tracer.finish(tb);
        let trace = &tracer.slow(1)[0];
        let qw = &trace.spans[2];
        assert_eq!(qw.start_us, 0);
        assert!(qw.dur_us <= trace.total_us);
    }
}
