//! Metric exporters: Prometheus-style text exposition and JSONL
//! metric lines.
//!
//! [`PrometheusText`] assembles the standard text exposition format —
//! `# TYPE` headers, `name{label="value"} value` samples, and
//! histogram series as cumulative `_bucket{le="…"}` lines derived
//! from [`HistogramSnapshot::cumulative_buckets`] plus `_sum` /
//! `_count`. Metric names are sanitized to `[a-zA-Z0-9_:]` and label
//! values escaped per the exposition rules (`\\`, `\"`, `\n`), so
//! arbitrary model names survive scraping.
//!
//! [`jsonl_metrics_line`] renders one registry sweep as a single JSON
//! line — a wall-clock anchor plus every dim's windowed quantiles and
//! outcome counts — for offline trajectory analysis: append a line
//! every N milliseconds and replay the fleet's behavior later.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::histogram::HistogramSnapshot;
use crate::registry::{DimWindow, MetricKey};

/// Appends `name` mapped into the Prometheus metric-name alphabet
/// `[a-zA-Z0-9_:]`, every other byte becoming `_` and a leading digit
/// gaining a `_` prefix. Allocation-free: exporters render thousands
/// of label sets per scrape, and the scrape runs on the serving box.
fn push_sanitized_name(out: &mut String, name: &str) {
    let base = out.len();
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { c } else { '_' });
    }
    if out.len() == base {
        out.push('_');
    }
}

/// Appends `value` escaped per the exposition label rules: backslash,
/// double quote, and newline. Allocation-free, like
/// [`push_sanitized_name`].
fn push_escaped_value(out: &mut String, value: &str) {
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
}

/// Rewrites `name` into the Prometheus metric-name alphabet
/// `[a-zA-Z0-9_:]`, mapping every other byte to `_` and prefixing a
/// leading digit with `_`.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    push_sanitized_name(&mut out, name);
    out
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    push_escaped_value(&mut out, value);
    out
}

/// Appends a `{k="v",…}` label set (nothing when empty), the optional
/// `extra` pair last. Writes straight into `out` — no intermediate
/// strings.
fn push_label_set(out: &mut String, labels: &[(&str, &str)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    for (i, (k, v)) in labels.iter().copied().chain(extra).enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_sanitized_name(out, k);
        out.push_str("=\"");
        push_escaped_value(out, v);
        out.push('"');
    }
    out.push('}');
}

/// Incremental builder for a Prometheus text exposition. Emits one
/// `# TYPE` header per metric name (first use wins) and appends sample
/// lines in call order.
#[derive(Debug, Default)]
pub struct PrometheusText {
    out: String,
    typed: BTreeSet<String>,
}

impl PrometheusText {
    /// An empty exposition.
    pub fn new() -> Self {
        PrometheusText::default()
    }

    fn type_header(&mut self, name: &str, kind: &str) {
        if self.typed.insert(name.to_string()) {
            let _ = writeln!(self.out, "# TYPE {name} {kind}");
        }
    }

    /// Appends one counter sample.
    pub fn counter(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        let name = sanitize_metric_name(name);
        self.type_header(&name, "counter");
        self.out.push_str(&name);
        push_label_set(&mut self.out, labels, None);
        let _ = writeln!(self.out, " {value}");
    }

    /// Appends one gauge sample.
    pub fn gauge(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        let name = sanitize_metric_name(name);
        self.type_header(&name, "gauge");
        self.out.push_str(&name);
        push_label_set(&mut self.out, labels, None);
        let _ = writeln!(self.out, " {value}");
    }

    /// Appends a full histogram series: cumulative `_bucket{le="…"}`
    /// lines for every non-empty bucket, the `le="+Inf"` closer, then
    /// `_sum` and `_count`.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)], snap: &HistogramSnapshot) {
        let name = sanitize_metric_name(name);
        self.type_header(&name, "histogram");
        let mut le = String::with_capacity(20);
        for (bound, cumulative) in snap.cumulative_buckets() {
            le.clear();
            let _ = write!(le, "{bound}");
            self.out.push_str(&name);
            self.out.push_str("_bucket");
            push_label_set(&mut self.out, labels, Some(("le", &le)));
            let _ = writeln!(self.out, " {cumulative}");
        }
        self.out.push_str(&name);
        self.out.push_str("_bucket");
        push_label_set(&mut self.out, labels, Some(("le", "+Inf")));
        let _ = writeln!(self.out, " {}", snap.count);
        self.out.push_str(&name);
        self.out.push_str("_sum");
        push_label_set(&mut self.out, labels, None);
        let _ = writeln!(self.out, " {}", snap.sum);
        self.out.push_str(&name);
        self.out.push_str("_count");
        push_label_set(&mut self.out, labels, None);
        let _ = writeln!(self.out, " {}", snap.count);
    }

    /// The assembled exposition text.
    pub fn finish(self) -> String {
        self.out
    }
}

fn json_escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            _ => out.push(c),
        }
    }
    out
}

/// Renders one sweep of the registry's windowed dims as a single JSON
/// line (no trailing newline): a `unix_ms` anchor plus per-dim latency
/// quantiles (microseconds) and outcome counts.
pub fn jsonl_metrics_line(unix_ms: u64, dims: &[(MetricKey, DimWindow)]) -> String {
    let mut line = format!("{{\"unix_ms\":{unix_ms},\"dims\":[");
    for (i, (key, w)) in dims.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        line.push_str(&format!(
            "{{\"model\":\"{}\",\"verb\":\"{}\",\"stage\":\"{}\",\
             \"count\":{},\"p50_us\":{},\"p90_us\":{},\"p99_us\":{},\"max_us\":{},\
             \"ok\":{},\"error\":{},\"shed\":{}}}",
            json_escape(&key.model),
            json_escape(&key.verb),
            json_escape(&key.stage),
            w.latency.count,
            w.latency.p50() as f64 / 1_000.0,
            w.latency.p90() as f64 / 1_000.0,
            w.latency.p99() as f64 / 1_000.0,
            w.latency.max as f64 / 1_000.0,
            w.ok,
            w.error,
            w.shed
        ));
    }
    line.push_str("]}");
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;
    use std::collections::HashMap;

    /// One parsed exposition sample: metric name, label pairs, value.
    type Sample = (String, Vec<(String, String)>, f64);

    /// A minimal exposition parser: returns (name, labels, value) per
    /// sample line, failing the test on any malformed line.
    fn parse_exposition(text: &str) -> Vec<Sample> {
        let mut samples = Vec::new();
        for line in text.lines() {
            if line.starts_with('#') {
                assert!(line.starts_with("# TYPE "), "unknown comment line: {line}");
                continue;
            }
            let (head, value) = line.rsplit_once(' ').expect("sample has a value");
            let value: f64 = value.parse().unwrap_or(f64::INFINITY);
            let (name, labels) = match head.split_once('{') {
                None => (head.to_string(), Vec::new()),
                Some((name, rest)) => {
                    let body = rest.strip_suffix('}').expect("label set closes");
                    let mut labels = Vec::new();
                    let mut chars = body.chars().peekable();
                    while chars.peek().is_some() {
                        let mut key = String::new();
                        for c in chars.by_ref() {
                            if c == '=' {
                                break;
                            }
                            key.push(c);
                        }
                        assert_eq!(chars.next(), Some('"'), "label value opens with a quote");
                        let mut val = String::new();
                        loop {
                            match chars.next().expect("label value closes") {
                                '"' => break,
                                '\\' => match chars.next().expect("escape has a payload") {
                                    'n' => val.push('\n'),
                                    c => val.push(c),
                                },
                                c => val.push(c),
                            }
                        }
                        if chars.peek() == Some(&',') {
                            chars.next();
                        }
                        labels.push((key, val));
                    }
                    (name.to_string(), labels)
                }
            };
            assert!(
                name.chars().enumerate().all(|(i, c)| {
                    (c.is_ascii_alphanumeric() && (i > 0 || !c.is_ascii_digit()))
                        || c == '_'
                        || c == ':'
                }),
                "invalid metric name: {name}"
            );
            samples.push((name, labels, value));
        }
        samples
    }

    #[test]
    fn exposition_round_trips_names_labels_and_buckets() {
        let h = Histogram::with_shards(1);
        for v in [10u64, 100, 100, 5_000, 1_000_000] {
            h.record(v);
        }
        let snap = h.snapshot();
        let mut text = PrometheusText::new();
        text.histogram(
            "panacea dim latency ns",
            &[("model", "chain\"v2\\x"), ("verb", "de\ncode")],
            &snap,
        );
        text.counter("panacea_dim_outcomes_total", &[("outcome", "ok")], 42);
        text.gauge("panacea_slo_burn", &[], 1.5);
        let out = text.finish();
        assert!(out.contains("# TYPE panacea_dim_latency_ns histogram"));

        let samples = parse_exposition(&out);
        // Label escaping round-trips through the parser.
        let bucket = samples
            .iter()
            .find(|(n, _, _)| n == "panacea_dim_latency_ns_bucket")
            .expect("bucket series present");
        let labels: HashMap<&str, &str> = bucket
            .1
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        assert_eq!(labels["model"], "chain\"v2\\x");
        assert_eq!(labels["verb"], "de\ncode");

        // Bucket bounds ascend, cumulative counts are monotone, and
        // +Inf equals _count.
        let mut last_le = -1.0f64;
        let mut last_cum = 0.0f64;
        let buckets: Vec<_> = samples
            .iter()
            .filter(|(n, _, _)| n == "panacea_dim_latency_ns_bucket")
            .collect();
        assert!(buckets.len() >= 2);
        for (_, labels, value) in &buckets {
            let le = &labels.iter().find(|(k, _)| k == "le").expect("le label").1;
            let le = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse().expect("finite le bound")
            };
            assert!(le > last_le, "le bounds ascend");
            assert!(*value >= last_cum, "cumulative counts are monotone");
            last_le = le;
            last_cum = *value;
        }
        let count = samples
            .iter()
            .find(|(n, _, _)| n == "panacea_dim_latency_ns_count")
            .expect("_count present");
        assert_eq!(last_le, f64::INFINITY, "series closes with +Inf");
        assert_eq!(last_cum, count.2, "+Inf bucket equals _count");
        let sum = samples
            .iter()
            .find(|(n, _, _)| n == "panacea_dim_latency_ns_sum")
            .expect("_sum present");
        assert_eq!(sum.2, snap.sum as f64);
        assert_eq!(count.2, snap.count as f64);

        // Counter and gauge samples parse too.
        let counter = samples
            .iter()
            .find(|(n, _, _)| n == "panacea_dim_outcomes_total")
            .expect("counter present");
        assert_eq!(counter.2, 42.0);
        let gauge = samples
            .iter()
            .find(|(n, _, _)| n == "panacea_slo_burn")
            .expect("gauge present");
        assert_eq!(gauge.2, 1.5);
    }

    #[test]
    fn type_headers_emit_once_per_name() {
        let mut text = PrometheusText::new();
        text.counter("x_total", &[("a", "1")], 1);
        text.counter("x_total", &[("a", "2")], 2);
        let out = text.finish();
        assert_eq!(out.matches("# TYPE x_total counter").count(), 1);
        assert_eq!(out.matches("x_total{").count(), 2);
    }

    #[test]
    fn metric_names_are_sanitized() {
        assert_eq!(sanitize_metric_name("a b-c.d"), "a_b_c_d");
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name("ok:name_1"), "ok:name_1");
        assert_eq!(sanitize_metric_name(""), "_");
    }

    #[test]
    fn jsonl_line_is_valid_json_with_escaped_names() {
        let reg = crate::registry::MetricRegistry::default();
        let cell = reg.cell("m\"odel\\", "infer", "request");
        cell.record_latency(std::time::Duration::from_micros(250));
        cell.record_ok();
        cell.record_shed();
        let dims = reg.windows(std::time::Duration::from_secs(10));
        let line = jsonl_metrics_line(1_700_000_000_000, &dims);
        assert!(!line.contains('\n'), "JSONL lines are single lines");
        assert!(line.starts_with("{\"unix_ms\":1700000000000,\"dims\":["));
        assert!(line.contains("\"model\":\"m\\\"odel\\\\\""));
        assert!(line.contains("\"ok\":1"));
        assert!(line.contains("\"shed\":1"));
        // The p99 of a single 250µs sample lands within bucket error.
        assert!(line.contains("\"count\":1"));
        let p99_field = line
            .split("\"p99_us\":")
            .nth(1)
            .and_then(|rest| rest.split(',').next())
            .expect("p99 field present");
        let p99: f64 = p99_field.parse().expect("p99 parses");
        assert!((250.0..=260.0).contains(&p99), "p99_us={p99}");
    }
}
