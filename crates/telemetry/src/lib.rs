//! `panacea-telemetry` — measurement substrate for the serving stack.
//!
//! Std-only observability primitives shared by `panacea-serve`,
//! `panacea-block`, and `panacea-gateway`:
//!
//! * [`Histogram`] — a sharded-atomic log-linear latency histogram
//!   (HDR-style buckets, ≤3.1% relative quantile error) whose
//!   [`HistogramSnapshot`]s merge across shards and report
//!   p50/p90/p99/max.
//! * [`Tracer`] / [`TraceBuilder`] — request-scoped span trees recorded
//!   without shared-state writes, finished into bounded rings, with a
//!   slow-request threshold that pins full traces for retrieval.
//! * [`ShardedCounter`] — a cache-line-padded, per-thread-sharded
//!   monotone counter for hot-path statistics that would otherwise
//!   contend on one lock or one cache line.
//! * [`WindowedHistogram`] / [`WindowedCounter`] — sliding-window views
//!   (boundary-snapshot rings over the cumulative primitives) so "p99
//!   right now" is answerable, not just "p99 since boot".
//! * [`MetricRegistry`] — windowed latency + outcome cells keyed by
//!   (model, verb, stage), the dimensional layer the gateway threads
//!   through the serving stack.
//! * [`SloConfig`] — declarative latency/error/shed budgets evaluated
//!   over windows into a burn-rate [`HealthReport`].
//! * [`TraceContext`] — the portable slice of an in-flight trace that
//!   crosses thread boundaries, so queue waits and fused decode passes
//!   recorded on worker threads merge back into the request's span
//!   tree.
//! * [`FlightRecorder`] — a bounded ring of structured operational
//!   events with severity and wall-clock anchors, plus a pinned
//!   [`IncidentSnapshot`] frozen when SLO health flips.
//! * [`PrometheusText`] / [`jsonl_metrics_line`] — text exposition and
//!   JSONL exporters over the registry and stage histograms.
//!
//! Everything here is designed to be cheap enough to leave on in
//! production: recording is a handful of `Relaxed` atomic operations
//! (histograms, counters) or request-local `Vec` pushes (spans).

pub mod context;
pub mod events;
pub mod export;
pub mod histogram;
pub mod registry;
pub mod slo;
pub mod trace;
pub mod window;

use std::sync::atomic::{AtomicU64, Ordering};

pub use context::TraceContext;
pub use events::{unix_ms_now, Event, EventSeverity, FlightRecorder, IncidentSnapshot};
pub use export::{escape_label_value, jsonl_metrics_line, sanitize_metric_name, PrometheusText};
pub use histogram::{Histogram, HistogramSnapshot, LINEAR_MAX, NUM_BUCKETS, SUB_BUCKETS};
pub use registry::{DimCell, DimWindow, MetricKey, MetricRegistry, STAGE_REQUEST};
pub use slo::{HealthReport, SloConfig, SloStatus, SloTarget, TargetReport};
pub use trace::{Span, Trace, TraceBuilder, TraceConfig, TraceId, Tracer, ROOT_SPAN};
pub use window::{WindowConfig, WindowedCounter, WindowedHistogram};

/// Shard count for [`ShardedCounter`].
const COUNTER_SHARDS: usize = 8;

/// One counter shard on its own cache line.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedU64(AtomicU64);

/// A monotone `u64` counter sharded across cache lines so concurrent
/// writers don't bounce one line. Each shard is individually monotone,
/// so [`sum`](Self::sum) is monotone across successive calls even while
/// writers race.
#[derive(Debug)]
pub struct ShardedCounter {
    shards: Box<[PaddedU64]>,
}

impl Default for ShardedCounter {
    fn default() -> Self {
        ShardedCounter::new()
    }
}

impl ShardedCounter {
    /// A zeroed counter.
    pub fn new() -> Self {
        ShardedCounter {
            shards: (0..COUNTER_SHARDS).map(|_| PaddedU64::default()).collect(),
        }
    }

    /// Adds `n` on the calling thread's shard.
    pub fn add(&self, n: u64) {
        let slot = histogram::thread_shard_slot() % self.shards.len();
        self.shards[slot].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Sums every shard. Monotone across calls.
    pub fn sum(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sharded_counter_sums_across_threads() {
        let c = Arc::new(ShardedCounter::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.add(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.sum(), 80_000);
    }

    #[test]
    fn sharded_counter_is_monotone_under_concurrent_reads() {
        let c = Arc::new(ShardedCounter::new());
        let writer = {
            let c = c.clone();
            std::thread::spawn(move || {
                for _ in 0..50_000 {
                    c.add(1);
                }
            })
        };
        let mut prev = 0;
        while !writer.is_finished() {
            let now = c.sum();
            assert!(now >= prev, "counter went backwards: {prev} -> {now}");
            prev = now;
        }
        writer.join().unwrap();
        assert_eq!(c.sum(), 50_000);
    }
}
