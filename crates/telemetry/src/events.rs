//! Flight recorder: a bounded ring of structured operational events
//! plus a pinned incident snapshot.
//!
//! Serving-stack components record [`Event`]s — session opens and
//! evictions, sheds with their reason, model registrations, batch
//! formations, SLO health transitions — into a fixed-size ring. A
//! sequence number is claimed with one lock-free `fetch_add`; the
//! claimed slot is then written under that slot's own mutex, so
//! recording never contends across slots and never blocks readers of
//! other slots. The ring is a black box for post-hoc reconstruction:
//! ask for [`recent`](FlightRecorder::recent) events after something
//! went wrong.
//!
//! When SLO health flips to `degraded`/`critical` the gateway
//! additionally [`pin`](FlightRecorder::pin)s an [`IncidentSnapshot`]
//! — the recent events, the slow traces, and the dims window frozen
//! at the flip — so the diagnosis survives even after the ring has
//! churned past the incident and health has recovered.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::registry::{DimWindow, MetricKey};
use crate::slo::SloStatus;
use crate::trace::Trace;

/// Milliseconds since the Unix epoch, the wall-clock anchor used by
/// traces and flight-recorder events. Saturates to zero if the system
/// clock is before the epoch.
pub fn unix_ms_now() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// How loudly an event should be read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventSeverity {
    /// Routine lifecycle: opens, registrations, batches formed.
    Info,
    /// Something was refused or lost capacity: sheds, evictions,
    /// degraded health.
    Warn,
    /// The system is in trouble: critical health.
    Error,
}

impl EventSeverity {
    /// Wire spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            EventSeverity::Info => "info",
            EventSeverity::Warn => "warn",
            EventSeverity::Error => "error",
        }
    }

    /// Inverse of [`as_str`](Self::as_str).
    pub fn parse(s: &str) -> Option<EventSeverity> {
        match s {
            "info" => Some(EventSeverity::Info),
            "warn" => Some(EventSeverity::Warn),
            "error" => Some(EventSeverity::Error),
            _ => None,
        }
    }
}

/// One structured event in the flight-recorder ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Monotone sequence number; total order across the process.
    pub seq: u64,
    /// Wall-clock anchor, milliseconds since the Unix epoch.
    pub unix_ms: u64,
    /// How loudly to read this.
    pub severity: EventSeverity,
    /// Event taxonomy tag, e.g. `"session_open"`, `"shed"`,
    /// `"health_transition"`.
    pub kind: &'static str,
    /// Free-form details: the model, the reason, the counts.
    pub detail: String,
}

/// Everything frozen at the moment health flipped: the recent events,
/// the pinned slow traces, and the dims window as it looked then.
#[derive(Debug, Clone)]
pub struct IncidentSnapshot {
    /// When the flip was observed, milliseconds since the Unix epoch.
    pub unix_ms: u64,
    /// The status health flipped *to*.
    pub status: SloStatus,
    /// Recent flight-recorder events at the flip, newest first.
    pub events: Vec<Event>,
    /// Pinned slow traces at the flip, newest first.
    pub traces: Vec<Trace>,
    /// The windowed dims frozen at the flip, sorted by key.
    pub dims: Vec<(MetricKey, DimWindow)>,
}

#[derive(Debug)]
struct RecorderInner {
    seq: AtomicU64,
    slots: Box<[Mutex<Option<Event>>]>,
    pinned: Mutex<Option<IncidentSnapshot>>,
}

/// Bounded ring of [`Event`]s shared across the serving stack. Cheap
/// to clone — clones share the same ring.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    inner: Arc<RecorderInner>,
}

impl Default for FlightRecorder {
    /// A 256-slot ring.
    fn default() -> Self {
        FlightRecorder::with_capacity(256)
    }
}

impl FlightRecorder {
    /// A ring holding the last `capacity` events. Zero capacity drops
    /// every event (but still counts sequence numbers).
    pub fn with_capacity(capacity: usize) -> Self {
        let slots: Vec<Mutex<Option<Event>>> = (0..capacity).map(|_| Mutex::new(None)).collect();
        FlightRecorder {
            inner: Arc::new(RecorderInner {
                seq: AtomicU64::new(0),
                slots: slots.into_boxed_slice(),
                pinned: Mutex::new(None),
            }),
        }
    }

    /// The ring's slot count.
    pub fn capacity(&self) -> usize {
        self.inner.slots.len()
    }

    /// How many events have ever been recorded (including ones the
    /// ring has since overwritten).
    pub fn recorded(&self) -> u64 {
        self.inner.seq.load(Ordering::Relaxed)
    }

    /// Records one event, overwriting the oldest slot once the ring is
    /// full. Returns the event's sequence number.
    pub fn record(&self, severity: EventSeverity, kind: &'static str, detail: String) -> u64 {
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        if !self.inner.slots.is_empty() {
            let slot = &self.inner.slots[(seq % self.inner.slots.len() as u64) as usize];
            *slot.lock().expect("event slot poisoned") = Some(Event {
                seq,
                unix_ms: unix_ms_now(),
                severity,
                kind,
                detail,
            });
        }
        seq
    }

    /// The most recent events, newest first, up to `limit`.
    pub fn recent(&self, limit: usize) -> Vec<Event> {
        let mut events: Vec<Event> = self
            .inner
            .slots
            .iter()
            .filter_map(|slot| slot.lock().expect("event slot poisoned").clone())
            .collect();
        events.sort_by_key(|e| std::cmp::Reverse(e.seq));
        events.truncate(limit);
        events
    }

    /// Pins an incident snapshot, replacing any previous one: the
    /// *latest* flip wins, matching how an operator asks "what just
    /// happened".
    pub fn pin(&self, snapshot: IncidentSnapshot) {
        *self.inner.pinned.lock().expect("pinned snapshot poisoned") = Some(snapshot);
    }

    /// The pinned incident snapshot, if health ever flipped.
    pub fn pinned(&self) -> Option<IncidentSnapshot> {
        self.inner
            .pinned
            .lock()
            .expect("pinned snapshot poisoned")
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_newest_first_with_total_order() {
        let rec = FlightRecorder::with_capacity(4);
        for i in 0..10u64 {
            let seq = rec.record(EventSeverity::Info, "session_open", format!("s{i}"));
            assert_eq!(seq, i);
        }
        assert_eq!(rec.recorded(), 10);
        let events = rec.recent(16);
        assert_eq!(events.len(), 4, "ring keeps only capacity events");
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![9, 8, 7, 6]);
        assert!(events.iter().all(|e| e.unix_ms > 0));
        assert_eq!(rec.recent(2).len(), 2, "limit is honored");
    }

    #[test]
    fn clones_share_the_ring_and_concurrent_records_all_land() {
        let rec = FlightRecorder::with_capacity(64);
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let rec = rec.clone();
                std::thread::spawn(move || {
                    for i in 0..8 {
                        rec.record(EventSeverity::Warn, "shed", format!("t{t} i{i}"));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("recorder thread");
        }
        let events = rec.recent(64);
        assert_eq!(events.len(), 32);
        let mut seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        assert_eq!(
            seqs,
            (0..32).collect::<Vec<u64>>(),
            "no seq lost or duplicated"
        );
    }

    #[test]
    fn zero_capacity_drops_events_without_panicking() {
        let rec = FlightRecorder::with_capacity(0);
        rec.record(EventSeverity::Error, "health_transition", "critical".into());
        assert_eq!(rec.recorded(), 1);
        assert!(rec.recent(8).is_empty());
    }

    #[test]
    fn pinned_snapshot_survives_ring_churn_and_latest_flip_wins() {
        let rec = FlightRecorder::with_capacity(2);
        rec.record(EventSeverity::Warn, "shed", "in_flight".into());
        rec.pin(IncidentSnapshot {
            unix_ms: unix_ms_now(),
            status: SloStatus::Degraded,
            events: rec.recent(8),
            traces: Vec::new(),
            dims: Vec::new(),
        });
        // Churn the ring far past the incident.
        for _ in 0..16 {
            rec.record(EventSeverity::Info, "batch_formed", "jobs=1".into());
        }
        rec.pin(IncidentSnapshot {
            unix_ms: unix_ms_now(),
            status: SloStatus::Critical,
            events: rec.recent(8),
            traces: Vec::new(),
            dims: Vec::new(),
        });
        let pinned = rec.pinned().expect("snapshot pinned");
        assert_eq!(pinned.status, SloStatus::Critical, "latest flip wins");
        assert!(!pinned.events.is_empty());
        assert!(pinned.events.iter().any(|e| e.kind == "batch_formed"));
    }

    #[test]
    fn severity_spelling_round_trips() {
        for sev in [
            EventSeverity::Info,
            EventSeverity::Warn,
            EventSeverity::Error,
        ] {
            assert_eq!(EventSeverity::parse(sev.as_str()), Some(sev));
        }
        assert_eq!(EventSeverity::parse("fatal"), None);
        assert!(EventSeverity::Info < EventSeverity::Warn);
        assert!(EventSeverity::Warn < EventSeverity::Error);
    }
}
