//! Sliding-window views over cumulative histograms and counters.
//!
//! The serving stack's histograms are cumulative since boot, which is
//! the wrong shape for "what is p99 *right now*". [`WindowedHistogram`]
//! keeps the lock-free cumulative [`Histogram`] as the sole record
//! path and adds a ring of *boundary snapshots* — cumulative snapshots
//! captured lazily at bucket-interval boundaries. A sliding-window view
//! is then just `live.snapshot().diff(boundary)` ([`HistogramSnapshot::diff`]),
//! so recording never takes a lock and never loses a sample to
//! rotation: every sample lands in the cumulative histogram no matter
//! how rotation races it, which is what makes concurrent
//! record-during-rotate deterministic once writers are joined.
//!
//! Boundaries are captured on the *query* path (the first query in a
//! new bucket interval rotates, back-filling any intervals that passed
//! unobserved), so a process that is never asked for windows pays
//! nothing beyond the cumulative histogram it already had. Window
//! widths are bucket-granular: a query for the last `d` covers between
//! `d` and `d + bucket` of wall time, the standard staircase
//! approximation.
//!
//! Every query method has an `_at` twin taking an explicit elapsed
//! [`Duration`] instead of reading the clock, so tests drive rotation
//! deterministically.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::histogram::{Histogram, HistogramSnapshot};
use crate::ShardedCounter;

/// Ring geometry for windowed metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowConfig {
    /// Width of one ring bucket — the rotation interval and the
    /// granularity of window edges.
    pub bucket: Duration,
    /// Ring length in buckets; the widest queryable window is
    /// `bucket × buckets`.
    pub buckets: usize,
}

impl Default for WindowConfig {
    /// 1-second buckets, 60 of them: serves both the ≈10s and ≈60s
    /// SLO windows from one ring.
    fn default() -> Self {
        WindowConfig {
            bucket: Duration::from_secs(1),
            buckets: 60,
        }
    }
}

impl WindowConfig {
    fn bucket_nanos(&self) -> u128 {
        self.bucket.as_nanos().max(1)
    }

    /// The interval index `elapsed` falls in.
    fn epoch(&self, elapsed: Duration) -> u64 {
        u64::try_from(elapsed.as_nanos() / self.bucket_nanos()).unwrap_or(u64::MAX)
    }

    /// How many ring buckets cover a window of `d` (≥ 1, ≤ ring len).
    fn buckets_for(&self, d: Duration) -> u64 {
        let n = d.as_nanos().div_ceil(self.bucket_nanos());
        u64::try_from(n)
            .unwrap_or(u64::MAX)
            .clamp(1, self.buckets.max(1) as u64)
    }
}

/// A boundary ring: cumulative values captured at the start of each of
/// the last `len` epochs (lazily, at first query inside the epoch).
#[derive(Debug)]
struct Ring<T> {
    /// `boundaries[e % len]` is the cumulative state when epoch `e` was
    /// first observed to have started.
    boundaries: Vec<T>,
    /// Highest epoch whose boundary has been captured.
    epoch: u64,
}

impl<T: Clone> Ring<T> {
    fn new(len: usize, zero: T) -> Self {
        Ring {
            boundaries: vec![zero; len.max(1)],
            epoch: 0,
        }
    }

    /// Rotates forward to `epoch`, back-filling skipped boundaries with
    /// `now` (samples from unobserved idle intervals are attributed to
    /// the moment they were first observed), then returns the boundary
    /// for the epoch `window_buckets` before the current one.
    fn rotate_and_boundary(&mut self, epoch: u64, now: &T, window_buckets: u64) -> T {
        let len = self.boundaries.len() as u64;
        if epoch > self.epoch {
            let from = (self.epoch + 1).max((epoch + 1).saturating_sub(len));
            for e in from..=epoch {
                self.boundaries[(e % len) as usize] = now.clone();
            }
            self.epoch = epoch;
        }
        let start = (epoch + 1).saturating_sub(window_buckets);
        self.boundaries[(start % len) as usize].clone()
    }
}

/// A cumulative histogram plus a boundary-snapshot ring serving
/// sliding-window quantiles. Recording is exactly as cheap as
/// [`Histogram::record`]; windows cost a snapshot + diff under a
/// query-side mutex.
#[derive(Debug)]
pub struct WindowedHistogram {
    live: Histogram,
    config: WindowConfig,
    started: Instant,
    ring: Mutex<Ring<HistogramSnapshot>>,
}

impl Default for WindowedHistogram {
    fn default() -> Self {
        WindowedHistogram::new(WindowConfig::default())
    }
}

impl WindowedHistogram {
    /// A windowed histogram with the given ring geometry.
    pub fn new(config: WindowConfig) -> Self {
        WindowedHistogram {
            live: Histogram::new(),
            config,
            started: Instant::now(),
            ring: Mutex::new(Ring::new(config.buckets, HistogramSnapshot::empty())),
        }
    }

    /// The ring geometry.
    pub fn config(&self) -> WindowConfig {
        self.config
    }

    /// Records one value — lock-free, identical cost to
    /// [`Histogram::record`].
    pub fn record(&self, value: u64) {
        self.live.record(value);
    }

    /// Records a duration in nanoseconds.
    pub fn record_duration(&self, d: Duration) {
        self.live.record_duration(d);
    }

    /// The cumulative (since-construction) snapshot.
    pub fn total(&self) -> HistogramSnapshot {
        self.live.snapshot()
    }

    /// Snapshot of roughly the last `window` of samples (bucket-
    /// granular: the view spans between `window` and `window + bucket`).
    pub fn window(&self, window: Duration) -> HistogramSnapshot {
        self.window_at(window, self.started.elapsed())
    }

    /// [`window`](Self::window) with an explicit elapsed time — the
    /// deterministic test hook; `elapsed` is time since construction.
    pub fn window_at(&self, window: Duration, elapsed: Duration) -> HistogramSnapshot {
        let epoch = self.config.epoch(elapsed);
        let w = self.config.buckets_for(window);
        let now = self.live.snapshot();
        let boundary = {
            let mut ring = self.ring.lock().expect("window ring poisoned");
            ring.rotate_and_boundary(epoch, &now, w)
        };
        now.diff(&boundary)
    }
}

/// A cumulative sharded counter plus a boundary ring serving
/// sliding-window counts and rates. The windowed analog of
/// [`ShardedCounter`], with the same lock-free `add` path.
#[derive(Debug)]
pub struct WindowedCounter {
    live: ShardedCounter,
    config: WindowConfig,
    started: Instant,
    ring: Mutex<Ring<u64>>,
}

impl Default for WindowedCounter {
    fn default() -> Self {
        WindowedCounter::new(WindowConfig::default())
    }
}

impl WindowedCounter {
    /// A windowed counter with the given ring geometry.
    pub fn new(config: WindowConfig) -> Self {
        WindowedCounter {
            live: ShardedCounter::new(),
            config,
            started: Instant::now(),
            ring: Mutex::new(Ring::new(config.buckets, 0)),
        }
    }

    /// Adds `n` — lock-free, identical cost to [`ShardedCounter::add`].
    pub fn add(&self, n: u64) {
        self.live.add(n);
    }

    /// The cumulative total.
    pub fn total(&self) -> u64 {
        self.live.sum()
    }

    /// How much was added in roughly the last `window` (bucket-
    /// granular).
    pub fn window(&self, window: Duration) -> u64 {
        self.window_at(window, self.started.elapsed())
    }

    /// [`window`](Self::window) with an explicit elapsed time — the
    /// deterministic test hook.
    pub fn window_at(&self, window: Duration, elapsed: Duration) -> u64 {
        let epoch = self.config.epoch(elapsed);
        let w = self.config.buckets_for(window);
        let now = self.live.sum();
        let boundary = {
            let mut ring = self.ring.lock().expect("window ring poisoned");
            ring.rotate_and_boundary(epoch, &now, w)
        };
        now.saturating_sub(boundary)
    }

    /// Windowed rate per second (`window` count / window width).
    pub fn rate(&self, window: Duration) -> f64 {
        self.rate_at(window, self.started.elapsed())
    }

    /// [`rate`](Self::rate) with an explicit elapsed time.
    pub fn rate_at(&self, window: Duration, elapsed: Duration) -> f64 {
        let secs = window.as_secs_f64().max(f64::MIN_POSITIVE);
        self.window_at(window, elapsed) as f64 / secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: Duration = Duration::from_secs(1);

    fn cfg(bucket_ms: u64, buckets: usize) -> WindowConfig {
        WindowConfig {
            bucket: Duration::from_millis(bucket_ms),
            buckets,
        }
    }

    #[test]
    fn window_sees_only_recent_epochs() {
        let h = WindowedHistogram::new(cfg(1000, 8));
        h.record(10);
        // Observe epoch 0 so the boundary of epoch 1 excludes it.
        assert_eq!(h.window_at(SEC, Duration::from_millis(100)).count, 1);
        // Epoch 1 starts; the 1s (=1 bucket) window forgets epoch 0.
        assert_eq!(h.window_at(SEC, Duration::from_millis(1100)).count, 0);
        h.record(20);
        assert_eq!(h.window_at(SEC, Duration::from_millis(1200)).count, 1);
        // A 2-bucket window still sees both samples at epoch 1.
        assert_eq!(h.window_at(2 * SEC, Duration::from_millis(1200)).count, 2);
        // Far future: everything expires, total remains.
        assert_eq!(h.window_at(8 * SEC, Duration::from_secs(100)).count, 0);
        assert_eq!(h.total().count, 2);
    }

    #[test]
    fn unobserved_idle_gap_attributes_to_first_observation() {
        let h = WindowedHistogram::new(cfg(1000, 4));
        h.record(5); // recorded during a long unobserved stretch
                     // First query ever, at epoch 50: boundaries for the last ring
                     // length of epochs back-fill with the current snapshot, so the
                     // sample (older than any in-ring boundary's capture) reads as
                     // pre-window for short windows...
        assert_eq!(h.window_at(SEC, Duration::from_secs(50)).count, 0);
        // ...but samples recorded after the observation are windowed
        // normally again.
        h.record(6);
        assert_eq!(h.window_at(SEC, Duration::from_millis(50_500)).count, 1);
    }

    #[test]
    fn windowed_quantiles_track_the_window_not_the_total() {
        let h = WindowedHistogram::new(cfg(1000, 8));
        for _ in 0..100 {
            h.record(1_000_000); // slow era, epoch 0
        }
        assert!(h.window_at(SEC, Duration::from_millis(10)).p99() >= 1_000_000);
        // A query at the epoch-1 boundary captures it (in production
        // the metrics poller plays this role once per bucket interval).
        h.window_at(SEC, Duration::from_millis(1001));
        for _ in 0..100 {
            h.record(10); // fast era, epoch 1
        }
        let w = h.window_at(SEC, Duration::from_millis(1010));
        assert_eq!(w.count, 100);
        assert_eq!(w.p99(), 10);
        // The cumulative view still remembers the slow era.
        assert!(h.total().p99() >= 1_000_000);
    }

    #[test]
    fn counter_windows_and_rates() {
        let c = WindowedCounter::new(cfg(1000, 8));
        c.add(30);
        assert_eq!(c.window_at(SEC, Duration::from_millis(10)), 30);
        // Next epoch: the 1s window forgets, a wider window remembers.
        assert_eq!(c.window_at(SEC, Duration::from_millis(1500)), 0);
        assert_eq!(c.window_at(4 * SEC, Duration::from_millis(1500)), 30);
        c.add(10);
        let rate = c.rate_at(2 * SEC, Duration::from_millis(1600));
        assert!((rate - 20.0).abs() < 1e-9, "rate={rate}");
        assert_eq!(c.total(), 40);
    }

    #[test]
    fn widest_window_is_clamped_to_the_ring() {
        let h = WindowedHistogram::new(cfg(100, 4));
        h.record(1);
        // Asking for far more than the ring holds clamps to ring width
        // instead of panicking or wrapping.
        let w = h.window_at(Duration::from_secs(3600), Duration::from_millis(150));
        assert_eq!(w.count, 1);
    }
}
