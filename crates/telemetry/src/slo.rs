//! Declarative SLOs evaluated over windowed dimensional metrics.
//!
//! An [`SloConfig`] is a list of [`SloTarget`]s — "p99 infer latency ≤
//! 250ms over the last 10s", "shed rate ≤ 5% over the last 60s" —
//! each scoped to an optional model and verb. [`SloConfig::evaluate`]
//! reads the matching request-stage windows out of a
//! [`MetricRegistry`] and folds them into a [`HealthReport`]: one
//! [`TargetReport`] per target carrying the measured values and a
//! **burn rate** (worst measured/target ratio across the target's
//! configured dimensions), plus an overall [`SloStatus`] verdict.
//!
//! Burn rate < 1 means inside budget ([`SloStatus::Ok`]); 1–2 means
//! the budget is being consumed as fast as or faster than allotted
//! ([`SloStatus::Degraded`]); ≥ 2 means burning at double speed or
//! worse ([`SloStatus::Critical`]). An empty window is `Ok` with zero
//! burn — no traffic is not an outage.

use std::time::Duration;

use crate::registry::{DimWindow, MetricRegistry, STAGE_REQUEST};

/// Health verdict for one target or a whole config.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SloStatus {
    /// Every configured dimension is inside its budget.
    Ok,
    /// At least one dimension is at 1–2× its budget.
    Degraded,
    /// At least one dimension is at ≥ 2× its budget.
    Critical,
}

impl SloStatus {
    /// Wire spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            SloStatus::Ok => "ok",
            SloStatus::Degraded => "degraded",
            SloStatus::Critical => "critical",
        }
    }

    /// Inverse of [`as_str`](Self::as_str).
    pub fn parse(s: &str) -> Option<SloStatus> {
        match s {
            "ok" => Some(SloStatus::Ok),
            "degraded" => Some(SloStatus::Degraded),
            "critical" => Some(SloStatus::Critical),
            _ => None,
        }
    }

    fn from_burn(burn: f64) -> SloStatus {
        if burn >= 2.0 {
            SloStatus::Critical
        } else if burn >= 1.0 {
            SloStatus::Degraded
        } else {
            SloStatus::Ok
        }
    }
}

/// One service-level objective over a sliding window.
#[derive(Debug, Clone)]
pub struct SloTarget {
    /// Human-readable target name ("infer-latency", "availability").
    pub name: String,
    /// Restrict to one model; `None` spans all models.
    pub model: Option<String>,
    /// Restrict to one wire verb; `None` spans all verbs.
    pub verb: Option<String>,
    /// Sliding window the target is evaluated over.
    pub window: Duration,
    /// Budget: windowed p99 latency must stay at or below this.
    pub p99_latency: Option<Duration>,
    /// Budget: windowed error rate (errors / outcomes) must stay at or
    /// below this.
    pub max_error_rate: Option<f64>,
    /// Budget: windowed shed rate (sheds / outcomes) must stay at or
    /// below this.
    pub max_shed_rate: Option<f64>,
}

impl SloTarget {
    /// A target spanning all models and verbs over `window`, with no
    /// budgets set (add them with the struct-update syntax).
    pub fn over(name: impl Into<String>, window: Duration) -> Self {
        SloTarget {
            name: name.into(),
            model: None,
            verb: None,
            window,
            p99_latency: None,
            max_error_rate: None,
            max_shed_rate: None,
        }
    }

    /// Evaluates this target against the registry's request-stage
    /// windows.
    pub fn evaluate(&self, registry: &MetricRegistry) -> TargetReport {
        let w = registry.window_for(
            self.model.as_deref(),
            self.verb.as_deref(),
            Some(STAGE_REQUEST),
            self.window,
        );
        self.report(&w)
    }

    /// Evaluates this target against an already-collected window — the
    /// deterministic test seam behind [`evaluate`](Self::evaluate).
    pub fn report(&self, w: &DimWindow) -> TargetReport {
        let p99 = w.latency.p99();
        let error_rate = w.error_rate();
        let shed_rate = w.shed_rate();
        let mut burn = 0.0f64;
        if w.latency.count > 0 {
            if let Some(budget) = self.p99_latency {
                let budget_ns = u64::try_from(budget.as_nanos()).unwrap_or(u64::MAX);
                burn = burn.max(p99 as f64 / budget_ns.max(1) as f64);
            }
        }
        if w.outcomes() > 0 {
            if let Some(budget) = self.max_error_rate {
                burn = burn.max(ratio_burn(error_rate, budget));
            }
            if let Some(budget) = self.max_shed_rate {
                burn = burn.max(ratio_burn(shed_rate, budget));
            }
        }
        TargetReport {
            name: self.name.clone(),
            status: SloStatus::from_burn(burn),
            burn_rate: burn,
            samples: w.latency.count.max(w.outcomes()),
            p99_us: p99 as f64 / 1_000.0,
            error_rate,
            shed_rate,
        }
    }
}

/// measured/budget with a zero-budget convention: a zero budget means
/// "none allowed", so any measured value at all burns critically.
fn ratio_burn(measured: f64, budget: f64) -> f64 {
    if budget > 0.0 {
        measured / budget
    } else if measured > 0.0 {
        f64::INFINITY
    } else {
        0.0
    }
}

/// The evaluated state of one [`SloTarget`].
#[derive(Debug, Clone, PartialEq)]
pub struct TargetReport {
    /// The target's name.
    pub name: String,
    /// Verdict for this target alone.
    pub status: SloStatus,
    /// Worst measured/budget ratio across configured dimensions; 0
    /// when the window is empty.
    pub burn_rate: f64,
    /// Samples the verdict is based on (max of latency samples and
    /// outcomes).
    pub samples: u64,
    /// Measured windowed p99 latency, microseconds.
    pub p99_us: f64,
    /// Measured windowed error rate.
    pub error_rate: f64,
    /// Measured windowed shed rate.
    pub shed_rate: f64,
}

/// The overall health verdict: worst target status plus every target's
/// report.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// Worst status across targets (`Ok` when there are none).
    pub status: SloStatus,
    /// Per-target evaluations, in config order.
    pub targets: Vec<TargetReport>,
}

/// A set of SLO targets evaluated together.
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// The targets; overall health is the worst of them.
    pub targets: Vec<SloTarget>,
}

impl Default for SloConfig {
    /// Generous catch-all targets — a 2s p99 and 50% shed budget over
    /// 10s — so a freshly configured gateway reports `ok` under any
    /// sane load and operators tighten from there.
    fn default() -> Self {
        SloConfig {
            targets: vec![
                SloTarget {
                    p99_latency: Some(Duration::from_secs(2)),
                    ..SloTarget::over("latency", Duration::from_secs(10))
                },
                SloTarget {
                    max_shed_rate: Some(0.5),
                    ..SloTarget::over("availability", Duration::from_secs(10))
                },
            ],
        }
    }
}

impl SloConfig {
    /// Evaluates every target against the registry.
    pub fn evaluate(&self, registry: &MetricRegistry) -> HealthReport {
        let targets: Vec<TargetReport> =
            self.targets.iter().map(|t| t.evaluate(registry)).collect();
        let status = targets
            .iter()
            .map(|t| t.status)
            .max()
            .unwrap_or(SloStatus::Ok);
        HealthReport { status, targets }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;

    fn window_with(latencies_us: &[u64], ok: u64, error: u64, shed: u64) -> DimWindow {
        let h = Histogram::with_shards(1);
        for &us in latencies_us {
            h.record(us * 1_000);
        }
        DimWindow {
            latency: h.snapshot(),
            ok,
            error,
            shed,
        }
    }

    #[test]
    fn empty_window_is_ok_not_an_outage() {
        let t = SloTarget {
            p99_latency: Some(Duration::from_millis(1)),
            max_error_rate: Some(0.0),
            max_shed_rate: Some(0.0),
            ..SloTarget::over("strict", Duration::from_secs(10))
        };
        let r = t.report(&DimWindow::empty());
        assert_eq!(r.status, SloStatus::Ok);
        assert_eq!(r.burn_rate, 0.0);
        assert_eq!(r.samples, 0);
    }

    #[test]
    fn latency_burn_escalates_through_degraded_to_critical() {
        let t = SloTarget {
            p99_latency: Some(Duration::from_micros(100)),
            ..SloTarget::over("lat", Duration::from_secs(10))
        };
        let ok = t.report(&window_with(&[50, 60, 70], 3, 0, 0));
        assert_eq!(ok.status, SloStatus::Ok);
        assert!(ok.burn_rate < 1.0);

        let degraded = t.report(&window_with(&[150], 1, 0, 0));
        assert_eq!(degraded.status, SloStatus::Degraded);
        assert!(degraded.burn_rate >= 1.0 && degraded.burn_rate < 2.0);

        let critical = t.report(&window_with(&[500], 1, 0, 0));
        assert_eq!(critical.status, SloStatus::Critical);
        assert!(critical.burn_rate >= 2.0);
    }

    #[test]
    fn shed_and_error_budgets_burn_by_rate() {
        let t = SloTarget {
            max_error_rate: Some(0.10),
            max_shed_rate: Some(0.10),
            ..SloTarget::over("avail", Duration::from_secs(10))
        };
        // 5% shed against a 10% budget: half-burned, ok.
        let r = t.report(&window_with(&[], 19, 0, 1));
        assert_eq!(r.status, SloStatus::Ok);
        assert!((r.burn_rate - 0.5).abs() < 1e-9);
        // 25% errors against 10%: 2.5× burn, critical.
        let r = t.report(&window_with(&[], 3, 1, 0));
        assert_eq!(r.status, SloStatus::Critical);
        assert!((r.error_rate - 0.25).abs() < 1e-9);
        // Zero budget means none allowed.
        let strict = SloTarget {
            max_shed_rate: Some(0.0),
            ..SloTarget::over("none", Duration::from_secs(10))
        };
        let r = strict.report(&window_with(&[], 99, 0, 1));
        assert_eq!(r.status, SloStatus::Critical);
    }

    #[test]
    fn overall_health_is_the_worst_target() {
        let reg = MetricRegistry::default();
        let cell = reg.cell("m", "infer", STAGE_REQUEST);
        cell.record_latency(Duration::from_micros(500));
        cell.record_ok();
        let config = SloConfig {
            targets: vec![
                SloTarget {
                    p99_latency: Some(Duration::from_secs(1)),
                    ..SloTarget::over("loose", Duration::from_secs(10))
                },
                SloTarget {
                    p99_latency: Some(Duration::from_micros(100)),
                    ..SloTarget::over("tight", Duration::from_secs(10))
                },
            ],
        };
        let health = config.evaluate(&reg);
        assert_eq!(health.status, SloStatus::Critical);
        assert_eq!(health.targets.len(), 2);
        assert_eq!(health.targets[0].status, SloStatus::Ok);
        assert_eq!(health.targets[1].status, SloStatus::Critical);
        // A target scoped to a model with no traffic stays ok.
        let scoped = SloConfig {
            targets: vec![SloTarget {
                model: Some("ghost".into()),
                p99_latency: Some(Duration::from_nanos(1)),
                ..SloTarget::over("ghost", Duration::from_secs(10))
            }],
        };
        assert_eq!(scoped.evaluate(&reg).status, SloStatus::Ok);
    }

    #[test]
    fn default_config_is_generous() {
        let reg = MetricRegistry::default();
        let cell = reg.cell("m", "infer", STAGE_REQUEST);
        for _ in 0..100 {
            cell.record_latency(Duration::from_millis(50));
            cell.record_ok();
        }
        cell.record_shed();
        assert_eq!(SloConfig::default().evaluate(&reg).status, SloStatus::Ok);
    }
}
