//! Request-scoped tracing: per-request span trees recorded without
//! locks, finished into bounded ring buffers.
//!
//! A [`Tracer`] hands out [`TraceBuilder`]s; the builder accumulates
//! [`Span`]s in a request-local `Vec` (no shared state touched while
//! the request runs), and [`Tracer::finish`] pushes the completed
//! [`Trace`] into a bounded ring under one short `Mutex` hold. Traces
//! whose total duration reaches the configured slow threshold are
//! additionally pinned into a separate slow ring so they survive
//! retrieval even under high request rates.
//!
//! Work that happens on *other* threads (batch workers, the decode
//! batcher) records spans through a [`TraceContext`] obtained from
//! [`Tracer::context`]; `finish` merges those remote spans into the
//! trace, re-parented under the builder span the context named. See
//! the [`context`](crate::context) module.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::context::{SpanCollector, TraceContext};
use crate::events::unix_ms_now;

/// Tracer knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Requests at least this slow get pinned into the slow ring.
    pub slow_threshold: Duration,
    /// How many recent traces (slow or not) to retain.
    pub ring_capacity: usize,
    /// How many slow traces to pin.
    pub slow_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            slow_threshold: Duration::from_millis(100),
            ring_capacity: 256,
            slow_capacity: 32,
        }
    }
}

/// A process-unique trace identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(u64);

impl TraceId {
    /// The raw id value.
    pub fn get(self) -> u64 {
        self.0
    }
}

static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

/// One timed stage within a trace. Span 0 is always the root covering
/// the whole request; every other span links to its parent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Span id, unique within the trace (0 = root).
    pub id: u64,
    /// Parent span id; `None` only for the root.
    pub parent: Option<u64>,
    /// Stage tag, e.g. `"cache_probe"`.
    pub stage: &'static str,
    /// Start offset from the trace's start, in microseconds.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
    /// Ids of *other traces* this span participated in — non-empty
    /// only for shared work like a fused decode pass, where one span
    /// links to every co-batched request's trace.
    pub links: Vec<u64>,
}

/// A finished request trace: the root verb plus its span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Process-unique id.
    pub id: TraceId,
    /// The request verb the root span covers.
    pub verb: &'static str,
    /// Wall-clock anchor: milliseconds since the Unix epoch at the
    /// moment the trace began. Span offsets are relative to this.
    pub unix_ms: u64,
    /// Total request duration in microseconds.
    pub total_us: u64,
    /// Spans in start order; index 0 is the root.
    pub spans: Vec<Span>,
}

/// Accumulates spans for one in-flight request. Purely request-local:
/// recording a span touches no shared state.
#[derive(Debug)]
pub struct TraceBuilder {
    id: TraceId,
    verb: &'static str,
    started: Instant,
    unix_ms: u64,
    spans: Vec<Span>,
}

/// Root span id — parent for top-level stages.
pub const ROOT_SPAN: u64 = 0;

impl TraceBuilder {
    fn new(verb: &'static str) -> Self {
        let id = TraceId(NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed));
        TraceBuilder {
            id,
            verb,
            started: Instant::now(),
            unix_ms: unix_ms_now(),
            spans: vec![Span {
                id: ROOT_SPAN,
                parent: None,
                stage: verb,
                start_us: 0,
                dur_us: 0,
                links: Vec::new(),
            }],
        }
    }

    /// This trace's id.
    pub fn id(&self) -> TraceId {
        self.id
    }

    fn elapsed_us(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Opens a span under `parent` (use [`ROOT_SPAN`] for top-level
    /// stages); close it with [`end_span`](Self::end_span).
    pub fn start_span(&mut self, stage: &'static str, parent: u64) -> u64 {
        let id = self.spans.len() as u64;
        let start_us = self.elapsed_us();
        self.spans.push(Span {
            id,
            parent: Some(parent),
            stage,
            start_us,
            dur_us: 0,
            links: Vec::new(),
        });
        id
    }

    /// Closes a span opened with [`start_span`](Self::start_span),
    /// stamping its duration. Returns that duration.
    pub fn end_span(&mut self, id: u64) -> Duration {
        let now = self.elapsed_us();
        let span = &mut self.spans[id as usize];
        span.dur_us = now.saturating_sub(span.start_us);
        Duration::from_micros(span.dur_us)
    }

    /// Times `f` as a span under `parent`.
    pub fn span<T>(&mut self, stage: &'static str, parent: u64, f: impl FnOnce() -> T) -> T {
        let id = self.start_span(stage, parent);
        let out = f();
        self.end_span(id);
        out
    }
}

/// Owns the trace rings and hands out builders.
#[derive(Debug)]
pub struct Tracer {
    config: TraceConfig,
    recent: Mutex<VecDeque<Trace>>,
    slow: Mutex<VecDeque<Trace>>,
    pending: SpanCollector,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new(TraceConfig::default())
    }
}

impl Tracer {
    /// A tracer with the given knobs.
    pub fn new(config: TraceConfig) -> Self {
        Tracer {
            config,
            recent: Mutex::new(VecDeque::with_capacity(config.ring_capacity.min(1024))),
            slow: Mutex::new(VecDeque::with_capacity(config.slow_capacity.min(1024))),
            pending: SpanCollector::default(),
        }
    }

    /// The configured knobs.
    pub fn config(&self) -> TraceConfig {
        self.config
    }

    /// Starts a trace for one request.
    pub fn begin(&self, verb: &'static str) -> TraceBuilder {
        TraceBuilder::new(verb)
    }

    /// Opens a [`TraceContext`] for `builder` so other threads can
    /// record spans parented under `parent_span` (a span id from this
    /// builder). The remote spans are merged into the trace when
    /// [`finish`](Self::finish) runs; spans recorded after that are
    /// dropped.
    pub fn context(&self, builder: &TraceBuilder, parent_span: u64) -> TraceContext {
        let trace_id = builder.id.get();
        self.pending
            .lock()
            .expect("span collector poisoned")
            .entry(trace_id)
            .or_default();
        TraceContext::new(
            trace_id,
            parent_span,
            builder.started,
            Arc::clone(&self.pending),
        )
    }

    /// How many traces currently have an open remote-span collector
    /// entry — useful for asserting contexts don't leak.
    pub fn pending_contexts(&self) -> usize {
        self.pending.lock().expect("span collector poisoned").len()
    }

    /// Finishes a trace: stamps the root span, appends to the recent
    /// ring, and pins it to the slow ring if it met the threshold.
    /// Returns the total duration.
    pub fn finish(&self, mut builder: TraceBuilder) -> Duration {
        let total = builder.started.elapsed();
        let total_us = u64::try_from(total.as_micros()).unwrap_or(u64::MAX);
        builder.spans[ROOT_SPAN as usize].dur_us = total_us;
        let remote = self
            .pending
            .lock()
            .expect("span collector poisoned")
            .remove(&builder.id.get());
        if let Some(remote) = remote {
            // Remote spans append after every builder span, so their
            // parent (a builder span index) always precedes them;
            // offsets clamp into the trace window in case a worker's
            // clock reading raced the finish.
            for r in remote {
                let id = builder.spans.len() as u64;
                builder.spans.push(Span {
                    id,
                    parent: Some(r.parent.min(id.saturating_sub(1))),
                    stage: r.stage,
                    start_us: r.start_us.min(total_us),
                    dur_us: r.dur_us.min(total_us),
                    links: r.links,
                });
            }
        }
        let trace = Trace {
            id: builder.id,
            verb: builder.verb,
            unix_ms: builder.unix_ms,
            total_us,
            spans: builder.spans,
        };
        if total >= self.config.slow_threshold && self.config.slow_capacity > 0 {
            let mut slow = self.slow.lock().expect("slow ring poisoned");
            if slow.len() == self.config.slow_capacity {
                slow.pop_front();
            }
            slow.push_back(trace.clone());
        }
        if self.config.ring_capacity > 0 {
            let mut recent = self.recent.lock().expect("recent ring poisoned");
            if recent.len() == self.config.ring_capacity {
                recent.pop_front();
            }
            recent.push_back(trace);
        }
        total
    }

    /// The most recent traces, newest first, up to `limit`.
    pub fn recent(&self, limit: usize) -> Vec<Trace> {
        let ring = self.recent.lock().expect("recent ring poisoned");
        ring.iter().rev().take(limit).cloned().collect()
    }

    /// The most recent pinned slow traces, newest first, up to `limit`.
    pub fn slow(&self, limit: usize) -> Vec<Trace> {
        let ring = self.slow.lock().expect("slow ring poisoned");
        ring.iter().rev().take(limit).cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_form_a_tree_with_monotone_offsets() {
        let tracer = Tracer::new(TraceConfig {
            slow_threshold: Duration::ZERO,
            ..TraceConfig::default()
        });
        let mut tb = tracer.begin("infer");
        let outer = tb.start_span("execute", ROOT_SPAN);
        let inner = tb.start_span("cache_probe", outer);
        tb.end_span(inner);
        tb.end_span(outer);
        tb.span("route", ROOT_SPAN, || std::thread::sleep(Duration::ZERO));
        tracer.finish(tb);

        let traces = tracer.slow(8);
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        assert_eq!(t.verb, "infer");
        assert!(t.unix_ms > 0, "traces carry a wall-clock anchor");
        assert_eq!(t.spans[0].stage, "infer");
        assert_eq!(t.spans[0].parent, None);
        assert_eq!(t.spans.len(), 4);
        for span in &t.spans[1..] {
            let parent = span.parent.expect("non-root spans have parents");
            assert!(parent < span.id, "parents precede children");
            assert!(span.start_us >= t.spans[parent as usize].start_us);
            assert!(span.dur_us <= t.total_us);
        }
        assert_eq!(t.spans[2].parent, Some(1));
    }

    #[test]
    fn slow_threshold_partitions_the_rings() {
        let tracer = Tracer::new(TraceConfig {
            slow_threshold: Duration::from_millis(5),
            ring_capacity: 8,
            slow_capacity: 8,
        });
        let fast = tracer.begin("infer");
        tracer.finish(fast);
        let slow = tracer.begin("decode");
        std::thread::sleep(Duration::from_millis(6));
        tracer.finish(slow);

        assert_eq!(tracer.recent(8).len(), 2);
        let pinned = tracer.slow(8);
        assert_eq!(pinned.len(), 1);
        assert_eq!(pinned[0].verb, "decode");
        assert!(pinned[0].total_us >= 5_000);
    }

    #[test]
    fn rings_are_bounded_and_newest_first() {
        let tracer = Tracer::new(TraceConfig {
            slow_threshold: Duration::ZERO,
            ring_capacity: 3,
            slow_capacity: 2,
        });
        let mut ids = Vec::new();
        for _ in 0..5 {
            let tb = tracer.begin("infer");
            ids.push(tb.id());
            tracer.finish(tb);
        }
        let recent = tracer.recent(10);
        assert_eq!(recent.len(), 3);
        assert_eq!(recent[0].id, ids[4]);
        assert_eq!(recent[2].id, ids[2]);
        let slow = tracer.slow(10);
        assert_eq!(slow.len(), 2);
        assert_eq!(slow[0].id, ids[4]);
        // limit is honored too
        assert_eq!(tracer.recent(1).len(), 1);
    }

    #[test]
    fn trace_ids_are_unique_across_tracers() {
        let a = Tracer::default().begin("infer").id();
        let b = Tracer::default().begin("infer").id();
        assert_ne!(a, b);
    }
}
