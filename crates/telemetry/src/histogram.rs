//! Sharded-atomic log-linear histograms with mergeable snapshots.
//!
//! The bucket layout is HDR-style log-linear: values below
//! [`LINEAR_MAX`] get exact one-wide buckets, and every power-of-two
//! tier above that is split into [`SUB_BUCKETS`] equal sub-buckets, so
//! the relative quantile error is bounded by `1/SUB_BUCKETS` (≈3.1%)
//! at any magnitude up to `u64::MAX`. Recording is a handful of
//! `Relaxed` `fetch_add`s on a thread-affine shard — no locks, no
//! allocation — which keeps the hot serving paths cheap enough for the
//! bench overhead gate.
//!
//! Values are unit-agnostic `u64`s: the serving stack records
//! nanoseconds for durations and raw column counts for occupancy.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Sub-bucket resolution: each power-of-two tier splits into
/// `2^SUB_BITS` buckets.
const SUB_BITS: u32 = 5;
/// Sub-buckets per power-of-two tier (32).
pub const SUB_BUCKETS: u64 = 1 << SUB_BITS;
/// Values below this get exact one-wide buckets.
pub const LINEAR_MAX: u64 = SUB_BUCKETS * 2;
/// Total bucket count covering the full `u64` range: the linear region
/// plus two tier-0/1 ranges share the first two tiers, and exponents
/// `SUB_BITS+1 ..= 63` each add one tier of `SUB_BUCKETS`.
pub const NUM_BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB_BUCKETS as usize;

/// Default shard count for new histograms.
const DEFAULT_SHARDS: usize = 4;

/// Maps a value to its bucket index. Total over all of `u64`.
fn bucket_index(v: u64) -> usize {
    if v < LINEAR_MAX {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros(); // >= SUB_BITS + 1
    let tier = exp - SUB_BITS; // >= 1
    let offset = (v >> tier) - SUB_BUCKETS; // 0..SUB_BUCKETS
    ((tier as u64 + 1) * SUB_BUCKETS + offset) as usize
}

/// Largest value that maps into `index` — what quantiles report, so an
/// estimate never undershoots the exact order statistic.
fn bucket_upper_bound(index: usize) -> u64 {
    if index < LINEAR_MAX as usize {
        return index as u64;
    }
    let tier = (index as u64 / SUB_BUCKETS) - 1;
    let offset = index as u64 % SUB_BUCKETS;
    let low = (SUB_BUCKETS + offset) << tier;
    low + ((1u64 << tier) - 1)
}

/// One shard's counters. Aligned so adjacent shards never share a
/// cache line through this struct (the bucket arrays are separate
/// allocations already).
#[repr(align(64))]
struct Shard {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Shard {
    fn new() -> Self {
        Shard {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Round-robin slot assigned on a thread's first record; `MAX`
    /// means unassigned.
    static THREAD_SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
}

pub(crate) fn thread_shard_slot() -> usize {
    THREAD_SLOT.with(|c| {
        let mut slot = c.get();
        if slot == usize::MAX {
            slot = NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed);
            c.set(slot);
        }
        slot
    })
}

/// A concurrent log-linear histogram. Threads record into
/// round-robin-assigned shards; [`Histogram::snapshot`] merges them.
pub struct Histogram {
    shards: Box<[Shard]>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &s.count)
            .field("sum", &s.sum)
            .field("max", &s.max)
            .finish()
    }
}

impl Histogram {
    /// A histogram with the default shard count.
    pub fn new() -> Self {
        Histogram::with_shards(DEFAULT_SHARDS)
    }

    /// A histogram with `shards` independent recording shards (≥ 1).
    pub fn with_shards(shards: usize) -> Self {
        let shards = shards.max(1);
        Histogram {
            shards: (0..shards).map(|_| Shard::new()).collect(),
        }
    }

    /// Records one value. Lock-free: a few `Relaxed` atomic ops on the
    /// calling thread's shard.
    pub fn record(&self, value: u64) {
        let shard = &self.shards[thread_shard_slot() % self.shards.len()];
        shard.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        shard.count.fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(value, Ordering::Relaxed);
        shard.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] in nanoseconds (saturating at
    /// `u64::MAX` — ~584 years).
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Merges every shard into one point-in-time snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::empty();
        for shard in self.shards.iter() {
            for (acc, b) in out.buckets.iter_mut().zip(shard.buckets.iter()) {
                *acc += b.load(Ordering::Relaxed);
            }
            out.count += shard.count.load(Ordering::Relaxed);
            out.sum += shard.sum.load(Ordering::Relaxed);
            out.max = out.max.max(shard.max.load(Ordering::Relaxed));
        }
        out
    }
}

/// An immutable, mergeable copy of a histogram's state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (see the module docs for the layout).
    pub buckets: Vec<u64>,
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values (same unit as the samples).
    pub sum: u64,
    /// Largest recorded value, exact.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with nothing recorded.
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Folds another snapshot into this one (bucket-wise addition).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The samples recorded between `earlier` and this snapshot:
    /// bucket-wise saturating subtraction, the inverse of
    /// [`merge`](Self::merge) for snapshots of one growing histogram.
    ///
    /// The window's `max` cannot be recovered exactly from two
    /// cumulative snapshots when the all-time maximum predates the
    /// window, so it is re-estimated as the upper bound of the highest
    /// non-empty bucket — the same ≤`1/SUB_BUCKETS` relative error the
    /// quantiles carry. When the all-time max grew between the two
    /// snapshots it must have been recorded inside the window and is
    /// reported exactly.
    pub fn diff(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::empty();
        let mut highest = None;
        for (i, (now, then)) in self.buckets.iter().zip(earlier.buckets.iter()).enumerate() {
            let d = now.saturating_sub(*then);
            out.buckets[i] = d;
            if d > 0 {
                highest = Some(i);
            }
        }
        out.count = self.count.saturating_sub(earlier.count);
        out.sum = self.sum.saturating_sub(earlier.sum);
        out.max = if out.count == 0 {
            0
        } else if self.max > earlier.max {
            self.max
        } else {
            highest.map_or(0, |i| bucket_upper_bound(i).min(self.max))
        };
        out
    }

    /// The non-empty buckets as `(upper_bound, cumulative_count)`
    /// pairs in ascending bound order — the shape a Prometheus
    /// histogram exposition's `le` series needs. The final pair's
    /// cumulative count equals [`count`](Self::count).
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n > 0 {
                cumulative += n;
                out.push((bucket_upper_bound(i), cumulative));
            }
        }
        out
    }

    /// Mean of the recorded values; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (0 < q ≤ 1) as the upper bound of the bucket
    /// holding the order statistic of rank `ceil(q·count)`. Never below
    /// the exact quantile and at most `exact/32 + 1` above it. Returns
    /// 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // The histogram max is exact; never report past it.
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_buckets_are_exact() {
        for v in 0..LINEAR_MAX {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_upper_bound(v as usize), v);
        }
    }

    #[test]
    fn bucket_index_is_monotone_and_inverts() {
        let mut samples: Vec<u64> = (0..4096).collect();
        for exp in 6..64u32 {
            for off in [0u64, 1, 31] {
                let base = (SUB_BUCKETS + off) << (exp - SUB_BITS);
                samples.extend([base - 1, base, base + 1]);
            }
        }
        samples.push(u64::MAX);
        samples.sort_unstable();
        let mut prev = 0usize;
        for &v in &samples {
            let idx = bucket_index(v);
            assert!(idx >= prev, "index regressed at {v}");
            assert!(idx < NUM_BUCKETS);
            assert!(bucket_upper_bound(idx) >= v, "v={v} escaped its bucket");
            prev = idx;
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn upper_bound_relative_error_is_bounded() {
        for v in [64u64, 100, 1_000, 65_535, 1 << 20, u64::MAX / 3] {
            let ub = bucket_upper_bound(bucket_index(v));
            assert!(ub >= v);
            assert!(ub - v <= v / 32 + 1, "v={v} ub={ub}");
        }
    }

    #[test]
    fn quantiles_of_a_known_set() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 5050);
        assert_eq!(s.max, 100);
        // p50 = 50th order statistic = 50; values ≤ 63 are exact.
        assert_eq!(s.p50(), 50);
        assert_eq!(s.quantile(1.0), 100);
        let p99 = s.p99();
        assert!((99..=100).contains(&p99), "p99={p99}");
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.p50(), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in [0u64, 1, 63, 64, 65, 1000, 1 << 40] {
            a.record(v);
            all.record(v);
        }
        for v in [5u64, 64, 1 << 40, u64::MAX] {
            b.record(v);
            all.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
    }

    #[test]
    fn diff_inverts_merge_and_reestimates_max() {
        let h = Histogram::with_shards(1);
        for v in [3u64, 50, 1000] {
            h.record(v);
        }
        let earlier = h.snapshot();
        for v in [7u64, 2000] {
            h.record(v);
        }
        let window = h.snapshot().diff(&earlier);
        assert_eq!(window.count, 2);
        assert_eq!(window.sum, 2007);
        // 2000 grew the all-time max inside the window: exact.
        assert_eq!(window.max, 2000);
        let mut rebuilt = earlier.clone();
        rebuilt.merge(&window);
        assert_eq!(rebuilt.buckets, h.snapshot().buckets);

        // A window whose samples all sit below the all-time max gets a
        // bucket-bound max estimate.
        let earlier = h.snapshot();
        h.record(100);
        let window = h.snapshot().diff(&earlier);
        assert_eq!(window.count, 1);
        assert!(window.max >= 100 && window.max <= 100 + 100 / 32 + 1);

        // Empty window: all zero.
        let s = h.snapshot();
        let empty = s.diff(&s);
        assert!(empty.is_empty());
        assert_eq!(empty.max, 0);
        assert_eq!(empty.p99(), 0);
    }

    #[test]
    fn cumulative_buckets_are_monotone_and_total() {
        let h = Histogram::with_shards(1);
        for v in [1u64, 1, 5, 70, 70, 70, 5000] {
            h.record(v);
        }
        let s = h.snapshot();
        let cum = s.cumulative_buckets();
        assert_eq!(cum.len(), 4, "one entry per non-empty bucket");
        for pair in cum.windows(2) {
            assert!(pair[0].0 < pair[1].0, "bounds ascend");
            assert!(pair[0].1 < pair[1].1, "counts are strictly cumulative");
        }
        assert_eq!(cum.last().unwrap().1, s.count);
        assert!(HistogramSnapshot::empty().cumulative_buckets().is_empty());
    }

    #[test]
    fn concurrent_recording_is_deterministic() {
        let h = std::sync::Arc::new(Histogram::new());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let h = h.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    h.record(t * 1000 + i);
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        let reference = Histogram::with_shards(1);
        for t in 0..8u64 {
            for i in 0..1000u64 {
                reference.record(t * 1000 + i);
            }
        }
        assert_eq!(h.snapshot(), reference.snapshot());
    }
}
