//! Property test: `QuantizedBlock::forward_batch` is bit-exact with
//! sequential `forward` per request — coalescing independent sequences
//! into one wide GEMM pass is an optimization, never an approximation.

use panacea_block::{zoo_hidden_states, zoo_transformer, BlockBuilder, QuantizedBlock};
use panacea_models::engine::TransformerConfig;
use panacea_models::zoo::Benchmark;
use panacea_tensor::Matrix;
use proptest::prelude::*;

fn prepared_block(seed: u64) -> QuantizedBlock {
    let cfg = TransformerConfig {
        d_model: 16,
        n_heads: 2,
        d_ff: 32,
        n_layers: 1,
    };
    let oracle = zoo_transformer(Benchmark::DeitBase, cfg, seed);
    let calib = zoo_hidden_states(Benchmark::DeitBase, 16, 24, seed + 100);
    BlockBuilder::default()
        .prepare(&oracle, &calib)
        .expect("prepare")
        .pop()
        .expect("one block")
}

/// Deterministic hidden states spanning the calibrated range.
fn hidden(d: usize, cols: usize, salt: usize) -> Matrix<f32> {
    Matrix::from_fn(d, cols, |r, c| {
        let v = ((r * 31 + c * 7 + salt * 13) % 97) as f32;
        (v - 48.0) / 24.0
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any mix of sequence lengths in a batch — including widths that
    /// force different zero-padding than the solo runs — splits back to
    /// the exact solo results.
    #[test]
    fn batched_block_forward_matches_sequential(
        seed in 0u64..3,
        widths in proptest::collection::vec(1usize..6, 1..6),
    ) {
        let block = prepared_block(seed);
        let requests: Vec<Matrix<f32>> = widths
            .iter()
            .enumerate()
            .map(|(i, &w)| hidden(16, w, i))
            .collect();
        let refs: Vec<&Matrix<f32>> = requests.iter().collect();
        let (batched, wl) = block.forward_batch(&refs);
        prop_assert!(wl.total().mul > 0);
        prop_assert_eq!(batched.len(), requests.len());
        for (req, got) in requests.iter().zip(&batched) {
            let (alone, _) = block.forward(req);
            prop_assert_eq!(got, &alone, "batched sequence diverged from solo forward");
        }
    }

    /// The segment API is insensitive to how the same columns are grouped
    /// *around* a sequence: a sequence keeps its exact output whether it
    /// rides first, last, or alone.
    #[test]
    fn sequence_output_is_position_independent(cols in 1usize..5) {
        let block = prepared_block(3);
        let probe = hidden(16, cols, 9);
        let other = hidden(16, 3, 4);
        let (solo, _) = block.forward(&probe);
        let (first, _) = block.forward_batch(&[&probe, &other]);
        let (last, _) = block.forward_batch(&[&other, &probe]);
        prop_assert_eq!(&first[0], &solo);
        prop_assert_eq!(&last[1], &solo);
    }
}

#[test]
fn empty_batch_is_empty() {
    let block = prepared_block(0);
    let (outs, wl) = block.forward_batch(&[]);
    assert!(outs.is_empty());
    assert_eq!(wl.total().mul, 0);
}
