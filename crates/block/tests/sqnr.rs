//! Accuracy gate: the quantized block chain tracks the float oracle
//! (`models::engine::forward`) within a calibrated SQNR bound on
//! zoo-distribution activations — the whole point of the AQS pipeline is
//! that 8-bit asymmetric serving stays close to f32.

use panacea_block::{sqnr_report, zoo_hidden_states, zoo_transformer, BlockBuilder};
use panacea_models::engine::TransformerConfig;
use panacea_models::zoo::Benchmark;
use panacea_tensor::stats;

/// End-to-end hidden-state SQNR every block of a 2-block chain must
/// clear on held-out activations. The bound is deliberately below the
/// ~18–25 dB these configs achieve, so it trips on real regressions
/// (a broken requant boundary or GELU table lands near 0 dB) without
/// being flaky across seeds.
const MIN_SQNR_DB: f64 = 12.0;

#[test]
fn quantized_blocks_track_the_float_oracle_on_zoo_activations() {
    let cfg = TransformerConfig {
        d_model: 32,
        n_heads: 4,
        d_ff: 64,
        n_layers: 2,
    };
    for bench in [Benchmark::BertBase, Benchmark::DeitBase] {
        let oracle = zoo_transformer(bench, cfg, 21);
        let calib = zoo_hidden_states(bench, cfg.d_model, 32, 22);
        let blocks = BlockBuilder::default()
            .prepare(&oracle, &calib)
            .expect("prepare");
        // Held-out evaluation sample: same zoo distribution, fresh seed.
        let eval = zoo_hidden_states(bench, cfg.d_model, 24, 23);
        let report = sqnr_report(&blocks, &oracle, &eval);
        assert_eq!(report.len(), 2);
        for r in &report {
            assert!(
                r.sqnr_db > MIN_SQNR_DB,
                "{bench:?} block {} too lossy: {:.1} dB (bound {MIN_SQNR_DB} dB)",
                r.block,
                r.sqnr_db
            );
        }
        // The cascaded end-to-end output agrees too (same figure as the
        // last report entry, asserted independently of the report path).
        let float_out = oracle.forward(&eval);
        let mut h = eval.clone();
        for b in &blocks {
            h = b.forward(&h).0;
        }
        let end_to_end = stats::sqnr_db(float_out.as_slice(), h.as_slice());
        assert!(
            end_to_end > MIN_SQNR_DB,
            "{bench:?} end-to-end SQNR {end_to_end:.1} dB below bound"
        );
    }
}

#[test]
fn low_bit_weights_degrade_gracefully_not_catastrophically() {
    // 4-bit weights should lose fidelity versus 7-bit but still produce
    // a meaningful signal — a sanity check that the block path composes
    // with the OPTQ-style low-bit weight format.
    let cfg = TransformerConfig {
        d_model: 16,
        n_heads: 2,
        d_ff: 32,
        n_layers: 1,
    };
    let oracle = zoo_transformer(Benchmark::BertBase, cfg, 31);
    let calib = zoo_hidden_states(Benchmark::BertBase, 16, 24, 32);
    let hi = BlockBuilder::default().prepare(&oracle, &calib).unwrap();
    let lo = BlockBuilder {
        w_bits: 4,
        ..BlockBuilder::default()
    }
    .prepare(&oracle, &calib)
    .unwrap();
    let eval = zoo_hidden_states(Benchmark::BertBase, 16, 16, 33);
    let hi_sqnr = sqnr_report(&hi, &oracle, &eval)[0].sqnr_db;
    let lo_sqnr = sqnr_report(&lo, &oracle, &eval)[0].sqnr_db;
    assert!(
        hi_sqnr > lo_sqnr,
        "7-bit ({hi_sqnr:.1} dB) should beat 4-bit ({lo_sqnr:.1} dB)"
    );
    assert!(lo_sqnr > 3.0, "4-bit block collapsed: {lo_sqnr:.1} dB");
}
