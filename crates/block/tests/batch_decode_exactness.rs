//! Property tests: continuous-batching decode (`decode_step_batch`) is
//! **bit-exact** per session versus stepping each session alone
//! (`decode_step`) *and* versus a full causal recompute
//! (`forward_segments_causal`) — across sessions with heterogeneous
//! prefix lengths, arbitrary chunkings, and arbitrary interleavings
//! (sessions joining and leaving rounds as their streams run dry). The
//! KV caches a fused pass leaves behind must also be bit-identical to
//! the solo-stepped caches, token for token.
//!
//! This is the contract that lets a serving layer coalesce concurrent
//! sessions' single-token steps into one GEMM pass per layer: batching
//! changes throughput and padding waste, never a session's bits.

use panacea_block::{
    decode_step, decode_step_batch, zoo_hidden_states, zoo_transformer, BlockBuilder, KvCache,
    QuantizedBlock,
};
use panacea_models::engine::TransformerConfig;
use panacea_models::zoo::Benchmark;
use panacea_tensor::Matrix;
use proptest::prelude::*;

const D: usize = 16;

fn stack(seed: u64, n_layers: usize) -> Vec<QuantizedBlock> {
    let cfg = TransformerConfig {
        d_model: D,
        n_heads: 2,
        d_ff: 32,
        n_layers,
    };
    let oracle = zoo_transformer(Benchmark::Gpt2, cfg, seed);
    let calib = zoo_hidden_states(Benchmark::Gpt2, D, 24, seed + 1);
    BlockBuilder::default()
        .prepare(&oracle, &calib)
        .expect("prepare blocks")
}

fn tokens(total: usize, salt: usize) -> Matrix<f32> {
    Matrix::from_fn(D, total, |r, c| {
        (((r * 31 + c * 7 + salt * 13) % 97) as f32 - 48.0) / 24.0
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Sessions with heterogeneous streams, fed through fused batch
    /// passes in whatever per-session chunking the generator picks
    /// (sessions drop out of later rounds when their chunks run dry, so
    /// round composition varies), match solo stepping and the causal
    /// recompute bit for bit — outputs *and* cache contents.
    #[test]
    fn batched_decode_matches_solo_and_full_recompute(
        seed in 0u64..3,
        // Per-session chunk decompositions: 2–4 sessions, each with
        // 1–4 chunks of 1–3 tokens — heterogeneous totals by design.
        chunkings in proptest::collection::vec(
            proptest::collection::vec(1usize..4, 1..5),
            2..5,
        ),
    ) {
        let blocks = stack(seed, 2);
        let n_sessions = chunkings.len();
        let totals: Vec<usize> = chunkings.iter().map(|c| c.iter().sum()).collect();
        let streams: Vec<Matrix<f32>> = totals
            .iter()
            .enumerate()
            .map(|(s, &t)| tokens(t, seed as usize * 10 + s))
            .collect();

        // Oracle A: full causal recompute of each session's stream.
        let recompute: Vec<Matrix<f32>> = streams
            .iter()
            .map(|stream| {
                let mut h = stream.clone();
                for b in &blocks {
                    h = b.forward_segments_causal(&h, &[h.cols()]).0;
                }
                h
            })
            .collect();

        // Oracle B: solo stepping, chunk by chunk, on its own cache.
        let mut solo_kvs: Vec<KvCache> =
            (0..n_sessions).map(|_| KvCache::for_blocks(&blocks)).collect();
        for (s, chunks) in chunkings.iter().enumerate() {
            let mut col = 0;
            for &w in chunks {
                let chunk = streams[s].submatrix(0, col, D, w);
                decode_step(&blocks, &chunk, &mut solo_kvs[s]);
                col += w;
            }
        }

        // Candidate: the same chunks fed through fused batch passes.
        // Round r takes chunk r from every session that still has one,
        // so later rounds shrink as short sessions finish.
        let mut batch_kvs: Vec<KvCache> =
            (0..n_sessions).map(|_| KvCache::for_blocks(&blocks)).collect();
        let mut consumed = vec![0usize; n_sessions];
        let max_rounds = chunkings.iter().map(Vec::len).max().unwrap_or(0);
        for round in 0..max_rounds {
            let mut participants = Vec::new();
            let mut parts = Vec::new();
            let mut segments = Vec::new();
            for (s, chunks) in chunkings.iter().enumerate() {
                if let Some(&w) = chunks.get(round) {
                    parts.push(streams[s].submatrix(0, consumed[s], D, w));
                    segments.push(w);
                    participants.push(s);
                }
            }
            let refs: Vec<&Matrix<f32>> = parts.iter().collect();
            let stacked = Matrix::hstack(&refs).expect("same width");
            let (out, wl) = {
                let mut kv_refs: Vec<&mut KvCache> = Vec::new();
                // Split the cache vec so each participant borrows
                // mutably exactly once, in participant order.
                let mut rest: &mut [KvCache] = &mut batch_kvs;
                let mut base = 0;
                for &s in &participants {
                    let (_, tail) = rest.split_at_mut(s - base);
                    let (kv, tail) = tail.split_first_mut().expect("participant in range");
                    kv_refs.push(kv);
                    rest = tail;
                    base = s + 1;
                }
                decode_step_batch(&blocks, &stacked, &segments, &mut kv_refs)
            };
            prop_assert!(wl.total().mul > 0, "fused pass did no GEMM work");

            // Every participant's output columns match both oracles.
            let mut col = 0;
            for (i, &s) in participants.iter().enumerate() {
                for c in 0..segments[i] {
                    for r in 0..D {
                        prop_assert_eq!(
                            out[(r, col + c)].to_bits(),
                            recompute[s][(r, consumed[s] + c)].to_bits(),
                            "session {} token {} diverged from full recompute",
                            s, consumed[s] + c
                        );
                    }
                }
                col += segments[i];
                consumed[s] += segments[i];
            }
        }

        // The fused passes left every cache bit-identical to solo
        // stepping: same token counts, same K/V words.
        for s in 0..n_sessions {
            prop_assert_eq!(batch_kvs[s].tokens(), totals[s]);
            for b in 0..blocks.len() {
                prop_assert_eq!(
                    batch_kvs[s].block(b).keys(),
                    solo_kvs[s].block(b).keys(),
                    "session {} block {} keys diverged",
                    s, b
                );
                prop_assert_eq!(
                    batch_kvs[s].block(b).values(),
                    solo_kvs[s].block(b).values(),
                    "session {} block {} values diverged",
                    s, b
                );
            }
        }
    }

    /// A fused pass over N single-token steps equals N solo passes even
    /// when the sessions sit at very different prefix depths — the
    /// steady-state shape continuous batching serves.
    #[test]
    fn single_token_fused_steps_at_heterogeneous_depths_match_solo(
        seed in 0u64..2,
        depths in proptest::collection::vec(0usize..6, 2..5),
    ) {
        let blocks = stack(20 + seed, 1);
        let n = depths.len();

        // Prefill each session to its own depth (solo path — already
        // proven exact), keeping a second identical cache for the
        // batched candidate.
        let mut solo_kvs = Vec::new();
        for (s, &depth) in depths.iter().enumerate() {
            let mut kv = KvCache::for_blocks(&blocks);
            if depth > 0 {
                let prefix = tokens(depth, 100 + s);
                decode_step(&blocks, &prefix, &mut kv);
            }
            solo_kvs.push(kv);
        }
        let mut batch_kvs: Vec<KvCache> = solo_kvs.clone();

        // One new token per session.
        let steps: Vec<Matrix<f32>> =
            (0..n).map(|s| tokens(1, 200 + s)).collect();
        let solo_outs: Vec<Matrix<f32>> = steps
            .iter()
            .zip(&mut solo_kvs)
            .map(|(tok, kv)| decode_step(&blocks, tok, kv).0)
            .collect();

        let refs: Vec<&Matrix<f32>> = steps.iter().collect();
        let stacked = Matrix::hstack(&refs).expect("same width");
        let segments = vec![1usize; n];
        let (fused, _) = {
            let mut kv_refs: Vec<&mut KvCache> = batch_kvs.iter_mut().collect();
            decode_step_batch(&blocks, &stacked, &segments, &mut kv_refs)
        };

        for s in 0..n {
            for r in 0..D {
                prop_assert_eq!(
                    fused[(r, s)].to_bits(),
                    solo_outs[s][(r, 0)].to_bits(),
                    "session {} diverged at depth {}",
                    s, depths[s]
                );
            }
            prop_assert_eq!(batch_kvs[s].tokens(), depths[s] + 1);
            for b in 0..blocks.len() {
                prop_assert_eq!(batch_kvs[s].block(b).keys(), solo_kvs[s].block(b).keys());
                prop_assert_eq!(batch_kvs[s].block(b).values(), solo_kvs[s].block(b).values());
            }
        }
    }
}
