//! Property test: N steps of KV-cached decode are **bit-exact** versus
//! a full-prefix causal recompute through `forward_segments_causal`.
//!
//! This is the decode subsystem's core contract — the KV cache is an
//! optimization, never an approximation: the GEMM chain is column-exact
//! under any grouping, and the incremental attention accumulates in the
//! same order as the full causal pass, so no error bound is needed.

use panacea_block::{decode_step, zoo_hidden_states, zoo_transformer, BlockBuilder, KvCache};
use panacea_models::engine::TransformerConfig;
use panacea_models::zoo::Benchmark;
use panacea_tensor::Matrix;
use proptest::prelude::*;

fn stack(seed: u64, n_layers: usize) -> Vec<panacea_block::QuantizedBlock> {
    let cfg = TransformerConfig {
        d_model: 16,
        n_heads: 2,
        d_ff: 32,
        n_layers,
    };
    let oracle = zoo_transformer(Benchmark::Gpt2, cfg, seed);
    let calib = zoo_hidden_states(Benchmark::Gpt2, 16, 24, seed + 1);
    BlockBuilder::default()
        .prepare(&oracle, &calib)
        .expect("prepare blocks")
}

fn tokens(total: usize, salt: usize) -> Matrix<f32> {
    Matrix::from_fn(16, total, |r, c| {
        (((r * 31 + c * 7 + salt * 13) % 97) as f32 - 48.0) / 24.0
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Whatever chunking feeds the tokens in (prefill chunks, single
    /// steps, or a mix), every decoded column is bit-identical to the
    /// matching column of one full causal pass over the whole prefix.
    #[test]
    fn kv_cached_decode_is_bit_exact_vs_full_causal_recompute(
        seed in 0u64..3,
        chunks in proptest::collection::vec(1usize..4, 1..6),
    ) {
        let blocks = stack(seed, 2);
        let total: usize = chunks.iter().sum();
        let prefix = tokens(total, seed as usize);

        // Oracle: one causal full pass over the entire prefix.
        let mut expect = prefix.clone();
        for b in &blocks {
            expect = b.forward_segments_causal(&expect, &[total]).0;
        }

        // Candidate: the same tokens fed chunk by chunk through the
        // KV-cached decode path.
        let mut kv = KvCache::for_blocks(&blocks);
        let mut col = 0;
        for &w in &chunks {
            let chunk = prefix.submatrix(0, col, 16, w);
            let (out, wl) = decode_step(&blocks, &chunk, &mut kv);
            prop_assert!(wl.total().mul > 0, "decode step did no GEMM work");
            for r in 0..16 {
                for c in 0..w {
                    prop_assert_eq!(
                        out[(r, c)].to_bits(),
                        expect[(r, col + c)].to_bits(),
                        "token {} row {} diverged from the causal recompute",
                        col + c, r
                    );
                }
            }
            col += w;
        }
        prop_assert_eq!(kv.tokens(), total);
        prop_assert_eq!(
            kv.resident_bytes(),
            blocks.len() * 2 * 16 * total * 4,
            "resident byte accounting diverged from the cached state"
        );
    }

    /// Single-token stepping equals one multi-token prefill call — the
    /// chunking independence serving relies on when a session's prompt
    /// arrives all at once but generation proceeds token by token.
    #[test]
    fn prefill_equals_single_token_stepping(total in 2usize..7, seed in 0u64..2) {
        let blocks = stack(10 + seed, 1);
        let prefix = tokens(total, 99);

        let mut kv_bulk = KvCache::for_blocks(&blocks);
        let (bulk, _) = decode_step(&blocks, &prefix, &mut kv_bulk);

        let mut kv_step = KvCache::for_blocks(&blocks);
        for c in 0..total {
            let one = prefix.submatrix(0, c, 16, 1);
            let (out, _) = decode_step(&blocks, &one, &mut kv_step);
            for r in 0..16 {
                prop_assert_eq!(out[(r, 0)].to_bits(), bulk[(r, c)].to_bits());
            }
        }
        prop_assert_eq!(kv_bulk.tokens(), kv_step.tokens());
        for b in 0..blocks.len() {
            prop_assert_eq!(kv_bulk.block(b).keys(), kv_step.block(b).keys());
            prop_assert_eq!(kv_bulk.block(b).values(), kv_step.block(b).values());
        }
    }
}
