//! Block preparation: one calibration pass over the float oracle turns
//! each block's four weight GEMMs into prepared AQS layers, glued by a
//! requantizer and a coded-domain GELU table.

use panacea_bitslice::VECTOR_LEN;
use panacea_core::pipeline::QuantizedLinear;
use panacea_models::engine::{CapturedLayer, TinyTransformer, TransformerConfig};
use panacea_models::zoo::{Benchmark, LayerKind};
use panacea_quant::dbs::DbsConfig;
use panacea_quant::{ActivationCalibrator, LayerQuantConfig, Quantizer};
use panacea_tensor::dist::{gelu, DistributionKind};
use panacea_tensor::{stats, Matrix};

use crate::engine::QuantizedBlock;
use crate::BlockError;

/// Quantization knobs for block preparation (mirrors the serving layer's
/// `PrepareOptions`; redeclared here because this crate sits below it).
#[derive(Debug, Clone, Copy)]
pub struct BlockBuilder {
    /// Weight bit-width (SBR format family, e.g. 4 or 7).
    pub w_bits: u8,
    /// Apply zero-point manipulation during calibration.
    pub zpm: bool,
    /// Apply distribution-based bit-slicing during calibration.
    pub dbs: bool,
}

impl Default for BlockBuilder {
    fn default() -> Self {
        BlockBuilder {
            w_bits: 7,
            zpm: true,
            dbs: true,
        }
    }
}

impl BlockBuilder {
    /// Prepares every block of `oracle` in one pass.
    ///
    /// `calibration` is a `d_model × tokens` hidden-state sample for the
    /// first block. The oracle's capturing forward supplies the float
    /// input of all four weight GEMMs of every block (post-LN1, attention
    /// context, post-LN2, post-GELU) in a single traversal, so each
    /// sub-layer's activation format is calibrated on the real tensor it
    /// will see, and block `i+1` is calibrated on block `i`'s float
    /// intermediates — the same PTQ convention as the linear-chain
    /// preparation in `panacea-serve`.
    ///
    /// # Errors
    ///
    /// [`BlockError::Geometry`] when `d_model`/`d_ff` are not multiples
    /// of the PE vector width or the calibration sample has the wrong
    /// feature count, and [`BlockError::Pipeline`] when a weight GEMM
    /// cannot be quantized/sliced at `w_bits`.
    pub fn prepare(
        &self,
        oracle: &TinyTransformer,
        calibration: &Matrix<f32>,
    ) -> Result<Vec<QuantizedBlock>, BlockError> {
        let cfg = oracle.config();
        for (what, dim) in [("d_model", cfg.d_model), ("d_ff", cfg.d_ff)] {
            if dim % VECTOR_LEN != 0 {
                return Err(BlockError::Geometry(format!(
                    "{what} = {dim} must be a multiple of the PE vector width {VECTOR_LEN}"
                )));
            }
        }
        if calibration.rows() != cfg.d_model {
            return Err(BlockError::Geometry(format!(
                "calibration sample has {} features, model width is {}",
                calibration.rows(),
                cfg.d_model
            )));
        }
        if calibration.cols() == 0 {
            return Err(BlockError::Geometry(
                "calibration sample has zero token columns".to_string(),
            ));
        }

        let captures = oracle.captured_layers(calibration);
        debug_assert_eq!(captures.len(), 4 * cfg.n_layers);
        let mut blocks = Vec::with_capacity(cfg.n_layers);
        for bi in 0..cfg.n_layers {
            blocks.push(self.prepare_block(cfg, bi, &captures[4 * bi..4 * bi + 4])?);
        }
        Ok(blocks)
    }

    /// Prepares one block from its four captured `(weight, input)` pairs
    /// (ordered qkv, attn_proj, fc1, fc2).
    fn prepare_block(
        &self,
        cfg: TransformerConfig,
        bi: usize,
        caps: &[CapturedLayer],
    ) -> Result<QuantizedBlock, BlockError> {
        let [qkv_cap, proj_cap, fc1_cap, fc2_cap] = caps else {
            unreachable!("four captures per block");
        };
        debug_assert_eq!(qkv_cap.name, format!("block{bi}.qkv"));

        let cfg_qkv = self.calibrate(&qkv_cap.input);
        let cfg_ctx = self.calibrate(&proj_cap.input);
        let cfg_fc1 = self.calibrate(&fc1_cap.input);
        // The pre-GELU fc1 output is the one sub-layer tensor the
        // capturing forward does not expose (it captures GEMM *inputs*);
        // reconstruct it with one float GEMM.
        let pre_gelu = fc1_cap.weight.gemm_f32(&fc1_cap.input)?;
        let cfg_mid = self.calibrate(&pre_gelu);
        let cfg_fc2 = self.calibrate(&fc2_cap.input);

        let zeros = |m: usize| vec![0.0f32; m];
        let qkv = QuantizedLinear::prepare(
            &qkv_cap.weight,
            &zeros(3 * cfg.d_model),
            self.w_bits,
            cfg_qkv,
        )?;
        let proj =
            QuantizedLinear::prepare(&proj_cap.weight, &zeros(cfg.d_model), self.w_bits, cfg_ctx)?;
        let fc1 =
            QuantizedLinear::prepare(&fc1_cap.weight, &zeros(cfg.d_ff), self.w_bits, cfg_fc1)?
                .with_output(cfg_mid)?;
        let fc2 =
            QuantizedLinear::prepare(&fc2_cap.weight, &zeros(cfg.d_model), self.w_bits, cfg_fc2)?;

        // Coded-domain GELU: every representable pre-GELU code maps to an
        // fc2 input code, so fc1 → GELU → fc2 is a pure code pipeline.
        let gelu_lut = (0..=cfg_mid.max_code())
            .map(|c| {
                cfg_fc2
                    .quantizer
                    .quantize(gelu(cfg_mid.quantizer.dequantize(c)))
            })
            .collect();

        Ok(QuantizedBlock {
            d_model: cfg.d_model,
            n_heads: cfg.n_heads,
            d_ff: cfg.d_ff,
            qkv,
            proj,
            fc1,
            fc2,
            gelu_lut,
        })
    }

    fn calibrate(&self, x: &Matrix<f32>) -> LayerQuantConfig {
        let mut cal = ActivationCalibrator::new(8).with_zpm(self.zpm);
        if self.dbs {
            cal = cal.with_dbs(DbsConfig::default());
        }
        cal.observe(x);
        cal.finalize()
    }
}

/// One block's fidelity figure from [`sqnr_report`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockSqnr {
    /// Block index.
    pub block: usize,
    /// SQNR (dB) of the quantized chain's hidden states after this block
    /// versus the float oracle's — cascaded, so quantization error
    /// accumulated in earlier blocks is charged here too.
    pub sqnr_db: f64,
}

/// Runs `x` through the quantized blocks and the float oracle in
/// lockstep, reporting the hidden-state SQNR after every block. This is
/// the per-block accuracy audit for a prepared block chain: the float
/// path is exactly [`TinyTransformer::forward`] (same `tensor::ops`
/// math), so the gap is purely quantization.
///
/// # Panics
///
/// Panics if the block count or widths disagree with the oracle.
pub fn sqnr_report(
    blocks: &[QuantizedBlock],
    oracle: &TinyTransformer,
    x: &Matrix<f32>,
) -> Vec<BlockSqnr> {
    assert_eq!(
        blocks.len(),
        oracle.config().n_layers,
        "block count disagrees with the oracle"
    );
    let mut h_float = x.clone();
    let mut h_quant = x.clone();
    let mut report = Vec::with_capacity(blocks.len());
    for (bi, block) in blocks.iter().enumerate() {
        h_float = oracle.forward_block(bi, &h_float);
        h_quant = block.forward(&h_quant).0;
        report.push(BlockSqnr {
            block: bi,
            sqnr_db: stats::sqnr_db(h_float.as_slice(), h_quant.as_slice()),
        });
    }
    report
}

/// Builds a float oracle whose weights follow a zoo benchmark's
/// per-kind weight distributions at the given (typically scaled-down)
/// geometry — so block experiments run on the outlier structure the
/// paper's benchmark models actually have, not i.i.d. Gaussians.
///
/// # Panics
///
/// Panics if `cfg.d_model` is not divisible by `cfg.n_heads`.
pub fn zoo_transformer(bench: Benchmark, cfg: TransformerConfig, seed: u64) -> TinyTransformer {
    use panacea_models::engine::BlockWeights;
    let spec = bench.spec();
    let dist_for = |kinds: &[LayerKind]| {
        spec.layers
            .iter()
            .find(|l| kinds.contains(&l.kind))
            .map(|l| l.weight_dist)
            .unwrap_or(DistributionKind::Gaussian {
                mean: 0.0,
                std: 0.02,
            })
    };
    let d_qkv = dist_for(&[LayerKind::Qkv]);
    let d_proj = dist_for(&[LayerKind::AttnProj]);
    let d_fc1 = dist_for(&[LayerKind::MlpFc1, LayerKind::GateUp]);
    let d_fc2 = dist_for(&[LayerKind::MlpFc2, LayerKind::DownProj]);
    let mut rng = panacea_tensor::seeded_rng(seed);
    let blocks = (0..cfg.n_layers)
        .map(|_| BlockWeights {
            w_qkv: d_qkv.sample_matrix(3 * cfg.d_model, cfg.d_model, &mut rng),
            w_proj: d_proj.sample_matrix(cfg.d_model, cfg.d_model, &mut rng),
            w_fc1: d_fc1.sample_matrix(cfg.d_ff, cfg.d_model, &mut rng),
            w_fc2: d_fc2.sample_matrix(cfg.d_model, cfg.d_ff, &mut rng),
        })
        .collect();
    TinyTransformer::from_weights(cfg, blocks)
}

/// Samples `d_model × tokens` block-input hidden states from the
/// benchmark's QKV-layer activation distribution — the zoo's model of
/// what hidden states entering a block look like (tight core, asymmetric
/// outlier channels).
pub fn zoo_hidden_states(
    bench: Benchmark,
    d_model: usize,
    tokens: usize,
    seed: u64,
) -> Matrix<f32> {
    let spec = bench.spec();
    let dist = spec
        .layers
        .iter()
        .find(|l| l.kind == LayerKind::Qkv)
        .map(|l| l.act_dist)
        .unwrap_or(DistributionKind::Gaussian {
            mean: 0.0,
            std: 1.0,
        });
    let mut rng = panacea_tensor::seeded_rng(seed);
    dist.sample_matrix(d_model, tokens, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> TransformerConfig {
        TransformerConfig {
            d_model: 16,
            n_heads: 2,
            d_ff: 32,
            n_layers: 2,
        }
    }

    fn setup() -> (TinyTransformer, Matrix<f32>, Vec<QuantizedBlock>) {
        let oracle = zoo_transformer(Benchmark::BertBase, small_cfg(), 1);
        let calib = zoo_hidden_states(Benchmark::BertBase, 16, 24, 2);
        let blocks = BlockBuilder::default()
            .prepare(&oracle, &calib)
            .expect("prepare");
        (oracle, calib, blocks)
    }

    #[test]
    fn prepare_builds_one_quantized_block_per_oracle_block() {
        let (oracle, _, blocks) = setup();
        assert_eq!(blocks.len(), oracle.config().n_layers);
        for b in &blocks {
            assert_eq!(b.d_model(), 16);
            assert_eq!(b.n_heads(), 2);
            assert_eq!(b.d_ff(), 32);
        }
    }

    #[test]
    fn forward_preserves_shape_and_counts_work_per_sublayer() {
        let (_, calib, blocks) = setup();
        let (out, wl) = blocks[0].forward(&calib);
        assert_eq!(out.shape(), calib.shape());
        for (name, w) in [
            ("qkv", wl.qkv),
            ("attn_proj", wl.attn_proj),
            ("fc1", wl.fc1),
            ("fc2", wl.fc2),
        ] {
            assert!(w.mul > 0, "{name} sub-layer did no work");
        }
        assert_eq!(
            wl.total().mul,
            wl.qkv.mul + wl.attn_proj.mul + wl.fc1.mul + wl.fc2.mul
        );
    }

    #[test]
    fn forward_is_deterministic() {
        let (_, calib, blocks) = setup();
        let (a, _) = blocks[1].forward(&calib);
        let (b, _) = blocks[1].forward(&calib);
        assert_eq!(a, b);
    }

    #[test]
    fn unaligned_geometry_is_rejected() {
        let cfg = TransformerConfig {
            d_model: 18,
            n_heads: 2,
            d_ff: 32,
            n_layers: 1,
        };
        let oracle = TinyTransformer::new_random(cfg, 3);
        let calib = Matrix::<f32>::zeros(18, 8);
        assert!(matches!(
            BlockBuilder::default().prepare(&oracle, &calib),
            Err(BlockError::Geometry(_))
        ));
    }

    #[test]
    fn wrong_calibration_width_is_rejected() {
        let oracle = TinyTransformer::new_random(small_cfg(), 4);
        assert!(matches!(
            BlockBuilder::default().prepare(&oracle, &Matrix::<f32>::zeros(12, 8)),
            Err(BlockError::Geometry(_))
        ));
        assert!(matches!(
            BlockBuilder::default().prepare(&oracle, &Matrix::<f32>::zeros(16, 0)),
            Err(BlockError::Geometry(_))
        ));
    }

    #[test]
    fn sqnr_report_covers_every_block_with_finite_figures() {
        let (oracle, calib, blocks) = setup();
        let report = sqnr_report(&blocks, &oracle, &calib);
        assert_eq!(report.len(), 2);
        for r in &report {
            assert!(r.sqnr_db.is_finite(), "block {} SQNR not finite", r.block);
        }
    }

    #[test]
    fn gelu_lut_matches_pointwise_quantization() {
        let (_, _, blocks) = setup();
        let b = &blocks[0];
        // Spot-check: LUT entries are valid fc2 input codes.
        let max = b.fc2.input_config().max_code();
        assert!(b.gelu_lut.iter().all(|&c| (0..=max).contains(&c)));
    }
}
