//! `panacea-block` — a quantized transformer-block execution engine.
//!
//! The rest of the workspace quantizes *isolated* GEMMs:
//! `core::pipeline::QuantizedLinear` runs one weight layer, and
//! `panacea-serve` chains them linearly. Real decoder workloads execute
//! transformer *blocks* — LayerNorm → QKV GEMM → multi-head attention →
//! output projection → residual → LayerNorm → MLP → residual — where the
//! GEMMs are separated by structural f32 math. This crate closes that
//! gap:
//!
//! ```text
//!  h ─ LN ─ q8 ─▶ QKV AQS-GEMM ─ deq ─▶ attention (f32, per segment)
//!                                           │ q8
//!                                           ▼
//!                                 proj AQS-GEMM ─ deq ─▶ (+h) residual
//!                                                           │
//!              LN ─ q8 ─▶ fc1 AQS-GEMM ── requant ──▶ 8-bit codes
//!                                                           │ GELU LUT
//!                                 fc2 AQS-GEMM ◀── codes ───┘
//!                                       │ deq
//!                                       ▼
//!                                 (+) residual ─▶ h'
//! ```
//!
//! * All four weight GEMMs run the full AQS pipeline
//!   ([`QuantizedLinear`](panacea_core::pipeline::QuantizedLinear)):
//!   SBR-sliced weights, calibrated asymmetric activations, compression +
//!   skipping + compensation.
//! * The fc1 → fc2 boundary never leaves the coded domain: fc1's
//!   accumulators are requantized (fixed-point, [`panacea_quant::requant`])
//!   into an 8-bit pre-GELU format and GELU is applied as a 256-entry
//!   code→code lookup table, exactly how integer inference stacks fold
//!   elementwise glue between consecutive GEMMs instead of round-tripping
//!   through f32.
//! * Attention, LayerNorm, and the residual adds run in f32 using the
//!   *same* [`panacea_tensor::ops`] implementations as the float oracle
//!   ([`panacea_models::engine::TinyTransformer`]), so quantization is the
//!   only source of divergence — measured per block by [`sqnr_report`].
//! * [`QuantizedBlock::forward_batch`] coalesces independent sequences
//!   into one wide GEMM `N` dimension (attention stays per-sequence) and
//!   splits the result back **bit-exactly** — the contract the serving
//!   batcher relies on.

pub mod builder;
pub mod engine;
pub mod kv;
pub mod stage_timing;

use std::fmt;

use panacea_core::pipeline::PipelineError;
use panacea_tensor::matrix::MatrixError;

pub use builder::{sqnr_report, zoo_hidden_states, zoo_transformer, BlockBuilder, BlockSqnr};
pub use engine::{BlockWorkload, QuantizedBlock};
pub use kv::{decode_step, decode_step_batch, BlockKvState, KvCache};
pub use stage_timing::{set_stage_timing_enabled, stage_snapshots, stage_timing_enabled};

/// Errors from block preparation.
#[derive(Debug)]
pub enum BlockError {
    /// A geometry constraint failed (head divisibility, PE vector
    /// alignment, calibration width).
    Geometry(String),
    /// A weight GEMM failed to quantize/slice.
    Pipeline(PipelineError),
    /// A float calibration product had incompatible shapes.
    Matrix(MatrixError),
}

impl fmt::Display for BlockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockError::Geometry(msg) => write!(f, "block geometry invalid: {msg}"),
            BlockError::Pipeline(e) => write!(f, "block layer preparation failed: {e}"),
            BlockError::Matrix(e) => write!(f, "block calibration failed: {e}"),
        }
    }
}

impl std::error::Error for BlockError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BlockError::Pipeline(e) => Some(e),
            BlockError::Matrix(e) => Some(e),
            BlockError::Geometry(_) => None,
        }
    }
}

impl From<PipelineError> for BlockError {
    fn from(e: PipelineError) -> Self {
        BlockError::Pipeline(e)
    }
}

impl From<MatrixError> for BlockError {
    fn from(e: MatrixError) -> Self {
        BlockError::Matrix(e)
    }
}
