//! The block executor: four prepared AQS GEMMs plus the shared f32 glue.

use panacea_bitslice::VECTOR_LEN;
use panacea_core::pipeline::QuantizedLinear;
use panacea_core::Workload;
use panacea_quant::Quantizer;
use panacea_tensor::{ops, Matrix};

use crate::stage_timing::{stage_end, stage_start, Stage};

/// Per-sub-layer AQS workload of one block execution — which of the four
/// weight GEMMs the multiplies and slice traffic went to.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockWorkload {
    /// Stacked QKV projection.
    pub qkv: Workload,
    /// Attention output projection.
    pub attn_proj: Workload,
    /// First MLP projection (includes its requantization boundary).
    pub fc1: Workload,
    /// Second MLP projection.
    pub fc2: Workload,
}

impl BlockWorkload {
    /// Sum over the four sub-layers — the scalar figure the serving
    /// metrics aggregate.
    pub fn total(&self) -> Workload {
        self.qkv
            .merged(&self.attn_proj)
            .merged(&self.fc1)
            .merged(&self.fc2)
    }

    /// Element-wise sum of two block workloads.
    pub fn merged(&self, other: &BlockWorkload) -> BlockWorkload {
        BlockWorkload {
            qkv: self.qkv.merged(&other.qkv),
            attn_proj: self.attn_proj.merged(&other.attn_proj),
            fc1: self.fc1.merged(&other.fc1),
            fc2: self.fc2.merged(&other.fc2),
        }
    }
}

/// One prepared pre-norm transformer block.
///
/// Built by [`BlockBuilder`](crate::BlockBuilder); immutable afterwards,
/// so it can be shared across serving workers exactly like a prepared
/// linear chain. Hidden states are `d_model × tokens` f32 matrices.
#[derive(Debug, Clone)]
pub struct QuantizedBlock {
    pub(crate) d_model: usize,
    pub(crate) n_heads: usize,
    pub(crate) d_ff: usize,
    /// QKV projection; accumulators are dequantized for attention.
    pub(crate) qkv: QuantizedLinear,
    /// Attention output projection.
    pub(crate) proj: QuantizedLinear,
    /// First MLP GEMM, requantizing into the pre-GELU 8-bit format.
    pub(crate) fc1: QuantizedLinear,
    /// Second MLP GEMM, consuming the LUT-activated codes.
    pub(crate) fc2: QuantizedLinear,
    /// Coded-domain GELU: pre-GELU code → fc2 input code.
    pub(crate) gelu_lut: Vec<i32>,
}

impl QuantizedBlock {
    /// Model width (`d_model`).
    pub fn d_model(&self) -> usize {
        self.d_model
    }

    /// Attention heads.
    pub fn n_heads(&self) -> usize {
        self.n_heads
    }

    /// MLP hidden width.
    pub fn d_ff(&self) -> usize {
        self.d_ff
    }

    /// Runs the block on one sequence of hidden states
    /// (`d_model × tokens`), returning the next hidden states and the
    /// per-sub-layer workload.
    ///
    /// # Panics
    ///
    /// Panics if `h.rows() != d_model` or `h` has zero columns.
    pub fn forward(&self, h: &Matrix<f32>) -> (Matrix<f32>, BlockWorkload) {
        self.forward_segments(h, &[h.cols()])
    }

    /// Runs the block on several independent sequences at once: their
    /// token columns are coalesced into one wide GEMM `N` dimension
    /// (LayerNorm, quantization, and all four GEMMs run in a single
    /// pass), while attention is applied per sequence so tokens never
    /// attend across requests. The outputs are split back per request —
    /// bit-identical to running each sequence alone through
    /// [`forward`](Self::forward), because every coalesced step is
    /// column-exact and attention only reads its own segment.
    ///
    /// # Panics
    ///
    /// Panics if the sequences disagree on `d_model`, any is empty, or
    /// the slice itself is handed zero requests with zero columns total.
    pub fn forward_batch(&self, requests: &[&Matrix<f32>]) -> (Vec<Matrix<f32>>, BlockWorkload) {
        if requests.is_empty() {
            return (Vec::new(), BlockWorkload::default());
        }
        let widths: Vec<usize> = requests.iter().map(|x| x.cols()).collect();
        let stacked =
            Matrix::hstack(requests).expect("batched sequences must share the model width");
        let (out, wl) = self.forward_segments(&stacked, &widths);
        let parts = out
            .split_cols(&widths)
            .expect("block forward keeps one output column per input column");
        (parts, wl)
    }

    /// The general entry point: `x` packs independent sequences
    /// column-wise, `segments` lists their token counts in order. Columns
    /// beyond the segment sum are treated as padding — they flow through
    /// the GEMMs (columns are independent, so they cannot perturb real
    /// outputs) but are not attended. The input is zero-padded up to the
    /// PE array's vector width internally and the output trimmed back to
    /// `x`'s width.
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != d_model`, `x` has zero columns, or the
    /// segments sum past `x.cols()`.
    pub fn forward_segments(
        &self,
        x: &Matrix<f32>,
        segments: &[usize],
    ) -> (Matrix<f32>, BlockWorkload) {
        self.forward_segments_impl(x, segments, false)
    }

    /// [`forward_segments`](Self::forward_segments) with **causal**
    /// attention: within each segment, token `i` attends only to tokens
    /// `j ≤ i`. This is the decoder-semantics full-prefix pass — the
    /// recompute oracle KV-cached decode
    /// ([`forward_decode`](Self::forward_decode)) is bit-identical to.
    ///
    /// # Panics
    ///
    /// Same conditions as [`forward_segments`](Self::forward_segments).
    pub fn forward_segments_causal(
        &self,
        x: &Matrix<f32>,
        segments: &[usize],
    ) -> (Matrix<f32>, BlockWorkload) {
        self.forward_segments_impl(x, segments, true)
    }

    fn forward_segments_impl(
        &self,
        x: &Matrix<f32>,
        segments: &[usize],
        causal: bool,
    ) -> (Matrix<f32>, BlockWorkload) {
        assert_eq!(x.rows(), self.d_model, "hidden-state width mismatch");
        let n = x.cols();
        assert!(n > 0, "block forward needs at least one token column");
        let used: usize = segments.iter().sum();
        assert!(used <= n, "segments describe more columns than provided");

        // Pad once at entry; every sub-layer preserves N.
        let aligned = n.div_ceil(VECTOR_LEN) * VECTOR_LEN;
        let padded;
        let xp = if aligned == n {
            x
        } else {
            padded = Matrix::from_fn(
                self.d_model,
                aligned,
                |r, c| {
                    if c < n {
                        x[(r, c)]
                    } else {
                        0.0
                    }
                },
            );
            &padded
        };

        // Attention sub-layer.
        let t = stage_start();
        let ln1 = ops::layer_norm(xp);
        let (qkv_f, wl_qkv) = self.run_dequant(&self.qkv, &ln1);
        stage_end(Stage::Qkv, t);
        let t = stage_start();
        let mut ctx = Matrix::<f32>::zeros(self.d_model, aligned);
        let mut col = 0;
        for &len in segments {
            if len == 0 {
                continue;
            }
            let seg = qkv_f.submatrix(0, col, qkv_f.rows(), len);
            let seg_ctx = if causal {
                ops::multi_head_attention_causal(&seg, self.n_heads)
            } else {
                ops::multi_head_attention(&seg, self.n_heads)
            };
            for r in 0..self.d_model {
                for c in 0..len {
                    ctx[(r, col + c)] = seg_ctx[(r, c)];
                }
            }
            col += len;
        }
        stage_end(Stage::Attn, t);
        let t = stage_start();
        let (attn_out, wl_proj) = self.run_dequant(&self.proj, &ctx);
        let h = ops::add(xp, &attn_out);
        stage_end(Stage::Proj, t);

        let (out, wl_fc1, wl_fc2) = self.mlp_sublayer(&h);

        let out = if aligned == n {
            out
        } else {
            out.submatrix(0, 0, self.d_model, n)
        };
        (
            out,
            BlockWorkload {
                qkv: wl_qkv,
                attn_proj: wl_proj,
                fc1: wl_fc1,
                fc2: wl_fc2,
            },
        )
    }

    /// One KV-cached decode step: runs the block on the freshly
    /// appended tokens of one sequence (`d_model × t_new`, usually one
    /// column), attending them causally over `state`'s cached prefix,
    /// and appends their keys/values to the cache. Only the new columns
    /// pass through the GEMMs, so a step costs O(prefix) instead of the
    /// O(prefix²) a full recompute pays across a generation.
    ///
    /// Stepping tokens through this method — in any chunking — is
    /// **bit-identical** per column to one causal full pass
    /// ([`forward_segments_causal`](Self::forward_segments_causal)) over
    /// the concatenated sequence: the GEMM chain is column-exact under
    /// any grouping, and the incremental attention accumulates in the
    /// same order as the full causal pass.
    ///
    /// # Panics
    ///
    /// Panics if `h_new.rows() != d_model`, `h_new` has zero columns,
    /// or the cache was built for a different width.
    pub fn forward_decode(
        &self,
        h_new: &Matrix<f32>,
        state: &mut crate::kv::BlockKvState,
    ) -> (Matrix<f32>, BlockWorkload) {
        self.forward_decode_batch(h_new, &[h_new.cols()], &mut [state])
    }

    /// Continuous-batching decode: many sessions' freshly appended token
    /// columns, stacked side by side in `h_new` (`d_model × Σsegments`),
    /// run through **one** QKV / proj / fc1 / fc2 GEMM pass, while
    /// incremental causal attention (and the K/V append) runs per
    /// session against that session's own cache state. `segments[i]`
    /// columns belong to `states[i]`, in order.
    ///
    /// Because every coalesced stage of the pipeline is column-exact and
    /// attention only reads its own segment plus its own cached prefix,
    /// each session's output columns are **bit-identical** to running
    /// that session alone through [`forward_decode`](Self::forward_decode)
    /// — coalescing changes the GEMM width (and the padding waste), never
    /// the bits. This is the kernel-level contract the serving layer's
    /// decode batcher is built on: N concurrent single-token steps cost
    /// one `N`-wide GEMM pass per layer instead of N padded width-1
    /// passes.
    ///
    /// # Panics
    ///
    /// Panics if `h_new.rows() != d_model`, `segments` and `states`
    /// disagree in length, any segment is zero, the segments do not sum
    /// to `h_new.cols()`, or any state was built for a different width.
    pub fn forward_decode_batch(
        &self,
        h_new: &Matrix<f32>,
        segments: &[usize],
        states: &mut [&mut crate::kv::BlockKvState],
    ) -> (Matrix<f32>, BlockWorkload) {
        assert_eq!(h_new.rows(), self.d_model, "hidden-state width mismatch");
        let n = h_new.cols();
        assert!(n > 0, "decode step needs at least one token column");
        assert_eq!(
            segments.len(),
            states.len(),
            "one KV state per coalesced session"
        );
        assert!(
            segments.iter().all(|&s| s > 0),
            "decode segments must be non-empty"
        );
        assert_eq!(
            segments.iter().sum::<usize>(),
            n,
            "segments must cover every stacked column"
        );
        for state in states.iter() {
            assert_eq!(
                state.d_model(),
                self.d_model,
                "KV cache width disagrees with the block"
            );
        }

        // Pad to the PE vector width exactly like the stateless path;
        // padded columns never enter attention or the caches.
        let aligned = n.div_ceil(VECTOR_LEN) * VECTOR_LEN;
        let padded;
        let xp = if aligned == n {
            h_new
        } else {
            padded = Matrix::from_fn(self.d_model, aligned, |r, c| {
                if c < n {
                    h_new[(r, c)]
                } else {
                    0.0
                }
            });
            &padded
        };

        let t = stage_start();
        let ln1 = ops::layer_norm(xp);
        let (qkv_f, wl_qkv) = self.run_dequant(&self.qkv, &ln1);
        stage_end(Stage::Qkv, t);
        let t = stage_start();
        let mut ctx = Matrix::<f32>::zeros(self.d_model, aligned);
        let mut col = 0;
        for (&len, state) in segments.iter().zip(states.iter_mut()) {
            let seg_qkv = qkv_f.submatrix(0, col, qkv_f.rows(), len);
            let seg_ctx = ops::multi_head_attention_decode(
                &seg_qkv,
                state.keys(),
                state.values(),
                self.n_heads,
            );
            state.append_from_qkv(&seg_qkv, len);
            for r in 0..self.d_model {
                for c in 0..len {
                    ctx[(r, col + c)] = seg_ctx[(r, c)];
                }
            }
            col += len;
        }
        stage_end(Stage::Attn, t);
        let t = stage_start();
        let (attn_out, wl_proj) = self.run_dequant(&self.proj, &ctx);
        let h = ops::add(xp, &attn_out);
        stage_end(Stage::Proj, t);

        let (out, wl_fc1, wl_fc2) = self.mlp_sublayer(&h);

        let out = if aligned == n {
            out
        } else {
            out.submatrix(0, 0, self.d_model, n)
        };
        (
            out,
            BlockWorkload {
                qkv: wl_qkv,
                attn_proj: wl_proj,
                fc1: wl_fc1,
                fc2: wl_fc2,
            },
        )
    }

    /// The MLP half of the block, shared by the stateless and decode
    /// paths: fc1 requantizes straight into the pre-GELU 8-bit format,
    /// the LUT applies GELU code→code, and fc2 consumes the codes — no
    /// f32 round-trip between the two GEMMs. Returns the post-residual
    /// hidden states plus the two GEMM workloads.
    fn mlp_sublayer(&self, h: &Matrix<f32>) -> (Matrix<f32>, Workload, Workload) {
        let t = stage_start();
        let ln2 = ops::layer_norm(h);
        let fc1_codes = self.fc1.input_config().quantizer.quantize_matrix(&ln2);
        let (mid_codes, wl_fc1) = self.fc1.forward_codes(&fc1_codes);
        stage_end(Stage::Fc1, t);
        let t = stage_start();
        let fc2_codes = mid_codes.map(|&c| self.gelu_lut[c as usize]);
        let (fc2_acc, wl_fc2) = self.fc2.forward(&fc2_codes);
        let s_fc2 = self.fc2.accumulator_scale();
        let mlp_out = fc2_acc.map(|&v| (f64::from(v) * s_fc2) as f32);
        let out = ops::add(h, &mlp_out);
        stage_end(Stage::Fc2, t);
        (out, wl_fc1, wl_fc2)
    }

    /// Quantize → AQS-GEMM → dequantize for the sub-layers whose output
    /// feeds f32 structural math (attention, residual).
    fn run_dequant(&self, layer: &QuantizedLinear, x: &Matrix<f32>) -> (Matrix<f32>, Workload) {
        let codes = layer.input_config().quantizer.quantize_matrix(x);
        let (acc, wl) = layer.forward(&codes);
        let s = layer.accumulator_scale();
        (acc.map(|&v| (f64::from(v) * s) as f32), wl)
    }
}
