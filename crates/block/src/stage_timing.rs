//! Process-global sub-layer stage timing for block execution.
//!
//! Every [`QuantizedBlock`](crate::QuantizedBlock) forward pass times
//! its five sub-stages — the QKV GEMM, attention, the output
//! projection, and the two MLP GEMMs — into one process-global set of
//! [`Histogram`]s. The rollup is global rather than per-block because
//! a serving deployment runs many blocks per model per shard and the
//! question the histograms answer ("where does a forward pass spend
//! its time?") is a process-level one; the serve-layer histograms
//! carry the per-shard breakdown.
//!
//! Timing is on by default and costs two `Instant::now()` calls per
//! GEMM — negligible next to the GEMM itself, and gated by the decode
//! bench's ≤3% overhead assertion. [`set_stage_timing_enabled`] turns
//! it off entirely (one relaxed atomic load per stage), which is what
//! the bench's A/B comparison toggles.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use panacea_telemetry::{Histogram, HistogramSnapshot};

static ENABLED: AtomicBool = AtomicBool::new(true);

struct StageSet {
    qkv: Histogram,
    attn: Histogram,
    proj: Histogram,
    fc1: Histogram,
    fc2: Histogram,
}

fn stages() -> &'static StageSet {
    static STAGES: OnceLock<StageSet> = OnceLock::new();
    STAGES.get_or_init(|| StageSet {
        qkv: Histogram::new(),
        attn: Histogram::new(),
        proj: Histogram::new(),
        fc1: Histogram::new(),
        fc2: Histogram::new(),
    })
}

/// One of the five timed sub-stages of a block forward pass.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Stage {
    Qkv,
    Attn,
    Proj,
    Fc1,
    Fc2,
}

/// Starts timing a stage; `None` when timing is disabled.
pub(crate) fn stage_start() -> Option<Instant> {
    ENABLED.load(Ordering::Relaxed).then(Instant::now)
}

/// Finishes timing a stage started with [`stage_start`].
pub(crate) fn stage_end(stage: Stage, started: Option<Instant>) {
    let Some(started) = started else { return };
    let set = stages();
    let hist = match stage {
        Stage::Qkv => &set.qkv,
        Stage::Attn => &set.attn,
        Stage::Proj => &set.proj,
        Stage::Fc1 => &set.fc1,
        Stage::Fc2 => &set.fc2,
    };
    hist.record_duration(started.elapsed());
}

/// Turns block sub-layer stage timing on or off process-wide.
pub fn set_stage_timing_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether block sub-layer stage timing is currently on.
pub fn stage_timing_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Snapshots of the process-global block stage histograms (nanosecond
/// samples), tagged with their wire-format stage names.
pub fn stage_snapshots() -> Vec<(&'static str, HistogramSnapshot)> {
    let set = stages();
    vec![
        ("block_qkv", set.qkv.snapshot()),
        ("block_attn", set.attn.snapshot()),
        ("block_proj", set.proj.snapshot()),
        ("block_fc1", set.fc1.snapshot()),
        ("block_fc2", set.fc2.snapshot()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toggle_gates_recording_and_snapshots_roll_up() {
        // The stage set is process-global and other tests record into
        // it concurrently, so assert deltas, never absolute counts.
        set_stage_timing_enabled(false);
        let t = stage_start();
        assert!(t.is_none(), "disabled timing must not start timers");
        stage_end(Stage::Qkv, t);
        set_stage_timing_enabled(true);
        let before: u64 = stage_snapshots().iter().map(|(_, s)| s.count).sum();
        let t = stage_start();
        assert!(t.is_some());
        stage_end(Stage::Fc2, t);
        let after: u64 = stage_snapshots().iter().map(|(_, s)| s.count).sum();
        assert!(after > before, "enabled timing must record");
    }
}
