//! Per-sequence key/value state for autoregressive decode.
//!
//! A stateless block stack recomputes attention over the whole prefix
//! for every new token — O(tokens²) across a generation. A [`KvCache`]
//! instead keeps each block's keys and values for every token already
//! decoded, so [`QuantizedBlock::forward_decode`] only runs the GEMMs on
//! the *new* columns and attends them over the cached prefix: one step
//! costs O(tokens), and stepping is **bit-identical** to a full causal
//! recompute ([`QuantizedBlock::forward_segments_causal`]) because every
//! coalesced step of the pipeline is column-exact and the incremental
//! attention accumulates in the same order as the full pass.
//!
//! The cache is decoder-semantics by construction: token `i` attends
//! only to `j ≤ i`, so an already-decoded token's hidden states (and
//! hence its cached K/V at every block) never change when later tokens
//! arrive. Bidirectional (encoder-style) stacks cannot be KV-cached —
//! use the stateless [`QuantizedBlock::forward_segments`] path for
//! those.

use panacea_tensor::Matrix;

use crate::engine::{BlockWorkload, QuantizedBlock};

/// One block's cached attention state: keys and values in the
/// **token-major** layout [`panacea_tensor::ops::multi_head_attention_decode`]
/// consumes (token `j`'s features occupy `[j·d_model, (j+1)·d_model)`),
/// so appending a decoded token is an O(d_model) push — the prefix is
/// never rebuilt or copied on the per-token hot path.
#[derive(Debug, Clone)]
pub struct BlockKvState {
    d_model: usize,
    k: Vec<f32>,
    v: Vec<f32>,
}

impl BlockKvState {
    fn new(d_model: usize) -> Self {
        BlockKvState {
            d_model,
            k: Vec::new(),
            v: Vec::new(),
        }
    }

    /// The feature width every cached token has.
    pub fn d_model(&self) -> usize {
        self.d_model
    }

    /// Cached keys, token-major (`tokens × d_model` flattened).
    pub fn keys(&self) -> &[f32] {
        &self.k
    }

    /// Cached values, token-major (`tokens × d_model` flattened).
    pub fn values(&self) -> &[f32] {
        &self.v
    }

    /// Tokens resident in this block's cache.
    pub fn tokens(&self) -> usize {
        self.k.len() / self.d_model.max(1)
    }

    /// Grows the backing buffers to hold `additional` more tokens
    /// without reallocating — the serving layer calls this once per
    /// prefill chunk (and at session open) so the per-token append never
    /// pays incremental `Vec` growth on the hot path.
    pub fn reserve_tokens(&mut self, additional: usize) {
        let cells = additional.saturating_mul(self.d_model);
        self.k.reserve(cells);
        self.v.reserve(cells);
    }

    /// Discards every cached token past the first `tokens`, keeping the
    /// prefix intact — a no-op when the cache already holds that few.
    /// Capacity is retained: a rolled-back step's reservation is reused
    /// by the retry.
    pub fn truncate_tokens(&mut self, tokens: usize) {
        let cells = tokens.saturating_mul(self.d_model);
        self.k.truncate(cells);
        self.v.truncate(cells);
    }

    /// Appends the K and V rows of freshly decoded tokens, read from a
    /// stacked QKV tensor (`3·d_model × t_new`, rows ordered Q, K, V) —
    /// O(d_model · t_new), independent of the prefix length.
    ///
    /// The destination region is sized once up front and each feature
    /// row of the source is walked as one contiguous slice (the tensor
    /// is row-major), so the copy is slice traversals plus strided
    /// stores — no per-cell bounds-checked 2-D indexing.
    ///
    /// # Panics
    ///
    /// Panics if `qkv.rows() != 3·d_model` or `cols` exceeds the
    /// tensor's width.
    pub(crate) fn append_from_qkv(&mut self, qkv: &Matrix<f32>, cols: usize) {
        let d = self.d_model;
        assert_eq!(qkv.rows(), 3 * d, "QKV width disagrees with the cache");
        assert!(cols <= qkv.cols(), "append exceeds the QKV width");
        let w = qkv.cols();
        let src = qkv.as_slice();
        let kb = self.k.len();
        let vb = self.v.len();
        self.k.resize(kb + cols * d, 0.0);
        self.v.resize(vb + cols * d, 0.0);
        for f in 0..d {
            let krow = &src[(d + f) * w..(d + f) * w + cols];
            let vrow = &src[(2 * d + f) * w..(2 * d + f) * w + cols];
            for (c, (&kx, &vx)) in krow.iter().zip(vrow).enumerate() {
                // Token-major destination: token c's features at
                // [c·d, (c+1)·d).
                self.k[kb + c * d + f] = kx;
                self.v[vb + c * d + f] = vx;
            }
        }
    }
}

/// Per-sequence decode state: one [`BlockKvState`] per block of the
/// stack, plus the token count they all share. Created by
/// [`KvCache::for_blocks`], grown exclusively by
/// [`QuantizedBlock::forward_decode`] (via [`decode_step`]).
#[derive(Debug, Clone)]
pub struct KvCache {
    d_model: usize,
    states: Vec<BlockKvState>,
}

impl KvCache {
    /// An empty cache for a stack of `n_blocks` blocks of width
    /// `d_model`.
    pub fn new(d_model: usize, n_blocks: usize) -> Self {
        KvCache {
            d_model,
            states: (0..n_blocks).map(|_| BlockKvState::new(d_model)).collect(),
        }
    }

    /// An empty cache shaped for `blocks`.
    ///
    /// # Panics
    ///
    /// Panics if the blocks disagree on `d_model` (a stack that cannot
    /// execute at all).
    pub fn for_blocks(blocks: &[QuantizedBlock]) -> Self {
        let d_model = blocks.first().map_or(0, QuantizedBlock::d_model);
        assert!(
            blocks.iter().all(|b| b.d_model() == d_model),
            "block stack disagrees on d_model"
        );
        KvCache::new(d_model, blocks.len())
    }

    /// The model width every cached K/V column has.
    pub fn d_model(&self) -> usize {
        self.d_model
    }

    /// Number of per-block states (the stack depth this cache serves).
    pub fn num_blocks(&self) -> usize {
        self.states.len()
    }

    /// Tokens decoded into this cache so far.
    pub fn tokens(&self) -> usize {
        self.states.first().map_or(0, BlockKvState::tokens)
    }

    /// Bytes of f32 K/V state currently resident — the figure a serving
    /// layer's session byte budget accounts.
    pub fn resident_bytes(&self) -> usize {
        self.num_blocks() * 2 * self.d_model * self.tokens() * std::mem::size_of::<f32>()
    }

    /// Bytes one decoded token adds to a cache of this shape — known
    /// before a step runs, so budgets can be enforced up front.
    pub fn bytes_per_token(&self) -> usize {
        self.num_blocks() * 2 * self.d_model * std::mem::size_of::<f32>()
    }

    /// One block's cached state.
    ///
    /// # Panics
    ///
    /// Panics if `block >= self.num_blocks()`.
    pub fn block(&self, block: usize) -> &BlockKvState {
        &self.states[block]
    }

    pub(crate) fn block_mut(&mut self, block: usize) -> &mut BlockKvState {
        &mut self.states[block]
    }

    /// Pre-reserves room for `additional` more tokens in every block's
    /// K/V buffers — see [`BlockKvState::reserve_tokens`].
    pub fn reserve_tokens(&mut self, additional: usize) {
        for state in &mut self.states {
            state.reserve_tokens(additional);
        }
    }

    /// Rolls the whole cache back to its first `tokens` tokens. This is
    /// the panic-isolation primitive: a fused decode pass that dies
    /// partway may have appended K/V to some blocks but not others, so
    /// the serving layer snapshots [`tokens`](Self::tokens) before the
    /// pass and truncates back on the way out — restoring a consistent
    /// prefix a solo retry can step from.
    pub fn truncate_tokens(&mut self, tokens: usize) {
        for state in &mut self.states {
            state.truncate_tokens(tokens);
        }
    }
}

/// Runs `h_new` (`d_model × t_new`, the freshly appended tokens of one
/// sequence) through a whole block stack with KV-cached incremental
/// attention, returning the new tokens' output hidden states and the
/// summed workload. The cache must have been built for this stack
/// ([`KvCache::for_blocks`]) and is advanced by `t_new` tokens.
///
/// Stepping tokens through this function — in any chunking — is
/// bit-identical to one full causal pass
/// ([`QuantizedBlock::forward_segments_causal`]) over the concatenated
/// sequence.
///
/// # Panics
///
/// Panics if the cache shape disagrees with `blocks` or `h_new` with
/// `d_model` (serving layers validate first).
pub fn decode_step(
    blocks: &[QuantizedBlock],
    h_new: &Matrix<f32>,
    kv: &mut KvCache,
) -> (Matrix<f32>, BlockWorkload) {
    decode_step_batch(blocks, h_new, &[h_new.cols()], &mut [kv])
}

/// Continuous-batching decode across a whole block stack: many sessions'
/// freshly appended token columns (stacked in `h_new`, `segments[i]`
/// columns per session, in order) run through **one** GEMM pass per
/// block via [`QuantizedBlock::forward_decode_batch`], while attention
/// and the K/V append stay per session against `kvs[i]`. Every cache is
/// advanced by its own segment's token count.
///
/// Each session's output columns are **bit-identical** to stepping that
/// session alone through [`decode_step`] — coalescing fills the GEMM `N`
/// dimension (reclaiming the PE array's pad-to-vector waste) without
/// changing a single bit. See the batch-decode exactness property tests.
///
/// # Panics
///
/// Panics if `segments`/`kvs` disagree in length, any segment is zero or
/// the segments do not sum to `h_new.cols()`, or any cache disagrees
/// with `blocks` on depth or width (serving layers validate first).
pub fn decode_step_batch(
    blocks: &[QuantizedBlock],
    h_new: &Matrix<f32>,
    segments: &[usize],
    kvs: &mut [&mut KvCache],
) -> (Matrix<f32>, BlockWorkload) {
    assert_eq!(
        segments.len(),
        kvs.len(),
        "one KV cache per coalesced session"
    );
    for (&len, kv) in segments.iter().zip(kvs.iter_mut()) {
        assert_eq!(
            kv.num_blocks(),
            blocks.len(),
            "KV cache built for a different stack depth"
        );
        // One reservation covers the whole chunk across every block, so
        // the per-token appends below never grow the buffers.
        kv.reserve_tokens(len);
    }
    let mut h = h_new.clone();
    let mut wl = BlockWorkload::default();
    for (bi, block) in blocks.iter().enumerate() {
        let mut states: Vec<&mut BlockKvState> =
            kvs.iter_mut().map(|kv| kv.block_mut(bi)).collect();
        let (next, w) = block.forward_decode_batch(&h, segments, &mut states);
        wl = wl.merged(&w);
        h = next;
    }
    (h, wl)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cache_has_zero_footprint() {
        let kv = KvCache::new(16, 2);
        assert_eq!(kv.tokens(), 0);
        assert_eq!(kv.resident_bytes(), 0);
        assert_eq!(kv.num_blocks(), 2);
        assert_eq!(kv.bytes_per_token(), 2 * 2 * 16 * 4);
    }

    #[test]
    fn append_grows_tokens_and_bytes_token_major() {
        let mut kv = KvCache::new(8, 3);
        // Q rows 0..8 = 1.0, K rows 8..16 = 2.0, V rows 16..24 = 3.0.
        let qkv = Matrix::from_fn(24, 2, |r, _| (r / 8) as f32 + 1.0);
        for b in 0..3 {
            kv.block_mut(b).append_from_qkv(&qkv, 2);
        }
        assert_eq!(kv.tokens(), 2);
        assert_eq!(kv.resident_bytes(), 2 * kv.bytes_per_token());
        assert_eq!(kv.block(1).keys().len(), 16);
        assert!(kv.block(1).keys().iter().all(|&x| x == 2.0));
        assert!(kv.block(1).values().iter().all(|&x| x == 3.0));
        assert_eq!(kv.block(1).d_model(), 8);
    }

    #[test]
    fn truncate_rolls_back_to_a_consistent_prefix() {
        let mut kv = KvCache::new(8, 3);
        let qkv = Matrix::from_fn(24, 3, |r, c| (r / 8) as f32 + c as f32);
        for b in 0..3 {
            kv.block_mut(b).append_from_qkv(&qkv, 3);
        }
        // Simulate a half-applied step: one block got an extra token.
        kv.block_mut(1).append_from_qkv(&qkv, 1);
        kv.truncate_tokens(3);
        assert_eq!(kv.tokens(), 3);
        for b in 0..3 {
            assert_eq!(kv.block(b).tokens(), 3, "block {b} rolled back");
        }
        assert_eq!(kv.resident_bytes(), 3 * kv.bytes_per_token());
        // Truncating past the resident count is a no-op.
        kv.truncate_tokens(10);
        assert_eq!(kv.tokens(), 3);
        kv.truncate_tokens(0);
        assert_eq!(kv.tokens(), 0);
        assert_eq!(kv.resident_bytes(), 0);
    }
}
