//! Run-length encoding of compressed slice-vector streams (Fig. 7(a)).
//!
//! An RLE stream stores only the *uncompressed* vectors; each carries a
//! 4-bit skip index counting the compressed vectors preceding it. Runs
//! longer than 15 are continued with payload-free skip entries. The index
//! decoder (IDXD) in each PEA reverses the encoding to recover original
//! vector positions.

use serde::{Deserialize, Serialize};

/// Maximum skip count per index (4-bit indices ⇒ 15).
pub const MAX_SKIP: usize = 15;

/// One RLE entry: `skip` compressed vectors, then optionally a payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RleEntry<T> {
    /// Number of compressed vectors preceding this entry's payload
    /// (`0..=15`).
    pub skip: u8,
    /// The uncompressed vector, or `None` for a pure run-continuation
    /// entry.
    pub payload: Option<T>,
}

/// A run-length-encoded stream of slice vectors.
///
/// # Examples
///
/// ```
/// use panacea_bitslice::RleStream;
///
/// // Compress every zero in a scalar stream.
/// let data = [0u8, 0, 7, 0, 0, 0, 9];
/// let stream = RleStream::encode(&data, |&v| v == 0);
/// let decoded = stream.decode();
/// assert_eq!(decoded, vec![(2, 7), (6, 9)]);
/// assert_eq!(stream.total_vectors(), 7);
/// assert_eq!(stream.compressed_count(), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RleStream<T> {
    entries: Vec<RleEntry<T>>,
    total_vectors: usize,
}

impl<T: Copy> RleStream<T> {
    /// Encodes a vector stream, compressing every element for which
    /// `is_compressed` returns `true`.
    pub fn encode(vectors: &[T], mut is_compressed: impl FnMut(&T) -> bool) -> Self {
        let mut entries = Vec::new();
        let mut run = 0usize;
        for v in vectors {
            if is_compressed(v) {
                run += 1;
            } else {
                while run > MAX_SKIP {
                    entries.push(RleEntry {
                        skip: MAX_SKIP as u8,
                        payload: None,
                    });
                    run -= MAX_SKIP;
                }
                entries.push(RleEntry {
                    skip: run as u8,
                    payload: Some(*v),
                });
                run = 0;
            }
        }
        // Trailing compressed vectors are implicit in `total_vectors`.
        RleStream {
            entries,
            total_vectors: vectors.len(),
        }
    }

    /// Decodes into `(original_index, vector)` pairs for the uncompressed
    /// vectors — what the PEA's index decoder produces.
    pub fn decode(&self) -> Vec<(usize, T)> {
        let mut out = Vec::new();
        let mut pos = 0usize;
        for e in &self.entries {
            pos += usize::from(e.skip);
            if let Some(v) = e.payload {
                out.push((pos, v));
                pos += 1;
            }
        }
        out
    }

    /// The encoded entries, in order.
    pub fn entries(&self) -> &[RleEntry<T>] {
        &self.entries
    }

    /// Number of vectors in the original stream.
    pub fn total_vectors(&self) -> usize {
        self.total_vectors
    }

    /// Number of uncompressed (stored) vectors.
    pub fn uncompressed_count(&self) -> usize {
        self.entries.iter().filter(|e| e.payload.is_some()).count()
    }

    /// Number of compressed (skipped) vectors.
    pub fn compressed_count(&self) -> usize {
        self.total_vectors - self.uncompressed_count()
    }

    /// Encoded size in bits: 4 bits of index per entry plus
    /// `payload_bits` per stored vector (16 for a 4×4-bit slice vector).
    pub fn encoded_bits(&self, payload_bits: usize) -> usize {
        self.entries.len() * 4 + self.uncompressed_count() * payload_bits
    }
}

impl<T: Copy + Default> RleStream<T> {
    /// Fully reconstructs the original stream, filling compressed
    /// positions with `fill`.
    pub fn reconstruct_with(&self, fill: T) -> Vec<T> {
        let mut out = vec![fill; self.total_vectors];
        for (i, v) in self.decode() {
            out[i] = v;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::ActVector;
    use proptest::prelude::*;

    #[test]
    fn all_compressed_stream_has_no_entries_with_payload() {
        let data = [0u8; 40];
        let s = RleStream::encode(&data, |&v| v == 0);
        assert_eq!(s.uncompressed_count(), 0);
        assert_eq!(s.compressed_count(), 40);
        assert_eq!(s.decode(), vec![]);
    }

    #[test]
    fn dense_stream_stores_everything() {
        let data = [1u8, 2, 3];
        let s = RleStream::encode(&data, |&v| v == 0);
        assert_eq!(s.uncompressed_count(), 3);
        assert_eq!(s.decode(), vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn long_runs_split_at_15() {
        let mut data = vec![0u8; 37];
        data.push(5);
        let s = RleStream::encode(&data, |&v| v == 0);
        // 37 = 15 + 15 + 7: two continuation entries + one payload entry.
        assert_eq!(s.entries().len(), 3);
        assert_eq!(
            s.entries()[0],
            RleEntry {
                skip: 15,
                payload: None
            }
        );
        assert_eq!(
            s.entries()[1],
            RleEntry {
                skip: 15,
                payload: None
            }
        );
        assert_eq!(
            s.entries()[2],
            RleEntry {
                skip: 7,
                payload: Some(5)
            }
        );
        assert_eq!(s.decode(), vec![(37, 5)]);
    }

    #[test]
    fn encoded_bits_accounts_for_indices_and_payloads() {
        let data = [0u8, 1, 0, 2];
        let s = RleStream::encode(&data, |&v| v == 0);
        // Two entries with payloads: 2·4 index bits + 2·16 payload bits.
        assert_eq!(s.encoded_bits(16), 8 + 32);
    }

    #[test]
    fn works_with_slice_vectors() {
        let r = 10u8;
        let vectors = [
            ActVector([r; 4]),
            ActVector([r, r, 9, r]),
            ActVector([r; 4]),
            ActVector([r; 4]),
            ActVector([1, 2, 3, 4]),
        ];
        let s = RleStream::encode(&vectors, |v| v.is_uniform(r));
        let decoded = s.decode();
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[0], (1, ActVector([r, r, 9, r])));
        assert_eq!(decoded[1], (4, ActVector([1, 2, 3, 4])));
    }

    #[test]
    fn reconstruct_with_fills_compressed_positions() {
        let data = [0u8, 3, 0, 0, 8];
        let s = RleStream::encode(&data, |&v| v == 0);
        assert_eq!(s.reconstruct_with(0), data.to_vec());
    }

    proptest! {
        #[test]
        fn encode_decode_round_trips(data in proptest::collection::vec(0u8..4, 0..200)) {
            let s = RleStream::encode(&data, |&v| v == 0);
            prop_assert_eq!(s.reconstruct_with(0), data.clone());
            prop_assert_eq!(s.total_vectors(), data.len());
            let nz = data.iter().filter(|&&v| v != 0).count();
            prop_assert_eq!(s.uncompressed_count(), nz);
        }

        #[test]
        fn decoded_indices_are_strictly_increasing(
            data in proptest::collection::vec(0u8..3, 0..120)
        ) {
            let s = RleStream::encode(&data, |&v| v == 0);
            let idx: Vec<usize> = s.decode().into_iter().map(|(i, _)| i).collect();
            for w in idx.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
        }
    }
}
