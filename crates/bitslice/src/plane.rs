//! Whole-tensor slice planes.
//!
//! A sliced tensor is stored as a stack of 4-bit *planes*, one per slice
//! position, least-significant first. Weights use SBR planes
//! ([`SlicedWeight`], positional weight `8^i`); activations use
//! straightforward planes ([`SlicedActivation`], positional weight `16^i`,
//! or the DBS-adjusted weights `2^{l−4}` / `2^l` for 8-bit values).

use std::fmt;

use panacea_quant::dbs::{dbs_slices, dbs_truncate, DbsType};
use panacea_tensor::Matrix;
use serde::{Deserialize, Serialize};

use crate::slicing::{sbr_slices, straightforward_slices, MAX_SBR_LO_SLICES};

/// Errors from slice-plane constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SliceError {
    /// A value does not fit the declared bit-width.
    ValueOutOfRange {
        /// The offending value.
        value: i32,
        /// The declared total bit-width.
        bits: u8,
    },
    /// DBS types other than type-1 are only defined for 8-bit activations.
    DbsUnsupported {
        /// The number of LO slices requested.
        k: usize,
    },
    /// The requested slice count is outside the supported range.
    UnsupportedSliceCount(usize),
}

impl fmt::Display for SliceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SliceError::ValueOutOfRange { value, bits } => {
                write!(f, "value {value} does not fit in {bits} bits")
            }
            SliceError::DbsUnsupported { k } => {
                write!(
                    f,
                    "DBS types 2/3 require 8-bit activations (k = 1), got k = {k}"
                )
            }
            SliceError::UnsupportedSliceCount(n) => write!(f, "unsupported slice count {n}"),
        }
    }
}

impl std::error::Error for SliceError {}

/// SBR slice planes of a symmetrically-quantized weight matrix.
///
/// # Examples
///
/// ```
/// use panacea_bitslice::SlicedWeight;
/// use panacea_tensor::Matrix;
///
/// let w = Matrix::from_vec(2, 2, vec![-3, 40, 0, -64]).unwrap();
/// let sw = SlicedWeight::from_int(&w, 1)?;
/// assert_eq!(sw.num_planes(), 2);
/// assert_eq!(sw.reconstruct(), w);
/// // Near-zero entries have zero HO slices.
/// assert_eq!(sw.ho()[(0, 0)], 0);
/// # Ok::<(), panacea_bitslice::SliceError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlicedWeight {
    planes: Vec<Matrix<i8>>,
    n: usize,
}

impl SlicedWeight {
    /// Slices a `(3n+4)`-bit signed weight matrix with SBR.
    ///
    /// # Errors
    ///
    /// Returns [`SliceError::ValueOutOfRange`] if any entry exceeds the
    /// `(3n+4)`-bit signed range, or
    /// [`SliceError::UnsupportedSliceCount`] if `n > 4`.
    pub fn from_int(w: &Matrix<i32>, n: usize) -> Result<Self, SliceError> {
        if n > MAX_SBR_LO_SLICES {
            return Err(SliceError::UnsupportedSliceCount(n));
        }
        let bits = 3 * n as u8 + 4;
        let lo = -(1i32 << (bits - 1));
        let hi = (1i32 << (bits - 1)) - 1;
        if let Some(&v) = w.iter().find(|&&v| !(lo..=hi).contains(&v)) {
            return Err(SliceError::ValueOutOfRange { value: v, bits });
        }
        let mut planes = vec![Matrix::<i8>::zeros(w.rows(), w.cols()); n + 1];
        for r in 0..w.rows() {
            for c in 0..w.cols() {
                for (i, s) in sbr_slices(w[(r, c)], n).into_iter().enumerate() {
                    planes[i][(r, c)] = s;
                }
            }
        }
        Ok(SlicedWeight { planes, n })
    }

    /// Number of planes (`n + 1`).
    pub fn num_planes(&self) -> usize {
        self.planes.len()
    }

    /// Total bit-width represented (`3n + 4`).
    pub fn bits(&self) -> u8 {
        3 * self.n as u8 + 4
    }

    /// Plane `i` (0 = least significant).
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_planes()`.
    pub fn plane(&self, i: usize) -> &Matrix<i8> {
        &self.planes[i]
    }

    /// The high-order plane.
    pub fn ho(&self) -> &Matrix<i8> {
        self.planes
            .last()
            .expect("SlicedWeight always has at least one plane")
    }

    /// Positional weight of plane `i` (`8^i`).
    pub fn plane_weight(&self, i: usize) -> i32 {
        8i32.pow(i as u32)
    }

    /// Exact inverse: `Σ planes[i]·8^i`.
    pub fn reconstruct(&self) -> Matrix<i32> {
        let (rows, cols) = self.planes[0].shape();
        Matrix::from_fn(rows, cols, |r, c| {
            self.planes
                .iter()
                .enumerate()
                .map(|(i, p)| i32::from(p[(r, c)]) * self.plane_weight(i))
                .sum()
        })
    }
}

/// Straightforward (DBS-aware) slice planes of an asymmetrically-quantized
/// unsigned activation matrix.
///
/// # Examples
///
/// ```
/// use panacea_bitslice::SlicedActivation;
/// use panacea_quant::dbs::DbsType;
/// use panacea_tensor::Matrix;
///
/// let x = Matrix::from_vec(1, 4, vec![0, 170, 255, 16]).unwrap();
/// let sx = SlicedActivation::from_uint(&x, 1, DbsType::Type1)?;
/// assert_eq!(sx.reconstruct(), x);
/// assert_eq!(sx.ho()[(0, 1)], 10); // 170 = 0xAA
/// # Ok::<(), panacea_bitslice::SliceError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlicedActivation {
    planes: Vec<Matrix<u8>>,
    k: usize,
    dbs_type: DbsType,
}

impl SlicedActivation {
    /// Slices a `(4k+4)`-bit unsigned activation matrix.
    ///
    /// For `k = 1` (8-bit) the DBS type controls the logical LO width;
    /// type-2/3 slicing is *lossy* by `2^{l−4}−1` LSBs per value, exactly
    /// as the hardware computes (Fig. 10). For `k ≥ 2` only type-1 is
    /// defined (the paper's mixed-precision layers use plain slicing).
    ///
    /// # Errors
    ///
    /// Returns [`SliceError::ValueOutOfRange`] for entries outside
    /// `[0, 2^{4k+4})`, [`SliceError::DbsUnsupported`] for non-type-1 DBS
    /// with `k ≠ 1`, or [`SliceError::UnsupportedSliceCount`] for `k > 7`.
    pub fn from_uint(x: &Matrix<i32>, k: usize, dbs_type: DbsType) -> Result<Self, SliceError> {
        if k > 7 {
            return Err(SliceError::UnsupportedSliceCount(k));
        }
        if dbs_type != DbsType::Type1 && k != 1 {
            return Err(SliceError::DbsUnsupported { k });
        }
        let bits = 4 * (k as u8 + 1);
        let hi = (1i64 << bits) - 1;
        if let Some(&v) = x.iter().find(|&&v| v < 0 || i64::from(v) > hi) {
            return Err(SliceError::ValueOutOfRange { value: v, bits });
        }
        let mut planes = vec![Matrix::<u8>::zeros(x.rows(), x.cols()); k + 1];
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                let v = x[(r, c)];
                if k == 1 {
                    let (ho, lo) = dbs_slices(v, dbs_type);
                    planes[0][(r, c)] = lo;
                    planes[1][(r, c)] = ho;
                } else {
                    for (i, s) in straightforward_slices(v as u32, k).into_iter().enumerate() {
                        planes[i][(r, c)] = s;
                    }
                }
            }
        }
        Ok(SlicedActivation {
            planes,
            k,
            dbs_type,
        })
    }

    /// Number of planes (`k + 1`).
    pub fn num_planes(&self) -> usize {
        self.planes.len()
    }

    /// The DBS type this activation was sliced under.
    pub fn dbs_type(&self) -> DbsType {
        self.dbs_type
    }

    /// Plane `i` (0 = least significant).
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_planes()`.
    pub fn plane(&self, i: usize) -> &Matrix<u8> {
        &self.planes[i]
    }

    /// The high-order plane.
    pub fn ho(&self) -> &Matrix<u8> {
        self.planes
            .last()
            .expect("SlicedActivation always has at least one plane")
    }

    /// Positional weight of plane `i`: `16^i` in general; for 8-bit values
    /// under DBS the LO plane weighs `2^{l−4}` and the HO plane `2^l`.
    pub fn plane_weight(&self, i: usize) -> i32 {
        if self.k == 1 {
            let l = u32::from(self.dbs_type.lo_bits());
            match i {
                0 => 1 << (l - 4),
                _ => 1 << l,
            }
        } else {
            16i32.pow(i as u32)
        }
    }

    /// Reconstructs the represented values: bit-exact for type-1, the
    /// DBS-truncated value for types 2/3.
    pub fn reconstruct(&self) -> Matrix<i32> {
        let (rows, cols) = self.planes[0].shape();
        Matrix::from_fn(rows, cols, |r, c| {
            self.planes
                .iter()
                .enumerate()
                .map(|(i, p)| i32::from(p[(r, c)]) * self.plane_weight(i))
                .sum()
        })
    }
}

/// The value a DBS-sliced activation plane stack actually represents —
/// the reference for the lossy type-2/3 paths.
pub fn dbs_effective_value(v: i32, ty: DbsType) -> i32 {
    dbs_truncate(v, ty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn weight_round_trip_n1() {
        let w = Matrix::from_fn(8, 8, |r, c| (r as i32 * 8 + c as i32) - 32);
        let sw = SlicedWeight::from_int(&w, 1).unwrap();
        assert_eq!(sw.reconstruct(), w);
        assert_eq!(sw.bits(), 7);
    }

    #[test]
    fn weight_rejects_out_of_range() {
        let w = Matrix::from_vec(1, 1, vec![64]).unwrap();
        assert_eq!(
            SlicedWeight::from_int(&w, 1).unwrap_err(),
            SliceError::ValueOutOfRange { value: 64, bits: 7 }
        );
    }

    #[test]
    fn weight_rejects_too_many_slices() {
        let w = Matrix::<i32>::zeros(1, 1);
        assert!(matches!(
            SlicedWeight::from_int(&w, 9),
            Err(SliceError::UnsupportedSliceCount(9))
        ));
    }

    #[test]
    fn activation_round_trip_type1() {
        let x = Matrix::from_fn(4, 4, |r, c| (r * 64 + c * 16) as i32);
        let sx = SlicedActivation::from_uint(&x, 1, DbsType::Type1).unwrap();
        assert_eq!(sx.reconstruct(), x);
    }

    #[test]
    fn activation_k2_is_12_bit() {
        let x = Matrix::from_vec(1, 2, vec![4095, 0]).unwrap();
        let sx = SlicedActivation::from_uint(&x, 2, DbsType::Type1).unwrap();
        assert_eq!(sx.num_planes(), 3);
        assert_eq!(sx.reconstruct(), x);
        assert!(SlicedActivation::from_uint(
            &Matrix::from_vec(1, 1, vec![4096]).unwrap(),
            2,
            DbsType::Type1
        )
        .is_err());
    }

    #[test]
    fn activation_dbs_types_truncate() {
        let x = Matrix::from_vec(1, 3, vec![0b0101_0101, 255, 3]).unwrap();
        for ty in [DbsType::Type2, DbsType::Type3] {
            let sx = SlicedActivation::from_uint(&x, 1, ty).unwrap();
            let rec = sx.reconstruct();
            for i in 0..3 {
                assert_eq!(rec[(0, i)], dbs_effective_value(x[(0, i)], ty), "ty={ty}");
            }
        }
    }

    #[test]
    fn dbs_requires_8bit() {
        let x = Matrix::<i32>::zeros(1, 1);
        assert!(matches!(
            SlicedActivation::from_uint(&x, 2, DbsType::Type2),
            Err(SliceError::DbsUnsupported { k: 2 })
        ));
    }

    #[test]
    fn negative_activation_rejected() {
        let x = Matrix::from_vec(1, 1, vec![-1]).unwrap();
        assert!(matches!(
            SlicedActivation::from_uint(&x, 1, DbsType::Type1),
            Err(SliceError::ValueOutOfRange { value: -1, bits: 8 })
        ));
    }

    proptest! {
        #[test]
        fn weight_planes_round_trip(vals in proptest::collection::vec(-64i32..=63, 16)) {
            let w = Matrix::from_vec(4, 4, vals).unwrap();
            let sw = SlicedWeight::from_int(&w, 1).unwrap();
            prop_assert_eq!(sw.reconstruct(), w);
        }

        #[test]
        fn activation_planes_round_trip(vals in proptest::collection::vec(0i32..=255, 16)) {
            let x = Matrix::from_vec(4, 4, vals).unwrap();
            let sx = SlicedActivation::from_uint(&x, 1, DbsType::Type1).unwrap();
            prop_assert_eq!(sx.reconstruct(), x);
        }

        #[test]
        fn dbs_truncation_error_bounded(vals in proptest::collection::vec(0i32..=255, 8)) {
            let x = Matrix::from_vec(2, 4, vals).unwrap();
            for ty in [DbsType::Type2, DbsType::Type3] {
                let sx = SlicedActivation::from_uint(&x, 1, ty).unwrap();
                let rec = sx.reconstruct();
                let bound = (1 << ty.discarded_lsbs()) - 1;
                for (orig, got) in x.iter().zip(rec.iter()) {
                    prop_assert!(orig - got <= bound && orig >= got);
                }
            }
        }
    }
}
