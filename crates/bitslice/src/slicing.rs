//! Scalar slicing schemes (paper Fig. 3).
//!
//! # Signed bit-slice representation (SBR)
//!
//! A `(3n+4)`-bit signed weight is segmented into one 4-bit **signed** HO
//! slice and `n` 3-bit **unsigned** LO slices, which are then extended into
//! 4-bit signed slices by borrowing the sign of the slice above and
//! compensating that slice by `+1` (Fig. 3(b)). The crucial property is
//! that *both* positive and negative near-zero values end up with an
//! all-zero HO slice, doubling HO sparsity relative to straightforward
//! two's-complement slicing (whose `1111₂` HO slices cannot be skipped).
//!
//! Slice `i` (0 = least significant) carries positional weight `8^i`;
//! reconstruction is `value = Σ slices[i]·8^i`.
//!
//! # Straightforward slicing
//!
//! A `(4k+4)`-bit unsigned activation splits into `k+1` plain 4-bit
//! unsigned slices of weight `16^i`. The 8-bit case is additionally
//! DBS-aware (see [`panacea_quant::dbs`]): slice weights become
//! `2^{l−4}` / `2^l` when the LO slice is logically `l` bits wide.

/// Maximum supported SBR LO-slice count (`n ≤ 4` ⇒ up to 16-bit weights).
pub const MAX_SBR_LO_SLICES: usize = 4;

/// Signed-bit-slice-representation of `value` as a `(3n+4)`-bit integer.
///
/// Returns `n + 1` 4-bit signed slices, least-significant first; slice `i`
/// has positional weight `8^i` and every slice lies in `[-8, 7]`.
///
/// # Panics
///
/// Panics if `n > MAX_SBR_LO_SLICES` or `value` does not fit in
/// `(3n+4)` signed bits.
///
/// # Examples
///
/// The paper's Fig. 3(b): `1111_111₂` (−1 as a 7-bit value) becomes HO
/// `0000₂` and LO `1111₂` (−1), exposing a skippable HO slice:
///
/// ```
/// let s = panacea_bitslice::slicing::sbr_slices(-1, 1);
/// assert_eq!(s, vec![-1, 0]);
/// ```
pub fn sbr_slices(value: i32, n: usize) -> Vec<i8> {
    assert!(
        n <= MAX_SBR_LO_SLICES,
        "SBR with n={n} LO slices unsupported"
    );
    let bits = 3 * n as u32 + 4;
    let lo_bound = -(1i32 << (bits - 1));
    let hi_bound = (1i32 << (bits - 1)) - 1;
    assert!(
        (lo_bound..=hi_bound).contains(&value),
        "value {value} does not fit in {bits} signed bits"
    );
    let mut slices = Vec::with_capacity(n + 1);
    let mut rest = value;
    for _ in 0..n {
        let lo = rest & 7; // low 3 bits, in [0, 7]
        rest >>= 3; // arithmetic shift = floor division by 8
        if rest < 0 {
            // Extend the unsigned LO slice with the sign of the part above
            // and compensate (+1) so the sum is preserved (Fig. 3(b)).
            slices.push((lo - 8) as i8);
            rest += 1;
        } else {
            slices.push(lo as i8);
        }
    }
    debug_assert!((-8..=7).contains(&rest), "HO slice {rest} out of range");
    slices.push(rest as i8);
    slices
}

/// Inverse of [`sbr_slices`]: `Σ slices[i]·8^i`.
///
/// # Examples
///
/// ```
/// use panacea_bitslice::slicing::{sbr_reconstruct, sbr_slices};
/// assert_eq!(sbr_reconstruct(&sbr_slices(-64, 1)), -64);
/// ```
pub fn sbr_reconstruct(slices: &[i8]) -> i32 {
    slices
        .iter()
        .enumerate()
        .map(|(i, &s)| i32::from(s) * 8i32.pow(i as u32))
        .sum()
}

/// Positional weight of SBR slice `i`: `8^i`.
pub fn sbr_slice_weight(i: usize) -> i32 {
    8i32.pow(i as u32)
}

/// Straightforward slicing of an unsigned `(4k+4)`-bit value into `k + 1`
/// 4-bit unsigned slices, least-significant first (weight `16^i`).
///
/// # Panics
///
/// Panics if `value` does not fit in `4k+4` bits.
///
/// # Examples
///
/// ```
/// let s = panacea_bitslice::slicing::straightforward_slices(0xAB, 1);
/// assert_eq!(s, vec![0xB, 0xA]);
/// ```
pub fn straightforward_slices(value: u32, k: usize) -> Vec<u8> {
    let bits = 4 * (k as u32 + 1);
    assert!(
        bits <= 32 && u64::from(value) < (1u64 << bits),
        "value {value} does not fit in {bits} bits"
    );
    (0..=k).map(|i| ((value >> (4 * i)) & 0xF) as u8).collect()
}

/// Inverse of [`straightforward_slices`]: `Σ slices[i]·16^i`.
pub fn straightforward_reconstruct(slices: &[u8]) -> u32 {
    slices
        .iter()
        .enumerate()
        .map(|(i, &s)| u32::from(s) << (4 * i))
        .sum()
}

/// The straightforward *signed* slicing of the earlier literature
/// (Fig. 3(a)): 4-bit signed HO + 4-bit unsigned LO of an 8-bit signed
/// value. Provided for the motivation experiments — it cannot skip
/// `1111₂` HO slices of small negatives, which is exactly SBR's fix.
///
/// Returns `(ho, lo)` with `value = ho·16 + lo`, `ho ∈ [−8, 7]`,
/// `lo ∈ [0, 15]`.
///
/// # Panics
///
/// Panics if `value ∉ [−128, 127]`.
///
/// # Examples
///
/// ```
/// let (ho, lo) = panacea_bitslice::slicing::naive_signed_slices(-3);
/// assert_eq!(ho, -1); // 1111₂ — NOT skippable
/// assert_eq!(lo, 13);
/// ```
pub fn naive_signed_slices(value: i32) -> (i8, u8) {
    assert!(
        (-128..=127).contains(&value),
        "value {value} not 8-bit signed"
    );
    let lo = (value & 0xF) as u8;
    let ho = (value >> 4) as i8; // arithmetic: floor(value / 16)
    (ho, lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sbr_paper_examples() {
        // Fig. 3(b), n = 1 (7-bit): −1 → HO 0000, LO 1111 (−1).
        assert_eq!(sbr_slices(-1, 1), vec![-1, 0]);
        // Small positives keep a zero HO slice too.
        assert_eq!(sbr_slices(5, 1), vec![5, 0]);
        // A mid-range positive: 37 = 4·8 + 5.
        assert_eq!(sbr_slices(37, 1), vec![5, 4]);
        // A mid-range negative: −37 = 1011_011₂; the LO slice takes the HO
        // sign bit (011 → 1011₂ = −5) and HO is compensated: −5 + 1 = −4.
        assert_eq!(sbr_slices(-37, 1), vec![-5, -4]);
    }

    #[test]
    fn sbr_extremes_fit() {
        assert_eq!(sbr_reconstruct(&sbr_slices(63, 1)), 63);
        assert_eq!(sbr_reconstruct(&sbr_slices(-64, 1)), -64);
        assert_eq!(sbr_reconstruct(&sbr_slices(511, 2)), 511);
        assert_eq!(sbr_reconstruct(&sbr_slices(-512, 2)), -512);
    }

    #[test]
    fn sbr_n0_is_plain_4bit() {
        for v in -8..=7 {
            assert_eq!(sbr_slices(v, 0), vec![v as i8]);
        }
    }

    #[test]
    fn sbr_near_zero_values_have_zero_ho() {
        // SBR's raison d'être: |v| ≤ 7 ⇒ every non-LSB slice is zero.
        for v in -7..=7 {
            let s = sbr_slices(v, 1);
            assert_eq!(s[1], 0, "v={v}");
            let s = sbr_slices(v, 2);
            assert_eq!((s[1], s[2]), (0, 0), "v={v}");
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn sbr_rejects_oversized_values() {
        sbr_slices(64, 1);
    }

    #[test]
    fn straightforward_basics() {
        assert_eq!(straightforward_slices(0, 1), vec![0, 0]);
        assert_eq!(straightforward_slices(255, 1), vec![15, 15]);
        assert_eq!(straightforward_slices(0x5A3, 2), vec![3, 10, 5]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn straightforward_rejects_oversized() {
        straightforward_slices(256, 1);
    }

    #[test]
    fn naive_signed_cannot_skip_small_negatives() {
        let (ho, _) = naive_signed_slices(-1);
        assert_eq!(ho, -1);
        let (ho, lo) = naive_signed_slices(-16);
        assert_eq!((ho, lo), (-1, 0));
        // while SBR can:
        assert_eq!(sbr_slices(-1, 1)[1], 0);
    }

    proptest! {
        #[test]
        fn sbr_round_trips_n1(v in -64i32..=63) {
            let s = sbr_slices(v, 1);
            prop_assert_eq!(s.len(), 2);
            prop_assert!(s.iter().all(|&x| (-8..=7).contains(&x)));
            prop_assert_eq!(sbr_reconstruct(&s), v);
        }

        #[test]
        fn sbr_round_trips_n2(v in -512i32..=511) {
            let s = sbr_slices(v, 2);
            prop_assert_eq!(s.len(), 3);
            prop_assert!(s.iter().all(|&x| (-8..=7).contains(&x)));
            prop_assert_eq!(sbr_reconstruct(&s), v);
        }

        #[test]
        fn sbr_round_trips_n3(v in -4096i32..=4095) {
            prop_assert_eq!(sbr_reconstruct(&sbr_slices(v, 3)), v);
        }

        #[test]
        fn straightforward_round_trips(v in 0u32..=255) {
            prop_assert_eq!(straightforward_reconstruct(&straightforward_slices(v, 1)), v);
        }

        #[test]
        fn straightforward_round_trips_k2(v in 0u32..=4095) {
            prop_assert_eq!(straightforward_reconstruct(&straightforward_slices(v, 2)), v);
        }

        #[test]
        fn naive_signed_reconstructs(v in -128i32..=127) {
            let (ho, lo) = naive_signed_slices(v);
            prop_assert_eq!(i32::from(ho) * 16 + i32::from(lo), v);
        }
    }
}
