//! Slice vectors (paper Fig. 7(a)).
//!
//! AQS-GEMM groups HO slices into length-4 vectors before compression:
//! weight planes into **4×1 column vectors** (4 consecutive output rows,
//! same `k`), activation planes into **1×4 row vectors** (same `k`, 4
//! consecutive output columns). A weight vector is compressible when all
//! four slices are zero; an activation vector when all four slices equal
//! the frequent value `r`.

use panacea_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Slice-vector length `v` (the paper uses `v = 4` throughout).
pub const VECTOR_LEN: usize = 4;

/// A 4×1 weight slice-vector (column of 4 consecutive output rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WeightVector(pub [i8; VECTOR_LEN]);

impl WeightVector {
    /// `true` when every slice is zero (compressible under SBR).
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&s| s == 0)
    }
}

/// A 1×4 activation slice-vector (row of 4 consecutive output columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ActVector(pub [u8; VECTOR_LEN]);

impl ActVector {
    /// `true` when every slice equals the frequent value `r`
    /// (compressible under AQS-GEMM).
    pub fn is_uniform(&self, r: u8) -> bool {
        self.0.iter().all(|&s| s == r)
    }
}

/// Groups a weight slice plane (`M × K`) into column vectors:
/// `out[g][k]` is the vector of rows `4g..4g+4` at column `k`.
///
/// # Panics
///
/// Panics if `plane.rows()` is not a multiple of [`VECTOR_LEN`].
///
/// # Examples
///
/// ```
/// use panacea_bitslice::vector::weight_vectors;
/// use panacea_tensor::Matrix;
///
/// let plane = Matrix::from_fn(4, 2, |r, c| (r + c) as i8);
/// let v = weight_vectors(&plane);
/// assert_eq!(v.len(), 1);
/// assert_eq!(v[0][1].0, [1, 2, 3, 4]);
/// ```
pub fn weight_vectors(plane: &Matrix<i8>) -> Vec<Vec<WeightVector>> {
    assert_eq!(
        plane.rows() % VECTOR_LEN,
        0,
        "weight rows {} not a multiple of v = {VECTOR_LEN}",
        plane.rows()
    );
    (0..plane.rows() / VECTOR_LEN)
        .map(|g| {
            (0..plane.cols())
                .map(|k| {
                    let mut v = [0i8; VECTOR_LEN];
                    for (i, slot) in v.iter_mut().enumerate() {
                        *slot = plane[(g * VECTOR_LEN + i, k)];
                    }
                    WeightVector(v)
                })
                .collect()
        })
        .collect()
}

/// Groups an activation slice plane (`K × N`) into row vectors:
/// `out[k][g]` is the vector of columns `4g..4g+4` at row `k`.
///
/// # Panics
///
/// Panics if `plane.cols()` is not a multiple of [`VECTOR_LEN`].
pub fn act_vectors(plane: &Matrix<u8>) -> Vec<Vec<ActVector>> {
    assert_eq!(
        plane.cols() % VECTOR_LEN,
        0,
        "activation cols {} not a multiple of v = {VECTOR_LEN}",
        plane.cols()
    );
    (0..plane.rows())
        .map(|k| {
            (0..plane.cols() / VECTOR_LEN)
                .map(|g| {
                    let mut v = [0u8; VECTOR_LEN];
                    for (i, slot) in v.iter_mut().enumerate() {
                        *slot = plane[(k, g * VECTOR_LEN + i)];
                    }
                    ActVector(v)
                })
                .collect()
        })
        .collect()
}

/// The 4×4 outer product of a weight vector (signed) with an activation
/// vector (unsigned) — one OPC invocation of the hardware (16 4b×4b
/// sign-unsigned multiplies).
///
/// # Examples
///
/// ```
/// use panacea_bitslice::{ActVector, WeightVector};
/// use panacea_bitslice::vector::outer_product;
///
/// let p = outer_product(&WeightVector([1, -1, 0, 2]), &ActVector([3, 0, 1, 15]));
/// assert_eq!(p[0], [3, 0, 1, 15]);
/// assert_eq!(p[1], [-3, 0, -1, -15]);
/// ```
pub fn outer_product(w: &WeightVector, x: &ActVector) -> [[i32; VECTOR_LEN]; VECTOR_LEN] {
    let mut out = [[0i32; VECTOR_LEN]; VECTOR_LEN];
    for (m, row) in out.iter_mut().enumerate() {
        for (n, cell) in row.iter_mut().enumerate() {
            *cell = i32::from(w.0[m]) * i32::from(x.0[n]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn weight_vector_compressibility() {
        assert!(WeightVector([0, 0, 0, 0]).is_zero());
        assert!(!WeightVector([0, 0, 1, 0]).is_zero());
    }

    #[test]
    fn act_vector_compressibility() {
        assert!(ActVector([10, 10, 10, 10]).is_uniform(10));
        assert!(!ActVector([10, 10, 10, 11]).is_uniform(10));
        // Symmetric quantization corresponds to r = 0.
        assert!(ActVector([0, 0, 0, 0]).is_uniform(0));
    }

    #[test]
    fn grouping_shapes() {
        let wp = Matrix::<i8>::zeros(8, 3);
        let wv = weight_vectors(&wp);
        assert_eq!(wv.len(), 2);
        assert_eq!(wv[0].len(), 3);
        let xp = Matrix::<u8>::zeros(3, 8);
        let xv = act_vectors(&xp);
        assert_eq!(xv.len(), 3);
        assert_eq!(xv[0].len(), 2);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn weight_grouping_requires_multiple_of_v() {
        weight_vectors(&Matrix::<i8>::zeros(6, 2));
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn act_grouping_requires_multiple_of_v() {
        act_vectors(&Matrix::<u8>::zeros(2, 6));
    }

    #[test]
    fn outer_product_zero_annihilates() {
        let p = outer_product(&WeightVector([0; 4]), &ActVector([15; 4]));
        assert!(p.iter().flatten().all(|&v| v == 0));
    }

    proptest! {
        #[test]
        fn outer_product_matches_scalar(
            w in proptest::array::uniform4(-8i8..=7),
            x in proptest::array::uniform4(0u8..=15),
        ) {
            let p = outer_product(&WeightVector(w), &ActVector(x));
            for m in 0..4 {
                for n in 0..4 {
                    prop_assert_eq!(p[m][n], i32::from(w[m]) * i32::from(x[n]));
                }
            }
        }

        #[test]
        fn grouping_round_trips(vals in proptest::collection::vec(-8i8..=7, 32)) {
            let plane = Matrix::from_vec(8, 4, vals).unwrap();
            let groups = weight_vectors(&plane);
            for (g, row) in groups.iter().enumerate() {
                for (k, v) in row.iter().enumerate() {
                    for i in 0..VECTOR_LEN {
                        prop_assert_eq!(v.0[i], plane[(g * VECTOR_LEN + i, k)]);
                    }
                }
            }
        }
    }
}
