//! Bit-packing of slice planes and RLE streams into byte buffers — the
//! DRAM/SRAM storage format whose sizes the EMA analyses count.
//!
//! Slices are 4-bit, so two pack per byte (little-nibble-first). An RLE
//! stream packs each entry as a 4-bit skip index followed by the 16-bit
//! vector payload when present, matching the format of Fig. 7(a).

use panacea_tensor::Matrix;

use crate::rle::RleStream;
use crate::vector::ActVector;

/// Packs a sequence of 4-bit values (given in the low nibble of each
/// byte) two-per-byte, little nibble first.
///
/// # Examples
///
/// ```
/// let packed = panacea_bitslice::packing::pack_nibbles(&[0x1, 0xF, 0xA]);
/// assert_eq!(packed, vec![0xF1, 0x0A]);
/// ```
pub fn pack_nibbles(nibbles: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(nibbles.len().div_ceil(2));
    for pair in nibbles.chunks(2) {
        let lo = pair[0] & 0xF;
        let hi = if pair.len() > 1 { pair[1] & 0xF } else { 0 };
        out.push(lo | (hi << 4));
    }
    out
}

/// Inverse of [`pack_nibbles`]; `count` recovers odd-length sequences.
///
/// # Panics
///
/// Panics if `count` exceeds the packed capacity.
pub fn unpack_nibbles(bytes: &[u8], count: usize) -> Vec<u8> {
    assert!(count <= bytes.len() * 2, "count {count} exceeds capacity");
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let b = bytes[i / 2];
        out.push(if i % 2 == 0 { b & 0xF } else { b >> 4 });
    }
    out
}

/// Packs a signed slice plane (values in `[-8, 7]`) row-major into
/// two's-complement nibbles.
pub fn pack_weight_plane(plane: &Matrix<i8>) -> Vec<u8> {
    let nibbles: Vec<u8> = plane.iter().map(|&s| (s as u8) & 0xF).collect();
    pack_nibbles(&nibbles)
}

/// Unpacks a signed slice plane packed by [`pack_weight_plane`].
///
/// # Panics
///
/// Panics if the buffer is too small for `rows × cols` nibbles.
pub fn unpack_weight_plane(bytes: &[u8], rows: usize, cols: usize) -> Matrix<i8> {
    let nibbles = unpack_nibbles(bytes, rows * cols);
    let data: Vec<i8> = nibbles
        .into_iter()
        .map(|n| if n >= 8 { n as i8 - 16 } else { n as i8 })
        .collect();
    Matrix::from_vec(rows, cols, data).expect("dimensions match count")
}

/// Packs an unsigned slice plane (values in `[0, 15]`).
pub fn pack_act_plane(plane: &Matrix<u8>) -> Vec<u8> {
    let nibbles: Vec<u8> = plane.iter().map(|&s| s & 0xF).collect();
    pack_nibbles(&nibbles)
}

/// Unpacks an unsigned slice plane packed by [`pack_act_plane`].
///
/// # Panics
///
/// Panics if the buffer is too small for `rows × cols` nibbles.
pub fn unpack_act_plane(bytes: &[u8], rows: usize, cols: usize) -> Matrix<u8> {
    Matrix::from_vec(rows, cols, unpack_nibbles(bytes, rows * cols))
        .expect("dimensions match count")
}

/// Serializes an activation RLE stream: a 32-bit vector count, then per
/// entry a skip nibble and, for payload entries, four slice nibbles.
pub fn pack_rle(stream: &RleStream<ActVector>) -> Vec<u8> {
    let mut nibbles: Vec<u8> = Vec::new();
    let mut payload_flags = Vec::new();
    for e in stream.entries() {
        nibbles.push(e.skip);
        payload_flags.push(e.payload.is_some());
        if let Some(v) = e.payload {
            nibbles.extend(v.0.iter().map(|&s| s & 0xF));
        }
    }
    let mut out = (stream.total_vectors() as u32).to_le_bytes().to_vec();
    out.extend((stream.entries().len() as u32).to_le_bytes());
    // Payload bitmap, one bit per entry.
    let mut bitmap = vec![0u8; payload_flags.len().div_ceil(8)];
    for (i, &f) in payload_flags.iter().enumerate() {
        if f {
            bitmap[i / 8] |= 1 << (i % 8);
        }
    }
    out.extend(bitmap);
    out.extend(pack_nibbles(&nibbles));
    out
}

/// Deserializes a stream packed by [`pack_rle`], reconstructing the full
/// vector sequence with compressed positions filled by the all-`r` vector.
///
/// # Panics
///
/// Panics if the buffer is malformed (truncated).
pub fn unpack_rle(bytes: &[u8], r: u8) -> Vec<ActVector> {
    let total = u32::from_le_bytes(bytes[0..4].try_into().expect("header")) as usize;
    let n_entries = u32::from_le_bytes(bytes[4..8].try_into().expect("header")) as usize;
    let bitmap_len = n_entries.div_ceil(8);
    let bitmap = &bytes[8..8 + bitmap_len];
    let payload_count = (0..n_entries)
        .filter(|&i| bitmap[i / 8] & (1 << (i % 8)) != 0)
        .count();
    let nibbles = unpack_nibbles(&bytes[8 + bitmap_len..], n_entries + payload_count * 4);
    let mut out = vec![ActVector([r; 4]); total];
    let mut pos = 0usize;
    let mut cursor = 0usize;
    for i in 0..n_entries {
        let skip = nibbles[cursor];
        cursor += 1;
        pos += usize::from(skip);
        if bitmap[i / 8] & (1 << (i % 8)) != 0 {
            let mut v = [0u8; 4];
            v.copy_from_slice(&nibbles[cursor..cursor + 4]);
            cursor += 4;
            out[pos] = ActVector(v);
            pos += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn nibble_round_trip_even_and_odd() {
        for data in [vec![1u8, 2, 3, 4], vec![7u8, 8, 9]] {
            let packed = pack_nibbles(&data);
            assert_eq!(unpack_nibbles(&packed, data.len()), data);
        }
    }

    #[test]
    fn weight_plane_round_trips_negative_slices() {
        let plane = Matrix::from_fn(4, 6, |r, c| (r as i8 * 3 + c as i8) % 8 - 4);
        let packed = pack_weight_plane(&plane);
        assert_eq!(packed.len(), 12); // 24 nibbles
        assert_eq!(unpack_weight_plane(&packed, 4, 6), plane);
    }

    #[test]
    fn act_plane_round_trips() {
        let plane = Matrix::from_fn(3, 5, |r, c| ((r * 5 + c) % 16) as u8);
        let packed = pack_act_plane(&plane);
        assert_eq!(unpack_act_plane(&packed, 3, 5), plane);
    }

    #[test]
    fn rle_round_trip_mixed_stream() {
        let r = 9u8;
        let vectors = vec![
            ActVector([r; 4]),
            ActVector([1, 2, 3, 4]),
            ActVector([r; 4]),
            ActVector([r; 4]),
            ActVector([5, r, 7, 8]),
            ActVector([r; 4]),
        ];
        let stream = RleStream::encode(&vectors, |v| v.is_uniform(r));
        let bytes = pack_rle(&stream);
        assert_eq!(unpack_rle(&bytes, r), vectors);
    }

    #[test]
    fn packed_rle_is_smaller_than_dense_when_sparse() {
        let r = 3u8;
        let mut vectors = vec![ActVector([r; 4]); 100];
        vectors[50] = ActVector([1, 1, 1, 1]);
        let stream = RleStream::encode(&vectors, |v| v.is_uniform(r));
        let bytes = pack_rle(&stream);
        let dense_bytes = 100 * 2; // 4 nibbles per vector
        assert!(
            bytes.len() < dense_bytes / 4,
            "{} vs {dense_bytes}",
            bytes.len()
        );
    }

    proptest! {
        #[test]
        fn rle_pack_round_trips(values in proptest::collection::vec(0u8..3, 0..160), r in 0u8..3) {
            let vectors: Vec<ActVector> = values
                .chunks(4)
                .filter(|c| c.len() == 4)
                .map(|c| ActVector([c[0], c[1], c[2], c[3]]))
                .collect();
            let stream = RleStream::encode(&vectors, |v| v.is_uniform(r));
            let bytes = pack_rle(&stream);
            prop_assert_eq!(unpack_rle(&bytes, r), vectors);
        }

        #[test]
        fn plane_pack_round_trips(vals in proptest::collection::vec(-8i8..=7, 24)) {
            let plane = Matrix::from_vec(4, 6, vals).unwrap();
            let packed = pack_weight_plane(&plane);
            prop_assert_eq!(unpack_weight_plane(&packed, 4, 6), plane);
        }
    }
}
