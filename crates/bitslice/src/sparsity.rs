//! Slice-level and vector-level sparsity metrics.
//!
//! *Slice-level* sparsity is the fraction of individual 4-bit slices that
//! are compressible (zero for weights, equal to `r` for activations).
//! *Vector-level* sparsity — the quantity AQS-GEMM actually exploits — is
//! the fraction of length-4 slice vectors that are compressible, which is
//! always at most the slice-level figure. The paper's Figs. 5, 8 and 14
//! report these metrics; `ρ_w`/`ρ_x` in Table I are vector-level.

use panacea_tensor::Matrix;
use serde::{Deserialize, Serialize};

use crate::vector::{act_vectors, weight_vectors};

/// Combined sparsity report for one slice plane.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SparsityReport {
    /// Fraction of compressible individual slices.
    pub slice_level: f64,
    /// Fraction of compressible length-4 vectors.
    pub vector_level: f64,
}

/// Fraction of zero slices in a weight plane.
pub fn weight_slice_sparsity(plane: &Matrix<i8>) -> f64 {
    if plane.is_empty() {
        return 0.0;
    }
    plane.iter().filter(|&&s| s == 0).count() as f64 / plane.len() as f64
}

/// Fraction of `r`-valued slices in an activation plane.
pub fn act_slice_sparsity(plane: &Matrix<u8>, r: u8) -> f64 {
    if plane.is_empty() {
        return 0.0;
    }
    plane.iter().filter(|&&s| s == r).count() as f64 / plane.len() as f64
}

/// Fraction of all-zero 4×1 weight vectors (column grouping along M).
///
/// # Panics
///
/// Panics if `plane.rows()` is not a multiple of 4.
pub fn weight_vector_sparsity(plane: &Matrix<i8>) -> f64 {
    let groups = weight_vectors(plane);
    let total: usize = groups.iter().map(Vec::len).sum();
    if total == 0 {
        return 0.0;
    }
    let zero: usize = groups.iter().flatten().filter(|v| v.is_zero()).count();
    zero as f64 / total as f64
}

/// Fraction of all-`r` 1×4 activation vectors (row grouping along N).
///
/// # Panics
///
/// Panics if `plane.cols()` is not a multiple of 4.
pub fn act_vector_sparsity(plane: &Matrix<u8>, r: u8) -> f64 {
    let groups = act_vectors(plane);
    let total: usize = groups.iter().map(Vec::len).sum();
    if total == 0 {
        return 0.0;
    }
    let uniform: usize = groups.iter().flatten().filter(|v| v.is_uniform(r)).count();
    uniform as f64 / total as f64
}

/// Full report for a weight HO plane.
pub fn weight_report(plane: &Matrix<i8>) -> SparsityReport {
    SparsityReport {
        slice_level: weight_slice_sparsity(plane),
        vector_level: weight_vector_sparsity(plane),
    }
}

/// Full report for an activation HO plane with frequent slice `r`.
pub fn act_report(plane: &Matrix<u8>, r: u8) -> SparsityReport {
    SparsityReport {
        slice_level: act_slice_sparsity(plane, r),
        vector_level: act_vector_sparsity(plane, r),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fully_sparse_weight_plane() {
        let p = Matrix::<i8>::zeros(8, 8);
        let r = weight_report(&p);
        assert_eq!(r.slice_level, 1.0);
        assert_eq!(r.vector_level, 1.0);
    }

    #[test]
    fn fully_dense_weight_plane() {
        let p = Matrix::from_fn(8, 8, |_, _| 1i8);
        let r = weight_report(&p);
        assert_eq!(r.slice_level, 0.0);
        assert_eq!(r.vector_level, 0.0);
    }

    #[test]
    fn one_nonzero_slice_kills_its_vector_only() {
        let mut p = Matrix::<i8>::zeros(8, 2);
        p[(0, 0)] = 3;
        let r = weight_report(&p);
        assert!((r.slice_level - 15.0 / 16.0).abs() < 1e-12);
        assert!((r.vector_level - 3.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn act_sparsity_counts_r_not_zero() {
        let p = Matrix::from_fn(2, 8, |_, _| 10u8);
        assert_eq!(act_slice_sparsity(&p, 10), 1.0);
        assert_eq!(act_slice_sparsity(&p, 0), 0.0);
        assert_eq!(act_vector_sparsity(&p, 10), 1.0);
    }

    #[test]
    fn empty_planes_report_zero() {
        assert_eq!(weight_slice_sparsity(&Matrix::<i8>::zeros(0, 0)), 0.0);
        assert_eq!(act_slice_sparsity(&Matrix::<u8>::zeros(0, 0), 5), 0.0);
    }

    proptest! {
        #[test]
        fn vector_sparsity_never_exceeds_slice_sparsity(
            vals in proptest::collection::vec(0i8..=1, 64)
        ) {
            let p = Matrix::from_vec(8, 8, vals).unwrap();
            let r = weight_report(&p);
            prop_assert!(r.vector_level <= r.slice_level + 1e-12);
        }

        #[test]
        fn act_vector_sparsity_bounded(
            vals in proptest::collection::vec(9u8..=11, 64), r in 9u8..=11
        ) {
            let p = Matrix::from_vec(8, 8, vals).unwrap();
            let rep = act_report(&p, r);
            prop_assert!(rep.vector_level <= rep.slice_level + 1e-12);
            prop_assert!((0.0..=1.0).contains(&rep.vector_level));
        }
    }
}
