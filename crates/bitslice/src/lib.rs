//! Bit-slice representations and compression for the Panacea reproduction.
//!
//! Integer GEMM operands are segmented into 4-bit *slices* so that sparse
//! high-order (HO) slices can be compressed and their MACs skipped:
//!
//! * [`slicing`] — the two slicing schemes of the paper (Fig. 3):
//!   the **signed bit-slice representation** (SBR, from Sibia) for
//!   symmetrically-quantized weights, and **straightforward slicing** for
//!   asymmetrically-quantized unsigned activations (DBS-aware);
//! * [`plane`] — whole-tensor slice planes ([`SlicedWeight`],
//!   [`SlicedActivation`]) with exact reconstruction;
//! * [`vector`] — grouping slices into length-`v` slice-vectors (4×1 for
//!   weights along M, 1×4 for activations along N) and testing their
//!   compressibility (all-zero / all-`r`);
//! * [`rle`] — the run-length encoding of compressed vector streams with
//!   4-bit skip indices (Fig. 7(a));
//! * [`sparsity`] — slice-level and vector-level sparsity metrics used by
//!   the paper's Figs. 5, 8 and 14;
//! * [`packing`] — the nibble-packed byte format of slice planes and RLE
//!   streams whose sizes the EMA analyses count.
//!
//! # Examples
//!
//! ```
//! use panacea_bitslice::slicing::{sbr_slices, sbr_reconstruct};
//!
//! // A near-zero negative 7-bit value has a *zero* HO slice under SBR.
//! let s = sbr_slices(-3, 1);
//! assert_eq!(s[1], 0); // HO slice skippable
//! assert_eq!(sbr_reconstruct(&s), -3);
//! ```

pub mod packing;
pub mod plane;
pub mod rle;
pub mod slicing;
pub mod sparsity;
pub mod vector;

pub use plane::{SliceError, SlicedActivation, SlicedWeight};
pub use rle::{RleEntry, RleStream};
pub use vector::{ActVector, WeightVector, VECTOR_LEN};
