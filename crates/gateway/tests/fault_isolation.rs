//! Fault-injection tests across the gateway: injected execute-path
//! panics answered over the wire, deadline enforcement end-to-end, and
//! client-side retry with reconnect.
//!
//! Own test binary (process) on purpose: arming a `faultline` plan is
//! process-global, so these tests must not share a process with suites
//! that traverse the same sites. Every test arms a plan (an empty one
//! when it needs no faults) so the arm guard's serialization lock keeps
//! the scripts from overlapping.
//!
//! The server binds with the default [`ServerConfig`], which reads
//! `PANACEA_IO_MODEL` — CI runs this suite under both transports.

use std::sync::Arc;
use std::time::{Duration, Instant};

use panacea_faultline::{Fault, FaultPlan, Scenario};
use panacea_gateway::testutil::{codes, models};
use panacea_gateway::{
    ClientConfig, ErrorKind, Gateway, GatewayClient, GatewayConfig, GatewayError, GatewayServer,
};

fn serve() -> (GatewayServer, Arc<Gateway>) {
    let gateway = Arc::new(Gateway::new(models(&["m"], 11), GatewayConfig::default()));
    let server = GatewayServer::bind(Arc::clone(&gateway), "127.0.0.1:0").expect("bind");
    (server, gateway)
}

#[test]
fn injected_execute_panic_is_answered_internal_and_the_server_survives() {
    let guard = FaultPlan::compile(
        0,
        &Scenario::new().fire_at("gateway.execute", 0, Fault::Panic),
    )
    .arm();
    let (server, gateway) = serve();
    let model = gateway.router().model("m").expect("registered");
    let x = codes(&model, 2, 0);
    let expect = model.forward_codes(&x).0;

    let mut client = GatewayClient::connect(server.local_addr()).expect("connect");
    let err = client
        .infer_codes("m", x.clone())
        .expect_err("panicked request was answered with a result");
    assert!(
        matches!(
            err,
            GatewayError::Remote {
                kind: ErrorKind::Internal,
                ..
            }
        ),
        "expected an internal error, got {err:?}"
    );
    // Same connection, same payload: the retry is served bit-exactly,
    // so the panic touched neither the worker pool nor the model state.
    let reply = client.infer_codes("m", x).expect("post-panic infer");
    assert_eq!(reply.payload, expect.into());
    // The panic is pinned in the flight recorder for incident forensics.
    let events = gateway.events(64);
    assert!(
        events.events.iter().any(|e| e.kind == "worker_panic"),
        "no worker_panic event recorded"
    );
    drop(server);
    drop(guard);
}

#[test]
fn deadlines_cross_the_wire_and_release_the_client_in_time() {
    // The execute path stalls 400ms on the first request; a 100ms
    // client deadline must release the caller with `deadline_exceeded`
    // rather than holding it for the full stall (or forever).
    let guard = FaultPlan::compile(
        0,
        &Scenario::new().fire_at(
            "gateway.execute",
            0,
            Fault::Delay(Duration::from_millis(400)),
        ),
    )
    .arm();
    let (server, gateway) = serve();
    let model = gateway.router().model("m").expect("registered");
    let x = codes(&model, 1, 1);
    let expect = model.forward_codes(&x).0;

    let mut client = GatewayClient::connect_with(
        server.local_addr(),
        ClientConfig {
            deadline: Some(Duration::from_millis(100)),
            ..ClientConfig::default()
        },
    )
    .expect("connect");
    let started = Instant::now();
    let err = client
        .infer_codes("m", x.clone())
        .expect_err("expired request was answered with a result");
    let waited = started.elapsed();
    assert!(
        matches!(
            err,
            GatewayError::Remote {
                kind: ErrorKind::DeadlineExceeded,
                ..
            }
        ),
        "expected deadline_exceeded, got {err:?}"
    );
    assert!(
        waited < Duration::from_secs(2),
        "client was held {waited:?} past its 100ms deadline"
    );
    // Only request 0 was scripted: the next one clears its deadline.
    let reply = client.infer_codes("m", x).expect("post-stall infer");
    assert_eq!(reply.payload, expect.into());
    drop(server);
    drop(guard);
}

#[test]
fn client_retries_recover_from_a_transient_internal_error() {
    let guard = FaultPlan::compile(
        0,
        &Scenario::new().fire_at("gateway.execute", 0, Fault::Panic),
    )
    .arm();
    let (server, gateway) = serve();
    let model = gateway.router().model("m").expect("registered");
    let x = codes(&model, 1, 2);
    let expect = model.forward_codes(&x).0;

    let mut client = GatewayClient::connect_with(
        server.local_addr(),
        ClientConfig {
            retries: 2,
            backoff: Duration::from_millis(5),
            seed: 42,
            ..ClientConfig::default()
        },
    )
    .expect("connect");
    // Attempt 0 hits the scripted panic (answered `internal`); the
    // retry runs unscripted and must return the bit-exact result.
    let reply = client.infer_codes("m", x).expect("retry did not recover");
    assert_eq!(reply.payload, expect.into());
    drop(server);
    drop(guard);
}

#[test]
fn client_reconnects_through_a_server_restart() {
    let guard = FaultPlan::compile(0, &Scenario::new()).arm();
    let gateway = Arc::new(Gateway::new(models(&["m"], 11), GatewayConfig::default()));
    let server = GatewayServer::bind(Arc::clone(&gateway), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    let model = gateway.router().model("m").expect("registered");
    let x = codes(&model, 1, 3);
    let expect = model.forward_codes(&x).0;

    let mut client = GatewayClient::connect_with(
        addr,
        ClientConfig {
            retries: 4,
            backoff: Duration::from_millis(20),
            ..ClientConfig::default()
        },
    )
    .expect("connect");
    assert!(client.infer_codes("m", x.clone()).is_ok());
    // Restart the server on the same address: the old connection dies,
    // and the idempotent retry path must redial and recover.
    drop(server);
    let server = GatewayServer::bind(Arc::clone(&gateway), addr).expect("rebind");
    let reply = client
        .infer_codes("m", x)
        .expect("retry did not survive the restart");
    assert_eq!(reply.payload, expect.into());
    drop(server);
    drop(guard);
}
