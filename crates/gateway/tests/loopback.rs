//! End-to-end gateway tests over real localhost TCP: bit-exactness
//! against direct runtime execution, cache replay, explicit overload
//! rejections, stats round-trip, cross-thread trace propagation,
//! flight-recorder events with incident snapshots, and clean server
//! shutdown.

use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;

use panacea_gateway::testutil::{codes, models};
use panacea_gateway::{
    AdmissionConfig, CacheConfig, Gateway, GatewayClient, GatewayConfig, GatewayServer,
};
use panacea_serve::{BatchPolicy, RuntimeConfig};
use panacea_tensor::dist::DistributionKind;

#[test]
fn concurrent_clients_get_bit_exact_answers_over_tcp() {
    let names = ["a", "b", "c", "d"];
    let gateway = Arc::new(Gateway::new(models(&names, 1), GatewayConfig::default()));
    let server = GatewayServer::bind(Arc::clone(&gateway), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    let mut threads = Vec::new();
    for t in 0..6 {
        let gateway = Arc::clone(&gateway);
        threads.push(thread::spawn(move || {
            let mut client = GatewayClient::connect(addr).expect("connect");
            for i in 0..4 {
                let name = names[(t + i) % names.len()];
                let model = gateway.router().model(name).expect("registered");
                let x = codes(&model, 1 + (t + i) % 3, t * 10 + i);
                let (expect, _) = model.forward_codes(&x);
                let reply = client.infer_codes(name, x).expect("served");
                assert_eq!(
                    reply.payload,
                    expect.into(),
                    "thread {t} request {i} diverged"
                );
                assert!(reply.shard < 2);
            }
        }));
    }
    for th in threads {
        th.join().expect("client thread");
    }
    let served: u64 = gateway
        .stats()
        .shards
        .iter()
        .map(|s| s.requests)
        .sum::<u64>()
        + gateway.stats().cache.hits;
    assert_eq!(served, 24);
}

#[test]
fn repeated_request_is_a_bit_exact_cache_hit() {
    let gateway = Arc::new(Gateway::new(models(&["m"], 2), GatewayConfig::default()));
    let server = GatewayServer::bind(Arc::clone(&gateway), "127.0.0.1:0").expect("bind");
    let mut client = GatewayClient::connect(server.local_addr()).expect("connect");

    let model = gateway.router().model("m").expect("registered");
    let x = codes(&model, 2, 0);
    let first = client.infer_codes("m", x.clone()).expect("served");
    assert!(!first.cache_hit);
    let second = client.infer_codes("m", x).expect("served");
    assert!(second.cache_hit, "identical payload missed the cache");
    assert_eq!(second.payload, first.payload);
    assert_eq!(second.scale, first.scale);
}

#[test]
fn f32_round_trip_matches_local_quantize_and_forward() {
    let gateway = Arc::new(Gateway::new(models(&["m"], 3), GatewayConfig::default()));
    let server = GatewayServer::bind(Arc::clone(&gateway), "127.0.0.1:0").expect("bind");
    let mut client = GatewayClient::connect(server.local_addr()).expect("connect");

    let model = gateway.router().model("m").expect("registered");
    let mut rng = panacea_tensor::seeded_rng(4);
    let input = DistributionKind::Gaussian {
        mean: 0.2,
        std: 0.5,
    }
    .sample_matrix(model.in_features(), 3, &mut rng);
    let (expect, _) = model.forward(&model.quantize(&input));
    let reply = client.infer_f32("m", input).expect("served");
    assert_eq!(reply.payload, expect, "wire f32 payload diverged");
}

#[test]
fn overload_burst_yields_explicit_rejections_not_unbounded_queueing() {
    // Two permits, lingering batcher: a synchronized 8-client burst must
    // see some Overloaded rejections while every accepted request still
    // completes correctly.
    let gateway = Arc::new(Gateway::new(
        models(&["m"], 5),
        GatewayConfig {
            shards: 1,
            runtime: RuntimeConfig {
                workers: 1,
                policy: BatchPolicy {
                    max_batch: 4096,
                    max_wait: Duration::from_millis(100),
                },
            },
            cache: CacheConfig {
                capacity: 0, // force every request through admission
                shards: 1,
                ..CacheConfig::default()
            },
            admission: AdmissionConfig {
                max_in_flight: 2,
                max_queue_wait: Duration::from_secs(10),
            },
            ..GatewayConfig::default()
        },
    ));
    let server = GatewayServer::bind(Arc::clone(&gateway), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    let model = gateway.router().model("m").expect("registered");

    let barrier = Arc::new(Barrier::new(8));
    let mut threads = Vec::new();
    for t in 0..8 {
        let barrier = Arc::clone(&barrier);
        let x = codes(&model, 1, t);
        let expect = model.forward_codes(&x).0;
        threads.push(thread::spawn(move || {
            let mut client = GatewayClient::connect(addr).expect("connect");
            barrier.wait();
            match client.infer_codes("m", x) {
                Ok(reply) => {
                    assert_eq!(reply.payload, expect.into(), "admitted request diverged");
                    Ok(())
                }
                Err(e) => {
                    assert!(e.is_overloaded(), "unexpected failure: {e}");
                    Err(())
                }
            }
        }));
    }
    let outcomes: Vec<Result<(), ()>> = threads
        .into_iter()
        .map(|th| th.join().expect("client thread"))
        .collect();
    let rejected = outcomes.iter().filter(|o| o.is_err()).count();
    assert!(rejected > 0, "8-way burst over 2 permits saw no rejection");
    assert!(
        rejected < 8,
        "every request was rejected — nothing was served"
    );
    assert_eq!(gateway.stats().admission.rejected_capacity, rejected as u64);
}

#[test]
fn block_requests_round_trip_bit_exactly_over_tcp() {
    use panacea_gateway::testutil::{block_model, direct_forward, hidden};
    let (model, blocks) = block_model("decoder", 40);
    let gateway = Arc::new(Gateway::new(vec![model], GatewayConfig::default()));
    let server = GatewayServer::bind(Arc::clone(&gateway), "127.0.0.1:0").expect("bind");
    let mut client = GatewayClient::connect(server.local_addr()).expect("connect");

    for (salt, tokens) in [(0usize, 1usize), (1, 4), (2, 3)] {
        let x = hidden(16, tokens, salt);
        let expect = direct_forward(&blocks, &x);
        let reply = client.infer_hidden("decoder", x).expect("served");
        let got = reply.payload.as_hidden().expect("hidden result");
        assert_eq!(got.shape(), (16, tokens));
        for (a, b) in expect.iter().zip(got.iter()) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "TCP block serving diverged from direct execution"
            );
        }
    }

    // Replay: the same sequence must be a bit-exact cache hit.
    let x = hidden(16, 2, 9);
    let cold = client.infer_hidden("decoder", x.clone()).expect("served");
    let warm = client.infer_hidden("decoder", x).expect("served");
    assert!(!cold.cache_hit && warm.cache_hit, "expected a cache replay");
    assert_eq!(cold.payload, warm.payload);

    // Non-finite payloads are rejected client-side before the wire.
    let mut nan = hidden(16, 1, 0);
    nan[(0, 0)] = f32::NAN;
    assert!(client.infer_hidden("decoder", nan).is_err());
}

#[test]
fn decode_sessions_work_over_tcp_with_affinity_and_eviction_errors() {
    use panacea_gateway::testutil::{block_model, hidden};
    let (model, blocks) = block_model("decoder", 41);
    let gateway = Arc::new(Gateway::new(vec![model], GatewayConfig::default()));
    let server = GatewayServer::bind(Arc::clone(&gateway), "127.0.0.1:0").expect("bind");
    let mut client = GatewayClient::connect(server.local_addr()).expect("connect");

    let open = client.session_open("decoder").expect("opened");
    let prefix = hidden(16, 4, 11);
    // Prefill in one call, then one single-token step.
    let prefill = client
        .decode(open.session, prefix.submatrix(0, 0, 16, 3))
        .expect("prefill");
    assert_eq!(prefill.tokens, 3);
    assert_eq!(prefill.shard, open.shard, "decode left the pinned shard");
    let step = client
        .decode(open.session, prefix.submatrix(0, 3, 16, 1))
        .expect("step");
    assert_eq!(step.tokens, 4);
    assert_eq!(step.shard, open.shard);

    // Oracle: full causal recompute of the whole prefix, last column.
    let mut expect = prefix.clone();
    for b in &blocks {
        expect = b.forward_segments_causal(&expect, &[4]).0;
    }
    for r in 0..16 {
        assert_eq!(
            step.hidden[(r, 0)].to_bits(),
            expect[(r, 3)].to_bits(),
            "TCP decode diverged from causal recompute"
        );
    }

    // Stats over the wire see the session, its KV bytes, and the
    // continuous-batching counters (two steps rode fused passes; a solo
    // client's occupancy is exactly 1 step per pass).
    let stats = client.stats().expect("stats");
    assert_eq!(stats.shards[open.shard].open_sessions, 1);
    assert_eq!(stats.shards[open.shard].kv_bytes, 2 * 2 * 16 * 4 * 4);
    assert_eq!(stats.shards[open.shard].decode_steps, 2);
    assert_eq!(stats.shards[open.shard].decode_batches, 2);
    assert_eq!(stats.shards[open.shard].decode_batch_occupancy, 1.0);
    // 3-column prefill pads to 4, the single-token step pads to 4.
    assert_eq!(stats.shards[open.shard].decode_padded_cols, 1 + 3);

    // Close, then decode/close again: unknown_session on the wire.
    let closed = client.session_close(open.session).expect("closed");
    assert_eq!(closed.tokens, 4);
    for attempt in [
        client.decode(open.session, hidden(16, 1, 0)).unwrap_err(),
        client.session_close(open.session).unwrap_err(),
    ] {
        match attempt {
            panacea_gateway::GatewayError::Remote { kind, .. } => {
                assert_eq!(kind, panacea_gateway::ErrorKind::UnknownSession)
            }
            other => panic!("expected a remote unknown_session error, got {other}"),
        }
    }
}

#[test]
fn stats_expose_padding_and_cancellation_counters_over_the_wire() {
    // A 3-column request forces one padded column; the counters must be
    // visible to a remote client, not just in-process.
    let gateway = Arc::new(Gateway::new(
        models(&["m"], 9),
        GatewayConfig {
            shards: 1,
            cache: CacheConfig {
                capacity: 0,
                shards: 1,
                ..CacheConfig::default()
            },
            ..GatewayConfig::default()
        },
    ));
    let server = GatewayServer::bind(Arc::clone(&gateway), "127.0.0.1:0").expect("bind");
    let mut client = GatewayClient::connect(server.local_addr()).expect("connect");
    let model = gateway.router().model("m").expect("registered");
    client
        .infer_codes("m", codes(&model, 3, 0))
        .expect("served");
    let stats = client.stats().expect("stats");
    let shard = &stats.shards[0];
    assert_eq!(shard.padded_cols, 1, "padded column not reported");
    assert!(
        (shard.padding_overhead - 0.25).abs() < 1e-12,
        "padding_overhead wrong: {}",
        shard.padding_overhead
    );
    assert_eq!(shard.cancelled, 0);
}

#[test]
fn stats_verb_round_trips_over_the_wire() {
    let gateway = Arc::new(Gateway::new(models(&["m"], 6), GatewayConfig::default()));
    let server = GatewayServer::bind(Arc::clone(&gateway), "127.0.0.1:0").expect("bind");
    let mut client = GatewayClient::connect(server.local_addr()).expect("connect");

    let model = gateway.router().model("m").expect("registered");
    let x = codes(&model, 2, 0);
    client.infer_codes("m", x.clone()).expect("served");
    client.infer_codes("m", x).expect("served");

    // The worker decrements its in-flight counter *after* answering, so
    // wait for the shards to go quiescent before comparing two
    // point-in-time snapshots for exact equality.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while gateway.router().queue_depths().iter().any(|q| q.load() > 0) {
        assert!(
            std::time::Instant::now() < deadline,
            "shards never went quiescent"
        );
        thread::yield_now();
    }
    let stats = client.stats().expect("stats");
    let mut local = gateway.stats();
    // Each snapshot stamps its own strictly-increasing sequence number
    // and uptime; normalize them before the exact-equality comparison.
    assert!(local.seq > stats.seq, "snapshot seq did not increase");
    assert!(local.uptime_ms >= stats.uptime_ms, "uptime went backwards");
    local.seq = stats.seq;
    local.uptime_ms = stats.uptime_ms;
    assert_eq!(stats, local, "wire stats diverged from source");
    assert_eq!(stats.shards.len(), 2);
    assert_eq!(stats.cache.hits, 1);
    assert_eq!(stats.cache.misses, 1);
    assert!((stats.cache.hit_rate() - 0.5).abs() < 1e-12);
    assert_eq!(stats.admission.admitted, 1);
    assert_eq!(stats.shards.iter().map(|s| s.requests).sum::<u64>(), 1);
}

#[test]
fn metrics_verb_reports_stage_quantiles_over_the_wire() {
    use panacea_gateway::testutil::{block_model, hidden};
    let (model, _) = block_model("decoder", 50);
    let mut set = models(&["chain"], 51);
    set.push(model);
    let gateway = Arc::new(Gateway::new(set, GatewayConfig::default()));
    let server = GatewayServer::bind(Arc::clone(&gateway), "127.0.0.1:0").expect("bind");
    let mut client = GatewayClient::connect(server.local_addr()).expect("connect");

    // Traffic on both surfaces: stateless chain inference plus a decode
    // session, so serving-stage and decode-stage histograms both fill.
    let chain = gateway.router().model("chain").expect("registered");
    for salt in 0..3 {
        client
            .infer_codes("chain", codes(&chain, 1, salt))
            .expect("served");
    }
    let open = client.session_open("decoder").expect("opened");
    client.decode(open.session, hidden(16, 2, 1)).expect("step");
    client.session_close(open.session).expect("closed");

    let first = client.metrics().expect("metrics");
    let second = client.metrics().expect("metrics");
    assert!(second.seq > first.seq, "metrics seq did not increase");
    assert!(second.uptime_ms >= first.uptime_ms);

    let by_name = |stages: &[panacea_gateway::StageSummary], name: &str| {
        stages
            .iter()
            .find(|s| s.stage == name)
            .unwrap_or_else(|| panic!("stage {name:?} missing"))
            .clone()
    };
    // Gateway stages: every wire request was parsed, routed, executed.
    for name in ["parse", "route", "execute"] {
        let s = by_name(&first.gateway, name);
        assert!(s.count > 0, "gateway stage {name:?} recorded nothing");
        assert!(
            s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.max,
            "quantiles out of order for {name:?}: {s:?}"
        );
        assert!(s.sum > 0 && s.max > 0);
    }
    // The cache admits the chain requests, so probes were timed too.
    assert!(by_name(&first.gateway, "cache_probe").count > 0);
    assert!(by_name(&first.gateway, "admission_wait").count > 0);

    // Per-shard serving stages: the three chain requests all landed on
    // one shard (same model routes to the same shard); that shard's
    // queue_wait/batch_form/execute/split_back all saw every batch.
    assert_eq!(first.shards.len(), 2);
    let serving: Vec<_> = first
        .shards
        .iter()
        .filter(|s| by_name(s, "queue_wait").count > 0)
        .collect();
    assert!(!serving.is_empty(), "no shard recorded serving stages");
    for shard in &serving {
        for name in ["queue_wait", "batch_form", "execute", "split_back"] {
            let s = by_name(shard, name);
            assert!(s.count > 0, "shard stage {name:?} recorded nothing");
            assert!(s.p50 <= s.max, "p50 exceeds max for {name:?}");
        }
    }
    // The decode session ran on some shard: step latency and the fused
    // decode pass stages recorded there, with occupancy exactly 1 per
    // pass for a solo client.
    let decode_shard = first
        .shards
        .iter()
        .find(|s| by_name(s, "step").count > 0)
        .expect("no shard recorded decode steps");
    assert!(by_name(decode_shard, "decode_linger").count > 0);
    assert!(by_name(decode_shard, "decode_pass").count > 0);
    let occupancy = by_name(decode_shard, "decode_occupancy");
    assert!(occupancy.count > 0);
    assert_eq!(occupancy.max, 1, "solo decode pass occupancy must be 1");

    // Block sub-layer stages: the decoder's forward passes rolled up.
    for name in [
        "block_qkv",
        "block_attn",
        "block_proj",
        "block_fc1",
        "block_fc2",
    ] {
        let s = by_name(&first.block, name);
        assert!(s.count > 0, "block stage {name:?} recorded nothing");
    }
}

#[test]
fn slow_requests_are_pinned_and_retrievable_via_trace_verb() {
    use panacea_gateway::TraceConfig;
    let gateway = Arc::new(Gateway::new(
        models(&["m"], 10),
        GatewayConfig {
            // Zero threshold: every request counts as slow, so the test
            // needs no artificial delay to pin a trace.
            trace: TraceConfig {
                slow_threshold: Duration::ZERO,
                ..TraceConfig::default()
            },
            ..GatewayConfig::default()
        },
    ));
    let server = GatewayServer::bind(Arc::clone(&gateway), "127.0.0.1:0").expect("bind");
    let mut client = GatewayClient::connect(server.local_addr()).expect("connect");

    let model = gateway.router().model("m").expect("registered");
    client
        .infer_codes("m", codes(&model, 2, 4))
        .expect("served");

    let reply = client.trace(8).expect("trace");
    assert!(!reply.traces.is_empty(), "slow request was not pinned");
    let trace = reply
        .traces
        .iter()
        .find(|t| t.verb == "infer")
        .expect("no infer trace pinned");

    // The span list is a complete tree: a root covering the request,
    // every other span parented within the trace, offsets and durations
    // inside the root's window.
    assert!(!trace.spans.is_empty());
    let root = &trace.spans[0];
    assert_eq!(root.id, 0);
    assert_eq!(root.parent, None);
    assert_eq!(root.stage, "infer");
    assert_eq!(root.dur_us, trace.total_us);
    let stages: Vec<&str> = trace.spans.iter().map(|s| s.stage.as_str()).collect();
    for expect in ["route", "cache_probe", "admission_wait", "execute"] {
        assert!(
            stages.contains(&expect),
            "stage {expect:?} missing: {stages:?}"
        );
    }
    for span in &trace.spans[1..] {
        let parent = span.parent.expect("non-root span lost its parent");
        assert!(parent < span.id, "parent does not precede child");
        assert!(span.start_us <= trace.total_us);
        assert!(span.dur_us <= trace.total_us);
    }

    // The limit is honored: more traffic, then ask for just one trace.
    client
        .infer_codes("m", codes(&model, 1, 5))
        .expect("served");
    let limited = client.trace(1).expect("trace");
    assert_eq!(limited.traces.len(), 1);
    // Newest first: the second request's trace outranks the first's.
    assert!(limited.traces[0].id > trace.id);
}

#[test]
fn health_verb_reports_ok_and_dims_appear_in_metrics_after_traffic() {
    let gateway = Arc::new(Gateway::new(models(&["m"], 11), GatewayConfig::default()));
    let server = GatewayServer::bind(Arc::clone(&gateway), "127.0.0.1:0").expect("bind");
    let mut client = GatewayClient::connect(server.local_addr()).expect("connect");

    let model = gateway.router().model("m").expect("registered");
    for salt in 0..3 {
        client
            .infer_codes("m", codes(&model, 1, salt))
            .expect("served");
    }

    // Default SLO budgets are generous: light successful traffic is ok.
    let health = client.health().expect("health");
    assert_eq!(health.status, panacea_gateway::SloStatus::Ok);
    assert!(!health.targets.is_empty(), "default SLO config has targets");
    let latency = health
        .targets
        .iter()
        .find(|t| t.name == "latency")
        .expect("latency target");
    assert!(latency.samples > 0, "latency target saw no traffic");
    assert!(latency.burn_rate < 1.0, "{:?}", latency);

    // The same traffic shows up as a (model, verb, stage) dimension in
    // the metrics verb's windowed summaries.
    let metrics = client.metrics().expect("metrics");
    assert!(metrics.dims_window_ms > 0);
    let dim = metrics
        .dims
        .iter()
        .find(|d| d.model == "m" && d.verb == "infer" && d.stage == "request")
        .expect("no (m, infer, request) dimension recorded");
    assert_eq!(dim.ok, 3);
    assert_eq!(dim.error, 0);
    assert_eq!(dim.shed, 0);
    assert!(dim.count >= 3, "latency samples missing: {dim:?}");
}

#[test]
fn sheds_flip_health_and_are_broken_down_by_reason_in_stats() {
    use panacea_gateway::{SloConfig, SloTarget};
    // One permit, lingering batcher, no cache: a synchronized burst must
    // shed most of itself. The SLO allows zero sheds, so any shed at all
    // burns critically.
    let gateway = Arc::new(Gateway::new(
        models(&["m"], 12),
        GatewayConfig {
            shards: 1,
            runtime: RuntimeConfig {
                workers: 1,
                policy: BatchPolicy {
                    max_batch: 4096,
                    max_wait: Duration::from_millis(100),
                },
            },
            cache: CacheConfig {
                capacity: 0,
                shards: 1,
                ..CacheConfig::default()
            },
            admission: AdmissionConfig {
                max_in_flight: 1,
                max_queue_wait: Duration::from_secs(10),
            },
            slo: SloConfig {
                targets: vec![SloTarget {
                    max_shed_rate: Some(0.0),
                    ..SloTarget::over("no-sheds", Duration::from_secs(10))
                }],
            },
            ..GatewayConfig::default()
        },
    ));
    let server = GatewayServer::bind(Arc::clone(&gateway), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    let model = gateway.router().model("m").expect("registered");

    let barrier = Arc::new(Barrier::new(6));
    let mut threads = Vec::new();
    for t in 0..6 {
        let barrier = Arc::clone(&barrier);
        let x = codes(&model, 1, t);
        threads.push(thread::spawn(move || {
            let mut client = GatewayClient::connect(addr).expect("connect");
            barrier.wait();
            match client.infer_codes("m", x) {
                Ok(_) => false,
                Err(e) => {
                    assert!(e.is_overloaded(), "unexpected failure: {e}");
                    true
                }
            }
        }));
    }
    let rejected = threads
        .into_iter()
        .map(|th| th.join().expect("client thread"))
        .filter(|&r| r)
        .count();
    assert!(rejected > 0, "6-way burst over 1 permit saw no shed");

    let mut client = GatewayClient::connect(addr).expect("connect");
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.sheds.in_flight, rejected as u64,
        "per-reason shed counter disagrees with observed rejections"
    );
    assert_eq!(stats.sheds.queue_wait, 0);
    assert_eq!(stats.sheds.kv_budget, 0);
    assert_eq!(stats.sheds.total(), stats.admission.rejected_capacity);

    // Zero shed budget + real sheds: the health verdict burns critical.
    let health = client.health().expect("health");
    assert_eq!(health.status, panacea_gateway::SloStatus::Critical);
    let target = &health.targets[0];
    assert_eq!(target.name, "no-sheds");
    assert!(target.shed_rate > 0.0);
    assert!(target.burn_rate > 1.0, "{target:?}");
}

#[test]
fn recent_trace_ring_returns_fast_requests_the_slow_ring_skips() {
    use panacea_gateway::TraceConfig;
    let gateway = Arc::new(Gateway::new(
        models(&["m"], 13),
        GatewayConfig {
            // Nothing is "slow" under a 60s threshold, so the slow ring
            // stays empty while the recent ring records everything.
            trace: TraceConfig {
                slow_threshold: Duration::from_secs(60),
                ..TraceConfig::default()
            },
            ..GatewayConfig::default()
        },
    ));
    let server = GatewayServer::bind(Arc::clone(&gateway), "127.0.0.1:0").expect("bind");
    let mut client = GatewayClient::connect(server.local_addr()).expect("connect");

    let model = gateway.router().model("m").expect("registered");
    client
        .infer_codes("m", codes(&model, 1, 9))
        .expect("served");

    let slow = client.trace(8).expect("trace");
    assert!(slow.traces.is_empty(), "fast request pinned as slow");
    let recent = client.trace_recent(8).expect("trace recent");
    assert!(!recent.traces.is_empty(), "recent ring recorded nothing");
    assert_eq!(recent.traces[0].verb, "infer");
}

#[test]
fn malformed_lines_get_error_responses_and_the_connection_survives() {
    use std::io::{BufRead, BufReader, Write};
    let gateway = Arc::new(Gateway::new(models(&["m"], 7), GatewayConfig::default()));
    let server = GatewayServer::bind(Arc::clone(&gateway), "127.0.0.1:0").expect("bind");

    let mut raw = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    raw.write_all(b"this is not json\n").expect("write");
    let mut reader = BufReader::new(raw.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("read");
    assert!(line.contains("bad_request"), "got {line:?}");

    // The same connection still serves valid requests afterwards.
    let model = gateway.router().model("m").expect("registered");
    let x = codes(&model, 1, 0);
    let expect = model.forward_codes(&x).0;
    let req = panacea_gateway::protocol::encode_request(&panacea_gateway::Request::Infer {
        model: "m".to_string(),
        payload: panacea_gateway::Payload::Codes(x),
        deadline_ms: None,
    });
    raw.write_all(req.as_bytes()).expect("write");
    raw.write_all(b"\n").expect("write");
    line.clear();
    reader.read_line(&mut line).expect("read");
    let resp = panacea_gateway::protocol::decode_response(&line).expect("decode");
    match resp {
        panacea_gateway::Response::Infer(reply) => assert_eq!(reply.payload, expect.into()),
        other => panic!("expected an inference, got {other:?}"),
    }
}

#[test]
fn decode_traces_stitch_cross_thread_spans_over_tcp() {
    use panacea_gateway::testutil::{block_model, hidden};
    use panacea_gateway::TraceConfig;
    let (model, _) = block_model("decoder", 70);
    let gateway = Arc::new(Gateway::new(
        vec![model],
        GatewayConfig {
            // Zero threshold pins every request, so the decode's trace
            // is retrievable without artificial delays.
            trace: TraceConfig {
                slow_threshold: Duration::ZERO,
                ..TraceConfig::default()
            },
            ..GatewayConfig::default()
        },
    ));
    let server = GatewayServer::bind(Arc::clone(&gateway), "127.0.0.1:0").expect("bind");
    let mut client = GatewayClient::connect(server.local_addr()).expect("connect");

    let open = client.session_open("decoder").expect("opened");
    client.decode(open.session, hidden(16, 2, 1)).expect("step");
    client.session_close(open.session).expect("closed");

    // The decode executed on the shard's decode-batch worker thread,
    // yet its TCP-fetched trace must be one stitched span tree: the
    // request root, the gateway's execute span, and under it the
    // worker-side queue_wait and decode_pass spans.
    let reply = client.trace(8).expect("trace");
    let trace = reply
        .traces
        .iter()
        .find(|t| t.verb == "decode")
        .expect("decode trace not pinned");
    assert!(trace.unix_ms > 0, "wall-clock anchor missing");
    let root = &trace.spans[0];
    assert_eq!(root.id, 0);
    assert_eq!(root.parent, None);
    assert_eq!(root.stage, "decode");
    let execute = trace
        .spans
        .iter()
        .find(|s| s.stage == "execute")
        .expect("execute span missing");
    assert_eq!(execute.parent, Some(0), "execute not under the root");
    for stage in ["queue_wait", "decode_pass"] {
        let span = trace
            .spans
            .iter()
            .find(|s| s.stage == stage)
            .unwrap_or_else(|| panic!("cross-thread stage {stage:?} missing from the trace"));
        assert_eq!(
            span.parent,
            Some(execute.id),
            "{stage:?} not parented under the gateway's execute span"
        );
        assert!(span.start_us <= trace.total_us);
        assert!(span.dur_us <= trace.total_us);
    }
    // A solo session's fused pass served only this request: no links.
    let pass = trace
        .spans
        .iter()
        .find(|s| s.stage == "decode_pass")
        .expect("checked above");
    assert!(pass.links.is_empty(), "solo pass linked {:?}", pass.links);

    // The session's lifecycle and the pass itself landed in the flight
    // recorder, retrievable over the same wire.
    let events = client.events(64).expect("events");
    for kind in [
        "model_register",
        "session_open",
        "batch_formed",
        "session_close",
    ] {
        assert!(
            events.events.iter().any(|e| e.kind == kind),
            "event kind {kind:?} missing from the ring"
        );
    }
    assert!(events.events.iter().all(|e| e.unix_ms > 0));
    assert!(events.pinned.is_none(), "healthy run pinned an incident");
}

#[test]
fn fused_decode_passes_link_every_participating_trace() {
    use panacea_gateway::testutil::{block_model, hidden};
    use panacea_gateway::{SessionConfig, TraceConfig};
    // One shard and a generous linger window so two concurrent steps
    // fuse into one decode pass; zero slow threshold pins both traces.
    let (model, _) = block_model("decoder", 71);
    let gateway = Arc::new(Gateway::new(
        vec![model],
        GatewayConfig {
            shards: 1,
            session: SessionConfig {
                decode_max_wait: Duration::from_millis(500),
                ..SessionConfig::default()
            },
            trace: TraceConfig {
                slow_threshold: Duration::ZERO,
                ..TraceConfig::default()
            },
            ..GatewayConfig::default()
        },
    ));
    let server = GatewayServer::bind(Arc::clone(&gateway), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    // Scheduling can still slip a step past the linger window, so retry
    // the whole two-client round until a pass actually fused.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let barrier = Arc::new(Barrier::new(2));
        let threads: Vec<_> = (0..2)
            .map(|t| {
                let barrier = Arc::clone(&barrier);
                thread::spawn(move || {
                    let mut client = GatewayClient::connect(addr).expect("connect");
                    let open = client.session_open("decoder").expect("opened");
                    barrier.wait();
                    client.decode(open.session, hidden(16, 1, t)).expect("step");
                    client.session_close(open.session).expect("closed");
                })
            })
            .collect();
        for th in threads {
            th.join().expect("client thread");
        }
        let mut client = GatewayClient::connect(addr).expect("connect");
        let reply = client.trace(16).expect("trace");
        let decodes: Vec<_> = reply.traces.iter().filter(|t| t.verb == "decode").collect();
        let linked: Vec<_> = decodes
            .iter()
            .filter_map(|t| {
                t.spans
                    .iter()
                    .find(|s| s.stage == "decode_pass" && !s.links.is_empty())
                    .map(|s| (t.id, s.links.clone()))
            })
            .collect();
        if linked.len() == 2 {
            // Each trace's pass span links exactly the *other*
            // participant, never itself.
            let (a, a_links) = &linked[0];
            let (b, b_links) = &linked[1];
            assert_eq!(a_links, &vec![*b], "trace {a} links wrong set");
            assert_eq!(b_links, &vec![*a], "trace {b} links wrong set");
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "steps never fused into one pass; last round's traces: {decodes:?}"
        );
    }
}

#[test]
fn health_flip_pins_an_incident_retrievable_after_recovery() {
    use panacea_gateway::{SloConfig, SloStatus, SloTarget};
    // Zero shed budget over a short window: one shed burns critical,
    // and once the shed ages out of the window health recovers — but
    // the pinned snapshot must still tell the story.
    let gateway = Arc::new(Gateway::new(
        models(&["m"], 14),
        GatewayConfig {
            shards: 1,
            cache: CacheConfig {
                capacity: 0,
                shards: 1,
                ..CacheConfig::default()
            },
            admission: AdmissionConfig {
                max_in_flight: 1,
                max_queue_wait: Duration::from_secs(10),
            },
            slo: SloConfig {
                targets: vec![SloTarget {
                    max_shed_rate: Some(0.0),
                    ..SloTarget::over("no-sheds", Duration::from_millis(300))
                }],
            },
            ..GatewayConfig::default()
        },
    ));
    let server = GatewayServer::bind(Arc::clone(&gateway), "127.0.0.1:0").expect("bind");
    let mut client = GatewayClient::connect(server.local_addr()).expect("connect");
    let model = gateway.router().model("m").expect("registered");

    // Deliberate overload: hold the only permit, then send a request.
    let permit = gateway.admission().try_admit().expect("permit");
    let shed = client.infer_codes("m", codes(&model, 1, 0));
    assert!(shed
        .expect_err("request served past the held permit")
        .is_overloaded());
    drop(permit);

    // The next health evaluation notices the flip and pins a snapshot.
    let health = client.health().expect("health");
    assert_eq!(health.status, SloStatus::Critical);

    // Wait out the SLO window: the shed ages out and health recovers
    // (an empty window is ok — no traffic is not an outage).
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let health = client.health().expect("health");
        if health.status == SloStatus::Ok {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "health never recovered: {health:?}"
        );
        thread::sleep(Duration::from_millis(50));
    }

    // The incident survives recovery: pinned snapshot frozen at the
    // flip, with the shed, the transition, and the dims that burned.
    let reply = client.events(64).expect("events");
    let pinned = reply.pinned.expect("no incident snapshot pinned");
    assert_eq!(pinned.status, SloStatus::Critical);
    assert!(pinned.unix_ms > 0);
    assert!(
        pinned.events.iter().any(|e| e.kind == "shed"
            && e.severity == "warn"
            && e.detail.contains("reason=in_flight")),
        "shed event missing from the snapshot: {:?}",
        pinned.events
    );
    assert!(
        pinned
            .events
            .iter()
            .any(|e| e.kind == "health_transition" && e.detail.contains("to=critical")),
        "flip transition missing from the snapshot"
    );
    assert!(
        pinned.dims.iter().any(|d| d.shed > 0),
        "frozen dims lost the shed: {:?}",
        pinned.dims
    );
    // The live ring additionally recorded the recovery transition.
    assert!(
        reply.events.iter().any(|e| e.kind == "health_transition"
            && e.severity == "info"
            && e.detail.contains("to=ok")),
        "recovery transition missing from the ring: {:?}",
        reply.events
    );
}

#[test]
fn server_shutdown_joins_threads_and_refuses_new_connections() {
    let gateway = Arc::new(Gateway::new(models(&["m"], 8), GatewayConfig::default()));
    let mut server = GatewayServer::bind(Arc::clone(&gateway), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    // An idle connected client must not block shutdown.
    let _idle = GatewayClient::connect(addr).expect("connect");
    server.shutdown();
    server.shutdown(); // idempotent

    // After shutdown the port no longer answers the protocol: either the
    // connection is refused outright or it closes without a response.
    if let Ok(mut client) = GatewayClient::connect(addr) {
        let model = gateway.router().model("m").expect("registered");
        assert!(client.infer_codes("m", codes(&model, 1, 0)).is_err());
    }
}

#[test]
fn connection_gauges_and_lifecycle_events_flow_over_the_wire() {
    let gateway = Arc::new(Gateway::new(models(&["m"], 21), GatewayConfig::default()));
    let server = GatewayServer::bind(Arc::clone(&gateway), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    let mut observer_client = GatewayClient::connect(addr).expect("connect");
    let mut transient = GatewayClient::connect(addr).expect("connect");
    assert!(transient.stats().is_ok(), "transient client must serve");

    let stats = observer_client.stats().expect("stats");
    assert!(
        stats.connections.open >= 2,
        "both live connections should be counted open: {:?}",
        stats.connections
    );
    assert!(stats.connections.peak >= 2);
    assert_eq!(stats.connections.evicted, 0);

    // Dropping one client drains the gauge (the close is asynchronous,
    // so poll briefly) and leaves a close event in the recorder.
    drop(transient);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let s = observer_client.stats().expect("stats");
        if s.connections.open <= 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "open gauge never drained: {:?}",
            s.connections
        );
        thread::sleep(Duration::from_millis(10));
    }
    let events = observer_client.events(64).expect("events");
    for kind in ["conn_open", "conn_close"] {
        assert!(
            events.events.iter().any(|e| e.kind == kind),
            "event kind {kind:?} missing from the ring: {:?}",
            events.events
        );
    }
}

#[test]
fn over_limit_connection_is_counted_evicted_with_reason() {
    use panacea_gateway::ServerConfig;
    let gateway = Arc::new(Gateway::new(models(&["m"], 22), GatewayConfig::default()));
    let server = GatewayServer::bind_with(
        Arc::clone(&gateway),
        "127.0.0.1:0",
        ServerConfig {
            max_connections: 1,
            ..ServerConfig::default()
        },
    )
    .expect("bind");

    let mut first = GatewayClient::connect(server.local_addr()).expect("connect");
    assert!(first.stats().is_ok(), "in-limit connection must serve");
    let mut second = GatewayClient::connect(server.local_addr()).expect("connect");
    let err = second.stats().expect_err("over-limit connection served");
    assert!(err.is_overloaded(), "wrong rejection: {err}");

    let stats = first.stats().expect("stats");
    assert_eq!(stats.connections.evicted, 1, "{:?}", stats.connections);
    let events = first.events(64).expect("events");
    assert!(
        events.events.iter().any(|e| e.kind == "conn_evict"
            && e.severity == "warn"
            && e.detail.contains("reason=max_connections")),
        "max_connections eviction missing from the ring: {:?}",
        events.events
    );
}

#[test]
fn reactor_evicts_slow_consumers_and_drain_evicts_survivors() {
    use panacea_gateway::{IoModel, ServerConfig};
    use std::io::Write;
    use std::net::TcpStream;
    // Explicitly the reactor model (independent of PANACEA_IO_MODEL)
    // with a tiny write backlog and a short stall timeout so a
    // non-reading client is evicted quickly.
    let gateway = Arc::new(Gateway::new(models(&["m"], 23), GatewayConfig::default()));
    let mut server = GatewayServer::bind_with(
        Arc::clone(&gateway),
        "127.0.0.1:0",
        ServerConfig {
            io_model: IoModel::Reactor,
            max_write_backlog: 16 * 1024,
            write_stall_timeout: Duration::from_millis(300),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();

    // The slow consumer pipelines stats requests forever and never
    // reads a byte: once the kernel socket buffers on both sides fill,
    // its write backlog stalls past the timeout. The writer thread dies
    // when the eviction resets the connection.
    let slow = TcpStream::connect(addr).expect("connect slow");
    let slow_writer = thread::spawn(move || {
        let mut slow = slow;
        while slow.write_all(b"{\"verb\":\"stats\"}\n").is_ok() {}
    });

    // A healthy client keeps being served throughout and watches for
    // the eviction over the events verb.
    let mut healthy = GatewayClient::connect(addr).expect("connect healthy");
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let events = healthy.events(64).expect("events");
        if events
            .events
            .iter()
            .any(|e| e.kind == "conn_evict" && e.detail.contains("reason=slow_consumer"))
        {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "slow consumer never evicted: {:?}",
            events.events
        );
        thread::sleep(Duration::from_millis(25));
    }
    assert!(healthy.stats().is_ok(), "healthy client must survive");
    slow_writer.join().expect("slow writer");

    // Shutdown drains, then evicts the surviving idle connection with
    // reason=shutdown — visible in-process after the server is gone.
    server.shutdown();
    assert!(
        gateway
            .events(64)
            .events
            .iter()
            .any(|e| e.kind == "conn_evict" && e.detail.contains("reason=shutdown")),
        "shutdown eviction missing from the ring"
    );
}
