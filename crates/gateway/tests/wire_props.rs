//! Property tests for the `metrics` and `trace` wire verbs: arbitrary
//! structured replies survive the line-delimited JSON round trip
//! exactly, and mutilated lines (dropped fields) error cleanly instead
//! of decoding into something else.

use panacea_gateway::protocol::{decode_request, decode_response, encode_request, encode_response};
use panacea_gateway::{
    DimSummary, EventSummary, EventsReply, GatewayMetrics, HealthReport, IncidentSummary, Request,
    Response, SloStatus, SpanSummary, StageSummary, TargetReport, TraceKind, TraceReply,
    TraceSummary,
};
use proptest::prelude::*;

const STAGE_NAMES: &[&str] = &[
    "parse",
    "cache_probe",
    "admission_wait",
    "route",
    "execute",
    "queue_wait",
    "batch_form",
    "split_back",
    "step",
    "decode_linger",
    "decode_pass",
    "decode_occupancy",
    "block_qkv",
    "block_attn",
    "block_proj",
    "block_fc1",
    "block_fc2",
];

/// Builds one stage summary from six raw u64s. Values stay below the
/// wire format's 9e15 integral bound (JSON numbers are f64) — the same
/// bound the real histograms' nanosecond samples respect for any
/// practical uptime.
fn stage(i: usize, vals: &[u64]) -> StageSummary {
    let v = |j: usize| vals[(i * 6 + j) % vals.len()] % 9_000_000_000_000_000;
    StageSummary {
        stage: STAGE_NAMES[i % STAGE_NAMES.len()].to_string(),
        count: v(0),
        sum: v(1),
        p50: v(2),
        p90: v(3),
        p99: v(4),
        max: v(5),
    }
}

/// Builds one dimensional summary from raw u64s, under the same
/// integral bound as [`stage`].
fn dim(i: usize, vals: &[u64]) -> DimSummary {
    let v = |j: usize| vals[(i * 11 + j) % vals.len()] % 9_000_000_000_000_000;
    DimSummary {
        model: format!("model-{}", i % 3),
        verb: ["infer", "decode", "batch"][i % 3].to_string(),
        stage: ["request", "execute", "step"][(i / 3) % 3].to_string(),
        count: v(0),
        p50_us: v(1),
        p90_us: v(2),
        p99_us: v(3),
        max_us: v(4),
        ok: v(5),
        error: v(6),
        shed: v(7),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn metrics_responses_round_trip(
        vals in proptest::collection::vec(0u64..u64::MAX, 6..48),
        gateway_stages in 0usize..6,
        shard_count in 0usize..4,
        shard_stages in 0usize..9,
        block_stages in 0usize..6,
        dim_count in 0usize..8,
        uptime_ms in 0u64..9_000_000_000_000_000,
        seq in 0u64..9_000_000_000_000_000,
    ) {
        let resp = Response::Metrics(GatewayMetrics {
            uptime_ms,
            seq,
            gateway: (0..gateway_stages).map(|i| stage(i, &vals)).collect(),
            shards: (0..shard_count)
                .map(|s| (0..shard_stages).map(|i| stage(s * 7 + i, &vals)).collect())
                .collect(),
            block: (0..block_stages).map(|i| stage(i + 12, &vals)).collect(),
            dims_window_ms: uptime_ms / 2,
            dims: (0..dim_count).map(|i| dim(i, &vals)).collect(),
        });
        let line = encode_response(&resp);
        prop_assert!(!line.contains('\n'));
        prop_assert_eq!(decode_response(&line).unwrap(), resp);
    }

    #[test]
    fn health_responses_round_trip(
        target_count in 0usize..5,
        // The vendored proptest only samples integer ranges; floats are
        // derived by scaling, which also keeps them exactly
        // representable so the wire round trip is equality-comparable.
        burns in proptest::collection::vec(0u64..10_000, 5),
        rates in proptest::collection::vec(0u64..1_000, 10),
        samples in proptest::collection::vec(0u64..9_000_000_000_000_000, 5),
    ) {
        let statuses = [SloStatus::Ok, SloStatus::Degraded, SloStatus::Critical];
        let targets: Vec<TargetReport> = (0..target_count)
            .map(|i| TargetReport {
                name: format!("target-{i}"),
                status: statuses[i % 3],
                burn_rate: burns[i] as f64 / 100.0,
                samples: samples[i],
                p99_us: burns[(i + 1) % 5] as f64 * 1_000.0,
                error_rate: rates[i] as f64 / 1_000.0,
                shed_rate: rates[i + 5] as f64 / 1_000.0,
            })
            .collect();
        let status = targets.iter().map(|t| t.status).max().unwrap_or(SloStatus::Ok);
        let resp = Response::Health(HealthReport { status, targets });
        let line = encode_response(&resp);
        prop_assert!(!line.contains('\n'));
        prop_assert_eq!(decode_response(&line).unwrap(), resp);
    }

    #[test]
    fn trace_responses_round_trip(
        vals in proptest::collection::vec(0u64..9_000_000_000_000_000, 4..64),
        trace_count in 0usize..4,
        span_count in 1usize..12,
    ) {
        let traces = (0..trace_count)
            .map(|t| {
                let v = |j: usize| vals[(t * 13 + j) % vals.len()];
                let spans = (0..span_count)
                    .map(|i| SpanSummary {
                        id: i as u64,
                        // Root has no parent; every other span points at
                        // an arbitrary earlier span, like real traces.
                        parent: (i > 0).then(|| v(i) % i as u64),
                        stage: STAGE_NAMES[(t + i) % STAGE_NAMES.len()].to_string(),
                        start_us: v(i + 1),
                        dur_us: v(i + 2),
                        // Fused spans link other traces; most link none.
                        links: (0..(i % 3)).map(|l| v(i + l + 3)).collect(),
                    })
                    .collect();
                TraceSummary {
                    id: v(0),
                    verb: ["infer", "decode", "session_open"][t % 3].to_string(),
                    total_us: v(1),
                    unix_ms: v(2),
                    spans,
                }
            })
            .collect();
        let resp = Response::Trace(TraceReply { traces });
        prop_assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
    }

    #[test]
    fn metrics_and_trace_requests_round_trip(
        limit in 0usize..9_000_000_000_000_000,
        recent in 0u8..2,
    ) {
        let kind = if recent == 1 { TraceKind::Recent } else { TraceKind::Slow };
        let req = Request::Trace { limit, kind };
        prop_assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);
        prop_assert_eq!(
            decode_request(&encode_request(&Request::Metrics)).unwrap(),
            Request::Metrics
        );
        prop_assert_eq!(
            decode_request(&encode_request(&Request::Health)).unwrap(),
            Request::Health
        );
        let req = Request::Events { limit };
        prop_assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);
    }

    #[test]
    fn events_responses_round_trip(
        vals in proptest::collection::vec(0u64..9_000_000_000_000_000, 4..32),
        event_count in 0usize..6,
        with_pinned in 0u8..2,
    ) {
        let event = |i: usize| EventSummary {
            seq: vals[i % vals.len()],
            unix_ms: vals[(i + 1) % vals.len()],
            severity: ["info", "warn", "error"][i % 3].to_string(),
            kind: ["session_open", "shed", "health_transition", "batch_formed"][i % 4]
                .to_string(),
            detail: format!("detail-{i}"),
        };
        let events: Vec<EventSummary> = (0..event_count).map(event).collect();
        let pinned = (with_pinned == 1).then(|| IncidentSummary {
            unix_ms: vals[0],
            status: [SloStatus::Degraded, SloStatus::Critical][(vals[1] % 2) as usize],
            events: events.clone(),
            traces: vec![TraceSummary {
                id: vals[2],
                verb: "decode".to_string(),
                total_us: vals[3],
                unix_ms: vals[0],
                spans: vec![SpanSummary {
                    id: 0,
                    parent: None,
                    stage: "decode".to_string(),
                    start_us: 0,
                    dur_us: vals[3],
                    links: vec![],
                }],
            }],
            dims: (0..2).map(|i| dim(i, &vals)).collect(),
        });
        let resp = Response::Events(EventsReply { events, pinned });
        let line = encode_response(&resp);
        prop_assert!(!line.contains('\n'));
        prop_assert_eq!(decode_response(&line).unwrap(), resp);
    }
}

/// Dropping any single required field from a valid `metrics` or `trace`
/// response line must yield a clean protocol error, never a mangled
/// decode. Field removal is done by renaming the key, which preserves
/// JSON validity, so the failure is always "missing field", not a parse
/// error — the strict-decoder path under test.
#[test]
fn dropping_any_required_field_errors_cleanly() {
    let metrics = Response::Metrics(GatewayMetrics {
        uptime_ms: 12,
        seq: 3,
        gateway: vec![StageSummary {
            stage: "parse".to_string(),
            count: 1,
            sum: 2,
            p50: 3,
            p90: 4,
            p99: 5,
            max: 6,
        }],
        shards: vec![vec![]],
        block: vec![],
        dims_window_ms: 10_000,
        dims: vec![DimSummary {
            model: "m".to_string(),
            verb: "infer".to_string(),
            stage: "request".to_string(),
            count: 4,
            p50_us: 5,
            p90_us: 6,
            p99_us: 7,
            max_us: 8,
            ok: 3,
            error: 1,
            shed: 0,
        }],
    });
    let trace = Response::Trace(TraceReply {
        traces: vec![TraceSummary {
            id: 1,
            verb: "infer".to_string(),
            total_us: 9,
            unix_ms: 1_700_000_000_000,
            spans: vec![SpanSummary {
                id: 0,
                parent: None,
                stage: "infer".to_string(),
                start_us: 0,
                dur_us: 9,
                links: vec![2],
            }],
        }],
    });
    let health = Response::Health(HealthReport {
        status: SloStatus::Degraded,
        targets: vec![TargetReport {
            name: "p99".to_string(),
            status: SloStatus::Degraded,
            burn_rate: 1.5,
            samples: 40,
            p99_us: 1_200.0,
            error_rate: 0.01,
            shed_rate: 0.0,
        }],
    });
    let events = Response::Events(EventsReply {
        events: vec![EventSummary {
            seq: 7,
            unix_ms: 1_700_000_000_001,
            severity: "warn".to_string(),
            kind: "shed".to_string(),
            detail: "reason=in_flight model=m verb=infer".to_string(),
        }],
        pinned: Some(IncidentSummary {
            unix_ms: 1_700_000_000_000,
            status: SloStatus::Degraded,
            events: vec![],
            traces: vec![],
            dims: vec![],
        }),
    });
    for resp in [metrics, trace, health, events] {
        let line = encode_response(&resp);
        assert_eq!(
            decode_response(&line).unwrap(),
            resp,
            "baseline must decode"
        );
        for key in [
            "uptime_ms",
            "seq",
            "gateway",
            "shards",
            "block",
            "stage",
            "count",
            "sum",
            "p50",
            "p90",
            "p99",
            "max",
            "traces",
            "verb",
            "total_us",
            "spans",
            "parent",
            "start_us",
            "dur_us",
            "dims_window_ms",
            "dims",
            "model",
            "p50_us",
            "p90_us",
            "p99_us",
            "max_us",
            "ok",
            "error",
            "shed",
            "status",
            "targets",
            "name",
            "burn_rate",
            "samples",
            "error_rate",
            "shed_rate",
            "unix_ms",
            "links",
            "events",
            "pinned",
            "seq",
            "severity",
            "detail",
        ] {
            let needle = format!("\"{key}\":");
            if !line.contains(&needle) {
                continue; // key not part of this response kind
            }
            let mangled = line.replacen(&needle, &format!("\"_{key}\":"), 1);
            let err = decode_response(&mangled)
                .expect_err(&format!("decoded without required field {key:?}"));
            assert!(
                err.to_string().contains("missing field"),
                "wrong error for dropped {key:?}: {err}"
            );
        }
    }
}
