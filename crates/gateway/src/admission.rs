//! Admission control: bounded in-flight requests and bounded queue wait.
//!
//! A front door that accepts everything converts overload into unbounded
//! queueing — every request eventually times out and the server does
//! work nobody is waiting for. The [`AdmissionController`] instead sheds
//! excess load explicitly: a request either takes one of
//! `max_in_flight` permits immediately or is rejected with
//! [`ServeError::Overloaded`], and an admitted request that is not
//! answered within `max_queue_wait` releases its caller with the same
//! error. A shed caller then drops its [`Pending`] handle, which cancels
//! the request if it is still queued — so shedding frees both the permit
//! *and* the queued work, and sustained overload cannot grow the runtime
//! queue behind the admission layer's back. (A request a worker already
//! claimed into a batch completes normally; its answer is discarded.)

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use panacea_serve::{InferenceOutput, OverloadReason, Pending, ServeError};

/// Admission bounds.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Maximum simultaneously admitted (submitted, unanswered) requests.
    pub max_in_flight: usize,
    /// Longest a caller waits for an admitted request before being shed.
    pub max_queue_wait: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_in_flight: 256,
            max_queue_wait: Duration::from_secs(5),
        }
    }
}

/// Counters describing admission decisions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Requests that took a permit.
    pub admitted: u64,
    /// Requests rejected because all permits were taken.
    pub rejected_capacity: u64,
    /// Admitted requests whose caller was shed by the queue-wait bound.
    pub rejected_timeout: u64,
    /// Permits currently held.
    pub in_flight: usize,
}

impl AdmissionStats {
    /// Total explicit rejections (capacity + timeout).
    pub fn total_rejected(&self) -> u64 {
        self.rejected_capacity + self.rejected_timeout
    }
}

/// Shared admission state. See the module docs.
#[derive(Debug)]
pub struct AdmissionController {
    config: AdmissionConfig,
    in_flight: AtomicUsize,
    admitted: AtomicU64,
    rejected_capacity: AtomicU64,
    rejected_timeout: AtomicU64,
}

impl AdmissionController {
    /// Builds a controller enforcing `config` (at least one permit).
    pub fn new(config: AdmissionConfig) -> Self {
        AdmissionController {
            config: AdmissionConfig {
                max_in_flight: config.max_in_flight.max(1),
                ..config
            },
            in_flight: AtomicUsize::new(0),
            admitted: AtomicU64::new(0),
            rejected_capacity: AtomicU64::new(0),
            rejected_timeout: AtomicU64::new(0),
        }
    }

    /// The bounds being enforced.
    pub fn config(&self) -> AdmissionConfig {
        self.config
    }

    /// Takes a permit if one is free; the permit releases on drop, so
    /// error paths can never leak capacity.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] with [`OverloadReason::InFlight`] when
    /// all permits are taken.
    pub fn try_admit(&self) -> Result<AdmissionPermit<'_>, ServeError> {
        let limit = self.config.max_in_flight;
        let admitted = self
            .in_flight
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
                (cur < limit).then_some(cur + 1)
            })
            .is_ok();
        if admitted {
            self.admitted.fetch_add(1, Ordering::Relaxed);
            Ok(AdmissionPermit { controller: self })
        } else {
            self.rejected_capacity.fetch_add(1, Ordering::Relaxed);
            Err(ServeError::Overloaded {
                reason: OverloadReason::InFlight { limit },
            })
        }
    }

    /// Waits for an admitted request's response, bounded by
    /// `max_queue_wait`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] with [`OverloadReason::QueueWait`]
    /// when the bound elapses first, and whatever
    /// [`Pending::wait_timeout`] surfaces otherwise.
    pub fn wait_bounded(&self, pending: &Pending) -> Result<InferenceOutput, ServeError> {
        self.wait_bounded_deadline(pending, None)
    }

    /// [`wait_bounded`](Self::wait_bounded) additionally bounded by the
    /// caller's `deadline`: the wait lasts until whichever of the queue
    /// bound and the deadline comes first. A timeout caused by the
    /// deadline answers [`ServeError::DeadlineExceeded`] — the caller
    /// asked for that bound, so it is not counted as a shed — while one
    /// caused by `max_queue_wait` sheds exactly as
    /// [`wait_bounded`](Self::wait_bounded) does.
    ///
    /// # Errors
    ///
    /// [`ServeError::DeadlineExceeded`] when the deadline bound elapses
    /// first (or has already passed), and everything
    /// [`wait_bounded`](Self::wait_bounded) surfaces otherwise.
    pub fn wait_bounded_deadline(
        &self,
        pending: &Pending,
        deadline: Option<Instant>,
    ) -> Result<InferenceOutput, ServeError> {
        let cap = self.config.max_queue_wait;
        let (waited, deadline_bound) = match deadline {
            Some(d) => {
                let remaining = d.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(ServeError::DeadlineExceeded);
                }
                (remaining.min(cap), remaining <= cap)
            }
            None => (cap, false),
        };
        match pending.wait_timeout(waited)? {
            Some(out) => Ok(out),
            None if deadline_bound => Err(ServeError::DeadlineExceeded),
            None => {
                self.rejected_timeout.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::Overloaded {
                    reason: OverloadReason::QueueWait { waited },
                })
            }
        }
    }

    /// Current counters.
    pub fn stats(&self) -> AdmissionStats {
        AdmissionStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected_capacity: self.rejected_capacity.load(Ordering::Relaxed),
            rejected_timeout: self.rejected_timeout.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Acquire),
        }
    }
}

/// RAII permit from [`AdmissionController::try_admit`]; dropping it
/// frees the slot.
#[derive(Debug)]
pub struct AdmissionPermit<'a> {
    controller: &'a AdmissionController,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        self.controller.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panacea_serve::{BatchPolicy, ModelRegistry, Runtime, RuntimeConfig};
    use std::sync::Arc;

    #[test]
    fn permits_bound_concurrency_and_release_on_drop() {
        let ctrl = AdmissionController::new(AdmissionConfig {
            max_in_flight: 2,
            max_queue_wait: Duration::from_secs(1),
        });
        let p1 = ctrl.try_admit().expect("slot 1");
        let _p2 = ctrl.try_admit().expect("slot 2");
        let rejected = ctrl.try_admit();
        assert!(matches!(
            rejected,
            Err(ServeError::Overloaded {
                reason: OverloadReason::InFlight { limit: 2 }
            })
        ));
        drop(p1);
        let p3 = ctrl.try_admit();
        assert!(p3.is_ok(), "dropped permit was not reusable");
        let s = ctrl.stats();
        assert_eq!(s.admitted, 3);
        assert_eq!(s.rejected_capacity, 1);
        assert_eq!(s.total_rejected(), 1);
        assert_eq!(s.in_flight, 2);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one_permit() {
        let ctrl = AdmissionController::new(AdmissionConfig {
            max_in_flight: 0,
            max_queue_wait: Duration::from_secs(1),
        });
        assert!(ctrl.try_admit().is_ok());
    }

    #[test]
    fn queue_wait_bound_sheds_slow_requests() {
        // One request lingering for companions far beyond the wait bound:
        // wait_bounded must release the caller with an Overloaded error.
        let registry = Arc::new(ModelRegistry::new());
        let model = registry.insert(
            crate::testutil::models(&["m"], 1)
                .pop()
                .expect("one model prepared"),
        );
        let runtime = Runtime::start(
            Arc::clone(&registry),
            RuntimeConfig {
                workers: 1,
                policy: BatchPolicy {
                    max_batch: 4096,
                    max_wait: Duration::from_secs(30),
                },
            },
        );
        let ctrl = AdmissionController::new(AdmissionConfig {
            max_in_flight: 4,
            max_queue_wait: Duration::from_millis(20),
        });
        let codes = crate::testutil::codes(&model, 1, 0);
        let permit = ctrl.try_admit().expect("admitted");
        let pending = runtime.submit_to(model, codes).expect("queued");
        let shed = ctrl.wait_bounded(&pending);
        drop(permit);
        assert!(matches!(
            shed,
            Err(ServeError::Overloaded {
                reason: OverloadReason::QueueWait { .. }
            })
        ));
        assert_eq!(ctrl.stats().rejected_timeout, 1);
        assert_eq!(ctrl.stats().in_flight, 0);
    }
}
