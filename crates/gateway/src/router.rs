//! Shard routing: N independent serving runtimes behind one front door.
//!
//! Every shard is a full [`Runtime`] — its own worker pool, queue, and
//! [`ModelRegistry`] — but all registries share the *same*
//! `Arc<PreparedModel>`s, so N shards cost one model preparation and one
//! copy of the sliced weights. Routing is rendezvous (highest-random-
//! weight) hashing on the model name: each model has a stable shard
//! preference order, so its requests keep landing where its batches
//! coalesce, and removing a shard only reshuffles the models that lived
//! there. The router compares the **top two** candidates' live queue
//! depth and takes the emptier one, so a hot model overflows onto its
//! second-choice shard instead of queueing behind itself.

use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::Arc;

use panacea_serve::{
    InferenceOutput, ModelRegistry, Payload, Pending, PreparedModel, QueueDepth, Runtime,
    RuntimeConfig, ServeError,
};

use crate::protocol::ShardStats;

/// N serving runtimes plus the routing policy that spreads models over
/// them. See the module docs.
#[derive(Debug)]
pub struct ShardRouter {
    shards: Vec<Runtime>,
}

impl ShardRouter {
    /// Builds `shards` runtimes (at least one), each configured by
    /// `config`, with every prepared model registered on every shard.
    pub fn new(models: Vec<PreparedModel>, shards: usize, config: RuntimeConfig) -> Self {
        Self::from_shared(models.into_iter().map(Arc::new).collect(), shards, config)
    }

    /// [`new`](Self::new) for models that are already shared handles —
    /// no weight cloning happens either way.
    pub fn from_shared(
        models: Vec<Arc<PreparedModel>>,
        shards: usize,
        config: RuntimeConfig,
    ) -> Self {
        Self::build(models, shards, config, None, None)
    }

    /// [`from_shared`](Self::from_shared) with a dimensional metric
    /// registry threaded into every shard's runtime, so per-model
    /// windowed batch-execute latencies are recorded alongside the
    /// aggregate histograms.
    pub fn from_shared_with_dims(
        models: Vec<Arc<PreparedModel>>,
        shards: usize,
        config: RuntimeConfig,
        dims: panacea_telemetry::MetricRegistry,
    ) -> Self {
        Self::build(models, shards, config, Some(dims), None)
    }

    /// [`from_shared_with_dims`](Self::from_shared_with_dims) plus a
    /// flight recorder: model registrations and batch formations on
    /// every shard land in the event ring.
    pub fn from_shared_with_observability(
        models: Vec<Arc<PreparedModel>>,
        shards: usize,
        config: RuntimeConfig,
        dims: panacea_telemetry::MetricRegistry,
        recorder: panacea_telemetry::FlightRecorder,
    ) -> Self {
        Self::build(models, shards, config, Some(dims), Some(recorder))
    }

    fn build(
        models: Vec<Arc<PreparedModel>>,
        shards: usize,
        config: RuntimeConfig,
        dims: Option<panacea_telemetry::MetricRegistry>,
        recorder: Option<panacea_telemetry::FlightRecorder>,
    ) -> Self {
        let shards = (0..shards.max(1))
            .map(|_| {
                let registry = Arc::new(ModelRegistry::new());
                if let Some(recorder) = &recorder {
                    registry.set_recorder(recorder.clone());
                }
                for model in &models {
                    registry.insert_shared(Arc::clone(model));
                }
                match (&dims, &recorder) {
                    (Some(dims), Some(recorder)) => Runtime::start_with_observability(
                        registry,
                        config,
                        dims.clone(),
                        recorder.clone(),
                    ),
                    (Some(dims), None) => Runtime::start_with_dims(registry, config, dims.clone()),
                    _ => Runtime::start(registry, config),
                }
            })
            .collect();
        ShardRouter { shards }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Direct access to one shard's runtime (metrics, queue depth).
    ///
    /// # Panics
    ///
    /// Panics if `shard >= self.num_shards()`.
    pub fn shard(&self, shard: usize) -> &Runtime {
        &self.shards[shard]
    }

    /// Resolves a model name against the shared registry (every shard
    /// holds the same set, so shard 0 answers for all).
    pub fn model(&self, name: &str) -> Option<Arc<PreparedModel>> {
        self.shards[0].registry().get(name)
    }

    /// Registered model names, sorted.
    pub fn model_names(&self) -> Vec<String> {
        self.shards[0].registry().names()
    }

    fn rendezvous_score(model: &str, shard: usize) -> u64 {
        let mut h = DefaultHasher::new();
        model.hash(&mut h);
        shard.hash(&mut h);
        h.finish()
    }

    /// The two highest-scoring candidate shards for a model, best first.
    /// With a single shard both slots name it.
    fn candidates(&self, model: &str) -> (usize, usize) {
        let mut best = (0, u64::MIN);
        let mut second = (0, u64::MIN);
        for shard in 0..self.shards.len() {
            let score = Self::rendezvous_score(model, shard);
            if score > best.1 {
                second = best;
                best = (shard, score);
            } else if score > second.1 {
                second = (shard, score);
            }
        }
        if self.shards.len() == 1 {
            second = best;
        }
        (best.0, second.0)
    }

    /// Picks the shard for a request: the model's rendezvous favourite,
    /// unless its runner-up is strictly less loaded right now.
    pub fn route(&self, model: &str) -> usize {
        let (first, second) = self.candidates(model);
        if first == second {
            return first;
        }
        let load_first = self.shards[first].queue_depth().load();
        let load_second = self.shards[second].queue_depth().load();
        if load_second < load_first {
            second
        } else {
            first
        }
    }

    /// Routes and enqueues a request, returning the response handle and
    /// the shard that took it.
    ///
    /// # Errors
    ///
    /// Same as [`Runtime::submit`].
    pub fn submit(
        &self,
        model: &str,
        payload: impl Into<Payload>,
    ) -> Result<(Pending, usize), ServeError> {
        let resolved = self.model(model).ok_or_else(|| ServeError::UnknownModel {
            model: model.to_string(),
        })?;
        let shard = self.route(model);
        let pending = self.shards[shard].submit_to(resolved, payload)?;
        Ok((pending, shard))
    }

    /// [`submit`](Self::submit) onto an explicit shard with an
    /// already-resolved model — the gateway uses this to keep the shard
    /// decision and the cache probe on the same payload.
    ///
    /// # Errors
    ///
    /// Same as [`Runtime::submit_to`].
    ///
    /// # Panics
    ///
    /// Panics if `shard >= self.num_shards()`.
    pub fn submit_to_shard(
        &self,
        shard: usize,
        model: Arc<PreparedModel>,
        payload: impl Into<Payload>,
    ) -> Result<Pending, ServeError> {
        self.shards[shard].submit_to(model, payload)
    }

    /// [`submit_to_shard`](Self::submit_to_shard) carrying a
    /// [`panacea_telemetry::TraceContext`]: the shard's worker records
    /// `queue_wait` / `batch_form` / `execute` / `split_back` spans into
    /// the submitting request's trace.
    ///
    /// # Errors
    ///
    /// Same as [`Runtime::submit_to`].
    ///
    /// # Panics
    ///
    /// Panics if `shard >= self.num_shards()`.
    pub fn submit_to_shard_traced(
        &self,
        shard: usize,
        model: Arc<PreparedModel>,
        payload: impl Into<Payload>,
        ctx: Option<panacea_telemetry::TraceContext>,
    ) -> Result<Pending, ServeError> {
        self.shards[shard].submit_to_traced(model, payload, ctx)
    }

    /// [`submit_to_shard_traced`](Self::submit_to_shard_traced) with a
    /// caller deadline — see [`Runtime::submit_to_traced_deadline`].
    ///
    /// # Errors
    ///
    /// Same as [`Runtime::submit_to_traced_deadline`].
    ///
    /// # Panics
    ///
    /// Panics if `shard >= self.num_shards()`.
    pub fn submit_to_shard_traced_deadline(
        &self,
        shard: usize,
        model: Arc<PreparedModel>,
        payload: impl Into<Payload>,
        ctx: Option<panacea_telemetry::TraceContext>,
        deadline: Option<std::time::Instant>,
    ) -> Result<Pending, ServeError> {
        self.shards[shard].submit_to_traced_deadline(model, payload, ctx, deadline)
    }

    /// Routes, enqueues, and blocks for the answer.
    ///
    /// # Errors
    ///
    /// Same as [`Runtime::infer`].
    pub fn infer(
        &self,
        model: &str,
        payload: impl Into<Payload>,
    ) -> Result<(InferenceOutput, usize), ServeError> {
        let (pending, shard) = self.submit(model, payload)?;
        Ok((pending.wait()?, shard))
    }

    /// Live queue depth of every shard.
    pub fn queue_depths(&self) -> Vec<QueueDepth> {
        self.shards.iter().map(Runtime::queue_depth).collect()
    }

    /// Per-shard serving counters in wire form, indexed by shard id.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|rt| {
                let m = rt.metrics();
                let q = rt.queue_depth();
                ShardStats {
                    requests: m.requests,
                    batches: m.batches,
                    columns: m.columns,
                    padded_cols: m.padded_cols,
                    padding_overhead: m.padding_overhead(),
                    cancelled: m.cancelled,
                    columns_per_second: m.columns_per_second(),
                    queued_cols: q.queued_cols as u64,
                    in_flight_cols: q.in_flight_cols as u64,
                    // Runtime-level fault counters; the gateway adds the
                    // session layer's (decode batcher, inline steps) on
                    // top when it merges SessionManager stats in.
                    worker_panics: m.worker_panics,
                    expired: m.expired,
                    // Session counters are owned by the gateway's
                    // per-shard SessionManagers and merged there.
                    ..ShardStats::default()
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{codes, models};
    use panacea_serve::BatchPolicy;
    use panacea_tensor::Matrix;
    use std::time::Duration;

    #[test]
    fn routing_is_deterministic_at_equal_load() {
        let router = ShardRouter::new(models(&["a", "b"], 1), 4, RuntimeConfig::default());
        for name in ["a", "b"] {
            let first = router.route(name);
            for _ in 0..10 {
                assert_eq!(router.route(name), first);
            }
        }
    }

    #[test]
    fn many_models_spread_over_shards() {
        let names: Vec<String> = (0..32).map(|i| format!("model-{i}")).collect();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let router = ShardRouter::new(models(&name_refs, 2), 4, RuntimeConfig::default());
        let mut used = std::collections::HashSet::new();
        for name in &names {
            used.insert(router.route(name));
        }
        assert!(
            used.len() >= 3,
            "32 models landed on only {} of 4 shards",
            used.len()
        );
    }

    #[test]
    fn loaded_favourite_overflows_to_runner_up() {
        // A long linger + huge budget keeps submitted work sitting in the
        // favourite's queue, so the router must divert to the runner-up.
        let router = ShardRouter::new(
            models(&["hot"], 3),
            2,
            RuntimeConfig {
                workers: 1,
                policy: BatchPolicy {
                    max_batch: 4096,
                    max_wait: Duration::from_secs(5),
                },
            },
        );
        let model = router.model("hot").expect("registered");
        let favourite = router.route("hot");
        let (first, second) = router.candidates("hot");
        assert_eq!(favourite, first);
        assert_ne!(first, second, "two shards must give two candidates");
        let _pending = router
            .submit_to_shard(favourite, Arc::clone(&model), codes(&model, 8, 0))
            .expect("queued");
        assert_eq!(
            router.route("hot"),
            second,
            "router kept sending to the loaded favourite"
        );
    }

    #[test]
    fn shards_share_prepared_models_by_pointer() {
        let router = ShardRouter::new(models(&["m"], 4), 3, RuntimeConfig::default());
        let handles: Vec<Arc<PreparedModel>> = (0..3)
            .map(|i| router.shard(i).registry().get("m").expect("registered"))
            .collect();
        assert!(Arc::ptr_eq(&handles[0], &handles[1]));
        assert!(Arc::ptr_eq(&handles[1], &handles[2]));
    }

    #[test]
    fn infer_routes_and_matches_direct_execution() {
        let router = ShardRouter::new(models(&["a", "b"], 5), 2, RuntimeConfig::default());
        for (salt, name) in ["a", "b", "a", "b"].iter().enumerate() {
            let model = router.model(name).expect("registered");
            let x = codes(&model, 2, salt);
            let (expect, _) = model.forward_codes(&x);
            let (out, shard) = router.infer(name, x).expect("served");
            assert_eq!(out.payload, expect.into());
            assert!(shard < router.num_shards());
        }
    }

    #[test]
    fn unknown_model_is_rejected_before_routing() {
        let router = ShardRouter::new(models(&["m"], 6), 2, RuntimeConfig::default());
        assert!(matches!(
            router.infer("ghost", Matrix::<i32>::zeros(16, 1)),
            Err(ServeError::UnknownModel { .. })
        ));
    }

    #[test]
    fn single_shard_router_still_routes() {
        let router = ShardRouter::new(models(&["m"], 7), 1, RuntimeConfig::default());
        assert_eq!(router.num_shards(), 1);
        assert_eq!(router.route("m"), 0);
        let model = router.model("m").expect("registered");
        let x = codes(&model, 1, 0);
        let (out, shard) = router.infer("m", x).expect("served");
        assert_eq!(shard, 0);
        assert_eq!(out.payload.rows(), 8);
    }
}
