//! A bounded, sharded, content-addressed response cache.
//!
//! Under real traffic identical activation payloads recur — retried
//! requests, common prompts, synthetic monitors — and an identical
//! payload for the same model is guaranteed the identical integer
//! accumulators (the whole pipeline is deterministic), so it should
//! never re-enter the AQS-GEMM pipeline. The cache is keyed by the
//! model's *instance id*
//! ([`PreparedModel::instance_id`](panacea_serve::PreparedModel::instance_id)
//! — not its registry name, which can be re-bound to a different model
//! by re-registration) plus the typed request
//! [`Payload`]: a hit requires full key
//! equality at the *bit* level ([`Payload::bit_eq`] — codes compare
//! `==`, hidden states compare by `to_bits`, so `-0.0` and `0.0` never
//! alias), never a digest match alone. A hit is therefore always a
//! correct replay — even across model replacement, because a replaced
//! model's entries key under the old id and simply age out of the LRU.
//! The digest ([`Payload::content_hash`]) only picks the shard and
//! accelerates bucket lookup.
//!
//! **Stateless requests only.** A decode step's output depends on its
//! session's KV prefix, not just the payload, so cached replay would be
//! wrong — and even probing would skew the stats. The session path
//! (gateway `decode` verb) therefore has no reference to this cache at
//! all; the only call sites are the stateless `infer` path. See the
//! `decode_steps_never_touch_the_request_cache` regression test.
//!
//! Shards are independent LRUs behind their own locks, so concurrent
//! connection handlers rarely contend; eviction is strict
//! least-recently-used per shard.

use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use panacea_serve::Payload;

/// Sizing knobs for [`RequestCache`].
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Total cached responses across all shards; 0 disables caching.
    pub capacity: usize,
    /// Number of independently locked LRU shards.
    pub shards: usize,
    /// Largest single entry (request payload + result payload, in
    /// bytes) worth keeping. `capacity` bounds the entry *count*, so without this a
    /// handful of near-request-size-limit payloads could pin gigabytes;
    /// oversized responses are simply not cached.
    pub max_entry_bytes: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity: 1024,
            shards: 8,
            max_entry_bytes: 4 << 20,
        }
    }
}

/// A cached response: everything needed to replay an inference without
/// touching the serving runtime.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedOutput {
    /// The typed result: code accumulators for chains, hidden states
    /// for block models.
    pub payload: Payload,
    /// Scale converting code accumulators to floats; `1.0` for hidden
    /// results.
    pub scale: f64,
}

/// Counters describing cache effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the runtime.
    pub misses: u64,
    /// Entries displaced by the LRU bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when none yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct CacheKey {
    /// [`PreparedModel::instance_id`](panacea_serve::PreparedModel::instance_id)
    /// of the model that produced the cached output.
    model: u64,
    payload: Payload,
}

impl CacheKey {
    /// Bit-level key equality — the replay contract's identity.
    fn matches(&self, model: u64, payload: &Payload) -> bool {
        self.model == model && self.payload.bit_eq(payload)
    }
}

#[derive(Debug)]
struct Node {
    key: CacheKey,
    digest: u64,
    value: CachedOutput,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

/// One LRU shard: a digest-bucketed index over an intrusive
/// doubly-linked recency list stored in a slab.
#[derive(Debug, Default)]
struct LruShard {
    buckets: HashMap<u64, Vec<usize>>,
    slab: Vec<Option<Node>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    len: usize,
}

impl LruShard {
    fn new() -> Self {
        LruShard {
            head: NIL,
            tail: NIL,
            ..LruShard::default()
        }
    }

    fn node(&self, i: usize) -> &Node {
        self.slab[i].as_ref().expect("live node")
    }

    fn node_mut(&mut self, i: usize) -> &mut Node {
        self.slab[i].as_mut().expect("live node")
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = {
            let n = self.node(i);
            (n.prev, n.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.node_mut(p).next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.node_mut(n).prev = prev,
        }
    }

    fn push_front(&mut self, i: usize) {
        self.node_mut(i).prev = NIL;
        self.node_mut(i).next = self.head;
        match self.head {
            NIL => self.tail = i,
            h => self.node_mut(h).prev = i,
        }
        self.head = i;
    }

    fn find(&self, digest: u64, model: u64, payload: &Payload) -> Option<usize> {
        self.buckets
            .get(&digest)?
            .iter()
            .copied()
            .find(|&i| self.node(i).key.matches(model, payload))
    }

    fn get(&mut self, digest: u64, model: u64, payload: &Payload) -> Option<CachedOutput> {
        let i = self.find(digest, model, payload)?;
        self.unlink(i);
        self.push_front(i);
        Some(self.node(i).value.clone())
    }

    /// Inserts (or refreshes) an entry; returns how many entries the
    /// capacity bound evicted.
    fn insert(&mut self, digest: u64, key: CacheKey, value: CachedOutput, capacity: usize) -> u64 {
        if capacity == 0 {
            return 0;
        }
        if let Some(i) = self.find(digest, key.model, &key.payload) {
            // Bit-exact key already resident: refresh recency, keep the
            // (necessarily identical) value.
            self.unlink(i);
            self.push_front(i);
            return 0;
        }
        let mut evicted = 0;
        while self.len >= capacity {
            self.evict_tail();
            evicted += 1;
        }
        let node = Node {
            key,
            digest,
            value,
            prev: NIL,
            next: NIL,
        };
        let i = match self.free.pop() {
            Some(slot) => {
                self.slab[slot] = Some(node);
                slot
            }
            None => {
                self.slab.push(Some(node));
                self.slab.len() - 1
            }
        };
        self.buckets.entry(digest).or_default().push(i);
        self.push_front(i);
        self.len += 1;
        evicted
    }

    fn evict_tail(&mut self) {
        let i = self.tail;
        debug_assert_ne!(i, NIL, "evict called on an empty shard");
        self.unlink(i);
        let node = self.slab[i].take().expect("live node");
        let bucket = self
            .buckets
            .get_mut(&node.digest)
            .expect("bucket for live node");
        bucket.retain(|&j| j != i);
        if bucket.is_empty() {
            self.buckets.remove(&node.digest);
        }
        self.free.push(i);
        self.len -= 1;
    }
}

/// The gateway's sharded LRU response cache. See the module docs.
#[derive(Debug)]
pub struct RequestCache {
    shards: Vec<Mutex<LruShard>>,
    capacity_per_shard: usize,
    max_entry_bytes: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl RequestCache {
    /// Builds a cache with `config.capacity` total entries spread over
    /// `config.shards` independently locked LRU shards.
    pub fn new(config: CacheConfig) -> Self {
        let shards = config.shards.max(1);
        RequestCache {
            shards: (0..shards).map(|_| Mutex::new(LruShard::new())).collect(),
            capacity_per_shard: config.capacity.div_ceil(shards),
            max_entry_bytes: config.max_entry_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Whether this cache stores anything at all (capacity above zero) —
    /// callers can skip key hashing and payload clones when it does not.
    pub fn enabled(&self) -> bool {
        self.capacity_per_shard > 0
    }

    /// Whether an entry of `cells` 4-byte elements (request payload
    /// plus result payload — `i32` codes and `f32` hidden states are
    /// the same width) fits [`CacheConfig::max_entry_bytes`]. Both
    /// counts are known before a request runs, so callers can skip the
    /// payload clone for entries [`insert`](Self::insert) would reject
    /// anyway.
    pub fn admits(&self, cells: usize) -> bool {
        cells.saturating_mul(4) <= self.max_entry_bytes
    }

    fn digest(model: u64, payload: &Payload) -> u64 {
        let mut h = DefaultHasher::new();
        model.hash(&mut h);
        payload.content_hash().hash(&mut h);
        h.finish()
    }

    fn shard_for(&self, digest: u64) -> &Mutex<LruShard> {
        &self.shards[(digest as usize) % self.shards.len()]
    }

    /// Looks up a bit-exact prior response for `(model, payload)`,
    /// refreshing its recency on a hit. `model` is the serving model's
    /// [`instance_id`](panacea_serve::PreparedModel::instance_id), so
    /// entries written for a since-replaced model can never answer.
    pub fn get(&self, model: u64, payload: &Payload) -> Option<CachedOutput> {
        let digest = Self::digest(model, payload);
        let found = self
            .shard_for(digest)
            .lock()
            .expect("cache shard poisoned")
            .get(digest, model, payload);
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Stores a response for `(model, payload)`, evicting
    /// least-recently used entries if its shard is full. `model` is the
    /// producing model's
    /// [`instance_id`](panacea_serve::PreparedModel::instance_id).
    /// Entries larger than [`CacheConfig::max_entry_bytes`] are silently
    /// skipped — the count-based capacity cannot bound their footprint.
    pub fn insert(&self, model: u64, payload: Payload, value: CachedOutput) {
        let cells = payload.cells() + value.payload.cells();
        if !self.admits(cells) {
            return;
        }
        let digest = Self::digest(model, &payload);
        let evicted = self
            .shard_for(digest)
            .lock()
            .expect("cache shard poisoned")
            .insert(
                digest,
                CacheKey { model, payload },
                value,
                self.capacity_per_shard,
            );
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Entries currently resident across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len)
            .sum()
    }

    /// Whether no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current hit/miss/eviction counters plus resident entry count.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panacea_tensor::Matrix;
    use std::sync::Arc;

    fn codes(salt: i32) -> Payload {
        Payload::Codes(Matrix::from_fn(4, 2, |r, c| {
            salt * 100 + (r * 2 + c) as i32
        }))
    }

    fn output(salt: i32) -> CachedOutput {
        CachedOutput {
            payload: Payload::Codes(Matrix::from_fn(2, 2, |r, c| salt * 10 + (r + c) as i32)),
            scale: 0.5,
        }
    }

    #[test]
    fn hit_requires_bit_exact_codes_and_model() {
        let cache = RequestCache::new(CacheConfig::default());
        cache.insert(1, codes(1), output(1));
        assert_eq!(cache.get(1, &codes(1)), Some(output(1)));
        assert_eq!(cache.get(1, &codes(2)), None);
        assert_eq!(cache.get(2, &codes(1)), None);
        let nearly = Payload::Codes(Matrix::from_fn(4, 2, |r, c| {
            100 + (r * 2 + c) as i32 + usize::from(r == 3 && c == 1) as i32
        }));
        assert_eq!(cache.get(1, &nearly), None);
        let s = cache.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 3);
        assert!((s.hit_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_least_recently_used_first() {
        // One shard, capacity 2: deterministic recency order.
        let cache = RequestCache::new(CacheConfig {
            capacity: 2,
            shards: 1,
            ..CacheConfig::default()
        });
        cache.insert(1, codes(1), output(1));
        cache.insert(1, codes(2), output(2));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.get(1, &codes(1)).is_some());
        cache.insert(1, codes(3), output(3));
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.get(1, &codes(2)).is_none(), "victim survived");
        assert!(cache.get(1, &codes(1)).is_some());
        assert!(cache.get(1, &codes(3)).is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn reinserting_the_same_key_refreshes_instead_of_duplicating() {
        let cache = RequestCache::new(CacheConfig {
            capacity: 2,
            shards: 1,
            ..CacheConfig::default()
        });
        cache.insert(1, codes(1), output(1));
        cache.insert(1, codes(2), output(2));
        // Refresh 1 (no eviction, no growth), then insert a third: the
        // refreshed 1 must outlive 2.
        cache.insert(1, codes(1), output(1));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 0);
        cache.insert(1, codes(3), output(3));
        assert!(cache.get(1, &codes(1)).is_some());
        assert!(cache.get(1, &codes(2)).is_none());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = RequestCache::new(CacheConfig {
            capacity: 0,
            shards: 4,
            ..CacheConfig::default()
        });
        cache.insert(1, codes(1), output(1));
        assert!(cache.is_empty());
        assert_eq!(cache.get(1, &codes(1)), None);
    }

    #[test]
    fn oversized_entries_are_not_cached() {
        // Budget of 64 bytes = 16 i32 cells across codes + accumulators.
        let cache = RequestCache::new(CacheConfig {
            capacity: 8,
            shards: 1,
            max_entry_bytes: 64,
        });
        // 4×2 codes + 2×2 acc = 12 cells (48 bytes): fits.
        cache.insert(1, codes(1), output(1));
        assert_eq!(cache.len(), 1);
        // 4×4 codes + 2×2 acc = 20 cells (80 bytes): must be skipped, or
        // the count-based capacity stops bounding memory.
        let big = Payload::Codes(Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as i32));
        cache.insert(1, big.clone(), output(2));
        assert_eq!(cache.len(), 1, "oversized entry was cached");
        assert!(cache.get(1, &big).is_none());
    }

    #[test]
    fn entries_spread_across_shards() {
        let cache = RequestCache::new(CacheConfig {
            capacity: 256,
            shards: 4,
            ..CacheConfig::default()
        });
        for salt in 0..64 {
            cache.insert(1, codes(salt), output(salt));
        }
        assert_eq!(cache.len(), 64);
        let occupied = cache
            .shards
            .iter()
            .filter(|s| s.lock().unwrap().len > 0)
            .count();
        assert!(occupied >= 2, "all 64 keys landed in one shard");
    }

    #[test]
    fn hidden_payload_hits_are_bit_exact_not_just_numeric() {
        // -0.0 == 0.0 numerically, but the replay contract is about
        // bits: the two must not alias as cache keys.
        let cache = RequestCache::new(CacheConfig::default());
        let pos = Payload::Hidden(Matrix::from_vec(1, 1, vec![0.0f32]).unwrap());
        let neg = Payload::Hidden(Matrix::from_vec(1, 1, vec![-0.0f32]).unwrap());
        let out = CachedOutput {
            payload: Payload::Hidden(Matrix::from_vec(1, 1, vec![1.5f32]).unwrap()),
            scale: 1.0,
        };
        cache.insert(1, pos.clone(), out.clone());
        assert_eq!(cache.get(1, &pos), Some(out));
        assert_eq!(cache.get(1, &neg), None, "signed zeros aliased");
        // Kind is part of the key too: the same bits as codes miss.
        let as_codes = Payload::Codes(Matrix::from_vec(1, 1, vec![0i32]).unwrap());
        assert_eq!(cache.get(1, &as_codes), None);
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let cache = Arc::new(RequestCache::new(CacheConfig {
            capacity: 64,
            shards: 4,
            ..CacheConfig::default()
        }));
        let mut threads = Vec::new();
        for t in 0..4 {
            let cache = Arc::clone(&cache);
            threads.push(std::thread::spawn(move || {
                for i in 0..100 {
                    let salt = (t * 7 + i) % 32;
                    cache.insert(1, codes(salt), output(salt));
                    if let Some(hit) = cache.get(1, &codes(salt)) {
                        assert_eq!(hit, output(salt), "cache returned a wrong payload");
                    }
                }
            }));
        }
        for th in threads {
            th.join().expect("worker");
        }
        assert!(cache.len() <= 64);
    }
}
