//! Shared fixtures for this crate's unit and integration tests: small
//! prepared models and deterministic request codes. `#[doc(hidden)]`
//! public so the TCP integration tests (and the workspace-level facade
//! tests) reuse the exact same fixtures instead of re-implementing
//! them; not part of the supported API.

use panacea_serve::{LayerSpec, PrepareOptions, PreparedModel};
use panacea_tensor::dist::DistributionKind;
use panacea_tensor::Matrix;

// Block fixtures live in `panacea_serve::testutil` (the crate that
// already depends on the block engine), so the gateway's production
// dependency graph stays serve + tensor + serde_json.
pub use panacea_serve::testutil::{block_model, direct_forward, hidden};

/// Prepares one 8×16 single-layer model per name, each calibrated on its
/// own Gaussian sample drawn from a seeded RNG.
pub fn models(names: &[&str], seed: u64) -> Vec<PreparedModel> {
    let mut rng = panacea_tensor::seeded_rng(seed);
    names
        .iter()
        .map(|name| {
            let w = DistributionKind::Gaussian {
                mean: 0.0,
                std: 0.05,
            }
            .sample_matrix(8, 16, &mut rng);
            let calib = DistributionKind::Gaussian {
                mean: 0.2,
                std: 0.5,
            }
            .sample_matrix(16, 16, &mut rng);
            PreparedModel::prepare(
                *name,
                &[LayerSpec::unbiased(w)],
                &calib,
                PrepareOptions::default(),
            )
            .expect("prepare")
        })
        .collect()
}

/// Deterministic in-range request codes for a prepared model.
pub fn codes(model: &PreparedModel, cols: usize, salt: usize) -> Matrix<i32> {
    Matrix::from_fn(model.in_features(), cols, |r, c| {
        ((r * 31 + c * 7 + salt * 13) % 200) as i32
    })
}
