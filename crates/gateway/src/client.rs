//! A blocking TCP client for the gateway protocol.
//!
//! One [`GatewayClient`] owns one connection and pipelines nothing:
//! every call writes one request line and blocks for one response line.
//! Concurrency comes from opening more clients — they are cheap, and the
//! server dedicates a thread per connection anyway.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use panacea_serve::Payload;
use panacea_tensor::Matrix;

use crate::protocol::{
    decode_response, encode_request, DecodeReply, EventsReply, GatewayMetrics, GatewayStats,
    InferReply, Request, Response, SessionCloseReply, SessionOpenReply, TraceKind, TraceReply,
};
use crate::GatewayError;
use panacea_telemetry::HealthReport;

/// A connected gateway client. See the module docs.
#[derive(Debug)]
pub struct GatewayClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl GatewayClient {
    /// Connects to a [`GatewayServer`](crate::GatewayServer).
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let read_half = stream.try_clone()?;
        Ok(GatewayClient {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
        })
    }

    fn call(&mut self, request: &Request) -> Result<Response, GatewayError> {
        let line = encode_request(request);
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(GatewayError::Protocol(
                "server closed the connection before answering".to_string(),
            ));
        }
        decode_response(&reply)
    }

    fn expect_infer(&mut self, request: &Request) -> Result<InferReply, GatewayError> {
        match self.call(request)? {
            Response::Infer(reply) => Ok(reply),
            Response::Error { kind, message } => Err(GatewayError::Remote { kind, message }),
            _ => Err(GatewayError::Protocol(
                "server answered an infer request with the wrong kind".to_string(),
            )),
        }
    }

    /// Runs one typed stateless inference: codes for a linear chain,
    /// hidden states for a transformer-block model. The server rejects
    /// a payload whose kind does not match the model.
    ///
    /// # Errors
    ///
    /// [`GatewayError::Remote`] for server-side rejections (overload,
    /// unknown model, bad payload), [`GatewayError::Io`] /
    /// [`GatewayError::Protocol`] for transport failures — including
    /// non-finite hidden elements, which JSON cannot carry.
    pub fn infer(&mut self, model: &str, payload: Payload) -> Result<InferReply, GatewayError> {
        if let Payload::Hidden(h) = &payload {
            check_finite(h)?;
        }
        self.expect_infer(&Request::Infer {
            model: model.to_string(),
            payload,
        })
    }

    /// Runs a model on pre-quantized activation codes — shorthand for
    /// [`infer`](Self::infer) with [`Payload::Codes`].
    ///
    /// # Errors
    ///
    /// Same as [`infer`](Self::infer).
    pub fn infer_codes(
        &mut self,
        model: &str,
        codes: Matrix<i32>,
    ) -> Result<InferReply, GatewayError> {
        self.infer(model, Payload::Codes(codes))
    }

    /// Runs a transformer-block model on one sequence of hidden states
    /// — shorthand for [`infer`](Self::infer) with [`Payload::Hidden`].
    /// The reply's hidden states are bit-identical to direct
    /// `QuantizedBlock` execution (finite f32 values survive the JSON
    /// wire exactly).
    ///
    /// # Errors
    ///
    /// Same as [`infer`](Self::infer).
    pub fn infer_hidden(
        &mut self,
        model: &str,
        hidden: Matrix<f32>,
    ) -> Result<InferReply, GatewayError> {
        self.infer(model, Payload::Hidden(hidden))
    }

    /// Runs a model on float activations; the server converts them into
    /// the model's native payload (quantizes for chains, passes through
    /// for block models).
    ///
    /// # Errors
    ///
    /// Same as [`infer`](Self::infer).
    pub fn infer_f32(
        &mut self,
        model: &str,
        input: Matrix<f32>,
    ) -> Result<InferReply, GatewayError> {
        check_finite(&input)?;
        self.expect_infer(&Request::InferF32 {
            model: model.to_string(),
            input,
        })
    }

    /// Opens a decode session on a transformer-block model. The reply
    /// names the shard the session (and its KV state) is pinned to.
    ///
    /// # Errors
    ///
    /// Same categories as [`infer`](Self::infer); notably
    /// `unknown_model`, `bad_request` for chain models, and
    /// `overloaded` when admission sheds the open.
    pub fn session_open(&mut self, model: &str) -> Result<SessionOpenReply, GatewayError> {
        match self.call(&Request::SessionOpen {
            model: model.to_string(),
        })? {
            Response::SessionOpen(reply) => Ok(reply),
            Response::Error { kind, message } => Err(GatewayError::Remote { kind, message }),
            _ => Err(GatewayError::Protocol(
                "server answered a session_open request with the wrong kind".to_string(),
            )),
        }
    }

    /// Advances a decode session by one or more new token columns,
    /// returning their output hidden states — bit-identical to a full
    /// causal recompute of the session's whole prefix.
    ///
    /// # Errors
    ///
    /// Same categories as [`infer`](Self::infer), plus
    /// `unknown_session` once the session has been closed or evicted
    /// (reopen and replay the prefix).
    pub fn decode(
        &mut self,
        session: u64,
        hidden: Matrix<f32>,
    ) -> Result<DecodeReply, GatewayError> {
        check_finite(&hidden)?;
        match self.call(&Request::Decode { session, hidden })? {
            Response::Decode(reply) => Ok(reply),
            Response::Error { kind, message } => Err(GatewayError::Remote { kind, message }),
            _ => Err(GatewayError::Protocol(
                "server answered a decode request with the wrong kind".to_string(),
            )),
        }
    }

    /// Closes a decode session, freeing its KV state.
    ///
    /// # Errors
    ///
    /// `unknown_session` if it does not exist, plus the usual transport
    /// failures.
    pub fn session_close(&mut self, session: u64) -> Result<SessionCloseReply, GatewayError> {
        match self.call(&Request::SessionClose { session })? {
            Response::SessionClose(reply) => Ok(reply),
            Response::Error { kind, message } => Err(GatewayError::Remote { kind, message }),
            _ => Err(GatewayError::Protocol(
                "server answered a session_close request with the wrong kind".to_string(),
            )),
        }
    }

    /// Fetches gateway-level metrics (per-shard serving and session
    /// counters, cache, admission).
    ///
    /// # Errors
    ///
    /// Same transport failures as [`infer`](Self::infer).
    pub fn stats(&mut self) -> Result<GatewayStats, GatewayError> {
        match self.call(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            Response::Error { kind, message } => Err(GatewayError::Remote { kind, message }),
            _ => Err(GatewayError::Protocol(
                "server answered a stats request with an inference".to_string(),
            )),
        }
    }

    /// Fetches per-stage latency quantile summaries (gateway stages,
    /// per-shard serving stages, block sub-layer stages).
    ///
    /// # Errors
    ///
    /// Same transport failures as [`infer`](Self::infer).
    pub fn metrics(&mut self) -> Result<GatewayMetrics, GatewayError> {
        match self.call(&Request::Metrics)? {
            Response::Metrics(metrics) => Ok(metrics),
            Response::Error { kind, message } => Err(GatewayError::Remote { kind, message }),
            _ => Err(GatewayError::Protocol(
                "server answered a metrics request with the wrong kind".to_string(),
            )),
        }
    }

    /// Fetches up to `limit` of the pinned slow-request traces, newest
    /// first, each a structured span list — shorthand for
    /// [`trace_of`](Self::trace_of) with [`TraceKind::Slow`].
    ///
    /// # Errors
    ///
    /// Same transport failures as [`infer`](Self::infer).
    pub fn trace(&mut self, limit: usize) -> Result<TraceReply, GatewayError> {
        self.trace_of(limit, TraceKind::Slow)
    }

    /// Fetches up to `limit` of the most recent traces regardless of
    /// duration — shorthand for [`trace_of`](Self::trace_of) with
    /// [`TraceKind::Recent`].
    ///
    /// # Errors
    ///
    /// Same transport failures as [`infer`](Self::infer).
    pub fn trace_recent(&mut self, limit: usize) -> Result<TraceReply, GatewayError> {
        self.trace_of(limit, TraceKind::Recent)
    }

    /// Fetches up to `limit` recorded traces from the chosen ring,
    /// newest first.
    ///
    /// # Errors
    ///
    /// Same transport failures as [`infer`](Self::infer).
    pub fn trace_of(&mut self, limit: usize, kind: TraceKind) -> Result<TraceReply, GatewayError> {
        match self.call(&Request::Trace { limit, kind })? {
            Response::Trace(reply) => Ok(reply),
            Response::Error { kind, message } => Err(GatewayError::Remote { kind, message }),
            _ => Err(GatewayError::Protocol(
                "server answered a trace request with the wrong kind".to_string(),
            )),
        }
    }

    /// Fetches the gateway's SLO health verdict: per-target burn rates
    /// over sliding windows plus the overall status.
    ///
    /// # Errors
    ///
    /// Same transport failures as [`infer`](Self::infer).
    pub fn health(&mut self) -> Result<HealthReport, GatewayError> {
        match self.call(&Request::Health)? {
            Response::Health(report) => Ok(report),
            Response::Error { kind, message } => Err(GatewayError::Remote { kind, message }),
            _ => Err(GatewayError::Protocol(
                "server answered a health request with the wrong kind".to_string(),
            )),
        }
    }

    /// Fetches up to `limit` of the gateway's flight-recorder events,
    /// newest first, plus the pinned incident snapshot if SLO health
    /// ever flipped to degraded/critical.
    ///
    /// # Errors
    ///
    /// Same transport failures as [`infer`](Self::infer).
    pub fn events(&mut self, limit: usize) -> Result<EventsReply, GatewayError> {
        match self.call(&Request::Events { limit })? {
            Response::Events(reply) => Ok(reply),
            Response::Error { kind, message } => Err(GatewayError::Remote { kind, message }),
            _ => Err(GatewayError::Protocol(
                "server answered an events request with the wrong kind".to_string(),
            )),
        }
    }
}

/// JSON cannot carry NaN/infinity; reject them before the wire rather
/// than silently mangling the payload.
fn check_finite(m: &Matrix<f32>) -> Result<(), GatewayError> {
    if m.iter().any(|v| !v.is_finite()) {
        return Err(GatewayError::Protocol(
            "float payload contains NaN or infinite elements".to_string(),
        ));
    }
    Ok(())
}
