//! A blocking TCP client for the gateway protocol.
//!
//! One [`GatewayClient`] owns one connection and pipelines nothing:
//! every call writes one request line and blocks for one response line.
//! Concurrency comes from opening more clients — they are cheap, and the
//! server dedicates a thread per connection anyway.
//!
//! # Deadlines and retries
//!
//! [`ClientConfig`] adds graceful degradation on the caller's side:
//!
//! * `deadline` stamps every inference/decode request with a
//!   `deadline_ms` bound the server enforces at admission, dequeue, and
//!   batch formation — and arms a socket read timeout slightly past it,
//!   so even a wedged server cannot hold the caller hostage.
//! * `retries` re-issues **idempotent** verbs (stateless inference and
//!   the observability verbs) after transport failures or retryable
//!   remote errors (`internal`, `overloaded`), reconnecting first when
//!   the connection itself broke, with exponential backoff and
//!   deterministic jitter in between. Decode steps and session
//!   open/close are **never** retried blindly: a lost reply leaves the
//!   server-side outcome unknown, and replaying a decode step would
//!   corrupt the session's KV prefix.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use panacea_serve::Payload;
use panacea_tensor::Matrix;

use crate::protocol::{
    decode_response, encode_request, DecodeReply, ErrorKind, EventsReply, GatewayMetrics,
    GatewayStats, InferReply, Request, Response, SessionCloseReply, SessionOpenReply, TraceKind,
    TraceReply,
};
use crate::GatewayError;
use panacea_telemetry::HealthReport;

/// Extra read-timeout headroom past the request deadline: enough for
/// the server to notice the deadline itself and answer
/// `deadline_exceeded` before the socket gives up.
const DEADLINE_SLACK: Duration = Duration::from_secs(1);

/// Client-side degradation knobs. The default retries nothing and sets
/// no deadline — exactly the old always-blocking behavior.
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// Per-request deadline stamped onto inference/decode requests (and
    /// enforced locally via a read timeout with one second of slack
    /// headroom). `None` sends no bound.
    pub deadline: Option<Duration>,
    /// Extra attempts for idempotent verbs after a retryable failure.
    pub retries: u32,
    /// Base backoff before the first retry; doubles per attempt, with
    /// ±50% deterministic jitter.
    pub backoff: Duration,
    /// Seed for the jitter sequence.
    pub seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            deadline: None,
            retries: 0,
            backoff: Duration::from_millis(50),
            seed: 0,
        }
    }
}

/// A connected gateway client. See the module docs.
#[derive(Debug)]
pub struct GatewayClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    addr: SocketAddr,
    config: ClientConfig,
    jitter: u64,
}

impl GatewayClient {
    /// Connects to a [`GatewayServer`](crate::GatewayServer) with the
    /// default (no-deadline, no-retry) [`ClientConfig`].
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// [`connect`](Self::connect) with explicit deadline/retry knobs.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect_with(addr: impl ToSocketAddrs, config: ClientConfig) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let addr = stream.peer_addr()?;
        let (reader, writer) = Self::halves(stream, config)?;
        Ok(GatewayClient {
            reader,
            writer,
            addr,
            config,
            jitter: config.seed ^ 0x9e37_79b9_7f4a_7c15,
        })
    }

    fn halves(
        stream: TcpStream,
        config: ClientConfig,
    ) -> std::io::Result<(BufReader<TcpStream>, BufWriter<TcpStream>)> {
        stream.set_nodelay(true)?;
        if let Some(deadline) = config.deadline {
            stream.set_read_timeout(Some(deadline + DEADLINE_SLACK))?;
        }
        let read_half = stream.try_clone()?;
        Ok((BufReader::new(read_half), BufWriter::new(stream)))
    }

    /// Drops the (possibly broken) connection and dials the same
    /// address again.
    ///
    /// # Errors
    ///
    /// Propagates connection failures; the old connection is already
    /// gone either way.
    pub fn reconnect(&mut self) -> std::io::Result<()> {
        let stream = TcpStream::connect(self.addr)?;
        let (reader, writer) = Self::halves(stream, self.config)?;
        self.reader = reader;
        self.writer = writer;
        Ok(())
    }

    /// The deadline bound stamped onto inference/decode requests.
    fn deadline_ms(&self) -> Option<u64> {
        self.config
            .deadline
            .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
    }

    fn call(&mut self, request: &Request) -> Result<Response, GatewayError> {
        let line = encode_request(request);
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(GatewayError::Protocol(
                "server closed the connection before answering".to_string(),
            ));
        }
        decode_response(&reply)
    }

    /// [`call`](Self::call) for idempotent verbs only: retries up to
    /// `config.retries` extra attempts on transport failures (after
    /// reconnecting) and on retryable remote errors, sleeping a
    /// jittered exponential backoff between attempts.
    fn call_retrying(&mut self, request: &Request) -> Result<Response, GatewayError> {
        let mut attempt = 0u32;
        loop {
            let outcome = self.call(request);
            // Remote rejections arrive as `Ok(Response::Error { .. })`
            // — the wire exchange itself succeeded — so both shapes are
            // inspected for retryability.
            let (retry, broke_transport) = match &outcome {
                Err(e) if retryable(e) => (
                    true,
                    matches!(e, GatewayError::Io(_) | GatewayError::Protocol(_)),
                ),
                Ok(Response::Error { kind, .. }) => (
                    matches!(kind, ErrorKind::Internal | ErrorKind::Overloaded),
                    false,
                ),
                _ => (false, false),
            };
            if !retry || attempt >= self.config.retries {
                return outcome;
            }
            attempt += 1;
            self.sleep_backoff(attempt);
            if broke_transport {
                // Best effort: a failed redial surfaces as Io on the
                // next attempt, consuming the remaining budget.
                let _ = self.reconnect();
            }
        }
    }

    /// Jittered exponential backoff: `backoff * 2^(attempt-1)`, scaled
    /// by a deterministic factor in `[0.5, 1.5)` so a fleet of clients
    /// retrying the same incident does not stampede in lockstep.
    fn sleep_backoff(&mut self, attempt: u32) {
        let base = self
            .config
            .backoff
            .saturating_mul(1 << (attempt - 1).min(6));
        // SplitMix64 step; seeded per client, so the sequence is
        // reproducible but distinct across seeds.
        self.jitter = self.jitter.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.jitter;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let frac = (z >> 11) as f64 / (1u64 << 53) as f64;
        std::thread::sleep(base.mul_f64(0.5 + frac));
    }

    fn expect_infer(&mut self, request: &Request) -> Result<InferReply, GatewayError> {
        // Stateless inference is idempotent (the server's cache keys on
        // content, and re-running a pure forward pass is harmless), so
        // it goes through the retrying path.
        match self.call_retrying(request)? {
            Response::Infer(reply) => Ok(reply),
            Response::Error { kind, message } => Err(GatewayError::Remote { kind, message }),
            _ => Err(GatewayError::Protocol(
                "server answered an infer request with the wrong kind".to_string(),
            )),
        }
    }

    /// Runs one typed stateless inference: codes for a linear chain,
    /// hidden states for a transformer-block model. The server rejects
    /// a payload whose kind does not match the model.
    ///
    /// # Errors
    ///
    /// [`GatewayError::Remote`] for server-side rejections (overload,
    /// unknown model, bad payload), [`GatewayError::Io`] /
    /// [`GatewayError::Protocol`] for transport failures — including
    /// non-finite hidden elements, which JSON cannot carry.
    pub fn infer(&mut self, model: &str, payload: Payload) -> Result<InferReply, GatewayError> {
        if let Payload::Hidden(h) = &payload {
            check_finite(h)?;
        }
        self.expect_infer(&Request::Infer {
            model: model.to_string(),
            payload,
            deadline_ms: self.deadline_ms(),
        })
    }

    /// Runs a model on pre-quantized activation codes — shorthand for
    /// [`infer`](Self::infer) with [`Payload::Codes`].
    ///
    /// # Errors
    ///
    /// Same as [`infer`](Self::infer).
    pub fn infer_codes(
        &mut self,
        model: &str,
        codes: Matrix<i32>,
    ) -> Result<InferReply, GatewayError> {
        self.infer(model, Payload::Codes(codes))
    }

    /// Runs a transformer-block model on one sequence of hidden states
    /// — shorthand for [`infer`](Self::infer) with [`Payload::Hidden`].
    /// The reply's hidden states are bit-identical to direct
    /// `QuantizedBlock` execution (finite f32 values survive the JSON
    /// wire exactly).
    ///
    /// # Errors
    ///
    /// Same as [`infer`](Self::infer).
    pub fn infer_hidden(
        &mut self,
        model: &str,
        hidden: Matrix<f32>,
    ) -> Result<InferReply, GatewayError> {
        self.infer(model, Payload::Hidden(hidden))
    }

    /// Runs a model on float activations; the server converts them into
    /// the model's native payload (quantizes for chains, passes through
    /// for block models).
    ///
    /// # Errors
    ///
    /// Same as [`infer`](Self::infer).
    pub fn infer_f32(
        &mut self,
        model: &str,
        input: Matrix<f32>,
    ) -> Result<InferReply, GatewayError> {
        check_finite(&input)?;
        self.expect_infer(&Request::InferF32 {
            model: model.to_string(),
            input,
            deadline_ms: self.deadline_ms(),
        })
    }

    /// Opens a decode session on a transformer-block model. The reply
    /// names the shard the session (and its KV state) is pinned to.
    ///
    /// # Errors
    ///
    /// Same categories as [`infer`](Self::infer); notably
    /// `unknown_model`, `bad_request` for chain models, and
    /// `overloaded` when admission sheds the open.
    pub fn session_open(&mut self, model: &str) -> Result<SessionOpenReply, GatewayError> {
        match self.call(&Request::SessionOpen {
            model: model.to_string(),
        })? {
            Response::SessionOpen(reply) => Ok(reply),
            Response::Error { kind, message } => Err(GatewayError::Remote { kind, message }),
            _ => Err(GatewayError::Protocol(
                "server answered a session_open request with the wrong kind".to_string(),
            )),
        }
    }

    /// Advances a decode session by one or more new token columns,
    /// returning their output hidden states — bit-identical to a full
    /// causal recompute of the session's whole prefix.
    ///
    /// # Errors
    ///
    /// Same categories as [`infer`](Self::infer), plus
    /// `unknown_session` once the session has been closed or evicted
    /// (reopen and replay the prefix).
    pub fn decode(
        &mut self,
        session: u64,
        hidden: Matrix<f32>,
    ) -> Result<DecodeReply, GatewayError> {
        check_finite(&hidden)?;
        // Never retried: a lost reply leaves the step's server-side
        // outcome unknown, and replaying it would corrupt the KV prefix.
        let deadline_ms = self.deadline_ms();
        match self.call(&Request::Decode {
            session,
            hidden,
            deadline_ms,
        })? {
            Response::Decode(reply) => Ok(reply),
            Response::Error { kind, message } => Err(GatewayError::Remote { kind, message }),
            _ => Err(GatewayError::Protocol(
                "server answered a decode request with the wrong kind".to_string(),
            )),
        }
    }

    /// Closes a decode session, freeing its KV state.
    ///
    /// # Errors
    ///
    /// `unknown_session` if it does not exist, plus the usual transport
    /// failures.
    pub fn session_close(&mut self, session: u64) -> Result<SessionCloseReply, GatewayError> {
        match self.call(&Request::SessionClose { session })? {
            Response::SessionClose(reply) => Ok(reply),
            Response::Error { kind, message } => Err(GatewayError::Remote { kind, message }),
            _ => Err(GatewayError::Protocol(
                "server answered a session_close request with the wrong kind".to_string(),
            )),
        }
    }

    /// Fetches gateway-level metrics (per-shard serving and session
    /// counters, cache, admission).
    ///
    /// # Errors
    ///
    /// Same transport failures as [`infer`](Self::infer).
    pub fn stats(&mut self) -> Result<GatewayStats, GatewayError> {
        match self.call_retrying(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            Response::Error { kind, message } => Err(GatewayError::Remote { kind, message }),
            _ => Err(GatewayError::Protocol(
                "server answered a stats request with an inference".to_string(),
            )),
        }
    }

    /// Fetches per-stage latency quantile summaries (gateway stages,
    /// per-shard serving stages, block sub-layer stages).
    ///
    /// # Errors
    ///
    /// Same transport failures as [`infer`](Self::infer).
    pub fn metrics(&mut self) -> Result<GatewayMetrics, GatewayError> {
        match self.call_retrying(&Request::Metrics)? {
            Response::Metrics(metrics) => Ok(metrics),
            Response::Error { kind, message } => Err(GatewayError::Remote { kind, message }),
            _ => Err(GatewayError::Protocol(
                "server answered a metrics request with the wrong kind".to_string(),
            )),
        }
    }

    /// Fetches up to `limit` of the pinned slow-request traces, newest
    /// first, each a structured span list — shorthand for
    /// [`trace_of`](Self::trace_of) with [`TraceKind::Slow`].
    ///
    /// # Errors
    ///
    /// Same transport failures as [`infer`](Self::infer).
    pub fn trace(&mut self, limit: usize) -> Result<TraceReply, GatewayError> {
        self.trace_of(limit, TraceKind::Slow)
    }

    /// Fetches up to `limit` of the most recent traces regardless of
    /// duration — shorthand for [`trace_of`](Self::trace_of) with
    /// [`TraceKind::Recent`].
    ///
    /// # Errors
    ///
    /// Same transport failures as [`infer`](Self::infer).
    pub fn trace_recent(&mut self, limit: usize) -> Result<TraceReply, GatewayError> {
        self.trace_of(limit, TraceKind::Recent)
    }

    /// Fetches up to `limit` recorded traces from the chosen ring,
    /// newest first.
    ///
    /// # Errors
    ///
    /// Same transport failures as [`infer`](Self::infer).
    pub fn trace_of(&mut self, limit: usize, kind: TraceKind) -> Result<TraceReply, GatewayError> {
        match self.call_retrying(&Request::Trace { limit, kind })? {
            Response::Trace(reply) => Ok(reply),
            Response::Error { kind, message } => Err(GatewayError::Remote { kind, message }),
            _ => Err(GatewayError::Protocol(
                "server answered a trace request with the wrong kind".to_string(),
            )),
        }
    }

    /// Fetches the gateway's SLO health verdict: per-target burn rates
    /// over sliding windows plus the overall status.
    ///
    /// # Errors
    ///
    /// Same transport failures as [`infer`](Self::infer).
    pub fn health(&mut self) -> Result<HealthReport, GatewayError> {
        match self.call_retrying(&Request::Health)? {
            Response::Health(report) => Ok(report),
            Response::Error { kind, message } => Err(GatewayError::Remote { kind, message }),
            _ => Err(GatewayError::Protocol(
                "server answered a health request with the wrong kind".to_string(),
            )),
        }
    }

    /// Fetches up to `limit` of the gateway's flight-recorder events,
    /// newest first, plus the pinned incident snapshot if SLO health
    /// ever flipped to degraded/critical.
    ///
    /// # Errors
    ///
    /// Same transport failures as [`infer`](Self::infer).
    pub fn events(&mut self, limit: usize) -> Result<EventsReply, GatewayError> {
        match self.call_retrying(&Request::Events { limit })? {
            Response::Events(reply) => Ok(reply),
            Response::Error { kind, message } => Err(GatewayError::Remote { kind, message }),
            _ => Err(GatewayError::Protocol(
                "server answered an events request with the wrong kind".to_string(),
            )),
        }
    }
}

/// Whether a failed idempotent call is worth another attempt: transport
/// breakage (the server may have restarted, or the connection was
/// reset mid-exchange) and transient remote conditions. Deterministic
/// rejections (`bad_request`, `unknown_model`, `deadline_exceeded`,
/// `shutting_down`) would just fail identically again.
fn retryable(e: &GatewayError) -> bool {
    match e {
        GatewayError::Io(_) | GatewayError::Protocol(_) => true,
        GatewayError::Remote { kind, .. } => {
            matches!(kind, ErrorKind::Internal | ErrorKind::Overloaded)
        }
        _ => false,
    }
}

/// JSON cannot carry NaN/infinity; reject them before the wire rather
/// than silently mangling the payload.
fn check_finite(m: &Matrix<f32>) -> Result<(), GatewayError> {
    if m.iter().any(|v| !v.is_finite()) {
        return Err(GatewayError::Protocol(
            "float payload contains NaN or infinite elements".to_string(),
        ));
    }
    Ok(())
}
