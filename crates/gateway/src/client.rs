//! A blocking TCP client for the gateway protocol.
//!
//! One [`GatewayClient`] owns one connection and pipelines nothing:
//! every call writes one request line and blocks for one response line.
//! Concurrency comes from opening more clients — they are cheap, and the
//! server dedicates a thread per connection anyway.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use panacea_tensor::Matrix;

use crate::protocol::{
    decode_response, encode_request, BlockReply, GatewayStats, InferReply, Payload, Request,
    Response,
};
use crate::GatewayError;

/// A connected gateway client. See the module docs.
#[derive(Debug)]
pub struct GatewayClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl GatewayClient {
    /// Connects to a [`GatewayServer`](crate::GatewayServer).
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let read_half = stream.try_clone()?;
        Ok(GatewayClient {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
        })
    }

    fn call(&mut self, request: &Request) -> Result<Response, GatewayError> {
        let line = encode_request(request);
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(GatewayError::Protocol(
                "server closed the connection before answering".to_string(),
            ));
        }
        decode_response(&reply)
    }

    fn expect_infer(&mut self, request: &Request) -> Result<InferReply, GatewayError> {
        match self.call(request)? {
            Response::Infer(reply) => Ok(reply),
            Response::Error { kind, message } => Err(GatewayError::Remote { kind, message }),
            Response::Stats(_) | Response::Block(_) => Err(GatewayError::Protocol(
                "server answered an infer request with the wrong kind".to_string(),
            )),
        }
    }

    /// Runs a model on pre-quantized activation codes.
    ///
    /// # Errors
    ///
    /// [`GatewayError::Remote`] for server-side rejections (overload,
    /// unknown model, bad payload), [`GatewayError::Io`] /
    /// [`GatewayError::Protocol`] for transport failures.
    pub fn infer_codes(
        &mut self,
        model: &str,
        codes: Matrix<i32>,
    ) -> Result<InferReply, GatewayError> {
        self.expect_infer(&Request::Infer {
            model: model.to_string(),
            payload: Payload::Codes(codes),
        })
    }

    /// Runs a model on float activations; the server quantizes them with
    /// the model's calibrated input format.
    ///
    /// # Errors
    ///
    /// Same as [`infer_codes`](Self::infer_codes), plus
    /// [`GatewayError::Protocol`] for non-finite elements — JSON cannot
    /// carry NaN/infinity, so they are rejected here rather than
    /// silently mangled on the wire.
    pub fn infer_f32(
        &mut self,
        model: &str,
        input: Matrix<f32>,
    ) -> Result<InferReply, GatewayError> {
        if input.iter().any(|v| !v.is_finite()) {
            return Err(GatewayError::Protocol(
                "float payload contains NaN or infinite elements".to_string(),
            ));
        }
        self.expect_infer(&Request::Infer {
            model: model.to_string(),
            payload: Payload::F32(input),
        })
    }

    /// Runs a transformer-block model on one sequence of hidden states
    /// (`d_model × tokens`), returning the output hidden states —
    /// bit-identical to direct `QuantizedBlock` execution (finite f32
    /// values survive the JSON wire exactly).
    ///
    /// # Errors
    ///
    /// Same as [`infer_codes`](Self::infer_codes), plus
    /// [`GatewayError::Protocol`] for non-finite elements, which JSON
    /// cannot carry.
    pub fn infer_block(
        &mut self,
        model: &str,
        hidden: Matrix<f32>,
    ) -> Result<BlockReply, GatewayError> {
        if hidden.iter().any(|v| !v.is_finite()) {
            return Err(GatewayError::Protocol(
                "hidden-state payload contains NaN or infinite elements".to_string(),
            ));
        }
        match self.call(&Request::InferBlock {
            model: model.to_string(),
            hidden,
        })? {
            Response::Block(reply) => Ok(reply),
            Response::Error { kind, message } => Err(GatewayError::Remote { kind, message }),
            Response::Stats(_) | Response::Infer(_) => Err(GatewayError::Protocol(
                "server answered a block request with the wrong kind".to_string(),
            )),
        }
    }

    /// Fetches gateway-level metrics (per-shard, cache, admission).
    ///
    /// # Errors
    ///
    /// Same transport failures as [`infer_codes`](Self::infer_codes).
    pub fn stats(&mut self) -> Result<GatewayStats, GatewayError> {
        match self.call(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            Response::Error { kind, message } => Err(GatewayError::Remote { kind, message }),
            Response::Infer(_) | Response::Block(_) => Err(GatewayError::Protocol(
                "server answered a stats request with an inference".to_string(),
            )),
        }
    }
}
