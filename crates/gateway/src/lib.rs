//! `panacea-gateway` — the sharded network front-end over
//! [`panacea_serve`].
//!
//! `panacea-serve` batches requests inside one process; this crate turns
//! it into a deployable service reachable over TCP:
//!
//! ```text
//!  client ──line-delimited JSON──▶ GatewayServer
//!                                     │ decode, resolve, quantize
//!                                     ▼
//!                               RequestCache ──hit──▶ reply (no GEMM)
//!                                     │ miss
//!                                     ▼
//!                             AdmissionController ──full──▶ Overloaded
//!                                     │ admitted
//!                                     ▼
//!                     ShardRouter (rendezvous hash + least load)
//!                       │                │
//!                   Runtime #0 …     Runtime #N-1   (panacea-serve)
//! ```
//!
//! * [`ShardRouter`] owns N independent [`Runtime`](panacea_serve::Runtime)
//!   shards, every shard's registry sharing the *same*
//!   `Arc<PreparedModel>`s (one preparation, one copy of the sliced
//!   weights). Requests route by rendezvous hashing on the model name,
//!   tie-broken toward the emptier queue so hot models spread out.
//! * [`RequestCache`] is a sharded LRU keyed by the model's unique
//!   instance id (so re-registering a name never replays the old
//!   model's outputs) and the *quantized* request codes; hits are
//!   bit-exact replays (full key equality, never digest-only) that skip
//!   the AQS-GEMM pipeline entirely.
//! * [`AdmissionController`] bounds simultaneous in-flight requests and
//!   per-request queue wait, shedding the excess with explicit
//!   [`ServeError::Overloaded`] rejections instead of queueing without
//!   limit.
//! * [`GatewayServer`] / [`GatewayClient`] speak a line-delimited JSON
//!   protocol over blocking TCP — std only, with the wire encoding
//!   provided by the vendored `serde_json`. One typed `infer` verb
//!   serves both model kinds (the payload carries its domain), and the
//!   `session_open` / `decode` / `session_close` verbs drive stateful
//!   KV-cached decode: a session pins to the shard holding its KV
//!   state, and decode steps bypass the request cache entirely (their
//!   output depends on session state, not just the payload).

pub mod admission;
pub mod cache;
pub mod client;
pub mod protocol;
pub mod router;
pub mod server;
#[doc(hidden)]
pub mod testutil;

use std::fmt;

use panacea_serve::ServeError;

pub use admission::{AdmissionConfig, AdmissionController, AdmissionPermit, AdmissionStats};
pub use cache::{CacheConfig, CacheStats, CachedOutput, RequestCache};
pub use client::{ClientConfig, GatewayClient};
pub use panacea_netcore::{ConnectionCounters, ConnectionStats};
pub use panacea_serve::{OverloadReason, Payload, PayloadKind, SessionConfig, SessionStats};
pub use panacea_telemetry::{
    jsonl_metrics_line, unix_ms_now, Event, EventSeverity, FlightRecorder, HealthReport,
    IncidentSnapshot, MetricKey, MetricRegistry, PrometheusText, SloConfig, SloStatus, SloTarget,
    TargetReport, TraceConfig, TraceContext, Tracer, WindowConfig,
};
pub use protocol::{
    DecodeReply, DimSummary, ErrorKind, EventSummary, EventsReply, GatewayMetrics, GatewayStats,
    IncidentSummary, InferReply, Request, Response, SessionCloseReply, SessionOpenReply,
    ShardStats, ShedStats, SpanSummary, StageSummary, TraceKind, TraceReply, TraceSummary,
};
pub use router::ShardRouter;
pub use server::{Gateway, GatewayConfig, GatewayServer, IoModel, ServerConfig};

/// Errors surfaced by the gateway layer (client or server side).
#[derive(Debug)]
pub enum GatewayError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// A wire message could not be encoded or decoded.
    Protocol(String),
    /// The server answered with an error response.
    Remote {
        /// Machine-readable error category from the wire.
        kind: ErrorKind,
        /// Human-readable message from the server.
        message: String,
    },
    /// A serving-layer failure when driving an in-process [`Gateway`].
    Serve(ServeError),
}

impl GatewayError {
    /// Whether this error is an admission-control rejection — the one
    /// category callers are expected to retry after backing off.
    pub fn is_overloaded(&self) -> bool {
        match self {
            GatewayError::Remote { kind, .. } => *kind == ErrorKind::Overloaded,
            GatewayError::Serve(ServeError::Overloaded { .. }) => true,
            _ => false,
        }
    }
}

impl fmt::Display for GatewayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GatewayError::Io(e) => write!(f, "i/o failure: {e}"),
            GatewayError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            GatewayError::Remote { kind, message } => {
                write!(f, "server rejected request ({kind}): {message}")
            }
            GatewayError::Serve(e) => write!(f, "serving failure: {e}"),
        }
    }
}

impl std::error::Error for GatewayError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GatewayError::Io(e) => Some(e),
            GatewayError::Serve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GatewayError {
    fn from(e: std::io::Error) -> Self {
        GatewayError::Io(e)
    }
}

impl From<ServeError> for GatewayError {
    fn from(e: ServeError) -> Self {
        GatewayError::Serve(e)
    }
}
