//! The gateway wire protocol: line-delimited JSON over TCP.
//!
//! Every message is one JSON object on one line. Requests carry a
//! `verb` — `"infer"` (with either pre-quantized integer `codes` or a
//! float `input` the server quantizes) or `"stats"`. Responses carry
//! `ok`; successful inferences return the final integer accumulators
//! plus the dequantization scale (so clients can verify bit-exactness
//! against local execution before converting to floats), the shard that
//! served the request, and whether the response came from the cache.
//!
//! Matrices travel as `{"rows": R, "cols": C, "data": [row-major…]}`.
//! Integer payloads round-trip bit-exactly (JSON numbers are `f64`,
//! which represents every `i32`); finite float payloads round-trip
//! exactly too because the writer emits shortest-round-trip decimal
//! forms. JSON has no NaN/infinity, so non-finite floats do not survive
//! the wire — [`GatewayClient`](crate::GatewayClient) rejects them
//! before sending and the server rejects them on decode.

use std::time::Duration;

use panacea_tensor::Matrix;
use serde_json::{json, Value};

use crate::admission::AdmissionStats;
use crate::cache::CacheStats;
use crate::GatewayError;

/// A decoded client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run a linear-chain model on one activation payload.
    Infer {
        /// Registered model name.
        model: String,
        /// The activations to run.
        payload: Payload,
    },
    /// Run a transformer-block model on one sequence of hidden states.
    InferBlock {
        /// Registered model name.
        model: String,
        /// Hidden states (`d_model × tokens`); the columns form one
        /// attention sequence.
        hidden: Matrix<f32>,
    },
    /// Fetch gateway-level metrics.
    Stats,
}

/// The activation payload of an `infer` request.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Already-quantized activation codes (`K × N`), produced with the
    /// model's calibrated input format.
    Codes(Matrix<i32>),
    /// Float activations (`K × N`); the server quantizes them with the
    /// model's input format before execution.
    F32(Matrix<f32>),
}

/// A successful `infer` response.
#[derive(Debug, Clone, PartialEq)]
pub struct InferReply {
    /// Final-layer integer accumulators (`M × N`), bit-identical to
    /// running the request directly on a [`panacea_serve::Runtime`].
    pub acc: Matrix<i32>,
    /// Scale converting `acc` to floats.
    pub scale: f64,
    /// Gateway-measured request latency (decode to response, excluding
    /// network time).
    pub latency: Duration,
    /// The shard that served (or would have served) the request.
    pub shard: usize,
    /// Whether the response was replayed from the request cache.
    pub cache_hit: bool,
}

impl InferReply {
    /// Dequantizes the accumulators into floats.
    pub fn to_f32(&self) -> Matrix<f32> {
        self.acc.map(|&v| (f64::from(v) * self.scale) as f32)
    }
}

/// A successful `infer_block` response.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockReply {
    /// Output hidden states (`d_model × tokens`), bit-identical to
    /// running the request directly on the prepared `QuantizedBlock`
    /// stack (finite f32 values survive the JSON wire exactly).
    pub hidden: Matrix<f32>,
    /// Gateway-measured request latency (decode to response, excluding
    /// network time).
    pub latency: Duration,
    /// The shard that served (or would have served) the request.
    pub shard: usize,
    /// Whether the response was replayed from the request cache.
    pub cache_hit: bool,
}

/// Machine-readable category of an error response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Admission control shed the request; retry after backing off.
    Overloaded,
    /// The model name is not registered on this gateway.
    UnknownModel,
    /// The request itself is invalid (shape, code range, empty payload).
    BadRequest,
    /// The gateway is shutting down.
    ShuttingDown,
    /// Unexpected server-side failure.
    Internal,
}

impl ErrorKind {
    fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::UnknownModel => "unknown_model",
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::ShuttingDown => "shutting_down",
            ErrorKind::Internal => "internal",
        }
    }

    fn from_str(s: &str) -> Self {
        match s {
            "overloaded" => ErrorKind::Overloaded,
            "unknown_model" => ErrorKind::UnknownModel,
            "bad_request" => ErrorKind::BadRequest,
            "shutting_down" => ErrorKind::ShuttingDown,
            _ => ErrorKind::Internal,
        }
    }
}

impl std::fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Point-in-time serving counters for one shard, as reported by the
/// `stats` verb.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ShardStats {
    /// Requests completed by this shard.
    pub requests: u64,
    /// Batches dispatched by this shard.
    pub batches: u64,
    /// Activation columns served by this shard.
    pub columns: u64,
    /// Columns zero-padded to the PE vector width.
    pub padded_cols: u64,
    /// Fraction of executed GEMM columns that were zero padding
    /// (`padded / (served + padded)`).
    pub padding_overhead: f64,
    /// Queued requests dropped before execution because their caller
    /// stopped waiting (e.g. shed by admission control).
    pub cancelled: u64,
    /// Served columns per second of worker compute time.
    pub columns_per_second: f64,
    /// Columns waiting in this shard's queue right now.
    pub queued_cols: u64,
    /// Columns claimed by workers but not yet answered.
    pub in_flight_cols: u64,
}

/// Gateway-level metrics bundle returned by the `stats` verb.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GatewayStats {
    /// Per-shard serving counters, indexed by shard id.
    pub shards: Vec<ShardStats>,
    /// Request-cache counters.
    pub cache: CacheStats,
    /// Admission-control counters.
    pub admission: AdmissionStats,
}

/// A decoded server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Successful inference.
    Infer(InferReply),
    /// Successful transformer-block inference.
    Block(BlockReply),
    /// Metrics snapshot.
    Stats(GatewayStats),
    /// The request failed; `kind` says how, `message` says why.
    Error {
        /// Machine-readable category.
        kind: ErrorKind,
        /// Human-readable detail.
        message: String,
    },
}

fn matrix_i32_to_value(m: &Matrix<i32>) -> Value {
    json!({
        "rows": m.rows(),
        "cols": m.cols(),
        "data": Value::Array(m.iter().map(|&v| Value::from(v)).collect()),
    })
}

fn matrix_f32_to_value(m: &Matrix<f32>) -> Value {
    json!({
        "rows": m.rows(),
        "cols": m.cols(),
        "data": Value::Array(m.iter().map(|&v| Value::from(v)).collect()),
    })
}

fn bad(msg: impl Into<String>) -> GatewayError {
    GatewayError::Protocol(msg.into())
}

fn field<'a>(v: &'a Value, key: &str) -> Result<&'a Value, GatewayError> {
    v.get(key)
        .ok_or_else(|| bad(format!("missing field {key:?}")))
}

fn usize_field(v: &Value, key: &str) -> Result<usize, GatewayError> {
    field(v, key)?
        .as_u64()
        .map(|x| x as usize)
        .ok_or_else(|| bad(format!("field {key:?} is not a non-negative integer")))
}

fn u64_field(v: &Value, key: &str) -> Result<u64, GatewayError> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| bad(format!("field {key:?} is not a non-negative integer")))
}

fn f64_field(v: &Value, key: &str) -> Result<f64, GatewayError> {
    field(v, key)?
        .as_f64()
        .ok_or_else(|| bad(format!("field {key:?} is not a number")))
}

fn str_field<'a>(v: &'a Value, key: &str) -> Result<&'a str, GatewayError> {
    field(v, key)?
        .as_str()
        .ok_or_else(|| bad(format!("field {key:?} is not a string")))
}

/// Guards the untrusted `rows`/`cols` pair: their product must be
/// computable without overflow *and* match the element count, so a
/// hostile header like `rows=cols=2^32` fails cleanly here instead of
/// overflowing inside `Matrix::from_vec`.
fn check_dims(rows: usize, cols: usize, len: usize) -> Result<(), GatewayError> {
    match rows.checked_mul(cols) {
        Some(n) if n == len => Ok(()),
        Some(_) => Err(bad("matrix data length does not match rows*cols")),
        None => Err(bad("matrix dimensions overflow")),
    }
}

fn value_to_matrix_i32(v: &Value) -> Result<Matrix<i32>, GatewayError> {
    let rows = usize_field(v, "rows")?;
    let cols = usize_field(v, "cols")?;
    let data = field(v, "data")?
        .as_array()
        .ok_or_else(|| bad("matrix data is not an array"))?;
    check_dims(rows, cols, data.len())?;
    let mut out = Vec::with_capacity(data.len());
    for item in data {
        let n = item
            .as_i64()
            .ok_or_else(|| bad("matrix element is not an integer"))?;
        let n = i32::try_from(n).map_err(|_| bad("matrix element exceeds i32 range"))?;
        out.push(n);
    }
    Ok(Matrix::from_vec(rows, cols, out).expect("dims pre-checked against data length"))
}

fn value_to_matrix_f32(v: &Value) -> Result<Matrix<f32>, GatewayError> {
    let rows = usize_field(v, "rows")?;
    let cols = usize_field(v, "cols")?;
    let data = field(v, "data")?
        .as_array()
        .ok_or_else(|| bad("matrix data is not an array"))?;
    check_dims(rows, cols, data.len())?;
    let mut out = Vec::with_capacity(data.len());
    for item in data {
        let n = item
            .as_f64()
            .ok_or_else(|| bad("matrix element is not a number"))?;
        // JSON has no NaN/infinity, but an overflowing literal like
        // `1e999` still parses to infinity (and a finite `1e300`
        // overflows when narrowed to f32); enforce the documented
        // finite-floats-only invariant here rather than letting the
        // saturated value surface later as a code-range error.
        let f = n as f32;
        if !f.is_finite() {
            return Err(bad("matrix element is not finite"));
        }
        out.push(f);
    }
    Ok(Matrix::from_vec(rows, cols, out).expect("dims pre-checked against data length"))
}

/// Serializes a request to its single-line wire form (no newline).
pub fn encode_request(req: &Request) -> String {
    let value = match req {
        Request::Infer { model, payload } => {
            let (key, matrix) = match payload {
                Payload::Codes(codes) => ("codes", matrix_i32_to_value(codes)),
                Payload::F32(input) => ("input", matrix_f32_to_value(input)),
            };
            let mut map = serde_json::Map::new();
            map.insert("verb".to_string(), Value::from("infer"));
            map.insert("model".to_string(), Value::from(model.clone()));
            map.insert(key.to_string(), matrix);
            Value::Object(map)
        }
        Request::InferBlock { model, hidden } => {
            let mut map = serde_json::Map::new();
            map.insert("verb".to_string(), Value::from("infer_block"));
            map.insert("model".to_string(), Value::from(model.clone()));
            map.insert("hidden".to_string(), matrix_f32_to_value(hidden));
            Value::Object(map)
        }
        Request::Stats => json!({ "verb": "stats" }),
    };
    serde_json::to_string(&value).expect("shim serializer never fails")
}

/// Parses one request line.
///
/// # Errors
///
/// [`GatewayError::Protocol`] on malformed JSON, an unknown verb, or a
/// payload that is missing or malformed.
pub fn decode_request(line: &str) -> Result<Request, GatewayError> {
    let v = serde_json::from_str(line.trim()).map_err(|e| bad(format!("invalid JSON: {e}")))?;
    match str_field(&v, "verb")? {
        "infer" => {
            let model = str_field(&v, "model")?.to_string();
            let payload = match (v.get("codes"), v.get("input")) {
                (Some(codes), None) => Payload::Codes(value_to_matrix_i32(codes)?),
                (None, Some(input)) => Payload::F32(value_to_matrix_f32(input)?),
                (Some(_), Some(_)) => {
                    return Err(bad("request carries both codes and input"));
                }
                (None, None) => return Err(bad("request carries neither codes nor input")),
            };
            Ok(Request::Infer { model, payload })
        }
        "infer_block" => Ok(Request::InferBlock {
            model: str_field(&v, "model")?.to_string(),
            hidden: value_to_matrix_f32(field(&v, "hidden")?)?,
        }),
        "stats" => Ok(Request::Stats),
        other => Err(bad(format!("unknown verb {other:?}"))),
    }
}

fn shard_stats_to_value(s: &ShardStats) -> Value {
    json!({
        "requests": s.requests,
        "batches": s.batches,
        "columns": s.columns,
        "padded_cols": s.padded_cols,
        "padding_overhead": s.padding_overhead,
        "cancelled": s.cancelled,
        "columns_per_second": s.columns_per_second,
        "queued_cols": s.queued_cols,
        "in_flight_cols": s.in_flight_cols,
    })
}

fn value_to_shard_stats(v: &Value) -> Result<ShardStats, GatewayError> {
    Ok(ShardStats {
        requests: u64_field(v, "requests")?,
        batches: u64_field(v, "batches")?,
        columns: u64_field(v, "columns")?,
        padded_cols: u64_field(v, "padded_cols")?,
        padding_overhead: f64_field(v, "padding_overhead")?,
        cancelled: u64_field(v, "cancelled")?,
        columns_per_second: f64_field(v, "columns_per_second")?,
        queued_cols: u64_field(v, "queued_cols")?,
        in_flight_cols: u64_field(v, "in_flight_cols")?,
    })
}

fn stats_to_value(stats: &GatewayStats) -> Value {
    json!({
        "ok": true,
        "kind": "stats",
        "shards": Value::Array(stats.shards.iter().map(shard_stats_to_value).collect()),
        "cache": json!({
            "hits": stats.cache.hits,
            "misses": stats.cache.misses,
            "evictions": stats.cache.evictions,
            "entries": stats.cache.entries,
        }),
        "admission": json!({
            "admitted": stats.admission.admitted,
            "rejected_capacity": stats.admission.rejected_capacity,
            "rejected_timeout": stats.admission.rejected_timeout,
            "in_flight": stats.admission.in_flight,
        }),
    })
}

fn value_to_stats(v: &Value) -> Result<GatewayStats, GatewayError> {
    let shards = field(v, "shards")?
        .as_array()
        .ok_or_else(|| bad("shards is not an array"))?
        .iter()
        .map(value_to_shard_stats)
        .collect::<Result<Vec<_>, _>>()?;
    let cache = field(v, "cache")?;
    let admission = field(v, "admission")?;
    Ok(GatewayStats {
        shards,
        cache: CacheStats {
            hits: u64_field(cache, "hits")?,
            misses: u64_field(cache, "misses")?,
            evictions: u64_field(cache, "evictions")?,
            entries: u64_field(cache, "entries")? as usize,
        },
        admission: AdmissionStats {
            admitted: u64_field(admission, "admitted")?,
            rejected_capacity: u64_field(admission, "rejected_capacity")?,
            rejected_timeout: u64_field(admission, "rejected_timeout")?,
            in_flight: usize_field(admission, "in_flight")?,
        },
    })
}

/// Serializes a response to its single-line wire form (no newline).
pub fn encode_response(resp: &Response) -> String {
    let value = match resp {
        Response::Infer(reply) => json!({
            "ok": true,
            "kind": "infer",
            "acc": matrix_i32_to_value(&reply.acc),
            "scale": reply.scale,
            "latency_us": reply.latency.as_micros() as u64,
            "shard": reply.shard,
            "cache_hit": reply.cache_hit,
        }),
        Response::Block(reply) => json!({
            "ok": true,
            "kind": "infer_block",
            "hidden": matrix_f32_to_value(&reply.hidden),
            "latency_us": reply.latency.as_micros() as u64,
            "shard": reply.shard,
            "cache_hit": reply.cache_hit,
        }),
        Response::Stats(stats) => stats_to_value(stats),
        Response::Error { kind, message } => json!({
            "ok": false,
            "error": kind.as_str(),
            "message": message.clone(),
        }),
    };
    serde_json::to_string(&value).expect("shim serializer never fails")
}

/// Parses one response line.
///
/// # Errors
///
/// [`GatewayError::Protocol`] on malformed JSON or an unknown response
/// kind.
pub fn decode_response(line: &str) -> Result<Response, GatewayError> {
    let v = serde_json::from_str(line.trim()).map_err(|e| bad(format!("invalid JSON: {e}")))?;
    let ok = field(&v, "ok")?
        .as_bool()
        .ok_or_else(|| bad("field \"ok\" is not a boolean"))?;
    if !ok {
        return Ok(Response::Error {
            kind: ErrorKind::from_str(str_field(&v, "error")?),
            message: str_field(&v, "message")?.to_string(),
        });
    }
    match str_field(&v, "kind")? {
        "infer" => Ok(Response::Infer(InferReply {
            acc: value_to_matrix_i32(field(&v, "acc")?)?,
            scale: f64_field(&v, "scale")?,
            latency: Duration::from_micros(u64_field(&v, "latency_us")?),
            shard: usize_field(&v, "shard")?,
            cache_hit: field(&v, "cache_hit")?
                .as_bool()
                .ok_or_else(|| bad("field \"cache_hit\" is not a boolean"))?,
        })),
        "infer_block" => Ok(Response::Block(BlockReply {
            hidden: value_to_matrix_f32(field(&v, "hidden")?)?,
            latency: Duration::from_micros(u64_field(&v, "latency_us")?),
            shard: usize_field(&v, "shard")?,
            cache_hit: field(&v, "cache_hit")?
                .as_bool()
                .ok_or_else(|| bad("field \"cache_hit\" is not a boolean"))?,
        })),
        "stats" => Ok(Response::Stats(value_to_stats(&v)?)),
        other => Err(bad(format!("unknown response kind {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes() -> Matrix<i32> {
        Matrix::from_fn(3, 2, |r, c| (r as i32 - 1) * 100 + c as i32)
    }

    #[test]
    fn infer_request_round_trips_codes_bit_exactly() {
        let req = Request::Infer {
            model: "block0.fc2".to_string(),
            payload: Payload::Codes(codes()),
        };
        let line = encode_request(&req);
        assert!(!line.contains('\n'));
        assert_eq!(decode_request(&line).unwrap(), req);
    }

    #[test]
    fn infer_request_round_trips_floats() {
        let input = Matrix::from_fn(2, 2, |r, c| 0.25 * (r as f32) - 1.5 * (c as f32));
        let req = Request::Infer {
            model: "m".to_string(),
            payload: Payload::F32(input),
        };
        assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);
    }

    #[test]
    fn block_request_round_trips_floats_bit_exactly() {
        // Awkward but finite values: subnormals, negative zero, and
        // shortest-round-trip-sensitive fractions must all survive.
        let hidden =
            Matrix::from_vec(2, 2, vec![0.1f32, -0.0, f32::MIN_POSITIVE, -1.5e-38]).unwrap();
        let req = Request::InferBlock {
            model: "decoder".to_string(),
            hidden: hidden.clone(),
        };
        let Request::InferBlock { hidden: back, .. } =
            decode_request(&encode_request(&req)).unwrap()
        else {
            panic!("wrong verb");
        };
        for (a, b) in hidden.iter().zip(back.iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "f32 mangled on the wire");
        }
    }

    #[test]
    fn block_response_round_trips() {
        let resp = Response::Block(BlockReply {
            hidden: Matrix::from_vec(1, 3, vec![0.25, -3.5, 1e-20]).unwrap(),
            latency: Duration::from_micros(99),
            shard: 1,
            cache_hit: false,
        });
        assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
    }

    #[test]
    fn block_request_rejects_non_finite_hidden_states() {
        let line = "{\"verb\":\"infer_block\",\"model\":\"m\",\"hidden\":{\"rows\":1,\"cols\":1,\"data\":[1e999]}}";
        assert!(decode_request(line).is_err());
    }

    #[test]
    fn stats_request_round_trips() {
        assert_eq!(
            decode_request(&encode_request(&Request::Stats)).unwrap(),
            Request::Stats
        );
    }

    #[test]
    fn infer_response_round_trips() {
        let resp = Response::Infer(InferReply {
            acc: codes(),
            scale: 1.25e-3,
            latency: Duration::from_micros(417),
            shard: 1,
            cache_hit: true,
        });
        assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
    }

    #[test]
    fn stats_response_round_trips() {
        let resp = Response::Stats(GatewayStats {
            shards: vec![
                ShardStats {
                    requests: 10,
                    batches: 3,
                    columns: 40,
                    padded_cols: 2,
                    padding_overhead: 2.0 / 42.0,
                    cancelled: 1,
                    columns_per_second: 1234.5,
                    queued_cols: 4,
                    in_flight_cols: 8,
                },
                ShardStats::default(),
            ],
            cache: CacheStats {
                hits: 5,
                misses: 7,
                evictions: 1,
                entries: 6,
            },
            admission: AdmissionStats {
                admitted: 12,
                rejected_capacity: 2,
                rejected_timeout: 1,
                in_flight: 3,
            },
        });
        assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
    }

    #[test]
    fn error_response_round_trips_kind() {
        let resp = Response::Error {
            kind: ErrorKind::Overloaded,
            message: "in-flight limit 8 reached".to_string(),
        };
        assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for line in [
            "",
            "not json",
            "{}",
            "{\"verb\":\"launch\"}",
            "{\"verb\":\"infer\",\"model\":\"m\"}",
            "{\"verb\":\"infer\",\"model\":\"m\",\"codes\":{\"rows\":2,\"cols\":2,\"data\":[1]}}",
            "{\"verb\":\"infer\",\"model\":\"m\",\"codes\":{\"rows\":1,\"cols\":1,\"data\":[1.5]}}",
            // rows*cols overflows usize: must be a clean protocol error,
            // not a multiplication overflow inside Matrix::from_vec.
            "{\"verb\":\"infer\",\"model\":\"m\",\"codes\":{\"rows\":4294967296,\"cols\":4294967296,\"data\":[]}}",
        ] {
            assert!(decode_request(line).is_err(), "accepted {line:?}");
        }
    }

    #[test]
    fn non_finite_float_payloads_are_rejected_on_decode() {
        // 1e999 parses to f64 infinity; 1e300 is a finite f64 that
        // overflows when narrowed to f32. Both must fail with the
        // finiteness error, not leak into quantization.
        for datum in ["1e999", "-1e999", "1e300"] {
            let line = format!(
                "{{\"verb\":\"infer\",\"model\":\"m\",\"input\":{{\"rows\":1,\"cols\":1,\"data\":[{datum}]}}}}"
            );
            let err = decode_request(&line).expect_err("accepted non-finite element");
            assert!(
                err.to_string().contains("not finite"),
                "wrong error for {datum}: {err}"
            );
        }
    }

    #[test]
    fn i32_extremes_survive_the_wire() {
        let m = Matrix::from_vec(1, 4, vec![i32::MIN, -1, 1, i32::MAX]).unwrap();
        let req = Request::Infer {
            model: "m".to_string(),
            payload: Payload::Codes(m.clone()),
        };
        let Request::Infer { payload, .. } = decode_request(&encode_request(&req)).unwrap() else {
            panic!("wrong verb");
        };
        assert_eq!(payload, Payload::Codes(m));
    }

    #[test]
    fn reply_to_f32_applies_scale() {
        let reply = InferReply {
            acc: Matrix::from_vec(1, 2, vec![4, -8]).unwrap(),
            scale: 0.5,
            latency: Duration::ZERO,
            shard: 0,
            cache_hit: false,
        };
        assert_eq!(reply.to_f32().as_slice(), &[2.0, -4.0]);
    }
}
