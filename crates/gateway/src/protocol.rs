//! The gateway wire protocol: line-delimited JSON over TCP.
//!
//! Every message is one JSON object on one line. Requests carry a
//! `verb`:
//!
//! * `"infer"` — one **typed** stateless inference. The payload object
//!   carries its own domain tag (`{"kind": "codes" | "hidden", ...}`),
//!   mirroring [`panacea_serve::Payload`] exactly; alternatively an
//!   `input` float matrix asks the server to convert into the model's
//!   native payload (quantize for chains, pass through for blocks).
//! * `"session_open"` / `"decode"` / `"session_close"` — the stateful
//!   decode-session surface: open pins a session (and its KV cache) to
//!   a shard, decode advances it by one or more token columns, close
//!   frees it.
//! * `"stats"` — gateway metrics, including per-shard session counts
//!   and resident KV bytes.
//!
//! Matrices travel as `{"rows": R, "cols": C, "data": [row-major…]}`.
//! Integer payloads round-trip bit-exactly (JSON numbers are `f64`,
//! which represents every `i32`); finite float payloads round-trip
//! exactly too because the writer emits shortest-round-trip decimal
//! forms. JSON has no NaN/infinity, so non-finite floats do not survive
//! the wire — [`GatewayClient`](crate::GatewayClient) rejects them
//! before sending and the server rejects them on decode.

use std::time::Duration;

use panacea_serve::Payload;
use panacea_tensor::Matrix;
use serde_json::{json, Value};

use crate::admission::AdmissionStats;
use crate::cache::CacheStats;
use crate::GatewayError;

/// A decoded client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run one stateless inference on a typed payload: codes for a
    /// linear chain, hidden states for a transformer-block model (the
    /// columns form one attention sequence). A payload of the wrong
    /// kind for the model is rejected by validation — there are no
    /// per-kind verbs.
    Infer {
        /// Registered model name.
        model: String,
        /// The typed activation payload.
        payload: Payload,
    },
    /// Convenience form of `infer`: float activations the server
    /// converts into the model's native payload (quantizes for chains,
    /// passes through for block models).
    InferF32 {
        /// Registered model name.
        model: String,
        /// Float activations (`K × N`).
        input: Matrix<f32>,
    },
    /// Open a decode session on a transformer-block model. The session
    /// starts empty; its prefix arrives through `Decode` steps.
    SessionOpen {
        /// Registered model name.
        model: String,
    },
    /// Advance a decode session by one or more new token columns.
    Decode {
        /// Session id from `SessionOpen`.
        session: u64,
        /// New hidden-state columns (`d_model × t_new`).
        hidden: Matrix<f32>,
    },
    /// Close a decode session, freeing its KV state.
    SessionClose {
        /// Session id from `SessionOpen`.
        session: u64,
    },
    /// Fetch gateway-level metrics.
    Stats,
}

/// A successful `infer` response.
#[derive(Debug, Clone, PartialEq)]
pub struct InferReply {
    /// The typed result, bit-identical to running the request directly
    /// on a [`panacea_serve::Runtime`]: final integer accumulators
    /// ([`Payload::Codes`]) for chains, output hidden states
    /// ([`Payload::Hidden`]) for block models.
    pub payload: Payload,
    /// Scale converting code accumulators to floats; `1.0` for hidden
    /// results.
    pub scale: f64,
    /// Gateway-measured request latency (decode to response, excluding
    /// network time).
    pub latency: Duration,
    /// The shard that served (or would have served) the request.
    pub shard: usize,
    /// Whether the response was replayed from the request cache.
    pub cache_hit: bool,
}

impl InferReply {
    /// The float view of the result: dequantized accumulators for
    /// chains, the hidden states themselves for block models.
    pub fn to_f32(&self) -> Matrix<f32> {
        match &self.payload {
            Payload::Codes(acc) => acc.map(|&v| (f64::from(v) * self.scale) as f32),
            Payload::Hidden(h) => h.clone(),
        }
    }
}

/// A successful `session_open` response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionOpenReply {
    /// The process-unique session id to decode against.
    pub session: u64,
    /// The shard holding the session's KV state — every decode step
    /// for this session executes there (session affinity).
    pub shard: usize,
}

/// A successful `decode` response.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeReply {
    /// Output hidden states for the new tokens (`d_model × t_new`),
    /// bit-identical to a full causal recompute of the session's whole
    /// prefix.
    pub hidden: Matrix<f32>,
    /// Total tokens resident in the session after this step.
    pub tokens: usize,
    /// The shard holding the session.
    pub shard: usize,
    /// Gateway-measured step latency.
    pub latency: Duration,
}

/// A successful `session_close` response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionCloseReply {
    /// The closed session's id.
    pub session: u64,
    /// Tokens the session had decoded when it closed.
    pub tokens: usize,
}

/// Machine-readable category of an error response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Admission control shed the request (or the KV byte budget is
    /// exhausted); retry after backing off.
    Overloaded,
    /// The model name is not registered on this gateway.
    UnknownModel,
    /// The addressed decode session does not exist — never opened,
    /// closed, or evicted (idle timeout / byte budget). Open a fresh
    /// session and replay the prefix.
    UnknownSession,
    /// The request itself is invalid (payload kind, shape, code range,
    /// empty payload).
    BadRequest,
    /// The gateway is shutting down.
    ShuttingDown,
    /// Unexpected server-side failure.
    Internal,
}

impl ErrorKind {
    fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::UnknownModel => "unknown_model",
            ErrorKind::UnknownSession => "unknown_session",
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::ShuttingDown => "shutting_down",
            ErrorKind::Internal => "internal",
        }
    }

    fn from_str(s: &str) -> Self {
        match s {
            "overloaded" => ErrorKind::Overloaded,
            "unknown_model" => ErrorKind::UnknownModel,
            "unknown_session" => ErrorKind::UnknownSession,
            "bad_request" => ErrorKind::BadRequest,
            "shutting_down" => ErrorKind::ShuttingDown,
            _ => ErrorKind::Internal,
        }
    }
}

impl std::fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Point-in-time serving counters for one shard, as reported by the
/// `stats` verb.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ShardStats {
    /// Requests completed by this shard.
    pub requests: u64,
    /// Batches dispatched by this shard.
    pub batches: u64,
    /// Activation columns served by this shard.
    pub columns: u64,
    /// Columns zero-padded to the PE vector width.
    pub padded_cols: u64,
    /// Fraction of executed GEMM columns that were zero padding
    /// (`padded / (served + padded)`).
    pub padding_overhead: f64,
    /// Queued requests dropped before execution because their caller
    /// stopped waiting (e.g. shed by admission control).
    pub cancelled: u64,
    /// Served columns per second of worker compute time.
    pub columns_per_second: f64,
    /// Columns waiting in this shard's queue right now.
    pub queued_cols: u64,
    /// Columns claimed by workers but not yet answered.
    pub in_flight_cols: u64,
    /// Decode sessions currently pinned to this shard.
    pub open_sessions: u64,
    /// KV-cache bytes resident for those sessions.
    pub kv_bytes: u64,
    /// Decode steps this shard has executed.
    pub decode_steps: u64,
    /// Tokens this shard has decoded across all sessions.
    pub decode_tokens: u64,
    /// Fused continuous-batching decode passes this shard has run.
    pub decode_batches: u64,
    /// Average decode steps per fused pass (`decode_steps /
    /// decode_batches`; `> 1` means concurrent sessions shared GEMM
    /// passes). Zero before any fused pass.
    pub decode_batch_occupancy: f64,
    /// Columns the fused decode passes zero-padded to the PE vector
    /// width.
    pub decode_padded_cols: u64,
}

/// Gateway-level metrics bundle returned by the `stats` verb.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GatewayStats {
    /// Per-shard serving counters, indexed by shard id.
    pub shards: Vec<ShardStats>,
    /// Request-cache counters.
    pub cache: CacheStats,
    /// Admission-control counters.
    pub admission: AdmissionStats,
}

/// A decoded server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Successful typed inference.
    Infer(InferReply),
    /// Decode session opened.
    SessionOpen(SessionOpenReply),
    /// Decode step served.
    Decode(DecodeReply),
    /// Decode session closed.
    SessionClose(SessionCloseReply),
    /// Metrics snapshot.
    Stats(GatewayStats),
    /// The request failed; `kind` says how, `message` says why.
    Error {
        /// Machine-readable category.
        kind: ErrorKind,
        /// Human-readable detail.
        message: String,
    },
}

fn matrix_f32_to_value(m: &Matrix<f32>) -> Value {
    json!({
        "rows": m.rows(),
        "cols": m.cols(),
        "data": Value::Array(m.iter().map(|&v| Value::from(v)).collect()),
    })
}

fn payload_to_value(p: &Payload) -> Value {
    match p {
        Payload::Codes(m) => json!({
            "kind": "codes",
            "rows": m.rows(),
            "cols": m.cols(),
            "data": Value::Array(m.iter().map(|&v| Value::from(v)).collect()),
        }),
        Payload::Hidden(m) => json!({
            "kind": "hidden",
            "rows": m.rows(),
            "cols": m.cols(),
            "data": Value::Array(m.iter().map(|&v| Value::from(v)).collect()),
        }),
    }
}

fn value_to_payload(v: &Value) -> Result<Payload, GatewayError> {
    match str_field(v, "kind")? {
        "codes" => Ok(Payload::Codes(value_to_matrix_i32(v)?)),
        "hidden" => Ok(Payload::Hidden(value_to_matrix_f32(v)?)),
        other => Err(bad(format!("unknown payload kind {other:?}"))),
    }
}

fn bad(msg: impl Into<String>) -> GatewayError {
    GatewayError::Protocol(msg.into())
}

fn field<'a>(v: &'a Value, key: &str) -> Result<&'a Value, GatewayError> {
    v.get(key)
        .ok_or_else(|| bad(format!("missing field {key:?}")))
}

fn usize_field(v: &Value, key: &str) -> Result<usize, GatewayError> {
    field(v, key)?
        .as_u64()
        .map(|x| x as usize)
        .ok_or_else(|| bad(format!("field {key:?} is not a non-negative integer")))
}

fn u64_field(v: &Value, key: &str) -> Result<u64, GatewayError> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| bad(format!("field {key:?} is not a non-negative integer")))
}

fn f64_field(v: &Value, key: &str) -> Result<f64, GatewayError> {
    field(v, key)?
        .as_f64()
        .ok_or_else(|| bad(format!("field {key:?} is not a number")))
}

fn str_field<'a>(v: &'a Value, key: &str) -> Result<&'a str, GatewayError> {
    field(v, key)?
        .as_str()
        .ok_or_else(|| bad(format!("field {key:?} is not a string")))
}

/// Guards the untrusted `rows`/`cols` pair: their product must be
/// computable without overflow *and* match the element count, so a
/// hostile header like `rows=cols=2^32` fails cleanly here instead of
/// overflowing inside `Matrix::from_vec`.
fn check_dims(rows: usize, cols: usize, len: usize) -> Result<(), GatewayError> {
    match rows.checked_mul(cols) {
        Some(n) if n == len => Ok(()),
        Some(_) => Err(bad("matrix data length does not match rows*cols")),
        None => Err(bad("matrix dimensions overflow")),
    }
}

fn value_to_matrix_i32(v: &Value) -> Result<Matrix<i32>, GatewayError> {
    let rows = usize_field(v, "rows")?;
    let cols = usize_field(v, "cols")?;
    let data = field(v, "data")?
        .as_array()
        .ok_or_else(|| bad("matrix data is not an array"))?;
    check_dims(rows, cols, data.len())?;
    let mut out = Vec::with_capacity(data.len());
    for item in data {
        let n = item
            .as_i64()
            .ok_or_else(|| bad("matrix element is not an integer"))?;
        let n = i32::try_from(n).map_err(|_| bad("matrix element exceeds i32 range"))?;
        out.push(n);
    }
    Ok(Matrix::from_vec(rows, cols, out).expect("dims pre-checked against data length"))
}

fn value_to_matrix_f32(v: &Value) -> Result<Matrix<f32>, GatewayError> {
    let rows = usize_field(v, "rows")?;
    let cols = usize_field(v, "cols")?;
    let data = field(v, "data")?
        .as_array()
        .ok_or_else(|| bad("matrix data is not an array"))?;
    check_dims(rows, cols, data.len())?;
    let mut out = Vec::with_capacity(data.len());
    for item in data {
        let n = item
            .as_f64()
            .ok_or_else(|| bad("matrix element is not a number"))?;
        // JSON has no NaN/infinity, but an overflowing literal like
        // `1e999` still parses to infinity (and a finite `1e300`
        // overflows when narrowed to f32); enforce the documented
        // finite-floats-only invariant here rather than letting the
        // saturated value surface later as a code-range error.
        let f = n as f32;
        if !f.is_finite() {
            return Err(bad("matrix element is not finite"));
        }
        out.push(f);
    }
    Ok(Matrix::from_vec(rows, cols, out).expect("dims pre-checked against data length"))
}

/// Serializes a request to its single-line wire form (no newline).
pub fn encode_request(req: &Request) -> String {
    let value = match req {
        Request::Infer { model, payload } => json!({
            "verb": "infer",
            "model": model.clone(),
            "payload": payload_to_value(payload),
        }),
        Request::InferF32 { model, input } => json!({
            "verb": "infer",
            "model": model.clone(),
            "input": matrix_f32_to_value(input),
        }),
        Request::SessionOpen { model } => json!({
            "verb": "session_open",
            "model": model.clone(),
        }),
        Request::Decode { session, hidden } => json!({
            "verb": "decode",
            "session": *session,
            "hidden": matrix_f32_to_value(hidden),
        }),
        Request::SessionClose { session } => json!({
            "verb": "session_close",
            "session": *session,
        }),
        Request::Stats => json!({ "verb": "stats" }),
    };
    serde_json::to_string(&value).expect("shim serializer never fails")
}

/// Parses one request line.
///
/// # Errors
///
/// [`GatewayError::Protocol`] on malformed JSON, an unknown verb, or a
/// payload that is missing or malformed.
pub fn decode_request(line: &str) -> Result<Request, GatewayError> {
    let v = serde_json::from_str(line.trim()).map_err(|e| bad(format!("invalid JSON: {e}")))?;
    match str_field(&v, "verb")? {
        "infer" => {
            let model = str_field(&v, "model")?.to_string();
            match (v.get("payload"), v.get("input")) {
                (Some(payload), None) => Ok(Request::Infer {
                    model,
                    payload: value_to_payload(payload)?,
                }),
                (None, Some(input)) => Ok(Request::InferF32 {
                    model,
                    input: value_to_matrix_f32(input)?,
                }),
                (Some(_), Some(_)) => Err(bad("request carries both payload and input")),
                (None, None) => Err(bad("request carries neither payload nor input")),
            }
        }
        "session_open" => Ok(Request::SessionOpen {
            model: str_field(&v, "model")?.to_string(),
        }),
        "decode" => Ok(Request::Decode {
            session: u64_field(&v, "session")?,
            hidden: value_to_matrix_f32(field(&v, "hidden")?)?,
        }),
        "session_close" => Ok(Request::SessionClose {
            session: u64_field(&v, "session")?,
        }),
        "stats" => Ok(Request::Stats),
        other => Err(bad(format!("unknown verb {other:?}"))),
    }
}

fn shard_stats_to_value(s: &ShardStats) -> Value {
    json!({
        "requests": s.requests,
        "batches": s.batches,
        "columns": s.columns,
        "padded_cols": s.padded_cols,
        "padding_overhead": s.padding_overhead,
        "cancelled": s.cancelled,
        "columns_per_second": s.columns_per_second,
        "queued_cols": s.queued_cols,
        "in_flight_cols": s.in_flight_cols,
        "open_sessions": s.open_sessions,
        "kv_bytes": s.kv_bytes,
        "decode_steps": s.decode_steps,
        "decode_tokens": s.decode_tokens,
        "decode_batches": s.decode_batches,
        "decode_batch_occupancy": s.decode_batch_occupancy,
        "decode_padded_cols": s.decode_padded_cols,
    })
}

fn value_to_shard_stats(v: &Value) -> Result<ShardStats, GatewayError> {
    Ok(ShardStats {
        requests: u64_field(v, "requests")?,
        batches: u64_field(v, "batches")?,
        columns: u64_field(v, "columns")?,
        padded_cols: u64_field(v, "padded_cols")?,
        padding_overhead: f64_field(v, "padding_overhead")?,
        cancelled: u64_field(v, "cancelled")?,
        columns_per_second: f64_field(v, "columns_per_second")?,
        queued_cols: u64_field(v, "queued_cols")?,
        in_flight_cols: u64_field(v, "in_flight_cols")?,
        open_sessions: u64_field(v, "open_sessions")?,
        kv_bytes: u64_field(v, "kv_bytes")?,
        decode_steps: u64_field(v, "decode_steps")?,
        decode_tokens: u64_field(v, "decode_tokens")?,
        decode_batches: u64_field(v, "decode_batches")?,
        decode_batch_occupancy: f64_field(v, "decode_batch_occupancy")?,
        decode_padded_cols: u64_field(v, "decode_padded_cols")?,
    })
}

fn stats_to_value(stats: &GatewayStats) -> Value {
    json!({
        "ok": true,
        "kind": "stats",
        "shards": Value::Array(stats.shards.iter().map(shard_stats_to_value).collect()),
        "cache": json!({
            "hits": stats.cache.hits,
            "misses": stats.cache.misses,
            "evictions": stats.cache.evictions,
            "entries": stats.cache.entries,
        }),
        "admission": json!({
            "admitted": stats.admission.admitted,
            "rejected_capacity": stats.admission.rejected_capacity,
            "rejected_timeout": stats.admission.rejected_timeout,
            "in_flight": stats.admission.in_flight,
        }),
    })
}

fn value_to_stats(v: &Value) -> Result<GatewayStats, GatewayError> {
    let shards = field(v, "shards")?
        .as_array()
        .ok_or_else(|| bad("shards is not an array"))?
        .iter()
        .map(value_to_shard_stats)
        .collect::<Result<Vec<_>, _>>()?;
    let cache = field(v, "cache")?;
    let admission = field(v, "admission")?;
    Ok(GatewayStats {
        shards,
        cache: CacheStats {
            hits: u64_field(cache, "hits")?,
            misses: u64_field(cache, "misses")?,
            evictions: u64_field(cache, "evictions")?,
            entries: u64_field(cache, "entries")? as usize,
        },
        admission: AdmissionStats {
            admitted: u64_field(admission, "admitted")?,
            rejected_capacity: u64_field(admission, "rejected_capacity")?,
            rejected_timeout: u64_field(admission, "rejected_timeout")?,
            in_flight: usize_field(admission, "in_flight")?,
        },
    })
}

/// Serializes a response to its single-line wire form (no newline).
pub fn encode_response(resp: &Response) -> String {
    let value = match resp {
        Response::Infer(reply) => json!({
            "ok": true,
            "kind": "infer",
            "payload": payload_to_value(&reply.payload),
            "scale": reply.scale,
            "latency_us": reply.latency.as_micros() as u64,
            "shard": reply.shard,
            "cache_hit": reply.cache_hit,
        }),
        Response::SessionOpen(reply) => json!({
            "ok": true,
            "kind": "session_open",
            "session": reply.session,
            "shard": reply.shard,
        }),
        Response::Decode(reply) => json!({
            "ok": true,
            "kind": "decode",
            "hidden": matrix_f32_to_value(&reply.hidden),
            "tokens": reply.tokens,
            "shard": reply.shard,
            "latency_us": reply.latency.as_micros() as u64,
        }),
        Response::SessionClose(reply) => json!({
            "ok": true,
            "kind": "session_close",
            "session": reply.session,
            "tokens": reply.tokens,
        }),
        Response::Stats(stats) => stats_to_value(stats),
        Response::Error { kind, message } => json!({
            "ok": false,
            "error": kind.as_str(),
            "message": message.clone(),
        }),
    };
    serde_json::to_string(&value).expect("shim serializer never fails")
}

/// Parses one response line.
///
/// # Errors
///
/// [`GatewayError::Protocol`] on malformed JSON or an unknown response
/// kind.
pub fn decode_response(line: &str) -> Result<Response, GatewayError> {
    let v = serde_json::from_str(line.trim()).map_err(|e| bad(format!("invalid JSON: {e}")))?;
    let ok = field(&v, "ok")?
        .as_bool()
        .ok_or_else(|| bad("field \"ok\" is not a boolean"))?;
    if !ok {
        return Ok(Response::Error {
            kind: ErrorKind::from_str(str_field(&v, "error")?),
            message: str_field(&v, "message")?.to_string(),
        });
    }
    match str_field(&v, "kind")? {
        "infer" => Ok(Response::Infer(InferReply {
            payload: value_to_payload(field(&v, "payload")?)?,
            scale: f64_field(&v, "scale")?,
            latency: Duration::from_micros(u64_field(&v, "latency_us")?),
            shard: usize_field(&v, "shard")?,
            cache_hit: field(&v, "cache_hit")?
                .as_bool()
                .ok_or_else(|| bad("field \"cache_hit\" is not a boolean"))?,
        })),
        "session_open" => Ok(Response::SessionOpen(SessionOpenReply {
            session: u64_field(&v, "session")?,
            shard: usize_field(&v, "shard")?,
        })),
        "decode" => Ok(Response::Decode(DecodeReply {
            hidden: value_to_matrix_f32(field(&v, "hidden")?)?,
            tokens: usize_field(&v, "tokens")?,
            shard: usize_field(&v, "shard")?,
            latency: Duration::from_micros(u64_field(&v, "latency_us")?),
        })),
        "session_close" => Ok(Response::SessionClose(SessionCloseReply {
            session: u64_field(&v, "session")?,
            tokens: usize_field(&v, "tokens")?,
        })),
        "stats" => Ok(Response::Stats(value_to_stats(&v)?)),
        other => Err(bad(format!("unknown response kind {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes() -> Matrix<i32> {
        Matrix::from_fn(3, 2, |r, c| (r as i32 - 1) * 100 + c as i32)
    }

    #[test]
    fn infer_request_round_trips_codes_bit_exactly() {
        let req = Request::Infer {
            model: "block0.fc2".to_string(),
            payload: Payload::Codes(codes()),
        };
        let line = encode_request(&req);
        assert!(!line.contains('\n'));
        assert_eq!(decode_request(&line).unwrap(), req);
    }

    #[test]
    fn infer_f32_request_round_trips() {
        let input = Matrix::from_fn(2, 2, |r, c| 0.25 * (r as f32) - 1.5 * (c as f32));
        let req = Request::InferF32 {
            model: "m".to_string(),
            input,
        };
        assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);
    }

    #[test]
    fn hidden_payload_round_trips_floats_bit_exactly() {
        // Awkward but finite values: subnormals, negative zero, and
        // shortest-round-trip-sensitive fractions must all survive.
        let hidden =
            Matrix::from_vec(2, 2, vec![0.1f32, -0.0, f32::MIN_POSITIVE, -1.5e-38]).unwrap();
        let req = Request::Infer {
            model: "decoder".to_string(),
            payload: Payload::Hidden(hidden.clone()),
        };
        let Request::Infer {
            payload: Payload::Hidden(back),
            ..
        } = decode_request(&encode_request(&req)).unwrap()
        else {
            panic!("wrong verb or payload kind");
        };
        for (a, b) in hidden.iter().zip(back.iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "f32 mangled on the wire");
        }
    }

    #[test]
    fn session_requests_round_trip() {
        for req in [
            Request::SessionOpen {
                model: "decoder".to_string(),
            },
            Request::Decode {
                // A large but f64-exact id: JSON numbers are f64, and
                // session ids are sequential from 1, so every real id
                // is exactly representable on the wire.
                session: 1u64 << 52,
                hidden: Matrix::from_vec(2, 1, vec![0.5f32, -1.25]).unwrap(),
            },
            Request::SessionClose { session: 7 },
        ] {
            assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);
        }
    }

    #[test]
    fn session_responses_round_trip() {
        for resp in [
            Response::SessionOpen(SessionOpenReply {
                session: 42,
                shard: 1,
            }),
            Response::Decode(DecodeReply {
                hidden: Matrix::from_vec(1, 2, vec![0.25f32, -3.5]).unwrap(),
                tokens: 17,
                shard: 0,
                latency: Duration::from_micros(88),
            }),
            Response::SessionClose(SessionCloseReply {
                session: 42,
                tokens: 17,
            }),
        ] {
            assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
        }
    }

    #[test]
    fn hidden_requests_reject_non_finite_elements() {
        let line = "{\"verb\":\"infer\",\"model\":\"m\",\"payload\":{\"kind\":\"hidden\",\"rows\":1,\"cols\":1,\"data\":[1e999]}}";
        assert!(decode_request(line).is_err());
        let line =
            "{\"verb\":\"decode\",\"session\":1,\"hidden\":{\"rows\":1,\"cols\":1,\"data\":[1e999]}}";
        assert!(decode_request(line).is_err());
    }

    #[test]
    fn stats_request_round_trips() {
        assert_eq!(
            decode_request(&encode_request(&Request::Stats)).unwrap(),
            Request::Stats
        );
    }

    #[test]
    fn infer_response_round_trips_both_kinds() {
        let resp = Response::Infer(InferReply {
            payload: Payload::Codes(codes()),
            scale: 1.25e-3,
            latency: Duration::from_micros(417),
            shard: 1,
            cache_hit: true,
        });
        assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
        let resp = Response::Infer(InferReply {
            payload: Payload::Hidden(Matrix::from_vec(1, 3, vec![0.25, -3.5, 1e-20]).unwrap()),
            scale: 1.0,
            latency: Duration::from_micros(99),
            shard: 0,
            cache_hit: false,
        });
        assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
    }

    #[test]
    fn stats_response_round_trips() {
        let resp = Response::Stats(GatewayStats {
            shards: vec![
                ShardStats {
                    requests: 10,
                    batches: 3,
                    columns: 40,
                    padded_cols: 2,
                    padding_overhead: 2.0 / 42.0,
                    cancelled: 1,
                    columns_per_second: 1234.5,
                    queued_cols: 4,
                    in_flight_cols: 8,
                    open_sessions: 3,
                    kv_bytes: 12288,
                    decode_steps: 9,
                    decode_tokens: 21,
                    decode_batches: 4,
                    decode_batch_occupancy: 2.25,
                    decode_padded_cols: 5,
                },
                ShardStats::default(),
            ],
            cache: CacheStats {
                hits: 5,
                misses: 7,
                evictions: 1,
                entries: 6,
            },
            admission: AdmissionStats {
                admitted: 12,
                rejected_capacity: 2,
                rejected_timeout: 1,
                in_flight: 3,
            },
        });
        assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
    }

    #[test]
    fn error_response_round_trips_kind() {
        for kind in [ErrorKind::Overloaded, ErrorKind::UnknownSession] {
            let resp = Response::Error {
                kind,
                message: "nope".to_string(),
            };
            assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
        }
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for line in [
            "",
            "not json",
            "{}",
            "{\"verb\":\"launch\"}",
            "{\"verb\":\"infer\",\"model\":\"m\"}",
            "{\"verb\":\"infer\",\"model\":\"m\",\"payload\":{\"rows\":1,\"cols\":1,\"data\":[1]}}",
            "{\"verb\":\"infer\",\"model\":\"m\",\"payload\":{\"kind\":\"zap\",\"rows\":1,\"cols\":1,\"data\":[1]}}",
            "{\"verb\":\"infer\",\"model\":\"m\",\"payload\":{\"kind\":\"codes\",\"rows\":2,\"cols\":2,\"data\":[1]}}",
            "{\"verb\":\"infer\",\"model\":\"m\",\"payload\":{\"kind\":\"codes\",\"rows\":1,\"cols\":1,\"data\":[1.5]}}",
            "{\"verb\":\"decode\",\"hidden\":{\"rows\":1,\"cols\":1,\"data\":[1]}}",
            "{\"verb\":\"session_open\"}",
            "{\"verb\":\"session_close\"}",
            // rows*cols overflows usize: must be a clean protocol error,
            // not a multiplication overflow inside Matrix::from_vec.
            "{\"verb\":\"infer\",\"model\":\"m\",\"payload\":{\"kind\":\"codes\",\"rows\":4294967296,\"cols\":4294967296,\"data\":[]}}",
        ] {
            assert!(decode_request(line).is_err(), "accepted {line:?}");
        }
    }

    #[test]
    fn non_finite_float_payloads_are_rejected_on_decode() {
        // 1e999 parses to f64 infinity; 1e300 is a finite f64 that
        // overflows when narrowed to f32. Both must fail with the
        // finiteness error, not leak into quantization.
        for datum in ["1e999", "-1e999", "1e300"] {
            let line = format!(
                "{{\"verb\":\"infer\",\"model\":\"m\",\"input\":{{\"rows\":1,\"cols\":1,\"data\":[{datum}]}}}}"
            );
            let err = decode_request(&line).expect_err("accepted non-finite element");
            assert!(
                err.to_string().contains("not finite"),
                "wrong error for {datum}: {err}"
            );
        }
    }

    #[test]
    fn i32_extremes_survive_the_wire() {
        let m = Matrix::from_vec(1, 4, vec![i32::MIN, -1, 1, i32::MAX]).unwrap();
        let req = Request::Infer {
            model: "m".to_string(),
            payload: Payload::Codes(m.clone()),
        };
        let Request::Infer { payload, .. } = decode_request(&encode_request(&req)).unwrap() else {
            panic!("wrong verb");
        };
        assert_eq!(payload, Payload::Codes(m));
    }

    #[test]
    fn reply_to_f32_applies_scale_only_to_codes() {
        let reply = InferReply {
            payload: Payload::Codes(Matrix::from_vec(1, 2, vec![4, -8]).unwrap()),
            scale: 0.5,
            latency: Duration::ZERO,
            shard: 0,
            cache_hit: false,
        };
        assert_eq!(reply.to_f32().as_slice(), &[2.0, -4.0]);
        let hidden = Matrix::from_vec(1, 2, vec![1.5f32, -0.25]).unwrap();
        let reply = InferReply {
            payload: Payload::Hidden(hidden.clone()),
            scale: 0.5, // ignored for hidden results
            latency: Duration::ZERO,
            shard: 0,
            cache_hit: false,
        };
        assert_eq!(reply.to_f32(), hidden);
    }
}
