//! The gateway wire protocol: line-delimited JSON over TCP.
//!
//! Every message is one JSON object on one line. Requests carry a
//! `verb`:
//!
//! * `"infer"` — one **typed** stateless inference. The payload object
//!   carries its own domain tag (`{"kind": "codes" | "hidden", ...}`),
//!   mirroring [`panacea_serve::Payload`] exactly; alternatively an
//!   `input` float matrix asks the server to convert into the model's
//!   native payload (quantize for chains, pass through for blocks).
//! * `"session_open"` / `"decode"` / `"session_close"` — the stateful
//!   decode-session surface: open pins a session (and its KV cache) to
//!   a shard, decode advances it by one or more token columns, close
//!   frees it.
//! * `"stats"` — gateway counters, including per-shard session counts
//!   and resident KV bytes, plus `uptime_ms` and a monotonic snapshot
//!   `seq`.
//! * `"metrics"` — per-stage latency quantile summaries
//!   (count/sum/p50/p90/p99/max per stage) for the gateway's
//!   connection-handling stages, every shard's serving stages, and the
//!   block engine's sub-layer stages.
//! * `"trace"` — recorded request traces as structured span lists
//!   (id/parent/stage/start_us/dur_us). An optional `kind` field picks
//!   the ring: `"slow"` (default — pinned slow-request traces) or
//!   `"recent"` (the most recent traces regardless of duration).
//! * `"health"` — the gateway's SLO verdict: per-target burn rates over
//!   sliding windows plus an overall `ok`/`degraded`/`critical` status.
//! * `"events"` — the flight recorder: recent structured operational
//!   events (seq/unix_ms/severity/kind/detail, newest first) plus the
//!   pinned incident snapshot (events + slow traces + dims frozen when
//!   SLO health last flipped to degraded/critical), or `null` if health
//!   never flipped.
//!
//! Matrices travel as `{"rows": R, "cols": C, "data": [row-major…]}`.
//! Integer payloads round-trip bit-exactly (JSON numbers are `f64`,
//! which represents every `i32`); finite float payloads round-trip
//! exactly too because the writer emits shortest-round-trip decimal
//! forms. JSON has no NaN/infinity, so non-finite floats do not survive
//! the wire — [`GatewayClient`](crate::GatewayClient) rejects them
//! before sending and the server rejects them on decode.

use std::time::Duration;

use panacea_netcore::ConnectionStats;
use panacea_serve::Payload;
use panacea_telemetry::{
    Event, EventSeverity, HealthReport, IncidentSnapshot, MetricKey, SloStatus, TargetReport,
};
use panacea_tensor::Matrix;
use serde_json::{json, Value};

use crate::admission::AdmissionStats;
use crate::cache::CacheStats;
use crate::GatewayError;

/// A decoded client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run one stateless inference on a typed payload: codes for a
    /// linear chain, hidden states for a transformer-block model (the
    /// columns form one attention sequence). A payload of the wrong
    /// kind for the model is rejected by validation — there are no
    /// per-kind verbs.
    Infer {
        /// Registered model name.
        model: String,
        /// The typed activation payload.
        payload: Payload,
        /// Optional deadline budget in milliseconds, measured from the
        /// moment the gateway decodes the request. Work that cannot
        /// start (admission, queueing) before the budget elapses is
        /// answered `deadline_exceeded` instead of served late; absent
        /// means wait indefinitely (bounded only by server policy).
        deadline_ms: Option<u64>,
    },
    /// Convenience form of `infer`: float activations the server
    /// converts into the model's native payload (quantizes for chains,
    /// passes through for block models).
    InferF32 {
        /// Registered model name.
        model: String,
        /// Float activations (`K × N`).
        input: Matrix<f32>,
        /// Optional deadline budget in milliseconds (see
        /// [`Request::Infer::deadline_ms`]).
        deadline_ms: Option<u64>,
    },
    /// Open a decode session on a transformer-block model. The session
    /// starts empty; its prefix arrives through `Decode` steps.
    SessionOpen {
        /// Registered model name.
        model: String,
    },
    /// Advance a decode session by one or more new token columns.
    Decode {
        /// Session id from `SessionOpen`.
        session: u64,
        /// New hidden-state columns (`d_model × t_new`).
        hidden: Matrix<f32>,
        /// Optional deadline budget in milliseconds (see
        /// [`Request::Infer::deadline_ms`]). An expired step leaves the
        /// session itself untouched — only that step is refused.
        deadline_ms: Option<u64>,
    },
    /// Close a decode session, freeing its KV state.
    SessionClose {
        /// Session id from `SessionOpen`.
        session: u64,
    },
    /// Fetch gateway-level metrics.
    Stats,
    /// Fetch per-stage latency quantile summaries (gateway stages,
    /// per-shard serving stages, block sub-layer stages).
    Metrics,
    /// Fetch recorded request traces as span trees.
    Trace {
        /// Maximum number of traces to return (newest first).
        limit: usize,
        /// Which trace ring to read; defaults to [`TraceKind::Slow`]
        /// when the wire field is absent.
        kind: TraceKind,
    },
    /// Fetch the gateway's SLO health verdict.
    Health,
    /// Fetch recent flight-recorder events plus the pinned incident
    /// snapshot (if SLO health ever flipped to degraded/critical).
    Events {
        /// Maximum number of events to return (newest first).
        limit: usize,
    },
}

/// Which trace ring a `trace` request reads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum TraceKind {
    /// Pinned slow-request traces (over the configured threshold).
    #[default]
    Slow,
    /// The most recent traces regardless of duration.
    Recent,
}

impl TraceKind {
    /// Wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceKind::Slow => "slow",
            TraceKind::Recent => "recent",
        }
    }

    fn parse(s: &str) -> Result<Self, GatewayError> {
        match s {
            "slow" => Ok(TraceKind::Slow),
            "recent" => Ok(TraceKind::Recent),
            other => Err(bad(format!("unknown trace kind {other:?}"))),
        }
    }
}

/// A successful `infer` response.
#[derive(Debug, Clone, PartialEq)]
pub struct InferReply {
    /// The typed result, bit-identical to running the request directly
    /// on a [`panacea_serve::Runtime`]: final integer accumulators
    /// ([`Payload::Codes`]) for chains, output hidden states
    /// ([`Payload::Hidden`]) for block models.
    pub payload: Payload,
    /// Scale converting code accumulators to floats; `1.0` for hidden
    /// results.
    pub scale: f64,
    /// Gateway-measured request latency (decode to response, excluding
    /// network time).
    pub latency: Duration,
    /// The shard that served (or would have served) the request.
    pub shard: usize,
    /// Whether the response was replayed from the request cache.
    pub cache_hit: bool,
}

impl InferReply {
    /// The float view of the result: dequantized accumulators for
    /// chains, the hidden states themselves for block models.
    pub fn to_f32(&self) -> Matrix<f32> {
        match &self.payload {
            Payload::Codes(acc) => acc.map(|&v| (f64::from(v) * self.scale) as f32),
            Payload::Hidden(h) => h.clone(),
        }
    }
}

/// A successful `session_open` response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionOpenReply {
    /// The process-unique session id to decode against.
    pub session: u64,
    /// The shard holding the session's KV state — every decode step
    /// for this session executes there (session affinity).
    pub shard: usize,
}

/// A successful `decode` response.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeReply {
    /// Output hidden states for the new tokens (`d_model × t_new`),
    /// bit-identical to a full causal recompute of the session's whole
    /// prefix.
    pub hidden: Matrix<f32>,
    /// Total tokens resident in the session after this step.
    pub tokens: usize,
    /// The shard holding the session.
    pub shard: usize,
    /// Gateway-measured step latency.
    pub latency: Duration,
}

/// A successful `session_close` response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionCloseReply {
    /// The closed session's id.
    pub session: u64,
    /// Tokens the session had decoded when it closed.
    pub tokens: usize,
}

/// Machine-readable category of an error response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Admission control shed the request (or the KV byte budget is
    /// exhausted); retry after backing off.
    Overloaded,
    /// The model name is not registered on this gateway.
    UnknownModel,
    /// The addressed decode session does not exist — never opened,
    /// closed, or evicted (idle timeout / byte budget). Open a fresh
    /// session and replay the prefix.
    UnknownSession,
    /// The request itself is invalid (payload kind, shape, code range,
    /// empty payload).
    BadRequest,
    /// The request's deadline elapsed before it could be served; the
    /// work was dropped, not executed late. Retrying is safe for
    /// stateless verbs.
    DeadlineExceeded,
    /// The gateway is shutting down.
    ShuttingDown,
    /// Unexpected server-side failure.
    Internal,
}

impl ErrorKind {
    fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::UnknownModel => "unknown_model",
            ErrorKind::UnknownSession => "unknown_session",
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::DeadlineExceeded => "deadline_exceeded",
            ErrorKind::ShuttingDown => "shutting_down",
            ErrorKind::Internal => "internal",
        }
    }

    fn from_str(s: &str) -> Self {
        match s {
            "overloaded" => ErrorKind::Overloaded,
            "unknown_model" => ErrorKind::UnknownModel,
            "unknown_session" => ErrorKind::UnknownSession,
            "bad_request" => ErrorKind::BadRequest,
            "deadline_exceeded" => ErrorKind::DeadlineExceeded,
            "shutting_down" => ErrorKind::ShuttingDown,
            _ => ErrorKind::Internal,
        }
    }
}

impl std::fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Point-in-time serving counters for one shard, as reported by the
/// `stats` verb.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ShardStats {
    /// Requests completed by this shard.
    pub requests: u64,
    /// Batches dispatched by this shard.
    pub batches: u64,
    /// Activation columns served by this shard.
    pub columns: u64,
    /// Columns zero-padded to the PE vector width.
    pub padded_cols: u64,
    /// Fraction of executed GEMM columns that were zero padding
    /// (`padded / (served + padded)`).
    pub padding_overhead: f64,
    /// Queued requests dropped before execution because their caller
    /// stopped waiting (e.g. shed by admission control).
    pub cancelled: u64,
    /// Served columns per second of worker compute time.
    pub columns_per_second: f64,
    /// Columns waiting in this shard's queue right now.
    pub queued_cols: u64,
    /// Columns claimed by workers but not yet answered.
    pub in_flight_cols: u64,
    /// Decode sessions currently pinned to this shard.
    pub open_sessions: u64,
    /// KV-cache bytes resident for those sessions.
    pub kv_bytes: u64,
    /// Decode steps this shard has executed.
    pub decode_steps: u64,
    /// Tokens this shard has decoded across all sessions.
    pub decode_tokens: u64,
    /// Fused continuous-batching decode passes this shard has run.
    pub decode_batches: u64,
    /// Average decode steps per fused pass (`decode_steps /
    /// decode_batches`; `> 1` means concurrent sessions shared GEMM
    /// passes). Zero before any fused pass.
    pub decode_batch_occupancy: f64,
    /// Columns the fused decode passes zero-padded to the PE vector
    /// width.
    pub decode_padded_cols: u64,
    /// Panics caught and isolated on this shard's execution paths
    /// (batch workers, fused decode passes, inline steps).
    pub worker_panics: u64,
    /// Decode sessions evicted because a panic died inside their own
    /// step.
    pub evicted_poisoned: u64,
    /// Requests and decode steps answered `deadline_exceeded` at
    /// dequeue instead of executed.
    pub expired: u64,
}

/// Overload sheds broken down by which bound rejected the request, as
/// reported by the `stats` verb. Unlike the admission controller's own
/// counters, these are counted where errors surface at the gateway's
/// public verbs, so KV-budget rejections (which never pass through
/// admission) are visible too.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShedStats {
    /// Sheds because the in-flight limit was reached.
    pub in_flight: u64,
    /// Sheds because the queue-wait bound elapsed.
    pub queue_wait: u64,
    /// Sheds because a decode step could not fit the KV byte budget.
    pub kv_budget: u64,
}

impl ShedStats {
    /// Total sheds across every reason.
    pub fn total(&self) -> u64 {
        self.in_flight + self.queue_wait + self.kv_budget
    }
}

/// Gateway-level metrics bundle returned by the `stats` verb.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GatewayStats {
    /// Per-shard serving counters, indexed by shard id.
    pub shards: Vec<ShardStats>,
    /// Request-cache counters.
    pub cache: CacheStats,
    /// Admission-control counters.
    pub admission: AdmissionStats,
    /// Overload sheds by reason, counted at the gateway's public verbs.
    pub sheds: ShedStats,
    /// Transport-level connection gauges (open, peak, evicted),
    /// whichever io model is serving.
    pub connections: ConnectionStats,
    /// Milliseconds since the gateway started.
    pub uptime_ms: u64,
    /// Monotonic snapshot sequence number: strictly increases with
    /// every `stats` or `metrics` snapshot the gateway assembles, so
    /// scrapers can order and dedupe snapshots.
    pub seq: u64,
}

/// Quantile summary of one stage's latency histogram, as reported by
/// the `metrics` verb. Values are in the histogram's native unit —
/// nanoseconds for duration stages, raw counts for occupancy stages
/// (`decode_occupancy`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageSummary {
    /// Stage name (e.g. `"queue_wait"`, `"decode_pass"`, `"block_qkv"`).
    pub stage: String,
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Estimated 50th-percentile sample (upper bucket bound).
    pub p50: u64,
    /// Estimated 90th-percentile sample.
    pub p90: u64,
    /// Estimated 99th-percentile sample.
    pub p99: u64,
    /// Exact maximum sample.
    pub max: u64,
}

impl StageSummary {
    /// Summarizes one named histogram snapshot.
    pub fn from_snapshot(stage: &str, snap: &panacea_telemetry::HistogramSnapshot) -> Self {
        StageSummary {
            stage: stage.to_string(),
            count: snap.count,
            sum: snap.sum,
            p50: snap.p50(),
            p90: snap.p90(),
            p99: snap.p99(),
            max: snap.max,
        }
    }
}

/// One dimension's windowed summary — quantiles and outcome counts for
/// a (model, verb, stage) cell over the metrics window — as reported by
/// the `metrics` verb. Latency values are in microseconds.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DimSummary {
    /// Model name the cell is keyed by.
    pub model: String,
    /// Wire verb or internal path ("infer", "decode", "batch", …).
    pub verb: String,
    /// Pipeline stage ("request", "execute", "step", "fused_pass", …).
    pub stage: String,
    /// Latency samples in the window.
    pub count: u64,
    /// Estimated windowed p50 latency (µs).
    pub p50_us: u64,
    /// Estimated windowed p90 latency (µs).
    pub p90_us: u64,
    /// Estimated windowed p99 latency (µs).
    pub p99_us: u64,
    /// Windowed maximum latency (µs).
    pub max_us: u64,
    /// Successful outcomes in the window.
    pub ok: u64,
    /// Failed outcomes in the window (excluding sheds).
    pub error: u64,
    /// Shed (overload-rejected) outcomes in the window.
    pub shed: u64,
}

impl DimSummary {
    /// Summarizes one dimension's window (nanosecond latencies → µs).
    pub fn from_window(key: &MetricKey, w: &panacea_telemetry::DimWindow) -> Self {
        DimSummary {
            model: key.model.clone(),
            verb: key.verb.clone(),
            stage: key.stage.clone(),
            count: w.latency.count,
            p50_us: w.latency.p50() / 1_000,
            p90_us: w.latency.p90() / 1_000,
            p99_us: w.latency.p99() / 1_000,
            max_us: w.latency.max / 1_000,
            ok: w.ok,
            error: w.error,
            shed: w.shed,
        }
    }
}

/// Per-stage latency quantiles returned by the `metrics` verb.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GatewayMetrics {
    /// Milliseconds since the gateway started.
    pub uptime_ms: u64,
    /// Monotonic snapshot sequence number (shared counter with the
    /// `stats` verb).
    pub seq: u64,
    /// Gateway connection-handling stages: `parse`, `cache_probe`,
    /// `admission_wait`, `route`, `execute`.
    pub gateway: Vec<StageSummary>,
    /// Per-shard serving stages (`queue_wait`, `batch_form`, `execute`,
    /// `split_back`, `step`, `decode_linger`, `decode_pass`,
    /// `decode_occupancy`), indexed by shard id.
    pub shards: Vec<Vec<StageSummary>>,
    /// Process-global block sub-layer stages (`block_qkv`,
    /// `block_attn`, `block_proj`, `block_fc1`, `block_fc2`).
    pub block: Vec<StageSummary>,
    /// The sliding window the dimensional summaries cover, in ms.
    pub dims_window_ms: u64,
    /// Windowed dimensional summaries, sorted by (model, verb, stage).
    pub dims: Vec<DimSummary>,
}

/// One span of a recorded trace, as reported by the `trace` verb.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanSummary {
    /// Span id, unique within the trace; the root span is id 0.
    pub id: u64,
    /// Parent span id; `None` only for the root span.
    pub parent: Option<u64>,
    /// Stage tag (the request verb for the root span).
    pub stage: String,
    /// Microseconds from trace start to span start.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
    /// Trace ids of other requests that shared the work this span
    /// covers (e.g. the batchmates of a fused decode pass). Empty for
    /// exclusive spans.
    pub links: Vec<u64>,
}

/// One recorded request trace, as reported by the `trace` verb.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Process-unique trace id.
    pub id: u64,
    /// The request verb the trace covers.
    pub verb: String,
    /// Total request duration in microseconds.
    pub total_us: u64,
    /// Wall-clock anchor: milliseconds since the Unix epoch at trace
    /// begin, so traces correlate with logs and flight-recorder events.
    pub unix_ms: u64,
    /// The spans, in creation order; span 0 is the root.
    pub spans: Vec<SpanSummary>,
}

impl From<&panacea_telemetry::Trace> for TraceSummary {
    fn from(t: &panacea_telemetry::Trace) -> Self {
        TraceSummary {
            id: t.id.get(),
            verb: t.verb.to_string(),
            total_us: t.total_us,
            unix_ms: t.unix_ms,
            spans: t
                .spans
                .iter()
                .map(|s| SpanSummary {
                    id: s.id,
                    parent: s.parent,
                    stage: s.stage.to_string(),
                    start_us: s.start_us,
                    dur_us: s.dur_us,
                    links: s.links.clone(),
                })
                .collect(),
        }
    }
}

/// Slow-request traces returned by the `trace` verb, newest first.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceReply {
    /// The pinned slow traces.
    pub traces: Vec<TraceSummary>,
}

/// One flight-recorder event, as reported by the `events` verb.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventSummary {
    /// Monotone sequence number; total order across the process.
    pub seq: u64,
    /// Wall-clock anchor, milliseconds since the Unix epoch.
    pub unix_ms: u64,
    /// Severity: `"info"`, `"warn"`, or `"error"`.
    pub severity: String,
    /// Event taxonomy tag, e.g. `"session_open"`, `"shed"`,
    /// `"health_transition"`.
    pub kind: String,
    /// Free-form details: the model, the reason, the counts.
    pub detail: String,
}

impl From<&Event> for EventSummary {
    fn from(e: &Event) -> Self {
        EventSummary {
            seq: e.seq,
            unix_ms: e.unix_ms,
            severity: e.severity.as_str().to_string(),
            kind: e.kind.to_string(),
            detail: e.detail.clone(),
        }
    }
}

/// The diagnostic snapshot pinned when SLO health flipped to
/// degraded/critical, as reported by the `events` verb.
#[derive(Debug, Clone, PartialEq)]
pub struct IncidentSummary {
    /// When the flip was observed, milliseconds since the Unix epoch.
    pub unix_ms: u64,
    /// The status health flipped *to*.
    pub status: SloStatus,
    /// Recent flight-recorder events at the flip, newest first.
    pub events: Vec<EventSummary>,
    /// Pinned slow traces at the flip, newest first.
    pub traces: Vec<TraceSummary>,
    /// The windowed dims frozen at the flip, sorted by key.
    pub dims: Vec<DimSummary>,
}

impl From<&IncidentSnapshot> for IncidentSummary {
    fn from(s: &IncidentSnapshot) -> Self {
        IncidentSummary {
            unix_ms: s.unix_ms,
            status: s.status,
            events: s.events.iter().map(EventSummary::from).collect(),
            traces: s.traces.iter().map(TraceSummary::from).collect(),
            dims: s
                .dims
                .iter()
                .map(|(key, w)| DimSummary::from_window(key, w))
                .collect(),
        }
    }
}

/// Flight-recorder state returned by the `events` verb.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventsReply {
    /// Recent events, newest first, up to the request's limit.
    pub events: Vec<EventSummary>,
    /// The pinned incident snapshot; `None` if health never flipped.
    pub pinned: Option<IncidentSummary>,
}

/// A decoded server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Successful typed inference.
    Infer(InferReply),
    /// Decode session opened.
    SessionOpen(SessionOpenReply),
    /// Decode step served.
    Decode(DecodeReply),
    /// Decode session closed.
    SessionClose(SessionCloseReply),
    /// Metrics snapshot.
    Stats(GatewayStats),
    /// Per-stage latency quantile summaries.
    Metrics(GatewayMetrics),
    /// Recorded request trace span trees.
    Trace(TraceReply),
    /// SLO health verdict.
    Health(HealthReport),
    /// Flight-recorder events plus the pinned incident snapshot.
    Events(EventsReply),
    /// The request failed; `kind` says how, `message` says why.
    Error {
        /// Machine-readable category.
        kind: ErrorKind,
        /// Human-readable detail.
        message: String,
    },
}

fn matrix_f32_to_value(m: &Matrix<f32>) -> Value {
    json!({
        "rows": m.rows(),
        "cols": m.cols(),
        "data": Value::Array(m.iter().map(|&v| Value::from(v)).collect()),
    })
}

fn payload_to_value(p: &Payload) -> Value {
    match p {
        Payload::Codes(m) => json!({
            "kind": "codes",
            "rows": m.rows(),
            "cols": m.cols(),
            "data": Value::Array(m.iter().map(|&v| Value::from(v)).collect()),
        }),
        Payload::Hidden(m) => json!({
            "kind": "hidden",
            "rows": m.rows(),
            "cols": m.cols(),
            "data": Value::Array(m.iter().map(|&v| Value::from(v)).collect()),
        }),
    }
}

fn value_to_payload(v: &Value) -> Result<Payload, GatewayError> {
    match str_field(v, "kind")? {
        "codes" => Ok(Payload::Codes(value_to_matrix_i32(v)?)),
        "hidden" => Ok(Payload::Hidden(value_to_matrix_f32(v)?)),
        other => Err(bad(format!("unknown payload kind {other:?}"))),
    }
}

fn bad(msg: impl Into<String>) -> GatewayError {
    GatewayError::Protocol(msg.into())
}

fn field<'a>(v: &'a Value, key: &str) -> Result<&'a Value, GatewayError> {
    v.get(key)
        .ok_or_else(|| bad(format!("missing field {key:?}")))
}

fn usize_field(v: &Value, key: &str) -> Result<usize, GatewayError> {
    field(v, key)?
        .as_u64()
        .map(|x| x as usize)
        .ok_or_else(|| bad(format!("field {key:?} is not a non-negative integer")))
}

fn u64_field(v: &Value, key: &str) -> Result<u64, GatewayError> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| bad(format!("field {key:?} is not a non-negative integer")))
}

fn f64_field(v: &Value, key: &str) -> Result<f64, GatewayError> {
    field(v, key)?
        .as_f64()
        .ok_or_else(|| bad(format!("field {key:?} is not a number")))
}

fn str_field<'a>(v: &'a Value, key: &str) -> Result<&'a str, GatewayError> {
    field(v, key)?
        .as_str()
        .ok_or_else(|| bad(format!("field {key:?} is not a string")))
}

/// Guards the untrusted `rows`/`cols` pair: their product must be
/// computable without overflow *and* match the element count, so a
/// hostile header like `rows=cols=2^32` fails cleanly here instead of
/// overflowing inside `Matrix::from_vec`.
fn check_dims(rows: usize, cols: usize, len: usize) -> Result<(), GatewayError> {
    match rows.checked_mul(cols) {
        Some(n) if n == len => Ok(()),
        Some(_) => Err(bad("matrix data length does not match rows*cols")),
        None => Err(bad("matrix dimensions overflow")),
    }
}

fn value_to_matrix_i32(v: &Value) -> Result<Matrix<i32>, GatewayError> {
    let rows = usize_field(v, "rows")?;
    let cols = usize_field(v, "cols")?;
    let data = field(v, "data")?
        .as_array()
        .ok_or_else(|| bad("matrix data is not an array"))?;
    check_dims(rows, cols, data.len())?;
    let mut out = Vec::with_capacity(data.len());
    for item in data {
        let n = item
            .as_i64()
            .ok_or_else(|| bad("matrix element is not an integer"))?;
        let n = i32::try_from(n).map_err(|_| bad("matrix element exceeds i32 range"))?;
        out.push(n);
    }
    Ok(Matrix::from_vec(rows, cols, out).expect("dims pre-checked against data length"))
}

fn value_to_matrix_f32(v: &Value) -> Result<Matrix<f32>, GatewayError> {
    let rows = usize_field(v, "rows")?;
    let cols = usize_field(v, "cols")?;
    let data = field(v, "data")?
        .as_array()
        .ok_or_else(|| bad("matrix data is not an array"))?;
    check_dims(rows, cols, data.len())?;
    let mut out = Vec::with_capacity(data.len());
    for item in data {
        let n = item
            .as_f64()
            .ok_or_else(|| bad("matrix element is not a number"))?;
        // JSON has no NaN/infinity, but an overflowing literal like
        // `1e999` still parses to infinity (and a finite `1e300`
        // overflows when narrowed to f32); enforce the documented
        // finite-floats-only invariant here rather than letting the
        // saturated value surface later as a code-range error.
        let f = n as f32;
        if !f.is_finite() {
            return Err(bad("matrix element is not finite"));
        }
        out.push(f);
    }
    Ok(Matrix::from_vec(rows, cols, out).expect("dims pre-checked against data length"))
}

/// Attaches the optional `deadline_ms` wire field; absent deadlines
/// stay off the wire so pre-deadline peers parse unchanged.
fn with_deadline(mut value: Value, deadline_ms: Option<u64>) -> Value {
    if let Some(ms) = deadline_ms {
        if let Value::Object(map) = &mut value {
            map.insert("deadline_ms".to_string(), Value::from(ms));
        }
    }
    value
}

/// Reads the optional `deadline_ms` field (absent or `null` means no
/// deadline).
fn opt_deadline_ms(v: &Value) -> Result<Option<u64>, GatewayError> {
    match v.get("deadline_ms") {
        None | Some(Value::Null) => Ok(None),
        Some(x) => x
            .as_u64()
            .map(Some)
            .ok_or_else(|| bad("field \"deadline_ms\" is not a non-negative integer")),
    }
}

/// Serializes a request to its single-line wire form (no newline).
pub fn encode_request(req: &Request) -> String {
    let value = match req {
        Request::Infer {
            model,
            payload,
            deadline_ms,
        } => with_deadline(
            json!({
                "verb": "infer",
                "model": model.clone(),
                "payload": payload_to_value(payload),
            }),
            *deadline_ms,
        ),
        Request::InferF32 {
            model,
            input,
            deadline_ms,
        } => with_deadline(
            json!({
                "verb": "infer",
                "model": model.clone(),
                "input": matrix_f32_to_value(input),
            }),
            *deadline_ms,
        ),
        Request::SessionOpen { model } => json!({
            "verb": "session_open",
            "model": model.clone(),
        }),
        Request::Decode {
            session,
            hidden,
            deadline_ms,
        } => with_deadline(
            json!({
                "verb": "decode",
                "session": *session,
                "hidden": matrix_f32_to_value(hidden),
            }),
            *deadline_ms,
        ),
        Request::SessionClose { session } => json!({
            "verb": "session_close",
            "session": *session,
        }),
        Request::Stats => json!({ "verb": "stats" }),
        Request::Metrics => json!({ "verb": "metrics" }),
        Request::Trace { limit, kind } => json!({
            "verb": "trace",
            "limit": *limit,
            "kind": kind.as_str(),
        }),
        Request::Health => json!({ "verb": "health" }),
        Request::Events { limit } => json!({
            "verb": "events",
            "limit": *limit,
        }),
    };
    serde_json::to_string(&value).expect("shim serializer never fails")
}

/// Parses one request line.
///
/// # Errors
///
/// [`GatewayError::Protocol`] on malformed JSON, an unknown verb, or a
/// payload that is missing or malformed.
pub fn decode_request(line: &str) -> Result<Request, GatewayError> {
    let v = serde_json::from_str(line.trim()).map_err(|e| bad(format!("invalid JSON: {e}")))?;
    match str_field(&v, "verb")? {
        "infer" => {
            let model = str_field(&v, "model")?.to_string();
            let deadline_ms = opt_deadline_ms(&v)?;
            match (v.get("payload"), v.get("input")) {
                (Some(payload), None) => Ok(Request::Infer {
                    model,
                    payload: value_to_payload(payload)?,
                    deadline_ms,
                }),
                (None, Some(input)) => Ok(Request::InferF32 {
                    model,
                    input: value_to_matrix_f32(input)?,
                    deadline_ms,
                }),
                (Some(_), Some(_)) => Err(bad("request carries both payload and input")),
                (None, None) => Err(bad("request carries neither payload nor input")),
            }
        }
        "session_open" => Ok(Request::SessionOpen {
            model: str_field(&v, "model")?.to_string(),
        }),
        "decode" => Ok(Request::Decode {
            session: u64_field(&v, "session")?,
            hidden: value_to_matrix_f32(field(&v, "hidden")?)?,
            deadline_ms: opt_deadline_ms(&v)?,
        }),
        "session_close" => Ok(Request::SessionClose {
            session: u64_field(&v, "session")?,
        }),
        "stats" => Ok(Request::Stats),
        "metrics" => Ok(Request::Metrics),
        "trace" => Ok(Request::Trace {
            limit: usize_field(&v, "limit")?,
            // Absent means slow — the ring the verb originally served.
            kind: match v.get("kind") {
                None => TraceKind::Slow,
                Some(k) => TraceKind::parse(
                    k.as_str()
                        .ok_or_else(|| bad("field \"kind\" is not a string"))?,
                )?,
            },
        }),
        "health" => Ok(Request::Health),
        "events" => Ok(Request::Events {
            limit: usize_field(&v, "limit")?,
        }),
        other => Err(bad(format!("unknown verb {other:?}"))),
    }
}

fn shard_stats_to_value(s: &ShardStats) -> Value {
    json!({
        "requests": s.requests,
        "batches": s.batches,
        "columns": s.columns,
        "padded_cols": s.padded_cols,
        "padding_overhead": s.padding_overhead,
        "cancelled": s.cancelled,
        "columns_per_second": s.columns_per_second,
        "queued_cols": s.queued_cols,
        "in_flight_cols": s.in_flight_cols,
        "open_sessions": s.open_sessions,
        "kv_bytes": s.kv_bytes,
        "decode_steps": s.decode_steps,
        "decode_tokens": s.decode_tokens,
        "decode_batches": s.decode_batches,
        "decode_batch_occupancy": s.decode_batch_occupancy,
        "decode_padded_cols": s.decode_padded_cols,
        "worker_panics": s.worker_panics,
        "evicted_poisoned": s.evicted_poisoned,
        "expired": s.expired,
    })
}

fn value_to_shard_stats(v: &Value) -> Result<ShardStats, GatewayError> {
    Ok(ShardStats {
        requests: u64_field(v, "requests")?,
        batches: u64_field(v, "batches")?,
        columns: u64_field(v, "columns")?,
        padded_cols: u64_field(v, "padded_cols")?,
        padding_overhead: f64_field(v, "padding_overhead")?,
        cancelled: u64_field(v, "cancelled")?,
        columns_per_second: f64_field(v, "columns_per_second")?,
        queued_cols: u64_field(v, "queued_cols")?,
        in_flight_cols: u64_field(v, "in_flight_cols")?,
        open_sessions: u64_field(v, "open_sessions")?,
        kv_bytes: u64_field(v, "kv_bytes")?,
        decode_steps: u64_field(v, "decode_steps")?,
        decode_tokens: u64_field(v, "decode_tokens")?,
        decode_batches: u64_field(v, "decode_batches")?,
        decode_batch_occupancy: f64_field(v, "decode_batch_occupancy")?,
        decode_padded_cols: u64_field(v, "decode_padded_cols")?,
        worker_panics: u64_field(v, "worker_panics")?,
        evicted_poisoned: u64_field(v, "evicted_poisoned")?,
        expired: u64_field(v, "expired")?,
    })
}

fn stats_to_value(stats: &GatewayStats) -> Value {
    json!({
        "ok": true,
        "kind": "stats",
        "uptime_ms": stats.uptime_ms,
        "seq": stats.seq,
        "shards": Value::Array(stats.shards.iter().map(shard_stats_to_value).collect()),
        "cache": json!({
            "hits": stats.cache.hits,
            "misses": stats.cache.misses,
            "evictions": stats.cache.evictions,
            "entries": stats.cache.entries,
        }),
        "admission": json!({
            "admitted": stats.admission.admitted,
            "rejected_capacity": stats.admission.rejected_capacity,
            "rejected_timeout": stats.admission.rejected_timeout,
            "in_flight": stats.admission.in_flight,
        }),
        "sheds": json!({
            "in_flight": stats.sheds.in_flight,
            "queue_wait": stats.sheds.queue_wait,
            "kv_budget": stats.sheds.kv_budget,
        }),
        "connections": json!({
            "open": stats.connections.open,
            "peak": stats.connections.peak,
            "evicted": stats.connections.evicted,
            "workers_alive": stats.connections.workers_alive,
            "worker_panics": stats.connections.worker_panics,
        }),
    })
}

fn value_to_stats(v: &Value) -> Result<GatewayStats, GatewayError> {
    let shards = field(v, "shards")?
        .as_array()
        .ok_or_else(|| bad("shards is not an array"))?
        .iter()
        .map(value_to_shard_stats)
        .collect::<Result<Vec<_>, _>>()?;
    let cache = field(v, "cache")?;
    let admission = field(v, "admission")?;
    let sheds = field(v, "sheds")?;
    let connections = field(v, "connections")?;
    Ok(GatewayStats {
        shards,
        cache: CacheStats {
            hits: u64_field(cache, "hits")?,
            misses: u64_field(cache, "misses")?,
            evictions: u64_field(cache, "evictions")?,
            entries: u64_field(cache, "entries")? as usize,
        },
        admission: AdmissionStats {
            admitted: u64_field(admission, "admitted")?,
            rejected_capacity: u64_field(admission, "rejected_capacity")?,
            rejected_timeout: u64_field(admission, "rejected_timeout")?,
            in_flight: usize_field(admission, "in_flight")?,
        },
        sheds: ShedStats {
            in_flight: u64_field(sheds, "in_flight")?,
            queue_wait: u64_field(sheds, "queue_wait")?,
            kv_budget: u64_field(sheds, "kv_budget")?,
        },
        connections: ConnectionStats {
            open: u64_field(connections, "open")?,
            peak: u64_field(connections, "peak")?,
            evicted: u64_field(connections, "evicted")?,
            workers_alive: u64_field(connections, "workers_alive")?,
            worker_panics: u64_field(connections, "worker_panics")?,
        },
        uptime_ms: u64_field(v, "uptime_ms")?,
        seq: u64_field(v, "seq")?,
    })
}

fn stage_summary_to_value(s: &StageSummary) -> Value {
    json!({
        "stage": s.stage.clone(),
        "count": s.count,
        "sum": s.sum,
        "p50": s.p50,
        "p90": s.p90,
        "p99": s.p99,
        "max": s.max,
    })
}

fn value_to_stage_summary(v: &Value) -> Result<StageSummary, GatewayError> {
    Ok(StageSummary {
        stage: str_field(v, "stage")?.to_string(),
        count: u64_field(v, "count")?,
        sum: u64_field(v, "sum")?,
        p50: u64_field(v, "p50")?,
        p90: u64_field(v, "p90")?,
        p99: u64_field(v, "p99")?,
        max: u64_field(v, "max")?,
    })
}

fn stage_summaries_to_value(stages: &[StageSummary]) -> Value {
    Value::Array(stages.iter().map(stage_summary_to_value).collect())
}

fn value_to_stage_summaries(v: &Value) -> Result<Vec<StageSummary>, GatewayError> {
    v.as_array()
        .ok_or_else(|| bad("stage list is not an array"))?
        .iter()
        .map(value_to_stage_summary)
        .collect()
}

fn dim_summary_to_value(d: &DimSummary) -> Value {
    json!({
        "model": d.model.clone(),
        "verb": d.verb.clone(),
        "stage": d.stage.clone(),
        "count": d.count,
        "p50_us": d.p50_us,
        "p90_us": d.p90_us,
        "p99_us": d.p99_us,
        "max_us": d.max_us,
        "ok": d.ok,
        "error": d.error,
        "shed": d.shed,
    })
}

fn value_to_dim_summary(v: &Value) -> Result<DimSummary, GatewayError> {
    Ok(DimSummary {
        model: str_field(v, "model")?.to_string(),
        verb: str_field(v, "verb")?.to_string(),
        stage: str_field(v, "stage")?.to_string(),
        count: u64_field(v, "count")?,
        p50_us: u64_field(v, "p50_us")?,
        p90_us: u64_field(v, "p90_us")?,
        p99_us: u64_field(v, "p99_us")?,
        max_us: u64_field(v, "max_us")?,
        ok: u64_field(v, "ok")?,
        error: u64_field(v, "error")?,
        shed: u64_field(v, "shed")?,
    })
}

fn metrics_to_value(m: &GatewayMetrics) -> Value {
    json!({
        "ok": true,
        "kind": "metrics",
        "uptime_ms": m.uptime_ms,
        "seq": m.seq,
        "gateway": stage_summaries_to_value(&m.gateway),
        "shards": Value::Array(m.shards.iter().map(|s| stage_summaries_to_value(s)).collect()),
        "block": stage_summaries_to_value(&m.block),
        "dims_window_ms": m.dims_window_ms,
        "dims": Value::Array(m.dims.iter().map(dim_summary_to_value).collect()),
    })
}

fn value_to_metrics(v: &Value) -> Result<GatewayMetrics, GatewayError> {
    Ok(GatewayMetrics {
        uptime_ms: u64_field(v, "uptime_ms")?,
        seq: u64_field(v, "seq")?,
        gateway: value_to_stage_summaries(field(v, "gateway")?)?,
        shards: field(v, "shards")?
            .as_array()
            .ok_or_else(|| bad("shards is not an array"))?
            .iter()
            .map(value_to_stage_summaries)
            .collect::<Result<Vec<_>, _>>()?,
        block: value_to_stage_summaries(field(v, "block")?)?,
        dims_window_ms: u64_field(v, "dims_window_ms")?,
        dims: field(v, "dims")?
            .as_array()
            .ok_or_else(|| bad("dims is not an array"))?
            .iter()
            .map(value_to_dim_summary)
            .collect::<Result<Vec<_>, _>>()?,
    })
}

/// JSON has no infinity: an unbounded burn rate (zero budget, nonzero
/// measurement) is clamped to `f64::MAX` on the wire.
fn finite_burn(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        f64::MAX
    }
}

fn target_report_to_value(t: &TargetReport) -> Value {
    json!({
        "name": t.name.clone(),
        "status": t.status.as_str(),
        "burn_rate": finite_burn(t.burn_rate),
        "samples": t.samples,
        "p99_us": t.p99_us,
        "error_rate": t.error_rate,
        "shed_rate": t.shed_rate,
    })
}

fn status_field(v: &Value, key: &str) -> Result<SloStatus, GatewayError> {
    let s = str_field(v, key)?;
    SloStatus::parse(s).ok_or_else(|| bad(format!("unknown SLO status {s:?}")))
}

fn value_to_target_report(v: &Value) -> Result<TargetReport, GatewayError> {
    Ok(TargetReport {
        name: str_field(v, "name")?.to_string(),
        status: status_field(v, "status")?,
        burn_rate: f64_field(v, "burn_rate")?,
        samples: u64_field(v, "samples")?,
        p99_us: f64_field(v, "p99_us")?,
        error_rate: f64_field(v, "error_rate")?,
        shed_rate: f64_field(v, "shed_rate")?,
    })
}

fn health_to_value(h: &HealthReport) -> Value {
    json!({
        "ok": true,
        "kind": "health",
        "status": h.status.as_str(),
        "targets": Value::Array(h.targets.iter().map(target_report_to_value).collect()),
    })
}

fn value_to_health(v: &Value) -> Result<HealthReport, GatewayError> {
    Ok(HealthReport {
        status: status_field(v, "status")?,
        targets: field(v, "targets")?
            .as_array()
            .ok_or_else(|| bad("targets is not an array"))?
            .iter()
            .map(value_to_target_report)
            .collect::<Result<Vec<_>, _>>()?,
    })
}

fn span_to_value(s: &SpanSummary) -> Value {
    json!({
        "id": s.id,
        // JSON null marks the root span's absent parent.
        "parent": match s.parent {
            Some(p) => Value::from(p),
            None => Value::Null,
        },
        "stage": s.stage.clone(),
        "start_us": s.start_us,
        "dur_us": s.dur_us,
        "links": Value::Array(s.links.iter().map(|&id| Value::from(id)).collect()),
    })
}

fn value_to_span(v: &Value) -> Result<SpanSummary, GatewayError> {
    let parent = match field(v, "parent")? {
        Value::Null => None,
        other => Some(
            other
                .as_u64()
                .ok_or_else(|| bad("field \"parent\" is not null or a non-negative integer"))?,
        ),
    };
    let links = field(v, "links")?
        .as_array()
        .ok_or_else(|| bad("span links is not an array"))?
        .iter()
        .map(|item| {
            item.as_u64()
                .ok_or_else(|| bad("span link is not a non-negative integer"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(SpanSummary {
        id: u64_field(v, "id")?,
        parent,
        stage: str_field(v, "stage")?.to_string(),
        start_us: u64_field(v, "start_us")?,
        dur_us: u64_field(v, "dur_us")?,
        links,
    })
}

fn trace_to_value(t: &TraceSummary) -> Value {
    json!({
        "id": t.id,
        "verb": t.verb.clone(),
        "total_us": t.total_us,
        "unix_ms": t.unix_ms,
        "spans": Value::Array(t.spans.iter().map(span_to_value).collect()),
    })
}

fn value_to_trace(v: &Value) -> Result<TraceSummary, GatewayError> {
    Ok(TraceSummary {
        id: u64_field(v, "id")?,
        verb: str_field(v, "verb")?.to_string(),
        total_us: u64_field(v, "total_us")?,
        unix_ms: u64_field(v, "unix_ms")?,
        spans: field(v, "spans")?
            .as_array()
            .ok_or_else(|| bad("spans is not an array"))?
            .iter()
            .map(value_to_span)
            .collect::<Result<Vec<_>, _>>()?,
    })
}

fn trace_reply_to_value(r: &TraceReply) -> Value {
    json!({
        "ok": true,
        "kind": "trace",
        "traces": Value::Array(r.traces.iter().map(trace_to_value).collect()),
    })
}

fn value_to_trace_reply(v: &Value) -> Result<TraceReply, GatewayError> {
    Ok(TraceReply {
        traces: field(v, "traces")?
            .as_array()
            .ok_or_else(|| bad("traces is not an array"))?
            .iter()
            .map(value_to_trace)
            .collect::<Result<Vec<_>, _>>()?,
    })
}

fn event_to_value(e: &EventSummary) -> Value {
    json!({
        "seq": e.seq,
        "unix_ms": e.unix_ms,
        "severity": e.severity.clone(),
        "kind": e.kind.clone(),
        "detail": e.detail.clone(),
    })
}

fn value_to_event(v: &Value) -> Result<EventSummary, GatewayError> {
    let severity = str_field(v, "severity")?;
    if EventSeverity::parse(severity).is_none() {
        return Err(bad(format!("unknown event severity {severity:?}")));
    }
    Ok(EventSummary {
        seq: u64_field(v, "seq")?,
        unix_ms: u64_field(v, "unix_ms")?,
        severity: severity.to_string(),
        kind: str_field(v, "kind")?.to_string(),
        detail: str_field(v, "detail")?.to_string(),
    })
}

fn events_to_value(events: &[EventSummary]) -> Value {
    Value::Array(events.iter().map(event_to_value).collect())
}

fn value_to_events(v: &Value) -> Result<Vec<EventSummary>, GatewayError> {
    v.as_array()
        .ok_or_else(|| bad("events is not an array"))?
        .iter()
        .map(value_to_event)
        .collect()
}

fn incident_to_value(s: &IncidentSummary) -> Value {
    json!({
        "unix_ms": s.unix_ms,
        "status": s.status.as_str(),
        "events": events_to_value(&s.events),
        "traces": Value::Array(s.traces.iter().map(trace_to_value).collect()),
        "dims": Value::Array(s.dims.iter().map(dim_summary_to_value).collect()),
    })
}

fn value_to_incident(v: &Value) -> Result<IncidentSummary, GatewayError> {
    Ok(IncidentSummary {
        unix_ms: u64_field(v, "unix_ms")?,
        status: status_field(v, "status")?,
        events: value_to_events(field(v, "events")?)?,
        traces: field(v, "traces")?
            .as_array()
            .ok_or_else(|| bad("traces is not an array"))?
            .iter()
            .map(value_to_trace)
            .collect::<Result<Vec<_>, _>>()?,
        dims: field(v, "dims")?
            .as_array()
            .ok_or_else(|| bad("dims is not an array"))?
            .iter()
            .map(value_to_dim_summary)
            .collect::<Result<Vec<_>, _>>()?,
    })
}

fn events_reply_to_value(r: &EventsReply) -> Value {
    json!({
        "ok": true,
        "kind": "events",
        "events": events_to_value(&r.events),
        // JSON null marks "health never flipped".
        "pinned": match &r.pinned {
            Some(incident) => incident_to_value(incident),
            None => Value::Null,
        },
    })
}

fn value_to_events_reply(v: &Value) -> Result<EventsReply, GatewayError> {
    let pinned = match field(v, "pinned")? {
        Value::Null => None,
        other => Some(value_to_incident(other)?),
    };
    Ok(EventsReply {
        events: value_to_events(field(v, "events")?)?,
        pinned,
    })
}

/// Serializes a response to its single-line wire form (no newline).
pub fn encode_response(resp: &Response) -> String {
    let value = match resp {
        Response::Infer(reply) => json!({
            "ok": true,
            "kind": "infer",
            "payload": payload_to_value(&reply.payload),
            "scale": reply.scale,
            "latency_us": reply.latency.as_micros() as u64,
            "shard": reply.shard,
            "cache_hit": reply.cache_hit,
        }),
        Response::SessionOpen(reply) => json!({
            "ok": true,
            "kind": "session_open",
            "session": reply.session,
            "shard": reply.shard,
        }),
        Response::Decode(reply) => json!({
            "ok": true,
            "kind": "decode",
            "hidden": matrix_f32_to_value(&reply.hidden),
            "tokens": reply.tokens,
            "shard": reply.shard,
            "latency_us": reply.latency.as_micros() as u64,
        }),
        Response::SessionClose(reply) => json!({
            "ok": true,
            "kind": "session_close",
            "session": reply.session,
            "tokens": reply.tokens,
        }),
        Response::Stats(stats) => stats_to_value(stats),
        Response::Metrics(metrics) => metrics_to_value(metrics),
        Response::Trace(reply) => trace_reply_to_value(reply),
        Response::Health(report) => health_to_value(report),
        Response::Events(reply) => events_reply_to_value(reply),
        Response::Error { kind, message } => json!({
            "ok": false,
            "error": kind.as_str(),
            "message": message.clone(),
        }),
    };
    serde_json::to_string(&value).expect("shim serializer never fails")
}

/// Parses one response line.
///
/// # Errors
///
/// [`GatewayError::Protocol`] on malformed JSON or an unknown response
/// kind.
pub fn decode_response(line: &str) -> Result<Response, GatewayError> {
    let v = serde_json::from_str(line.trim()).map_err(|e| bad(format!("invalid JSON: {e}")))?;
    let ok = field(&v, "ok")?
        .as_bool()
        .ok_or_else(|| bad("field \"ok\" is not a boolean"))?;
    if !ok {
        return Ok(Response::Error {
            kind: ErrorKind::from_str(str_field(&v, "error")?),
            message: str_field(&v, "message")?.to_string(),
        });
    }
    match str_field(&v, "kind")? {
        "infer" => Ok(Response::Infer(InferReply {
            payload: value_to_payload(field(&v, "payload")?)?,
            scale: f64_field(&v, "scale")?,
            latency: Duration::from_micros(u64_field(&v, "latency_us")?),
            shard: usize_field(&v, "shard")?,
            cache_hit: field(&v, "cache_hit")?
                .as_bool()
                .ok_or_else(|| bad("field \"cache_hit\" is not a boolean"))?,
        })),
        "session_open" => Ok(Response::SessionOpen(SessionOpenReply {
            session: u64_field(&v, "session")?,
            shard: usize_field(&v, "shard")?,
        })),
        "decode" => Ok(Response::Decode(DecodeReply {
            hidden: value_to_matrix_f32(field(&v, "hidden")?)?,
            tokens: usize_field(&v, "tokens")?,
            shard: usize_field(&v, "shard")?,
            latency: Duration::from_micros(u64_field(&v, "latency_us")?),
        })),
        "session_close" => Ok(Response::SessionClose(SessionCloseReply {
            session: u64_field(&v, "session")?,
            tokens: usize_field(&v, "tokens")?,
        })),
        "stats" => Ok(Response::Stats(value_to_stats(&v)?)),
        "metrics" => Ok(Response::Metrics(value_to_metrics(&v)?)),
        "trace" => Ok(Response::Trace(value_to_trace_reply(&v)?)),
        "health" => Ok(Response::Health(value_to_health(&v)?)),
        "events" => Ok(Response::Events(value_to_events_reply(&v)?)),
        other => Err(bad(format!("unknown response kind {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes() -> Matrix<i32> {
        Matrix::from_fn(3, 2, |r, c| (r as i32 - 1) * 100 + c as i32)
    }

    #[test]
    fn infer_request_round_trips_codes_bit_exactly() {
        let req = Request::Infer {
            model: "block0.fc2".to_string(),
            payload: Payload::Codes(codes()),
            deadline_ms: None,
        };
        let line = encode_request(&req);
        assert!(!line.contains('\n'));
        // No deadline → no field on the wire (older peers keep parsing).
        assert!(!line.contains("deadline_ms"));
        assert_eq!(decode_request(&line).unwrap(), req);
    }

    #[test]
    fn deadlines_round_trip_on_every_carrying_verb() {
        for req in [
            Request::Infer {
                model: "m".to_string(),
                payload: Payload::Codes(codes()),
                deadline_ms: Some(250),
            },
            Request::InferF32 {
                model: "m".to_string(),
                input: Matrix::from_fn(2, 2, |r, c| (r + c) as f32),
                deadline_ms: Some(1),
            },
            Request::Decode {
                session: 3,
                hidden: Matrix::from_vec(1, 1, vec![0.5f32]).unwrap(),
                deadline_ms: Some(10_000),
            },
        ] {
            let line = encode_request(&req);
            assert!(line.contains("deadline_ms"));
            assert_eq!(decode_request(&line).unwrap(), req);
        }
    }

    #[test]
    fn non_integer_deadlines_are_rejected() {
        let line = "{\"verb\":\"infer\",\"model\":\"m\",\"deadline_ms\":-5,\"payload\":{\"kind\":\"codes\",\"rows\":1,\"cols\":1,\"data\":[0]}}";
        assert!(decode_request(line).is_err());
        // An explicit null means "no deadline", same as absence.
        let line = "{\"verb\":\"infer\",\"model\":\"m\",\"deadline_ms\":null,\"payload\":{\"kind\":\"codes\",\"rows\":1,\"cols\":1,\"data\":[0]}}";
        assert!(matches!(
            decode_request(line).unwrap(),
            Request::Infer {
                deadline_ms: None,
                ..
            }
        ));
    }

    #[test]
    fn infer_f32_request_round_trips() {
        let input = Matrix::from_fn(2, 2, |r, c| 0.25 * (r as f32) - 1.5 * (c as f32));
        let req = Request::InferF32 {
            model: "m".to_string(),
            input,
            deadline_ms: None,
        };
        assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);
    }

    #[test]
    fn hidden_payload_round_trips_floats_bit_exactly() {
        // Awkward but finite values: subnormals, negative zero, and
        // shortest-round-trip-sensitive fractions must all survive.
        let hidden =
            Matrix::from_vec(2, 2, vec![0.1f32, -0.0, f32::MIN_POSITIVE, -1.5e-38]).unwrap();
        let req = Request::Infer {
            model: "decoder".to_string(),
            payload: Payload::Hidden(hidden.clone()),
            deadline_ms: None,
        };
        let Request::Infer {
            payload: Payload::Hidden(back),
            ..
        } = decode_request(&encode_request(&req)).unwrap()
        else {
            panic!("wrong verb or payload kind");
        };
        for (a, b) in hidden.iter().zip(back.iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "f32 mangled on the wire");
        }
    }

    #[test]
    fn session_requests_round_trip() {
        for req in [
            Request::SessionOpen {
                model: "decoder".to_string(),
            },
            Request::Decode {
                // A large but f64-exact id: JSON numbers are f64, and
                // session ids are sequential from 1, so every real id
                // is exactly representable on the wire.
                session: 1u64 << 52,
                hidden: Matrix::from_vec(2, 1, vec![0.5f32, -1.25]).unwrap(),
                deadline_ms: None,
            },
            Request::SessionClose { session: 7 },
        ] {
            assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);
        }
    }

    #[test]
    fn session_responses_round_trip() {
        for resp in [
            Response::SessionOpen(SessionOpenReply {
                session: 42,
                shard: 1,
            }),
            Response::Decode(DecodeReply {
                hidden: Matrix::from_vec(1, 2, vec![0.25f32, -3.5]).unwrap(),
                tokens: 17,
                shard: 0,
                latency: Duration::from_micros(88),
            }),
            Response::SessionClose(SessionCloseReply {
                session: 42,
                tokens: 17,
            }),
        ] {
            assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
        }
    }

    #[test]
    fn hidden_requests_reject_non_finite_elements() {
        let line = "{\"verb\":\"infer\",\"model\":\"m\",\"payload\":{\"kind\":\"hidden\",\"rows\":1,\"cols\":1,\"data\":[1e999]}}";
        assert!(decode_request(line).is_err());
        let line =
            "{\"verb\":\"decode\",\"session\":1,\"hidden\":{\"rows\":1,\"cols\":1,\"data\":[1e999]}}";
        assert!(decode_request(line).is_err());
    }

    #[test]
    fn stats_request_round_trips() {
        assert_eq!(
            decode_request(&encode_request(&Request::Stats)).unwrap(),
            Request::Stats
        );
    }

    #[test]
    fn infer_response_round_trips_both_kinds() {
        let resp = Response::Infer(InferReply {
            payload: Payload::Codes(codes()),
            scale: 1.25e-3,
            latency: Duration::from_micros(417),
            shard: 1,
            cache_hit: true,
        });
        assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
        let resp = Response::Infer(InferReply {
            payload: Payload::Hidden(Matrix::from_vec(1, 3, vec![0.25, -3.5, 1e-20]).unwrap()),
            scale: 1.0,
            latency: Duration::from_micros(99),
            shard: 0,
            cache_hit: false,
        });
        assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
    }

    #[test]
    fn stats_response_round_trips() {
        let resp = Response::Stats(GatewayStats {
            shards: vec![
                ShardStats {
                    requests: 10,
                    batches: 3,
                    columns: 40,
                    padded_cols: 2,
                    padding_overhead: 2.0 / 42.0,
                    cancelled: 1,
                    columns_per_second: 1234.5,
                    queued_cols: 4,
                    in_flight_cols: 8,
                    open_sessions: 3,
                    kv_bytes: 12288,
                    decode_steps: 9,
                    decode_tokens: 21,
                    decode_batches: 4,
                    decode_batch_occupancy: 2.25,
                    decode_padded_cols: 5,
                    worker_panics: 2,
                    evicted_poisoned: 1,
                    expired: 6,
                },
                ShardStats::default(),
            ],
            cache: CacheStats {
                hits: 5,
                misses: 7,
                evictions: 1,
                entries: 6,
            },
            admission: AdmissionStats {
                admitted: 12,
                rejected_capacity: 2,
                rejected_timeout: 1,
                in_flight: 3,
            },
            sheds: ShedStats {
                in_flight: 2,
                queue_wait: 1,
                kv_budget: 4,
            },
            connections: ConnectionStats {
                open: 3,
                peak: 9,
                evicted: 2,
                workers_alive: 4,
                worker_panics: 1,
            },
            uptime_ms: 98_765,
            seq: 17,
        });
        assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
        if let Response::Stats(s) = &resp {
            assert_eq!(s.sheds.total(), 7);
        }
    }

    #[test]
    fn metrics_and_trace_requests_round_trip() {
        for req in [
            Request::Metrics,
            Request::Health,
            Request::Trace {
                limit: 12,
                kind: TraceKind::Slow,
            },
            Request::Trace {
                limit: 3,
                kind: TraceKind::Recent,
            },
            Request::Events { limit: 9 },
        ] {
            assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);
        }
    }

    #[test]
    fn trace_requests_without_a_kind_default_to_slow() {
        let req = decode_request("{\"verb\":\"trace\",\"limit\":5}").unwrap();
        assert_eq!(
            req,
            Request::Trace {
                limit: 5,
                kind: TraceKind::Slow,
            }
        );
    }

    fn stage(name: &str, count: u64) -> StageSummary {
        StageSummary {
            stage: name.to_string(),
            count,
            sum: count * 100,
            p50: 90,
            p90: 180,
            p99: 400,
            max: 417,
        }
    }

    #[test]
    fn metrics_response_round_trips() {
        let resp = Response::Metrics(GatewayMetrics {
            uptime_ms: 5_000,
            seq: 3,
            gateway: vec![stage("parse", 9), stage("route", 9)],
            shards: vec![
                vec![stage("queue_wait", 4), stage("execute", 4)],
                vec![], // a shard with no summaries survives too
            ],
            block: vec![stage("block_qkv", 32)],
            dims_window_ms: 10_000,
            dims: vec![DimSummary {
                model: "m".to_string(),
                verb: "infer".to_string(),
                stage: "request".to_string(),
                count: 40,
                p50_us: 120,
                p90_us: 300,
                p99_us: 900,
                max_us: 1_050,
                ok: 38,
                error: 1,
                shed: 1,
            }],
        });
        assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
        // An all-empty bundle round-trips as well.
        let resp = Response::Metrics(GatewayMetrics::default());
        assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
    }

    #[test]
    fn health_response_round_trips() {
        use panacea_telemetry::{HealthReport, SloStatus, TargetReport};
        let resp = Response::Health(HealthReport {
            status: SloStatus::Degraded,
            targets: vec![
                TargetReport {
                    name: "latency".to_string(),
                    status: SloStatus::Ok,
                    burn_rate: 0.25,
                    samples: 100,
                    p99_us: 1_500.0,
                    error_rate: 0.0,
                    shed_rate: 0.0,
                },
                TargetReport {
                    name: "availability".to_string(),
                    status: SloStatus::Degraded,
                    burn_rate: 1.5,
                    samples: 40,
                    p99_us: 0.0,
                    error_rate: 0.05,
                    shed_rate: 0.15,
                },
            ],
        });
        assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
        // An empty report (no targets configured) survives too.
        let resp = Response::Health(HealthReport {
            status: SloStatus::Ok,
            targets: vec![],
        });
        assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
    }

    #[test]
    fn infinite_burn_rates_are_clamped_on_the_wire() {
        use panacea_telemetry::{HealthReport, SloStatus, TargetReport};
        let resp = Response::Health(HealthReport {
            status: SloStatus::Critical,
            targets: vec![TargetReport {
                name: "none-allowed".to_string(),
                status: SloStatus::Critical,
                burn_rate: f64::INFINITY,
                samples: 1,
                p99_us: 0.0,
                error_rate: 0.0,
                shed_rate: 1.0,
            }],
        });
        let line = encode_response(&resp);
        let Response::Health(back) = decode_response(&line).unwrap() else {
            panic!("wrong response kind");
        };
        assert_eq!(back.status, SloStatus::Critical);
        assert!(
            back.targets[0].burn_rate.is_finite() && back.targets[0].burn_rate > 1e300,
            "infinite burn did not clamp: {}",
            back.targets[0].burn_rate
        );
    }

    #[test]
    fn trace_response_round_trips_span_parents_and_links() {
        let resp = Response::Trace(TraceReply {
            traces: vec![TraceSummary {
                id: 7,
                verb: "decode".to_string(),
                total_us: 1_234,
                unix_ms: 1_700_000_000_123,
                spans: vec![
                    SpanSummary {
                        id: 0,
                        parent: None,
                        stage: "decode".to_string(),
                        start_us: 0,
                        dur_us: 1_234,
                        links: vec![],
                    },
                    SpanSummary {
                        id: 1,
                        parent: Some(0),
                        stage: "decode_pass".to_string(),
                        start_us: 10,
                        dur_us: 1_200,
                        // Batchmates of the fused pass this span covers.
                        links: vec![3, 9],
                    },
                ],
            }],
        });
        assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
        let resp = Response::Trace(TraceReply::default());
        assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
    }

    #[test]
    fn events_response_round_trips_with_and_without_a_pinned_incident() {
        let event = EventSummary {
            seq: 41,
            unix_ms: 1_700_000_000_456,
            severity: "warn".to_string(),
            kind: "shed".to_string(),
            detail: "reason=in_flight model=m verb=infer".to_string(),
        };
        let resp = Response::Events(EventsReply {
            events: vec![event.clone()],
            pinned: Some(IncidentSummary {
                unix_ms: 1_700_000_000_400,
                status: SloStatus::Critical,
                events: vec![event],
                traces: vec![TraceSummary {
                    id: 3,
                    verb: "decode".to_string(),
                    total_us: 2_500_000,
                    unix_ms: 1_700_000_000_390,
                    spans: vec![SpanSummary {
                        id: 0,
                        parent: None,
                        stage: "decode".to_string(),
                        start_us: 0,
                        dur_us: 2_500_000,
                        links: vec![],
                    }],
                }],
                dims: vec![DimSummary {
                    model: "m".to_string(),
                    verb: "decode".to_string(),
                    stage: "step".to_string(),
                    count: 12,
                    p50_us: 900,
                    p90_us: 1_800,
                    p99_us: 2_400,
                    max_us: 2_500,
                    ok: 10,
                    error: 0,
                    shed: 2,
                }],
            }),
        });
        assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
        // No incident pinned: `pinned` travels as JSON null.
        let resp = Response::Events(EventsReply::default());
        let line = encode_response(&resp);
        assert!(line.contains("\"pinned\":null"));
        assert_eq!(decode_response(&line).unwrap(), resp);
    }

    #[test]
    fn event_summary_preserves_flight_recorder_fields() {
        use panacea_telemetry::{EventSeverity, FlightRecorder};
        let rec = FlightRecorder::with_capacity(4);
        rec.record(
            EventSeverity::Error,
            "health_transition",
            "to=critical".into(),
        );
        let events = rec.recent(1);
        let summary = EventSummary::from(&events[0]);
        assert_eq!(summary.severity, "error");
        assert_eq!(summary.kind, "health_transition");
        assert_eq!(summary.detail, "to=critical");
        assert!(summary.unix_ms > 0);
    }

    #[test]
    fn stage_summary_matches_histogram_snapshot() {
        let h = panacea_telemetry::Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = StageSummary::from_snapshot("execute", &h.snapshot());
        assert_eq!(s.stage, "execute");
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 5050);
        assert_eq!(s.p50, 50);
        assert_eq!(s.max, 100);
    }

    #[test]
    fn trace_summary_flattens_telemetry_traces() {
        let tracer = panacea_telemetry::Tracer::new(panacea_telemetry::TraceConfig {
            slow_threshold: Duration::ZERO,
            ..Default::default()
        });
        let mut tb = tracer.begin("infer");
        tb.span("execute", panacea_telemetry::ROOT_SPAN, || ());
        tracer.finish(tb);
        let traces = tracer.slow(1);
        let summary = TraceSummary::from(&traces[0]);
        assert_eq!(summary.verb, "infer");
        assert_eq!(summary.spans.len(), 2);
        assert_eq!(summary.spans[0].parent, None);
        assert_eq!(summary.spans[1].parent, Some(0));
        assert_eq!(summary.spans[1].stage, "execute");
    }

    #[test]
    fn hostile_metrics_and_trace_lines_are_rejected() {
        for line in [
            // trace request without a limit
            "{\"verb\":\"trace\"}",
            "{\"verb\":\"trace\",\"limit\":-1}",
            "{\"verb\":\"trace\",\"limit\":\"all\"}",
            // trace request with a bad ring kind
            "{\"verb\":\"trace\",\"limit\":1,\"kind\":\"fast\"}",
            "{\"verb\":\"trace\",\"limit\":1,\"kind\":7}",
            // metrics responses with missing or mistyped pieces
            "{\"ok\":true,\"kind\":\"metrics\"}",
            "{\"ok\":true,\"kind\":\"metrics\",\"uptime_ms\":1,\"seq\":1,\"gateway\":7,\"shards\":[],\"block\":[]}",
            "{\"ok\":true,\"kind\":\"metrics\",\"uptime_ms\":1,\"seq\":1,\"gateway\":[{\"stage\":\"parse\"}],\"shards\":[],\"block\":[]}",
            "{\"ok\":true,\"kind\":\"metrics\",\"uptime_ms\":1,\"seq\":1,\"gateway\":[],\"shards\":[[{\"count\":1}]],\"block\":[]}",
            // trace responses with malformed spans
            "{\"ok\":true,\"kind\":\"trace\"}",
            "{\"ok\":true,\"kind\":\"trace\",\"traces\":{}}",
            "{\"ok\":true,\"kind\":\"trace\",\"traces\":[{\"id\":1,\"verb\":\"x\",\"total_us\":5}]}",
            "{\"ok\":true,\"kind\":\"trace\",\"traces\":[{\"id\":1,\"verb\":\"x\",\"total_us\":5,\"unix_ms\":1,\"spans\":[{\"id\":0,\"stage\":\"x\",\"start_us\":0,\"dur_us\":1,\"links\":[]}]}]}",
            "{\"ok\":true,\"kind\":\"trace\",\"traces\":[{\"id\":1,\"verb\":\"x\",\"total_us\":5,\"unix_ms\":1,\"spans\":[{\"id\":0,\"parent\":\"root\",\"stage\":\"x\",\"start_us\":0,\"dur_us\":1,\"links\":[]}]}]}",
            // trace missing the wall-clock anchor
            "{\"ok\":true,\"kind\":\"trace\",\"traces\":[{\"id\":1,\"verb\":\"x\",\"total_us\":5,\"spans\":[]}]}",
            // span missing its links array (or with a mistyped one)
            "{\"ok\":true,\"kind\":\"trace\",\"traces\":[{\"id\":1,\"verb\":\"x\",\"total_us\":5,\"unix_ms\":1,\"spans\":[{\"id\":0,\"parent\":null,\"stage\":\"x\",\"start_us\":0,\"dur_us\":1}]}]}",
            "{\"ok\":true,\"kind\":\"trace\",\"traces\":[{\"id\":1,\"verb\":\"x\",\"total_us\":5,\"unix_ms\":1,\"spans\":[{\"id\":0,\"parent\":null,\"stage\":\"x\",\"start_us\":0,\"dur_us\":1,\"links\":[\"t\"]}]}]}",
            // events request without a limit
            "{\"verb\":\"events\"}",
            "{\"verb\":\"events\",\"limit\":\"all\"}",
            // events responses with missing or mistyped pieces
            "{\"ok\":true,\"kind\":\"events\"}",
            "{\"ok\":true,\"kind\":\"events\",\"events\":[],\"pinned\":7}",
            "{\"ok\":true,\"kind\":\"events\",\"events\":[{\"seq\":1}],\"pinned\":null}",
            "{\"ok\":true,\"kind\":\"events\",\"events\":[{\"seq\":1,\"unix_ms\":1,\"severity\":\"fatal\",\"kind\":\"shed\",\"detail\":\"\"}],\"pinned\":null}",
            "{\"ok\":true,\"kind\":\"events\",\"events\":[],\"pinned\":{\"unix_ms\":1,\"status\":\"critical\",\"events\":[],\"traces\":[]}}",
            // stats response missing the new uptime/seq fields
            "{\"ok\":true,\"kind\":\"stats\",\"shards\":[],\"cache\":{\"hits\":0,\"misses\":0,\"evictions\":0,\"entries\":0},\"admission\":{\"admitted\":0,\"rejected_capacity\":0,\"rejected_timeout\":0,\"in_flight\":0}}",
            // stats response missing the per-reason shed breakdown
            "{\"ok\":true,\"kind\":\"stats\",\"uptime_ms\":1,\"seq\":1,\"shards\":[],\"cache\":{\"hits\":0,\"misses\":0,\"evictions\":0,\"entries\":0},\"admission\":{\"admitted\":0,\"rejected_capacity\":0,\"rejected_timeout\":0,\"in_flight\":0}}",
            // metrics response missing the dimensional summaries
            "{\"ok\":true,\"kind\":\"metrics\",\"uptime_ms\":1,\"seq\":1,\"gateway\":[],\"shards\":[],\"block\":[]}",
            // health responses with missing or mistyped pieces
            "{\"ok\":true,\"kind\":\"health\"}",
            "{\"ok\":true,\"kind\":\"health\",\"status\":\"fine\",\"targets\":[]}",
            "{\"ok\":true,\"kind\":\"health\",\"status\":\"ok\",\"targets\":7}",
            "{\"ok\":true,\"kind\":\"health\",\"status\":\"ok\",\"targets\":[{\"name\":\"x\"}]}",
            "{\"ok\":true,\"kind\":\"health\",\"status\":\"ok\",\"targets\":[{\"name\":\"x\",\"status\":\"ok\",\"burn_rate\":\"hot\",\"samples\":1,\"p99_us\":1,\"error_rate\":0,\"shed_rate\":0}]}",
        ] {
            let req_err = decode_request(line).is_err();
            let resp_err = decode_response(line).is_err();
            assert!(
                req_err && resp_err,
                "line survived decoding somewhere: {line}"
            );
        }
    }

    #[test]
    fn error_response_round_trips_kind() {
        for kind in [ErrorKind::Overloaded, ErrorKind::UnknownSession] {
            let resp = Response::Error {
                kind,
                message: "nope".to_string(),
            };
            assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
        }
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for line in [
            "",
            "not json",
            "{}",
            "{\"verb\":\"launch\"}",
            "{\"verb\":\"infer\",\"model\":\"m\"}",
            "{\"verb\":\"infer\",\"model\":\"m\",\"payload\":{\"rows\":1,\"cols\":1,\"data\":[1]}}",
            "{\"verb\":\"infer\",\"model\":\"m\",\"payload\":{\"kind\":\"zap\",\"rows\":1,\"cols\":1,\"data\":[1]}}",
            "{\"verb\":\"infer\",\"model\":\"m\",\"payload\":{\"kind\":\"codes\",\"rows\":2,\"cols\":2,\"data\":[1]}}",
            "{\"verb\":\"infer\",\"model\":\"m\",\"payload\":{\"kind\":\"codes\",\"rows\":1,\"cols\":1,\"data\":[1.5]}}",
            "{\"verb\":\"decode\",\"hidden\":{\"rows\":1,\"cols\":1,\"data\":[1]}}",
            "{\"verb\":\"session_open\"}",
            "{\"verb\":\"session_close\"}",
            // rows*cols overflows usize: must be a clean protocol error,
            // not a multiplication overflow inside Matrix::from_vec.
            "{\"verb\":\"infer\",\"model\":\"m\",\"payload\":{\"kind\":\"codes\",\"rows\":4294967296,\"cols\":4294967296,\"data\":[]}}",
        ] {
            assert!(decode_request(line).is_err(), "accepted {line:?}");
        }
    }

    #[test]
    fn non_finite_float_payloads_are_rejected_on_decode() {
        // 1e999 parses to f64 infinity; 1e300 is a finite f64 that
        // overflows when narrowed to f32. Both must fail with the
        // finiteness error, not leak into quantization.
        for datum in ["1e999", "-1e999", "1e300"] {
            let line = format!(
                "{{\"verb\":\"infer\",\"model\":\"m\",\"input\":{{\"rows\":1,\"cols\":1,\"data\":[{datum}]}}}}"
            );
            let err = decode_request(&line).expect_err("accepted non-finite element");
            assert!(
                err.to_string().contains("not finite"),
                "wrong error for {datum}: {err}"
            );
        }
    }

    #[test]
    fn i32_extremes_survive_the_wire() {
        let m = Matrix::from_vec(1, 4, vec![i32::MIN, -1, 1, i32::MAX]).unwrap();
        let req = Request::Infer {
            model: "m".to_string(),
            payload: Payload::Codes(m.clone()),
            deadline_ms: None,
        };
        let Request::Infer { payload, .. } = decode_request(&encode_request(&req)).unwrap() else {
            panic!("wrong verb");
        };
        assert_eq!(payload, Payload::Codes(m));
    }

    #[test]
    fn reply_to_f32_applies_scale_only_to_codes() {
        let reply = InferReply {
            payload: Payload::Codes(Matrix::from_vec(1, 2, vec![4, -8]).unwrap()),
            scale: 0.5,
            latency: Duration::ZERO,
            shard: 0,
            cache_hit: false,
        };
        assert_eq!(reply.to_f32().as_slice(), &[2.0, -4.0]);
        let hidden = Matrix::from_vec(1, 2, vec![1.5f32, -0.25]).unwrap();
        let reply = InferReply {
            payload: Payload::Hidden(hidden.clone()),
            scale: 0.5, // ignored for hidden results
            latency: Duration::ZERO,
            shard: 0,
            cache_hit: false,
        };
        assert_eq!(reply.to_f32(), hidden);
    }
}
