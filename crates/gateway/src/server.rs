//! The gateway itself: protocol handling glued to routing, caching, and
//! admission — plus the blocking TCP server that exposes it.
//!
//! [`Gateway`] is the transport-free core (handy for in-process use and
//! tests); [`GatewayServer`] wraps it in a `TcpListener` with one
//! acceptor thread and one handler thread per connection. Handlers use
//! short read timeouts so shutdown never hangs on an idle socket, and
//! dropping the server stops the acceptor, joins every handler, and then
//! shuts the shards down cleanly (drain, join workers).

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use panacea_serve::{PreparedModel, RuntimeConfig, ServeError};

use crate::admission::{AdmissionConfig, AdmissionController};
use crate::cache::{CacheConfig, CachedOutput, RequestCache};
use crate::protocol::{
    decode_request, encode_response, ErrorKind, GatewayStats, InferReply, Payload, Request,
    Response,
};
use crate::router::ShardRouter;

/// Everything a gateway deployment tunes.
#[derive(Debug, Clone, Copy)]
pub struct GatewayConfig {
    /// Number of serving shards (independent runtimes).
    pub shards: usize,
    /// Per-shard runtime sizing (workers, batching policy).
    pub runtime: RuntimeConfig,
    /// Response cache sizing.
    pub cache: CacheConfig,
    /// Admission bounds.
    pub admission: AdmissionConfig,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            shards: 2,
            runtime: RuntimeConfig::default(),
            cache: CacheConfig::default(),
            admission: AdmissionConfig::default(),
        }
    }
}

/// The transport-free gateway core: cache → admission → shard router.
#[derive(Debug)]
pub struct Gateway {
    router: ShardRouter,
    cache: RequestCache,
    admission: AdmissionController,
}

impl Gateway {
    /// Builds a gateway serving `models` under `config`.
    pub fn new(models: Vec<PreparedModel>, config: GatewayConfig) -> Self {
        Self::from_shared(models.into_iter().map(Arc::new).collect(), config)
    }

    /// [`new`](Self::new) for already-shared model handles.
    pub fn from_shared(models: Vec<Arc<PreparedModel>>, config: GatewayConfig) -> Self {
        Gateway {
            router: ShardRouter::from_shared(models, config.shards, config.runtime),
            cache: RequestCache::new(config.cache),
            admission: AdmissionController::new(config.admission),
        }
    }

    /// The shard router (shard metrics, direct routing).
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// The response cache.
    pub fn cache(&self) -> &RequestCache {
        &self.cache
    }

    /// The admission controller.
    pub fn admission(&self) -> &AdmissionController {
        &self.admission
    }

    /// Runs one inference through cache, admission, and routing.
    ///
    /// # Errors
    ///
    /// Everything [`panacea_serve::Runtime::infer`] surfaces, plus
    /// [`ServeError::Overloaded`] from admission control.
    pub fn infer(&self, model: &str, payload: Payload) -> Result<InferReply, ServeError> {
        let started = Instant::now();
        let resolved = self
            .router
            .model(model)
            .ok_or_else(|| ServeError::UnknownModel {
                model: model.to_string(),
            })?;
        let codes = match payload {
            Payload::Codes(codes) => codes,
            Payload::F32(input) => resolved.quantize(&input),
        };
        resolved.validate(&codes)?;
        let shard = self.router.route(model);
        if let Some(hit) = self.cache.get(model, &codes) {
            return Ok(InferReply {
                acc: hit.acc,
                scale: hit.scale,
                latency: started.elapsed(),
                shard,
                cache_hit: true,
            });
        }
        let permit = self.admission.try_admit()?;
        let pending = self
            .router
            .submit_to_shard(shard, resolved, codes.clone())?;
        let out = self.admission.wait_bounded(&pending)?;
        drop(permit);
        self.cache.insert(
            model,
            codes,
            CachedOutput {
                acc: out.acc.clone(),
                scale: out.scale,
            },
        );
        Ok(InferReply {
            acc: out.acc,
            scale: out.scale,
            latency: started.elapsed(),
            shard,
            cache_hit: false,
        })
    }

    /// Current gateway-level metrics (per-shard, cache, admission).
    pub fn stats(&self) -> GatewayStats {
        GatewayStats {
            shards: self.router.shard_stats(),
            cache: self.cache.stats(),
            admission: self.admission.stats(),
        }
    }

    /// Dispatches one decoded request to a response — the single entry
    /// point both the TCP server and in-process callers use.
    pub fn handle(&self, request: Request) -> Response {
        match request {
            Request::Stats => Response::Stats(self.stats()),
            Request::Infer { model, payload } => match self.infer(&model, payload) {
                Ok(reply) => Response::Infer(reply),
                Err(e) => Response::Error {
                    kind: error_kind(&e),
                    message: e.to_string(),
                },
            },
        }
    }
}

fn error_kind(e: &ServeError) -> ErrorKind {
    match e {
        ServeError::Overloaded { .. } => ErrorKind::Overloaded,
        ServeError::UnknownModel { .. } => ErrorKind::UnknownModel,
        ServeError::Shape { .. }
        | ServeError::EmptyRequest
        | ServeError::CodesOutOfRange { .. }
        | ServeError::EmptyModel { .. }
        | ServeError::UnalignedRows { .. } => ErrorKind::BadRequest,
        ServeError::ShuttingDown => ErrorKind::ShuttingDown,
        ServeError::WorkerLost | ServeError::Pipeline(_) => ErrorKind::Internal,
    }
}

/// How often blocked reads wake to check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// A blocking TCP front-end over a shared [`Gateway`].
#[derive(Debug)]
pub struct GatewayServer {
    gateway: Arc<Gateway>,
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl GatewayServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting connections, one handler thread per connection.
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures.
    pub fn bind(gateway: Arc<Gateway>, addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let gateway = Arc::clone(&gateway);
            let stop = Arc::clone(&stop);
            thread::Builder::new()
                .name("panacea-gateway-accept".to_string())
                .spawn(move || accept_loop(&listener, &gateway, &stop))
                .expect("spawn acceptor")
        };
        Ok(GatewayServer {
            gateway,
            local_addr,
            stop,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address clients connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The gateway this server fronts.
    pub fn gateway(&self) -> &Arc<Gateway> {
        &self.gateway
    }

    /// Stops accepting, disconnects idle handlers, and joins every
    /// server thread. Idempotent; also invoked by `Drop`.
    pub fn shutdown(&mut self) {
        let Some(acceptor) = self.acceptor.take() else {
            return;
        };
        self.stop.store(true, Ordering::Release);
        // Unblock the acceptor with a throwaway connection. A wildcard
        // bind address is not connectable, so nudge via loopback.
        let mut nudge_addr = self.local_addr;
        if nudge_addr.ip().is_unspecified() {
            nudge_addr.set_ip(match nudge_addr {
                SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect(nudge_addr);
        let _ = acceptor.join();
    }
}

impl Drop for GatewayServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, gateway: &Arc<Gateway>, stop: &Arc<AtomicBool>) {
    let handlers: Mutex<Vec<JoinHandle<()>>> = Mutex::new(Vec::new());
    for (conn, stream) in listener.incoming().enumerate() {
        if stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let gateway = Arc::clone(gateway);
        let stop = Arc::clone(stop);
        let handle = thread::Builder::new()
            .name(format!("panacea-gateway-conn-{conn}"))
            .spawn(move || serve_connection(&gateway, stream, &stop))
            .expect("spawn connection handler");
        let mut guard = handlers.lock().expect("handler list poisoned");
        guard.retain(|h| !h.is_finished());
        guard.push(handle);
    }
    for handle in handlers.into_inner().expect("handler list poisoned") {
        let _ = handle.join();
    }
}

/// Largest accepted request line; a connection streaming more without a
/// newline is answered with an error and closed, bounding per-connection
/// memory.
const MAX_LINE_BYTES: usize = 16 << 20;

/// Bound on how long a response write may stall on a non-reading client
/// before the connection is dropped.
const WRITE_TIMEOUT: Duration = Duration::from_secs(5);

fn serve_connection(gateway: &Gateway, stream: TcpStream, stop: &AtomicBool) {
    // Short read timeouts let the handler notice shutdown while parked
    // on an idle connection; the write timeout keeps a stalled reader
    // from pinning the handler (and shutdown) forever.
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err()
        || stream.set_write_timeout(Some(WRITE_TIMEOUT)).is_err()
    {
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    let respond = |writer: &mut BufWriter<TcpStream>, response: &Response| {
        let encoded = encode_response(response);
        writer
            .write_all(encoded.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_ok()
    };
    loop {
        // `read_line` appends, so a line split across timeouts
        // accumulates until its newline arrives. The `take` budget makes
        // one oversized line surface as a truncated read instead of
        // accumulating without bound inside a single call.
        let budget = (MAX_LINE_BYTES + 1 - line.len()) as u64;
        match std::io::Read::take(&mut reader, budget).read_line(&mut line) {
            Ok(0) => return, // EOF
            Ok(_) => {
                if line.len() > MAX_LINE_BYTES {
                    let _ = respond(
                        &mut writer,
                        &Response::Error {
                            kind: ErrorKind::BadRequest,
                            message: format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                        },
                    );
                    return;
                }
                if !line.ends_with('\n') {
                    continue; // mid-line EOF race; next read settles it
                }
                if line.trim().is_empty() {
                    line.clear();
                    continue;
                }
                let response = match decode_request(&line) {
                    Ok(request) => gateway.handle(request),
                    Err(e) => Response::Error {
                        kind: ErrorKind::BadRequest,
                        message: e.to_string(),
                    },
                };
                line.clear();
                if !respond(&mut writer, &response) {
                    return; // client hung up or stalled mid-response
                }
                // Re-check between requests so a chatty client cannot
                // starve shutdown of its timeout window.
                if stop.load(Ordering::Acquire) {
                    return;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // A timed-out read may still have appended a partial
                // chunk; enforce the cap here too.
                if line.len() > MAX_LINE_BYTES || stop.load(Ordering::Acquire) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{codes, models};
    use panacea_serve::BatchPolicy;
    use panacea_tensor::dist::DistributionKind;
    use panacea_tensor::Matrix;

    #[test]
    fn infer_hits_cache_on_identical_payload() {
        let gateway = Gateway::new(models(&["m"], 1), GatewayConfig::default());
        let model = gateway.router().model("m").expect("registered");
        let x = codes(&model, 2, 0);
        let (expect, _) = model.forward_codes(&x);
        let first = gateway
            .infer("m", Payload::Codes(x.clone()))
            .expect("served");
        assert!(!first.cache_hit);
        assert_eq!(first.acc, expect);
        let second = gateway.infer("m", Payload::Codes(x)).expect("served");
        assert!(second.cache_hit, "identical payload missed the cache");
        assert_eq!(second.acc, expect, "cache replay diverged");
        let stats = gateway.stats();
        assert_eq!(stats.cache.hits, 1);
        // The cached request never re-entered a runtime.
        let total_served: u64 = stats.shards.iter().map(|s| s.requests).sum();
        assert_eq!(total_served, 1);
    }

    #[test]
    fn f32_payload_is_quantized_server_side() {
        let gateway = Gateway::new(models(&["m"], 2), GatewayConfig::default());
        let model = gateway.router().model("m").expect("registered");
        let mut rng = panacea_tensor::seeded_rng(3);
        let input = DistributionKind::Gaussian {
            mean: 0.2,
            std: 0.5,
        }
        .sample_matrix(model.in_features(), 2, &mut rng);
        let (expect, _) = model.forward_codes(&model.quantize(&input));
        let reply = gateway.infer("m", Payload::F32(input)).expect("served");
        assert_eq!(reply.acc, expect);
    }

    #[test]
    fn bad_requests_map_to_protocol_error_kinds() {
        let gateway = Gateway::new(models(&["m"], 3), GatewayConfig::default());
        let ghost = gateway.handle(Request::Infer {
            model: "ghost".to_string(),
            payload: Payload::Codes(Matrix::zeros(16, 1)),
        });
        assert!(matches!(
            ghost,
            Response::Error {
                kind: ErrorKind::UnknownModel,
                ..
            }
        ));
        let misshapen = gateway.handle(Request::Infer {
            model: "m".to_string(),
            payload: Payload::Codes(Matrix::zeros(3, 1)),
        });
        assert!(matches!(
            misshapen,
            Response::Error {
                kind: ErrorKind::BadRequest,
                ..
            }
        ));
    }

    #[test]
    fn overload_rejections_reach_the_response() {
        // One permit and a lingering runtime: the second concurrent
        // request must be rejected, not queued.
        let gateway = Arc::new(Gateway::new(
            models(&["m"], 4),
            GatewayConfig {
                shards: 1,
                runtime: RuntimeConfig {
                    workers: 1,
                    policy: BatchPolicy {
                        max_batch: 4096,
                        max_wait: Duration::from_millis(300),
                    },
                },
                admission: AdmissionConfig {
                    max_in_flight: 1,
                    max_queue_wait: Duration::from_secs(5),
                },
                ..GatewayConfig::default()
            },
        ));
        let model = gateway.router().model("m").expect("registered");
        let slow = {
            let gateway = Arc::clone(&gateway);
            let x = codes(&model, 1, 0);
            thread::spawn(move || gateway.infer("m", Payload::Codes(x)))
        };
        // Give the first request time to take the only permit.
        thread::sleep(Duration::from_millis(50));
        let shed = gateway.infer("m", Payload::Codes(codes(&model, 1, 1)));
        assert!(
            matches!(shed, Err(ServeError::Overloaded { .. })),
            "burst request was not shed: {shed:?}"
        );
        assert!(slow.join().expect("first request").is_ok());
        assert_eq!(gateway.stats().admission.rejected_capacity, 1);
    }

    #[test]
    fn stats_aggregate_all_layers() {
        let gateway = Gateway::new(models(&["a", "b"], 5), GatewayConfig::default());
        let a = gateway.router().model("a").expect("registered");
        for salt in 0..3 {
            gateway
                .infer("a", Payload::Codes(codes(&a, 1, salt)))
                .expect("served");
        }
        let s = gateway.stats();
        assert_eq!(s.shards.len(), 2);
        assert_eq!(s.shards.iter().map(|x| x.requests).sum::<u64>(), 3);
        assert_eq!(s.admission.admitted, 3);
        assert_eq!(s.cache.misses, 3);
        assert_eq!(s.cache.entries, 3);
    }
}
