//! The gateway itself: protocol handling glued to routing, caching, and
//! admission — plus the blocking TCP server that exposes it.
//!
//! [`Gateway`] is the transport-free core (handy for in-process use and
//! tests); [`GatewayServer`] wraps it in a `TcpListener` served by one
//! of two [`IoModel`]s, both bounded by
//! [`ServerConfig::max_connections`]:
//!
//! * [`IoModel::Reactor`] (the default) — a `poll(2)` readiness loop
//!   from `panacea-netcore` multiplexing every connection on one
//!   thread, with a fixed worker pool executing requests. Threads stay
//!   O(workers) at any connection count.
//! * [`IoModel::Threaded`] — one blocking handler thread per
//!   connection. Shutdown is wakeup-driven (Condvar plus socket
//!   half-close), not poll-interval-driven.
//!
//! Either way, dropping the server stops accepting, drains or
//! disconnects live connections, and joins every server thread.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use panacea_faultline::Fault;

use panacea_netcore::{
    ConnObserver, ConnStage, ConnectionCounters, EvictReason, Reactor, ReactorConfig,
    Service as NetService,
};
use panacea_serve::{
    OverloadReason, Payload, PreparedModel, RuntimeConfig, ServeError, SessionConfig,
    SessionManager,
};
use panacea_telemetry::{
    jsonl_metrics_line, unix_ms_now, EventSeverity, FlightRecorder, HealthReport, Histogram,
    IncidentSnapshot, MetricRegistry, PrometheusText, SloConfig, SloStatus, TraceBuilder,
    TraceConfig, Tracer, ROOT_SPAN, STAGE_REQUEST,
};
use panacea_tensor::Matrix;

use crate::admission::{AdmissionConfig, AdmissionController};
use crate::cache::{CacheConfig, CachedOutput, RequestCache};
use crate::protocol::{
    decode_request, encode_response, DecodeReply, DimSummary, ErrorKind, EventSummary, EventsReply,
    GatewayMetrics, GatewayStats, IncidentSummary, InferReply, Request, Response,
    SessionCloseReply, SessionOpenReply, ShedStats, StageSummary, TraceKind, TraceReply,
    TraceSummary,
};
use crate::router::ShardRouter;

/// The sliding window the `metrics` verb's dimensional summaries cover.
const DIMS_WINDOW: Duration = Duration::from_secs(10);

/// Flight-recorder ring capacity: enough to hold the lifecycle of a
/// burst (opens, sheds, evictions, health flips) without the ring
/// churning past an incident before anyone asks.
const EVENT_CAPACITY: usize = 256;

/// How many slow traces an incident snapshot freezes at the flip.
const INCIDENT_TRACES: usize = 16;

/// Everything a gateway deployment tunes.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Number of serving shards (independent runtimes).
    pub shards: usize,
    /// Per-shard runtime sizing (workers, batching policy).
    pub runtime: RuntimeConfig,
    /// Response cache sizing.
    pub cache: CacheConfig,
    /// Admission bounds.
    pub admission: AdmissionConfig,
    /// Per-shard decode-session bounds (idle timeout, KV byte budget).
    pub session: SessionConfig,
    /// Request-tracing knobs (slow threshold, ring sizes).
    pub trace: TraceConfig,
    /// SLO targets the `health` verb evaluates over windowed
    /// dimensional metrics. The default targets are deliberately
    /// generous (2s p99, 50% shed budget) so an untuned gateway reports
    /// `ok`; deployments tighten from there.
    pub slo: SloConfig,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            shards: 2,
            runtime: RuntimeConfig::default(),
            cache: CacheConfig::default(),
            admission: AdmissionConfig::default(),
            session: SessionConfig::default(),
            trace: TraceConfig::default(),
            slo: SloConfig::default(),
        }
    }
}

/// The gateway's connection-handling stage histograms (nanoseconds).
#[derive(Debug, Default)]
struct GatewayStages {
    parse: Histogram,
    cache_probe: Histogram,
    admission_wait: Histogram,
    route: Histogram,
    execute: Histogram,
}

/// Per-reason overload shed counters, incremented where errors surface
/// at the gateway's public verbs.
#[derive(Debug, Default)]
struct ShedCounters {
    in_flight: AtomicU64,
    queue_wait: AtomicU64,
    kv_budget: AtomicU64,
}

impl ShedCounters {
    /// Counts a shed if `e` is one; returns whether it was.
    fn count(&self, e: &ServeError) -> bool {
        let counter = match e {
            ServeError::Overloaded {
                reason: OverloadReason::InFlight { .. },
            } => &self.in_flight,
            ServeError::Overloaded {
                reason: OverloadReason::QueueWait { .. },
            } => &self.queue_wait,
            ServeError::KvBudgetExceeded { .. } => &self.kv_budget,
            _ => return false,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        true
    }

    fn snapshot(&self) -> ShedStats {
        ShedStats {
            in_flight: self.in_flight.load(Ordering::Relaxed),
            queue_wait: self.queue_wait.load(Ordering::Relaxed),
            kv_budget: self.kv_budget.load(Ordering::Relaxed),
        }
    }
}

/// The transport-free gateway core: cache → admission → shard router,
/// plus one [`SessionManager`] per shard holding decode-session KV
/// state (a session is *pinned* to the shard that opened it — its
/// state lives there, so every step routes there).
#[derive(Debug)]
pub struct Gateway {
    router: ShardRouter,
    cache: RequestCache,
    admission: AdmissionController,
    sessions: Vec<SessionManager>,
    started: Instant,
    seq: AtomicU64,
    stages: GatewayStages,
    tracer: Tracer,
    dims: MetricRegistry,
    slo: SloConfig,
    sheds: ShedCounters,
    recorder: FlightRecorder,
    conns: ConnectionCounters,
    /// The health verdict as of the last `health()` evaluation —
    /// transition detection is evaluation-point-driven: a flip is
    /// noticed (and an incident pinned) when health is next *asked*,
    /// not at the instant metrics crossed the budget.
    last_status: Mutex<SloStatus>,
}

impl Gateway {
    /// Builds a gateway serving `models` under `config`.
    pub fn new(models: Vec<PreparedModel>, config: GatewayConfig) -> Self {
        Self::from_shared(models.into_iter().map(Arc::new).collect(), config)
    }

    /// [`new`](Self::new) for already-shared model handles.
    pub fn from_shared(models: Vec<Arc<PreparedModel>>, config: GatewayConfig) -> Self {
        let dims = MetricRegistry::default();
        let recorder = FlightRecorder::with_capacity(EVENT_CAPACITY);
        let router = ShardRouter::from_shared_with_observability(
            models,
            config.shards,
            config.runtime,
            dims.clone(),
            recorder.clone(),
        );
        let sessions = (0..router.num_shards())
            .map(|_| {
                SessionManager::with_observability(config.session, dims.clone(), recorder.clone())
            })
            .collect();
        Gateway {
            router,
            cache: RequestCache::new(config.cache),
            admission: AdmissionController::new(config.admission),
            sessions,
            started: Instant::now(),
            seq: AtomicU64::new(0),
            stages: GatewayStages::default(),
            tracer: Tracer::new(config.trace),
            dims,
            slo: config.slo,
            sheds: ShedCounters::default(),
            recorder,
            conns: ConnectionCounters::default(),
            last_status: Mutex::new(SloStatus::Ok),
        }
    }

    /// The dimensional metric registry shared by every layer of this
    /// gateway (wire verbs, runtimes, session managers, decode
    /// batchers).
    pub fn dims(&self) -> &MetricRegistry {
        &self.dims
    }

    /// Records one public verb's outcome under its (model, verb,
    /// `request`) dimension: the request latency plus an ok / error /
    /// shed outcome, with sheds also counted per reason for the `stats`
    /// verb's breakdown.
    fn record_verb<T>(
        &self,
        model: &str,
        verb: &'static str,
        started: Instant,
        out: &Result<T, ServeError>,
    ) {
        let cell = self.dims.cell(model, verb, STAGE_REQUEST);
        cell.record_latency(started.elapsed());
        match out {
            Ok(_) => cell.record_ok(),
            Err(e) if self.sheds.count(e) => {
                cell.record_shed();
                self.recorder.record(
                    EventSeverity::Warn,
                    "shed",
                    format!("reason={} model={model} verb={verb}", shed_reason(e)),
                );
            }
            Err(_) => cell.record_error(),
        }
    }

    /// The shard router (shard metrics, direct routing).
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// The response cache.
    pub fn cache(&self) -> &RequestCache {
        &self.cache
    }

    /// The admission controller.
    pub fn admission(&self) -> &AdmissionController {
        &self.admission
    }

    /// One shard's session manager (session counts, KV footprint).
    ///
    /// # Panics
    ///
    /// Panics if `shard >= self.router().num_shards()`.
    pub fn sessions(&self, shard: usize) -> &SessionManager {
        &self.sessions[shard]
    }

    /// Runs one stateless typed inference through cache, admission, and
    /// routing: codes for a linear chain, hidden states for a
    /// transformer-block model. There is no per-kind entry point — a
    /// payload of the wrong kind for the model fails validation with
    /// [`ServeError::PayloadKindMismatch`].
    ///
    /// # Errors
    ///
    /// Everything [`panacea_serve::Runtime::infer`] surfaces, plus
    /// [`ServeError::Overloaded`] from admission control.
    pub fn infer(&self, model: &str, payload: Payload) -> Result<InferReply, ServeError> {
        self.infer_deadline(model, payload, None)
    }

    /// [`infer`](Self::infer) bounded by a caller deadline: once
    /// `deadline` passes, the request is rejected at admission, dropped
    /// from the queue before any GEMM runs, or released from its wait —
    /// whichever comes first — with [`ServeError::DeadlineExceeded`].
    ///
    /// # Errors
    ///
    /// [`ServeError::DeadlineExceeded`] past the deadline, plus
    /// everything [`infer`](Self::infer) surfaces.
    pub fn infer_deadline(
        &self,
        model: &str,
        payload: Payload,
        deadline: Option<Instant>,
    ) -> Result<InferReply, ServeError> {
        let started = Instant::now();
        let mut tb = self.tracer.begin("infer");
        let out = self.infer_traced(model, payload, &mut tb, deadline);
        self.tracer.finish(tb);
        self.record_verb(model, "infer", started, &out);
        out
    }

    fn infer_traced(
        &self,
        model: &str,
        payload: Payload,
        tb: &mut TraceBuilder,
        deadline: Option<Instant>,
    ) -> Result<InferReply, ServeError> {
        let started = Instant::now();
        let resolved = self.resolve(model)?;
        let (out, scale, shard, cache_hit) = self.execute(resolved, payload, tb, deadline)?;
        Ok(InferReply {
            payload: out,
            scale,
            latency: started.elapsed(),
            shard,
            cache_hit,
        })
    }

    /// [`infer`](Self::infer) on float activations: the server converts
    /// them into the model's native payload (quantizes for chains,
    /// passes through for block models) before the shared request path.
    ///
    /// # Errors
    ///
    /// Same as [`infer`](Self::infer).
    pub fn infer_f32(&self, model: &str, input: Matrix<f32>) -> Result<InferReply, ServeError> {
        self.infer_f32_deadline(model, input, None)
    }

    /// [`infer_f32`](Self::infer_f32) bounded by a caller deadline —
    /// see [`infer_deadline`](Self::infer_deadline).
    ///
    /// # Errors
    ///
    /// [`ServeError::DeadlineExceeded`] past the deadline, plus
    /// everything [`infer_f32`](Self::infer_f32) surfaces.
    pub fn infer_f32_deadline(
        &self,
        model: &str,
        input: Matrix<f32>,
        deadline: Option<Instant>,
    ) -> Result<InferReply, ServeError> {
        let started = Instant::now();
        let mut tb = self.tracer.begin("infer");
        let out = self.infer_f32_traced(model, input, &mut tb, deadline);
        self.tracer.finish(tb);
        // Recorded under "infer": both wire forms share the verb.
        self.record_verb(model, "infer", started, &out);
        out
    }

    fn infer_f32_traced(
        &self,
        model: &str,
        input: Matrix<f32>,
        tb: &mut TraceBuilder,
        deadline: Option<Instant>,
    ) -> Result<InferReply, ServeError> {
        let started = Instant::now();
        let resolved = self.resolve(model)?;
        let payload = tb.span("quantize", ROOT_SPAN, || resolved.quantize(&input));
        let (out, scale, shard, cache_hit) = self.execute(resolved, payload, tb, deadline)?;
        Ok(InferReply {
            payload: out,
            scale,
            latency: started.elapsed(),
            shard,
            cache_hit,
        })
    }

    /// Opens a decode session on a transformer-block model, pinning it
    /// to the shard whose session manager currently holds the least KV
    /// state (ties broken by open-session count, then shard index).
    /// Stateless routing balances by runtime queue depth, but decode
    /// steps never enter the runtime queue — placing by session load is
    /// what actually spreads KV memory, so N shards really do give N ×
    /// `max_kv_bytes` of aggregate session capacity. The open counts
    /// against the admission controller's in-flight bound, so a
    /// session-open storm is shed like any other burst.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`], [`ServeError::PayloadKindMismatch`]
    /// for linear chains, and [`ServeError::Overloaded`] when admission
    /// sheds the open.
    pub fn session_open(&self, model: &str) -> Result<SessionOpenReply, ServeError> {
        let started = Instant::now();
        let mut tb = self.tracer.begin("session_open");
        let out = self.session_open_traced(model, &mut tb);
        self.tracer.finish(tb);
        self.record_verb(model, "session_open", started, &out);
        out
    }

    fn session_open_traced(
        &self,
        model: &str,
        tb: &mut TraceBuilder,
    ) -> Result<SessionOpenReply, ServeError> {
        let resolved = self.resolve(model)?;
        let span = tb.start_span("admission_wait", ROOT_SPAN);
        let permit = self.admission.try_admit();
        self.stages
            .admission_wait
            .record_duration(tb.end_span(span));
        let permit = permit?;
        let span = tb.start_span("route", ROOT_SPAN);
        let shard = self
            .sessions
            .iter()
            .enumerate()
            .min_by_key(|(i, mgr)| {
                let s = mgr.stats();
                (s.kv_bytes, s.open_sessions, *i)
            })
            .map(|(i, _)| i)
            .expect("gateway always has at least one shard");
        self.stages.route.record_duration(tb.end_span(span));
        let span = tb.start_span("execute", ROOT_SPAN);
        let session = self.sessions[shard].open(resolved);
        self.stages.execute.record_duration(tb.end_span(span));
        let session = session?;
        drop(permit);
        Ok(SessionOpenReply { session, shard })
    }

    /// Advances a decode session by one or more new token columns,
    /// executing on the shard that holds its KV state (session
    /// affinity). Decode steps take an admission permit like any other
    /// request but **never** touch the [`RequestCache`]: a step's
    /// output depends on the session's KV prefix, so replaying a cached
    /// step would corrupt session state — the session path is
    /// structurally cache-free (see the regression test).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] for closed/evicted sessions,
    /// [`ServeError::Overloaded`] from admission,
    /// [`ServeError::KvBudgetExceeded`] when the step cannot fit the
    /// shard's KV budget, and the input-contract errors of
    /// [`panacea_serve::SessionManager::step`].
    pub fn decode(&self, session: u64, hidden: &Matrix<f32>) -> Result<DecodeReply, ServeError> {
        self.decode_deadline(session, hidden, None)
    }

    /// [`decode`](Self::decode) bounded by a caller deadline: an expired
    /// step is dropped before it executes (the session's KV state is
    /// untouched, so the caller can simply resubmit the same columns)
    /// and answered [`ServeError::DeadlineExceeded`].
    ///
    /// # Errors
    ///
    /// [`ServeError::DeadlineExceeded`] past the deadline, plus
    /// everything [`decode`](Self::decode) surfaces.
    pub fn decode_deadline(
        &self,
        session: u64,
        hidden: &Matrix<f32>,
        deadline: Option<Instant>,
    ) -> Result<DecodeReply, ServeError> {
        let started = Instant::now();
        // Attribution happens before the step: a session that errors
        // mid-step (or gets evicted by it) still records under its
        // model. Unknown sessions record under "-".
        let model = self.session_model(session);
        let mut tb = self.tracer.begin("decode");
        let out = self.decode_traced(session, hidden, &mut tb, deadline);
        self.tracer.finish(tb);
        self.record_verb(model.as_deref().unwrap_or("-"), "decode", started, &out);
        out
    }

    fn decode_traced(
        &self,
        session: u64,
        hidden: &Matrix<f32>,
        tb: &mut TraceBuilder,
        deadline: Option<Instant>,
    ) -> Result<DecodeReply, ServeError> {
        let started = Instant::now();
        let span = tb.start_span("admission_wait", ROOT_SPAN);
        let permit = self.admission.try_admit();
        self.stages
            .admission_wait
            .record_duration(tb.end_span(span));
        let permit = permit?;
        let span = tb.start_span("route", ROOT_SPAN);
        let shard = self.find_session(session);
        self.stages.route.record_duration(tb.end_span(span));
        let shard = shard.ok_or(ServeError::UnknownSession { session })?;
        let span = tb.start_span("execute", ROOT_SPAN);
        // The step executes on other threads (the shard's decode
        // batcher); hand them a context so their queue_wait/decode_pass
        // spans land inside this request's execute span.
        let ctx = self.tracer.context(tb, span);
        let stepped =
            self.sessions[shard].step_traced_deadline(session, hidden, Some(ctx), deadline);
        self.stages.execute.record_duration(tb.end_span(span));
        let (out, tokens, _wl) = stepped?;
        drop(permit);
        Ok(DecodeReply {
            hidden: out,
            tokens,
            shard,
            latency: started.elapsed(),
        })
    }

    /// Closes a decode session, freeing its KV state on its shard.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] if it does not exist (never
    /// opened, already closed, or evicted).
    pub fn session_close(&self, session: u64) -> Result<SessionCloseReply, ServeError> {
        let started = Instant::now();
        let model = self.session_model(session);
        let mut tb = self.tracer.begin("session_close");
        let span = tb.start_span("route", ROOT_SPAN);
        let shard = self.find_session(session);
        self.stages.route.record_duration(tb.end_span(span));
        let out = shard
            .ok_or(ServeError::UnknownSession { session })
            .and_then(|shard| {
                let span = tb.start_span("execute", ROOT_SPAN);
                let closed = self.sessions[shard].close(session);
                self.stages.execute.record_duration(tb.end_span(span));
                closed
            })
            .map(|tokens| SessionCloseReply { session, tokens });
        self.tracer.finish(tb);
        self.record_verb(
            model.as_deref().unwrap_or("-"),
            "session_close",
            started,
            &out,
        );
        out
    }

    /// The shard holding a session's KV state. Session ids are
    /// process-unique, so at most one manager answers.
    fn find_session(&self, session: u64) -> Option<usize> {
        (0..self.sessions.len()).find(|&s| self.sessions[s].contains(session))
    }

    /// The model a live session decodes, for metric attribution.
    fn session_model(&self, session: u64) -> Option<String> {
        self.find_session(session)
            .and_then(|s| self.sessions[s].model_name(session))
    }

    /// Resolves a model name against the shared registry.
    fn resolve(&self, model: &str) -> Result<Arc<PreparedModel>, ServeError> {
        self.router
            .model(model)
            .ok_or_else(|| ServeError::UnknownModel {
                model: model.to_string(),
            })
    }

    /// The shared request path behind both verbs: cache probe →
    /// admission → shard submit → bounded wait → cache insert. Returns
    /// `(payload, scale, shard, cache_hit)` in the model's wire domain
    /// (integer accumulators, or f32 bit patterns for block models).
    fn execute(
        &self,
        resolved: Arc<PreparedModel>,
        payload: Payload,
        tb: &mut TraceBuilder,
        deadline: Option<Instant>,
    ) -> Result<(Payload, f64, usize, bool), ServeError> {
        // Chaos hook: scripted plans panic, stall, or fail the gateway's
        // execute path here, before any routing or submission happens.
        if let Some(fault) = panacea_faultline::point("gateway.execute") {
            if matches!(fault, Fault::Error) {
                return Err(ServeError::Internal {
                    at: "gateway_execute",
                });
            }
        }
        // Validation happens exactly once, inside the runtime's submit
        // path (`validate` is a full scan of the payload — scanning
        // here too would double the cost on every uncached request).
        // The cache-hit fast path needs no scan of its own: entries are
        // only written after a validated run, and hits require bit-exact
        // key equality, so an invalid payload can never match one.
        let span = tb.start_span("route", ROOT_SPAN);
        let shard = self.router.route(resolved.name());
        self.stages.route.record_duration(tb.end_span(span));
        // A disabled cache — or an entry the size bound would reject
        // anyway (its result dims are known up front) — skips the whole
        // probe-and-insert dance, including the payload clones and the
        // content hash, which are full passes over the payload.
        let entry_cells = payload.cells() + resolved.out_features() * payload.cols();
        let cached = self.cache.enabled() && self.cache.admits(entry_cells);
        // Cache entries key on the resolved instance, not the name: if
        // the name is later re-bound to a new preparation, its old
        // entries can never answer for the replacement.
        let resolved_id = resolved.instance_id();
        if cached {
            let span = tb.start_span("cache_probe", ROOT_SPAN);
            let hit = self.cache.get(resolved_id, &payload);
            self.stages.cache_probe.record_duration(tb.end_span(span));
            if let Some(hit) = hit {
                return Ok((hit.payload, hit.scale, shard, true));
            }
        }
        let span = tb.start_span("admission_wait", ROOT_SPAN);
        let permit = self.admission.try_admit();
        self.stages
            .admission_wait
            .record_duration(tb.end_span(span));
        let permit = permit?;
        let span = tb.start_span("execute", ROOT_SPAN);
        // The runtime's batch worker records queue_wait / batch_form /
        // execute / split_back under this span via the context.
        let ctx = self.tracer.context(tb, span);
        let ran: Result<_, ServeError> = (|| {
            let (pending, kept_payload) = if cached {
                let pending = self.router.submit_to_shard_traced_deadline(
                    shard,
                    Arc::clone(&resolved),
                    payload.clone(),
                    Some(ctx),
                    deadline,
                )?;
                (pending, Some(payload))
            } else {
                (
                    self.router.submit_to_shard_traced_deadline(
                        shard,
                        resolved,
                        payload,
                        Some(ctx),
                        deadline,
                    )?,
                    None,
                )
            };
            Ok((
                self.admission.wait_bounded_deadline(&pending, deadline)?,
                kept_payload,
            ))
        })();
        self.stages.execute.record_duration(tb.end_span(span));
        let (out, kept_payload) = ran?;
        drop(permit);
        if let Some(payload) = kept_payload {
            self.cache.insert(
                resolved_id,
                payload,
                CachedOutput {
                    payload: out.payload.clone(),
                    scale: out.scale,
                },
            );
        }
        Ok((out.payload, out.scale, shard, false))
    }

    /// Current gateway-level metrics (per-shard serving and session
    /// counters, cache, admission).
    pub fn stats(&self) -> GatewayStats {
        let mut shards = self.router.shard_stats();
        for (shard, mgr) in shards.iter_mut().zip(&self.sessions) {
            let s = mgr.stats();
            shard.open_sessions = s.open_sessions as u64;
            shard.kv_bytes = s.kv_bytes as u64;
            shard.decode_steps = s.steps;
            shard.decode_tokens = s.tokens;
            shard.decode_batches = s.decode_batches;
            shard.decode_batch_occupancy = s.decode_batch_occupancy();
            shard.decode_padded_cols = s.decode_padded_cols;
            // The router filled the runtime layer's fault counters; the
            // session layer (decode batcher, inline steps) adds its own.
            shard.worker_panics += s.worker_panics;
            shard.expired += s.expired_steps;
            shard.evicted_poisoned = s.evicted_poisoned;
        }
        GatewayStats {
            shards,
            cache: self.cache.stats(),
            admission: self.admission.stats(),
            sheds: self.sheds.snapshot(),
            connections: self.conns.snapshot(),
            uptime_ms: self.uptime_ms(),
            seq: self.next_seq(),
        }
    }

    /// The transport-level connection gauges this gateway's server (of
    /// either io model) updates and the `stats` verb reports.
    pub fn connections(&self) -> &ConnectionCounters {
        &self.conns
    }

    fn uptime_ms(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// The next snapshot sequence number — strictly increasing across
    /// every `stats`/`metrics` snapshot this gateway assembles.
    fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The request tracer (slow-trace rings, trace knobs).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Records one wire-parse duration into the gateway's `parse` stage
    /// histogram (called by the TCP handler; in-process callers skip
    /// parsing entirely).
    pub fn record_parse(&self, elapsed: Duration) {
        self.stages.parse.record_duration(elapsed);
    }

    /// Per-stage latency quantile summaries: the gateway's own
    /// connection-handling stages, every shard's serving and session
    /// stages, and the process-global block sub-layer stages.
    pub fn metrics(&self) -> GatewayMetrics {
        let gateway = [
            ("parse", self.stages.parse.snapshot()),
            ("cache_probe", self.stages.cache_probe.snapshot()),
            ("admission_wait", self.stages.admission_wait.snapshot()),
            ("route", self.stages.route.snapshot()),
            ("execute", self.stages.execute.snapshot()),
        ]
        .iter()
        .map(|(name, snap)| StageSummary::from_snapshot(name, snap))
        .collect();
        let shards = (0..self.router.num_shards())
            .map(|i| {
                self.router
                    .shard(i)
                    .stage_snapshots()
                    .iter()
                    .chain(self.sessions[i].stage_snapshots().iter())
                    .map(|(name, snap)| StageSummary::from_snapshot(name, snap))
                    .collect()
            })
            .collect();
        let block = panacea_block::stage_snapshots()
            .iter()
            .map(|(name, snap)| StageSummary::from_snapshot(name, snap))
            .collect();
        let dims = self
            .dims
            .windows(DIMS_WINDOW)
            .iter()
            .map(|(key, w)| DimSummary::from_window(key, w))
            .collect();
        GatewayMetrics {
            uptime_ms: self.uptime_ms(),
            seq: self.next_seq(),
            gateway,
            shards,
            block,
            dims_window_ms: u64::try_from(DIMS_WINDOW.as_millis()).unwrap_or(u64::MAX),
            dims,
        }
    }

    /// Evaluates the configured SLO targets over the windowed
    /// dimensional metrics: one report per target plus the overall
    /// worst-case verdict.
    ///
    /// Transitions are detected here, at evaluation time: when the
    /// verdict differs from the previous evaluation's, a
    /// `health_transition` event is recorded (warn for degraded, error
    /// for critical, info for recovery), and a flip *into*
    /// degraded/critical additionally pins an [`IncidentSnapshot`] —
    /// the recent events, the slow traces, and the dims window frozen
    /// at the flip — retrievable via the `events` verb long after the
    /// ring has churned and health has recovered.
    pub fn health(&self) -> HealthReport {
        let report = self.slo.evaluate(&self.dims);
        let mut last = self
            .last_status
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if report.status != *last {
            let from = *last;
            *last = report.status;
            // Holding the lock across record+pin keeps concurrent
            // evaluations from interleaving their transitions.
            let severity = match report.status {
                SloStatus::Ok => EventSeverity::Info,
                SloStatus::Degraded => EventSeverity::Warn,
                SloStatus::Critical => EventSeverity::Error,
            };
            self.recorder.record(
                severity,
                "health_transition",
                format!("from={} to={}", from.as_str(), report.status.as_str()),
            );
            if report.status > SloStatus::Ok {
                self.recorder.pin(IncidentSnapshot {
                    unix_ms: unix_ms_now(),
                    status: report.status,
                    events: self.recorder.recent(EVENT_CAPACITY),
                    traces: self.tracer.slow(INCIDENT_TRACES),
                    dims: self.dims.windows(DIMS_WINDOW),
                });
            }
        }
        report
    }

    /// The flight recorder shared by every layer of this gateway.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Flight-recorder state for the `events` verb: the most recent
    /// events (newest first, up to `limit`) plus the pinned incident
    /// snapshot if health ever flipped.
    pub fn events(&self, limit: usize) -> EventsReply {
        EventsReply {
            events: self
                .recorder
                .recent(limit)
                .iter()
                .map(EventSummary::from)
                .collect(),
            pinned: self.recorder.pinned().as_ref().map(IncidentSummary::from),
        }
    }

    /// Renders the gateway's metrics as a Prometheus text exposition:
    /// every registry dim as a `panacea_dim_latency_ns` histogram plus
    /// `panacea_dim_outcomes_total` counters, and every stage histogram
    /// as `panacea_stage_duration_ns` scoped by layer (`gateway`,
    /// `shard<N>`, `block`).
    pub fn prometheus(&self) -> String {
        let mut text = PrometheusText::new();
        for (key, w) in self.dims.windows(DIMS_WINDOW) {
            let labels = [
                ("model", key.model.as_str()),
                ("verb", key.verb.as_str()),
                ("stage", key.stage.as_str()),
            ];
            text.histogram("panacea_dim_latency_ns", &labels, &w.latency);
            for (outcome, value) in [("ok", w.ok), ("error", w.error), ("shed", w.shed)] {
                let mut with_outcome = labels.to_vec();
                with_outcome.push(("outcome", outcome));
                text.counter("panacea_dim_outcomes_total", &with_outcome, value);
            }
        }
        let gateway_stages = [
            ("parse", self.stages.parse.snapshot()),
            ("cache_probe", self.stages.cache_probe.snapshot()),
            ("admission_wait", self.stages.admission_wait.snapshot()),
            ("route", self.stages.route.snapshot()),
            ("execute", self.stages.execute.snapshot()),
        ];
        for (stage, snap) in &gateway_stages {
            text.histogram(
                "panacea_stage_duration_ns",
                &[("scope", "gateway"), ("stage", stage)],
                snap,
            );
        }
        for i in 0..self.router.num_shards() {
            let scope = format!("shard{i}");
            let stages = self
                .router
                .shard(i)
                .stage_snapshots()
                .into_iter()
                .chain(self.sessions[i].stage_snapshots());
            for (stage, snap) in stages {
                text.histogram(
                    "panacea_stage_duration_ns",
                    &[("scope", scope.as_str()), ("stage", stage)],
                    &snap,
                );
            }
        }
        for (stage, snap) in panacea_block::stage_snapshots() {
            text.histogram(
                "panacea_stage_duration_ns",
                &[("scope", "block"), ("stage", stage)],
                &snap,
            );
        }
        text.counter("panacea_events_total", &[], self.recorder.recorded());
        text.finish()
    }

    /// Renders one sweep of the windowed dims as a single JSONL metric
    /// line anchored at the current wall clock (see
    /// [`jsonl_metrics_line`]).
    pub fn metrics_jsonl(&self) -> String {
        jsonl_metrics_line(unix_ms_now(), &self.dims.windows(DIMS_WINDOW))
    }

    /// Recorded request traces, newest first: the pinned slow ring
    /// ([`TraceKind::Slow`]) or the most recent traces regardless of
    /// duration ([`TraceKind::Recent`]).
    pub fn traces(&self, limit: usize, kind: TraceKind) -> TraceReply {
        let traces = match kind {
            TraceKind::Slow => self.tracer.slow(limit),
            TraceKind::Recent => self.tracer.recent(limit),
        };
        TraceReply {
            traces: traces.iter().map(TraceSummary::from).collect(),
        }
    }

    /// Dispatches one decoded request to a response — the single entry
    /// point both the TCP server and in-process callers use.
    pub fn handle(&self, request: Request) -> Response {
        fn reply<T>(r: Result<T, ServeError>, wrap: impl FnOnce(T) -> Response) -> Response {
            match r {
                Ok(v) => wrap(v),
                Err(e) => Response::Error {
                    kind: error_kind(&e),
                    message: e.to_string(),
                },
            }
        }
        match request {
            Request::Stats => Response::Stats(self.stats()),
            Request::Metrics => Response::Metrics(self.metrics()),
            Request::Trace { limit, kind } => Response::Trace(self.traces(limit, kind)),
            Request::Health => Response::Health(self.health()),
            Request::Events { limit } => Response::Events(self.events(limit)),
            Request::Infer {
                model,
                payload,
                deadline_ms,
            } => reply(
                self.infer_deadline(&model, payload, wire_deadline(deadline_ms)),
                Response::Infer,
            ),
            Request::InferF32 {
                model,
                input,
                deadline_ms,
            } => reply(
                self.infer_f32_deadline(&model, input, wire_deadline(deadline_ms)),
                Response::Infer,
            ),
            Request::SessionOpen { model } => {
                reply(self.session_open(&model), Response::SessionOpen)
            }
            Request::Decode {
                session,
                hidden,
                deadline_ms,
            } => reply(
                self.decode_deadline(session, &hidden, wire_deadline(deadline_ms)),
                Response::Decode,
            ),
            Request::SessionClose { session } => {
                reply(self.session_close(session), Response::SessionClose)
            }
        }
    }
}

/// The flight-recorder spelling of a shed's cause (mirrors
/// [`ShedCounters::count`]'s per-reason buckets).
fn shed_reason(e: &ServeError) -> &'static str {
    match e {
        ServeError::Overloaded {
            reason: OverloadReason::InFlight { .. },
        } => "in_flight",
        ServeError::Overloaded {
            reason: OverloadReason::QueueWait { .. },
        } => "queue_wait",
        ServeError::KvBudgetExceeded { .. } => "kv_budget",
        _ => "other",
    }
}

/// Converts a wire `deadline_ms` into the absolute deadline the serving
/// layers enforce, anchored at the moment the request is dispatched.
fn wire_deadline(deadline_ms: Option<u64>) -> Option<Instant> {
    deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms))
}

fn error_kind(e: &ServeError) -> ErrorKind {
    match e {
        ServeError::Overloaded { .. } | ServeError::KvBudgetExceeded { .. } => {
            ErrorKind::Overloaded
        }
        ServeError::DeadlineExceeded => ErrorKind::DeadlineExceeded,
        ServeError::UnknownModel { .. } => ErrorKind::UnknownModel,
        ServeError::UnknownSession { .. } => ErrorKind::UnknownSession,
        ServeError::Shape { .. }
        | ServeError::EmptyRequest
        | ServeError::CodesOutOfRange { .. }
        | ServeError::NonFiniteInput
        | ServeError::PayloadKindMismatch { .. }
        | ServeError::EmptyModel { .. }
        | ServeError::UnalignedRows { .. } => ErrorKind::BadRequest,
        ServeError::ShuttingDown => ErrorKind::ShuttingDown,
        ServeError::WorkerLost | ServeError::Pipeline(_) | ServeError::Internal { .. } => {
            ErrorKind::Internal
        }
    }
}

/// Bound on accept-failure backoff, and the pacing unit a couple of
/// transport tests reuse. Sleeps against it are Condvar waits that
/// shutdown interrupts immediately — nothing busy-polls at this
/// interval anymore.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Largest accepted request line; a connection streaming more without a
/// newline is answered with an error and closed, bounding per-connection
/// memory.
const MAX_LINE_BYTES: usize = 16 << 20;

/// Bound on how long a response write may stall on a non-reading client
/// before the connection is dropped.
const WRITE_TIMEOUT: Duration = Duration::from_secs(5);

/// Upper bound on the reactor's shutdown drain (in-flight requests
/// completing and flushing) before survivors are force-evicted.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(5);

/// Which transport serves connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoModel {
    /// One blocking handler thread per connection: threads grow with
    /// connections. Simple, and still available for comparison runs.
    Threaded,
    /// One `poll(2)` reactor thread multiplexing every connection, with
    /// a fixed worker pool executing requests: threads stay O(workers)
    /// however many connections are open. The default.
    Reactor,
}

impl IoModel {
    /// Reads `PANACEA_IO_MODEL` (`"threaded"` / `"reactor"`), defaulting
    /// to [`IoModel::Reactor`] when unset or unrecognized.
    pub fn from_env() -> IoModel {
        match std::env::var("PANACEA_IO_MODEL").as_deref() {
            Ok("threaded") => IoModel::Threaded,
            _ => IoModel::Reactor,
        }
    }

    /// Stable spelling (matches the `PANACEA_IO_MODEL` values).
    pub fn as_str(self) -> &'static str {
        match self {
            IoModel::Threaded => "threaded",
            IoModel::Reactor => "reactor",
        }
    }
}

/// Transport-level knobs for [`GatewayServer`] (distinct from
/// [`GatewayConfig`], which sizes the transport-free [`Gateway`] core).
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Maximum simultaneously connected clients. Connections past the
    /// bound are answered with one [`ErrorKind::Overloaded`] error line
    /// and closed, so an untrusted peer opening sockets cannot force
    /// unbounded resource use.
    pub max_connections: usize,
    /// Which transport serves connections. Defaults to
    /// [`IoModel::from_env`] — reactor unless `PANACEA_IO_MODEL`
    /// says otherwise.
    pub io_model: IoModel,
    /// Request-execution worker threads under [`IoModel::Reactor`]
    /// (ignored by the threaded model, whose handler threads do their
    /// own execution).
    pub reactor_workers: usize,
    /// Reactor write backlog (bytes) above which a connection stops
    /// being read from and dispatched until the peer drains.
    pub max_write_backlog: usize,
    /// How long a response write may make zero progress on a
    /// non-reading client before the connection is evicted. Under the
    /// threaded model this is the socket write timeout.
    pub write_stall_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 1024,
            io_model: IoModel::from_env(),
            reactor_workers: 4,
            max_write_backlog: 4 << 20,
            write_stall_timeout: WRITE_TIMEOUT,
        }
    }
}

/// The [`panacea_netcore::Service`] gluing the reactor to the gateway:
/// parse (timed into the `parse` stage histogram) → handle → encode.
struct GatewayService {
    gateway: Arc<Gateway>,
}

impl NetService for GatewayService {
    fn serve(&self, line: &str) -> String {
        let parse_started = Instant::now();
        let decoded = decode_request(line);
        self.gateway.record_parse(parse_started.elapsed());
        let response = match decoded {
            Ok(request) => self.gateway.handle(request),
            Err(e) => Response::Error {
                kind: ErrorKind::BadRequest,
                message: e.to_string(),
            },
        };
        encode_response(&response)
    }

    fn bad_request(&self, detail: &str) -> String {
        encode_response(&Response::Error {
            kind: ErrorKind::BadRequest,
            message: detail.to_string(),
        })
    }

    fn overloaded(&self, detail: &str) -> String {
        encode_response(&Response::Error {
            kind: ErrorKind::Overloaded,
            message: detail.to_string(),
        })
    }

    fn internal_error(&self, detail: &str) -> String {
        // A caught dispatch panic lands here: record it so incident
        // snapshots pin the event, then answer instead of hanging.
        self.gateway
            .recorder()
            .record(EventSeverity::Error, "worker_panic", detail.to_string());
        encode_response(&Response::Error {
            kind: ErrorKind::Internal,
            message: detail.to_string(),
        })
    }
}

/// Connection-lifecycle telemetry shared by both io models: flight
/// recorder events for open/close/evict, and per-stage latencies under
/// the `(model="-", verb="conn", stage=accept|read|write|dispatch)`
/// dims.
struct GatewayConnObserver {
    gateway: Arc<Gateway>,
}

impl ConnObserver for GatewayConnObserver {
    fn conn_open(&self, open_now: u64) {
        self.gateway.recorder().record(
            EventSeverity::Info,
            "conn_open",
            format!("open={open_now}"),
        );
    }

    fn conn_close(&self, open_now: u64) {
        self.gateway.recorder().record(
            EventSeverity::Info,
            "conn_close",
            format!("open={open_now}"),
        );
    }

    fn conn_evict(&self, reason: EvictReason, open_now: u64) {
        self.gateway.recorder().record(
            EventSeverity::Warn,
            "conn_evict",
            format!("reason={} open={open_now}", reason.as_str()),
        );
    }

    fn stage_time(&self, stage: ConnStage, elapsed: Duration) {
        self.gateway
            .dims()
            .cell("-", "conn", stage.as_str())
            .record_latency(elapsed);
    }
}

/// A TCP front-end over a shared [`Gateway`], serving with whichever
/// [`IoModel`] the [`ServerConfig`] selects.
#[derive(Debug)]
pub struct GatewayServer {
    gateway: Arc<Gateway>,
    local_addr: SocketAddr,
    transport: Transport,
}

enum Transport {
    Threaded {
        shared: Arc<ThreadedShared>,
        acceptor: Option<JoinHandle<()>>,
    },
    Reactor(Option<Reactor>),
}

impl std::fmt::Debug for Transport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Transport::Threaded { .. } => f.write_str("Transport::Threaded"),
            Transport::Reactor(_) => f.write_str("Transport::Reactor"),
        }
    }
}

/// State the threaded transport shares between the acceptor, its
/// handler threads, and shutdown: the stop flag, a Condvar making every
/// backoff sleep interruptible, and read-half clones of live
/// connections so shutdown can `shutdown(2)` blocked reads awake
/// instead of having handlers poll a flag on short read timeouts.
#[derive(Debug, Default)]
struct ThreadedShared {
    stop: AtomicBool,
    sleep_lock: Mutex<()>,
    stop_cv: Condvar,
    registry: Mutex<HashMap<u64, TcpStream>>,
}

impl ThreadedShared {
    fn stopped(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// Sleeps up to `d`; returns whether shutdown has been triggered
    /// (which also interrupts the sleep immediately).
    fn backoff(&self, d: Duration) -> bool {
        let guard = self
            .sleep_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if self.stopped() {
            return true;
        }
        let _ = self.stop_cv.wait_timeout(guard, d);
        self.stopped()
    }

    /// Triggers shutdown: flips the flag, wakes every backoff sleeper,
    /// and half-closes every registered connection so blocked reads
    /// return EOF at once.
    fn trigger(&self) {
        self.stop.store(true, Ordering::Release);
        {
            let _guard = self
                .sleep_lock
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            self.stop_cv.notify_all();
        }
        let registry = self.registry.lock().unwrap_or_else(PoisonError::into_inner);
        for stream in registry.values() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }

    /// Registers a connection for shutdown wakeup; refuses (returning
    /// `false`) once shutdown has been triggered, closing the race
    /// where a handler would otherwise register just after the trigger
    /// swept the registry.
    fn register(&self, id: u64, stream: TcpStream) -> bool {
        let mut registry = self.registry.lock().unwrap_or_else(PoisonError::into_inner);
        if self.stopped() {
            return false;
        }
        registry.insert(id, stream);
        true
    }

    fn deregister(&self, id: u64) {
        self.registry
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&id);
    }
}

impl GatewayServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// serving with the default [`ServerConfig`].
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures.
    pub fn bind(gateway: Arc<Gateway>, addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Self::bind_with(gateway, addr, ServerConfig::default())
    }

    /// [`bind`](Self::bind) with explicit transport knobs.
    ///
    /// # Errors
    ///
    /// Propagates socket bind and reactor setup failures.
    pub fn bind_with(
        gateway: Arc<Gateway>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let transport = match config.io_model {
            IoModel::Reactor => {
                let reactor = Reactor::spawn(
                    listener,
                    Arc::new(GatewayService {
                        gateway: Arc::clone(&gateway),
                    }),
                    Arc::new(GatewayConnObserver {
                        gateway: Arc::clone(&gateway),
                    }),
                    gateway.connections().clone(),
                    ReactorConfig {
                        max_connections: config.max_connections.max(1),
                        workers: config.reactor_workers,
                        max_line_bytes: MAX_LINE_BYTES,
                        max_write_backlog: config.max_write_backlog,
                        write_stall_timeout: config.write_stall_timeout,
                        drain_timeout: DRAIN_TIMEOUT,
                    },
                )?;
                Transport::Reactor(Some(reactor))
            }
            IoModel::Threaded => {
                let shared = Arc::new(ThreadedShared::default());
                let acceptor = {
                    let gateway = Arc::clone(&gateway);
                    let shared = Arc::clone(&shared);
                    thread::Builder::new()
                        .name("panacea-gateway-accept".to_string())
                        .spawn(move || accept_loop(&listener, &gateway, &shared, config))
                        .expect("spawn acceptor")
                };
                Transport::Threaded {
                    shared,
                    acceptor: Some(acceptor),
                }
            }
        };
        Ok(GatewayServer {
            gateway,
            local_addr,
            transport,
        })
    }

    /// The bound address clients connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The gateway this server fronts.
    pub fn gateway(&self) -> &Arc<Gateway> {
        &self.gateway
    }

    /// Stops accepting, drains or disconnects live connections, and
    /// joins every server thread. Idempotent; also invoked by `Drop`.
    pub fn shutdown(&mut self) {
        match &mut self.transport {
            Transport::Reactor(reactor) => {
                if let Some(mut r) = reactor.take() {
                    r.shutdown();
                }
            }
            Transport::Threaded { shared, acceptor } => {
                let Some(handle) = acceptor.take() else {
                    return;
                };
                shared.trigger();
                // Unblock the acceptor with a throwaway connection. A
                // wildcard bind address is not connectable, so nudge
                // via loopback.
                let mut nudge_addr = self.local_addr;
                if nudge_addr.ip().is_unspecified() {
                    nudge_addr.set_ip(match nudge_addr {
                        SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                        SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
                    });
                }
                let _ = TcpStream::connect(nudge_addr);
                let _ = handle.join();
            }
        }
    }
}

impl Drop for GatewayServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    gateway: &Arc<Gateway>,
    shared: &Arc<ThreadedShared>,
    config: ServerConfig,
) {
    let max_connections = config.max_connections.max(1);
    let observer = Arc::new(GatewayConnObserver {
        gateway: Arc::clone(gateway),
    });
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    for (conn, stream) in listener.incoming().enumerate() {
        if shared.stopped() {
            break;
        }
        let Ok(stream) = stream else {
            // Accept failures can be persistent (fd exhaustion while
            // every handler slot is held open); backing off keeps the
            // acceptor from busy-spinning a core until they clear —
            // and shutdown interrupts the backoff immediately.
            if shared.backoff(POLL_INTERVAL) {
                break;
            }
            continue;
        };
        let accept_started = Instant::now();
        handlers.retain(|h| !h.is_finished());
        if handlers.len() >= max_connections {
            reject_connection(gateway, &observer, stream, max_connections);
            continue;
        }
        let gateway = Arc::clone(gateway);
        let shared = Arc::clone(shared);
        let handler_observer = Arc::clone(&observer);
        let write_timeout = config.write_stall_timeout;
        let spawned = thread::Builder::new()
            .name(format!("panacea-gateway-conn-{conn}"))
            .spawn(move || {
                serve_connection(
                    &gateway,
                    &handler_observer,
                    &shared,
                    conn as u64,
                    stream,
                    write_timeout,
                )
            });
        match spawned {
            Ok(handle) => {
                observer.stage_time(ConnStage::Accept, accept_started.elapsed());
                handlers.push(handle);
            }
            // Thread creation failing (resource exhaustion) must not
            // take the acceptor down; dropping the closure closed the
            // socket, and the next accept tries again.
            Err(_) => continue,
        }
    }
    for handle in handlers {
        let _ = handle.join();
    }
}

/// Answers an over-limit connection with a single `Overloaded` error
/// line (best-effort) and closes it.
fn reject_connection(
    gateway: &Gateway,
    observer: &GatewayConnObserver,
    mut stream: TcpStream,
    limit: usize,
) {
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let encoded = encode_response(&Response::Error {
        kind: ErrorKind::Overloaded,
        message: format!("connection limit {limit} reached; retry later"),
    });
    let _ = stream
        .write_all(encoded.as_bytes())
        .and_then(|()| stream.write_all(b"\n"));
    let open_now = gateway.connections().on_evict(false);
    observer.conn_evict(EvictReason::MaxConnections, open_now);
}

/// One threaded handler's full lifecycle: register for shutdown wakeup,
/// record open/close (or shutdown-evict) telemetry, and drive the
/// request loop in between.
fn serve_connection(
    gateway: &Gateway,
    observer: &GatewayConnObserver,
    shared: &ThreadedShared,
    conn_id: u64,
    stream: TcpStream,
    write_timeout: Duration,
) {
    if stream.set_write_timeout(Some(write_timeout)).is_err() {
        return;
    }
    let Ok(registered) = stream.try_clone() else {
        return;
    };
    if !shared.register(conn_id, registered) {
        return; // shutdown already swept the registry
    }
    observer.conn_open(gateway.connections().on_open());
    drive_connection(gateway, observer, shared, stream);
    shared.deregister(conn_id);
    if shared.stopped() {
        let open_now = gateway.connections().on_evict(true);
        observer.conn_evict(EvictReason::Shutdown, open_now);
    } else {
        observer.conn_close(gateway.connections().on_close());
    }
}

/// The threaded request loop: blocking chunk reads (woken by shutdown's
/// socket half-close, not by a poll interval), line reassembly, and one
/// response per request line.
fn drive_connection(
    gateway: &Gateway,
    observer: &GatewayConnObserver,
    shared: &ThreadedShared,
    stream: TcpStream,
) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let mut line: Vec<u8> = Vec::new();
    let mut line_started: Option<Instant> = None;
    let respond = |writer: &mut BufWriter<TcpStream>, response: &Response| {
        let encoded = encode_response(response);
        writer
            .write_all(encoded.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_ok()
    };
    loop {
        // Checked once per buffered chunk, so a client dripping bytes
        // mid-line cannot starve shutdown between wakeups.
        if shared.stopped() {
            return;
        }
        // Accumulate raw bytes rather than `read_line`-ing a String: one
        // `fill_buf` returns per chunk, and a multi-byte UTF-8 sequence
        // split across reads stays intact because decoding happens only
        // once the full line is assembled.
        let newline_at = match reader.fill_buf() {
            Ok([]) => return, // EOF (peer close, or shutdown's half-close)
            Ok(buf) => {
                let newline = buf.iter().position(|&b| b == b'\n');
                let take = newline.map_or(buf.len(), |i| i + 1);
                line.extend_from_slice(&buf[..take]);
                reader.consume(take);
                line_started.get_or_insert_with(Instant::now);
                newline
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        };
        if line.len() > MAX_LINE_BYTES {
            let _ = respond(
                &mut writer,
                &Response::Error {
                    kind: ErrorKind::BadRequest,
                    message: format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                },
            );
            return;
        }
        if newline_at.is_none() {
            continue; // keep accumulating this line
        }
        if let Some(started) = line_started.take() {
            observer.stage_time(ConnStage::Read, started.elapsed());
        }
        let response = match std::str::from_utf8(&line) {
            Ok(text) if text.trim().is_empty() => {
                line.clear();
                continue;
            }
            Ok(text) => {
                let parse_started = Instant::now();
                let decoded = decode_request(text);
                gateway.record_parse(parse_started.elapsed());
                match decoded {
                    Ok(request) => {
                        let dispatch_started = Instant::now();
                        // Panic isolation, threaded-model edition: a
                        // handler panic answers this request and keeps
                        // the connection's thread (and every other
                        // connection) alive, mirroring the reactor's
                        // worker-pool catch.
                        let handled = catch_unwind(AssertUnwindSafe(|| gateway.handle(request)))
                            .unwrap_or_else(|_| {
                                gateway.connections().on_worker_panic();
                                gateway.recorder().record(
                                    EventSeverity::Error,
                                    "worker_panic",
                                    "request handler panicked".to_string(),
                                );
                                Response::Error {
                                    kind: ErrorKind::Internal,
                                    message: "request handler panicked".to_string(),
                                }
                            });
                        observer.stage_time(ConnStage::Dispatch, dispatch_started.elapsed());
                        handled
                    }
                    Err(e) => Response::Error {
                        kind: ErrorKind::BadRequest,
                        message: e.to_string(),
                    },
                }
            }
            Err(_) => Response::Error {
                kind: ErrorKind::BadRequest,
                message: "request line is not valid UTF-8".to_string(),
            },
        };
        line.clear();
        let write_started = Instant::now();
        let wrote = respond(&mut writer, &response);
        observer.stage_time(ConnStage::Write, write_started.elapsed());
        if !wrote {
            return; // client hung up or stalled mid-response
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{codes, models};
    use panacea_serve::BatchPolicy;
    use panacea_tensor::dist::DistributionKind;
    use panacea_tensor::Matrix;

    #[test]
    fn infer_hits_cache_on_identical_payload() {
        let gateway = Gateway::new(models(&["m"], 1), GatewayConfig::default());
        let model = gateway.router().model("m").expect("registered");
        let x = codes(&model, 2, 0);
        let (expect, _) = model.forward_codes(&x);
        let first = gateway
            .infer("m", Payload::Codes(x.clone()))
            .expect("served");
        assert!(!first.cache_hit);
        assert_eq!(first.payload, expect.clone().into());
        let second = gateway.infer("m", Payload::Codes(x)).expect("served");
        assert!(second.cache_hit, "identical payload missed the cache");
        assert_eq!(second.payload, expect.into(), "cache replay diverged");
        let stats = gateway.stats();
        assert_eq!(stats.cache.hits, 1);
        // The cached request never re-entered a runtime.
        let total_served: u64 = stats.shards.iter().map(|s| s.requests).sum();
        assert_eq!(total_served, 1);
    }

    #[test]
    fn re_registering_a_model_invalidates_cached_replays() {
        let gateway = Gateway::new(models(&["m"], 9), GatewayConfig::default());
        let old = gateway.router().model("m").expect("registered");
        let x = codes(&old, 2, 0);
        let first = gateway
            .infer("m", Payload::Codes(x.clone()))
            .expect("served");
        assert!(!first.cache_hit);
        // Replace "m" on every shard with a different preparation (the
        // documented re-registration path via the shard registries).
        let replacement = Arc::new(models(&["m"], 10).pop().expect("one model"));
        for shard in 0..gateway.router().num_shards() {
            gateway
                .router()
                .shard(shard)
                .registry()
                .insert_shared(Arc::clone(&replacement));
        }
        let (expect, _) = replacement.forward_codes(&x);
        let after = gateway.infer("m", Payload::Codes(x)).expect("served");
        assert!(
            !after.cache_hit,
            "stale cache entry replayed for the replaced model"
        );
        assert_eq!(
            after.payload,
            expect.into(),
            "answer did not come from the new model"
        );
        assert_ne!(
            after.payload, first.payload,
            "test models must differ for this check to mean anything"
        );
    }

    #[test]
    fn block_inference_is_bit_exact_and_cache_replayed() {
        use crate::testutil::{block_model, direct_forward, hidden};
        let (model, blocks) = block_model("blk", 60);
        let gateway = Gateway::new(vec![model], GatewayConfig::default());
        let x = hidden(16, 3, 0);
        let expect = direct_forward(&blocks, &x);
        let cold = gateway
            .infer("blk", Payload::Hidden(x.clone()))
            .expect("served");
        assert!(!cold.cache_hit);
        let cold_hidden = cold.payload.as_hidden().expect("block result");
        for (a, b) in expect.iter().zip(cold_hidden.iter()) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "gateway diverged from direct block execution"
            );
        }
        let warm = gateway.infer("blk", Payload::Hidden(x)).expect("served");
        assert!(warm.cache_hit, "identical hidden states missed the cache");
        assert_eq!(warm.payload, cold.payload, "cache replay diverged");
        let stats = gateway.stats();
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.shards.iter().map(|s| s.requests).sum::<u64>(), 1);
    }

    #[test]
    fn payload_kinds_are_guarded_by_validation() {
        use crate::testutil::{block_model, hidden};
        let (block, _) = block_model("blk", 61);
        let mut set = models(&["chain"], 62);
        set.push(block);
        let gateway = Gateway::new(set, GatewayConfig::default());
        // Codes against a block model: one typed verb, one guard — the
        // model's own validate.
        let err = gateway
            .infer("blk", Payload::Codes(Matrix::zeros(16, 1)))
            .expect_err("block model served a code payload");
        assert!(matches!(
            err,
            ServeError::PayloadKindMismatch {
                model_is_block: true,
                ..
            }
        ));
        // Hidden states against a linear chain.
        let err = gateway
            .infer("chain", Payload::Hidden(hidden(16, 1, 0)))
            .expect_err("chain served a hidden payload");
        assert!(matches!(
            err,
            ServeError::PayloadKindMismatch {
                model_is_block: false,
                ..
            }
        ));
        // Both surface as BadRequest on the wire.
        let resp = gateway.handle(Request::Infer {
            model: "chain".to_string(),
            payload: Payload::Hidden(hidden(16, 1, 0)),
            deadline_ms: None,
        });
        assert!(matches!(
            resp,
            Response::Error {
                kind: ErrorKind::BadRequest,
                ..
            }
        ));
        // Sessions are block-only, through the same validation story.
        let err = gateway
            .session_open("chain")
            .expect_err("chain opened a decode session");
        assert!(matches!(
            err,
            ServeError::PayloadKindMismatch {
                model_is_block: false,
                ..
            }
        ));
    }

    #[test]
    fn f32_payload_is_quantized_server_side() {
        let gateway = Gateway::new(models(&["m"], 2), GatewayConfig::default());
        let model = gateway.router().model("m").expect("registered");
        let mut rng = panacea_tensor::seeded_rng(3);
        let input = DistributionKind::Gaussian {
            mean: 0.2,
            std: 0.5,
        }
        .sample_matrix(model.in_features(), 2, &mut rng);
        let quantized = model.quantize(&input);
        let (expect, _) = model.forward(&quantized);
        let reply = gateway.infer_f32("m", input).expect("served");
        assert_eq!(reply.payload, expect);
        // The wire form of the convenience verb lands on the same path.
        let via_wire = gateway.handle(Request::InferF32 {
            model: "m".to_string(),
            input: DistributionKind::Gaussian {
                mean: 0.2,
                std: 0.5,
            }
            .sample_matrix(model.in_features(), 2, &mut rng),
            deadline_ms: None,
        });
        assert!(matches!(via_wire, Response::Infer(_)));
    }

    #[test]
    fn decode_sessions_round_trip_and_match_causal_recompute() {
        use crate::testutil::{block_model, hidden};
        let (model, blocks) = block_model("blk", 63);
        let gateway = Gateway::new(vec![model], GatewayConfig::default());
        let open = gateway.session_open("blk").expect("opened");
        assert!(open.shard < gateway.router().num_shards());

        // Prefill with 3 tokens, then decode 2 more one at a time.
        let prefix = hidden(16, 5, 3);
        let mut outs: Vec<Matrix<f32>> = Vec::new();
        let first = gateway
            .decode(open.session, &prefix.submatrix(0, 0, 16, 3))
            .expect("prefill");
        assert_eq!(first.tokens, 3);
        assert_eq!(first.shard, open.shard, "step left the session's shard");
        outs.push(first.hidden);
        for c in 3..5 {
            let step = gateway
                .decode(open.session, &prefix.submatrix(0, c, 16, 1))
                .expect("step");
            assert_eq!(step.tokens, c + 1);
            outs.push(step.hidden);
        }

        // Oracle: one causal full pass over the whole prefix.
        let mut expect = prefix.clone();
        for b in &blocks {
            expect = b.forward_segments_causal(&expect, &[5]).0;
        }
        let mut col = 0;
        for out in &outs {
            for c in 0..out.cols() {
                for r in 0..16 {
                    assert_eq!(
                        out[(r, c)].to_bits(),
                        expect[(r, col + c)].to_bits(),
                        "gateway decode diverged from causal recompute"
                    );
                }
            }
            col += out.cols();
        }

        let closed = gateway.session_close(open.session).expect("closed");
        assert_eq!(closed.tokens, 5);
        assert!(matches!(
            gateway.decode(open.session, &hidden(16, 1, 0)),
            Err(ServeError::UnknownSession { .. })
        ));
        assert!(matches!(
            gateway.session_close(open.session),
            Err(ServeError::UnknownSession { .. })
        ));
    }

    #[test]
    fn decode_steps_never_touch_the_request_cache() {
        // Replaying a cached decode step would corrupt session state:
        // the output depends on the KV prefix, not just the payload.
        // The session path must not probe, hit, or populate the cache —
        // its counters must not move at all.
        use crate::testutil::{block_model, hidden};
        let (model, _) = block_model("blk", 64);
        let gateway = Gateway::new(vec![model], GatewayConfig::default());
        let baseline = gateway.stats().cache;

        let x = hidden(16, 1, 42);
        let y = hidden(16, 1, 43);
        let a = gateway.session_open("blk").expect("opened");
        let b = gateway.session_open("blk").expect("opened");
        // Identical payloads behind different prefixes — the classic
        // cache-replay bait.
        let behind_y = {
            gateway.decode(a.session, &y).expect("step");
            gateway.decode(a.session, &x).expect("step")
        };
        let fresh = gateway.decode(b.session, &x).expect("step");
        assert_eq!(
            gateway.stats().cache,
            baseline,
            "decode touched the request cache"
        );
        // And the outputs demonstrate why replay would be wrong: the
        // same payload yields different hidden states behind different
        // prefixes.
        assert_ne!(behind_y.hidden, fresh.hidden, "KV prefix ignored");

        // Stateless traffic through the same gateway still caches.
        let warm = hidden(16, 2, 7);
        let cold = gateway
            .infer("blk", Payload::Hidden(warm.clone()))
            .expect("served");
        let replay = gateway.infer("blk", Payload::Hidden(warm)).expect("served");
        assert!(!cold.cache_hit && replay.cache_hit);
    }

    #[test]
    fn stats_report_per_shard_sessions_and_kv_bytes() {
        use crate::testutil::block_model;
        use crate::testutil::hidden;
        let (model, _) = block_model("blk", 65);
        let gateway = Gateway::new(vec![model], GatewayConfig::default());
        let open = gateway.session_open("blk").expect("opened");
        gateway
            .decode(open.session, &hidden(16, 4, 0))
            .expect("step");
        let stats = gateway.stats();
        let shard = &stats.shards[open.shard];
        assert_eq!(shard.open_sessions, 1);
        // 2 blocks × 2 (K+V) × 16 features × 4 tokens × 4 bytes.
        assert_eq!(shard.kv_bytes, 2 * 2 * 16 * 4 * 4);
        assert_eq!(shard.decode_steps, 1);
        assert_eq!(shard.decode_tokens, 4);
        // The other shard holds nothing.
        let other: u64 = stats
            .shards
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != open.shard)
            .map(|(_, s)| s.open_sessions + s.kv_bytes)
            .sum();
        assert_eq!(other, 0);
        gateway.session_close(open.session).expect("closed");
        assert_eq!(gateway.stats().shards[open.shard].kv_bytes, 0);
    }

    #[test]
    fn session_opens_spread_over_shards_by_kv_load() {
        use crate::testutil::{block_model, hidden};
        let (model, _) = block_model("blk", 67);
        let gateway = Gateway::new(vec![model], GatewayConfig::default());
        // Empty sessions tie on kv_bytes, so placement round-robins on
        // open-session count…
        let a = gateway.session_open("blk").expect("opened");
        let b = gateway.session_open("blk").expect("opened");
        assert_ne!(a.shard, b.shard, "empty opens piled onto one shard");
        // …and once KV bytes differ, the lighter shard wins: grow the
        // session on shard A, close B, and the next open must avoid A.
        gateway.decode(a.session, &hidden(16, 4, 0)).expect("step");
        gateway.session_close(b.session).expect("closed");
        let c = gateway.session_open("blk").expect("opened");
        assert_eq!(
            c.shard, b.shard,
            "open ignored KV load and joined the heavy shard"
        );
    }

    #[test]
    fn session_opens_count_against_admission() {
        use crate::testutil::block_model;
        let (model, _) = block_model("blk", 66);
        let gateway = Gateway::new(
            vec![model],
            GatewayConfig {
                admission: AdmissionConfig {
                    max_in_flight: 1,
                    max_queue_wait: Duration::from_secs(5),
                },
                ..GatewayConfig::default()
            },
        );
        let before = gateway.stats().admission.admitted;
        let open = gateway.session_open("blk").expect("opened");
        let after = gateway.stats().admission;
        assert_eq!(after.admitted, before + 1, "open did not take a permit");
        assert_eq!(after.in_flight, 0, "open leaked its permit");
        // With the only permit held, a session open is shed like any
        // other request.
        let permit = gateway.admission().try_admit().expect("permit");
        assert!(matches!(
            gateway.session_open("blk"),
            Err(ServeError::Overloaded { .. })
        ));
        assert!(matches!(
            gateway.decode(open.session, &crate::testutil::hidden(16, 1, 0)),
            Err(ServeError::Overloaded { .. })
        ));
        drop(permit);
        assert!(gateway.session_open("blk").is_ok());
        assert_eq!(gateway.stats().admission.rejected_capacity, 2);
    }

    #[test]
    fn bad_requests_map_to_protocol_error_kinds() {
        let gateway = Gateway::new(models(&["m"], 3), GatewayConfig::default());
        let ghost = gateway.handle(Request::Infer {
            model: "ghost".to_string(),
            payload: Payload::Codes(Matrix::zeros(16, 1)),
            deadline_ms: None,
        });
        assert!(matches!(
            ghost,
            Response::Error {
                kind: ErrorKind::UnknownModel,
                ..
            }
        ));
        let misshapen = gateway.handle(Request::Infer {
            model: "m".to_string(),
            payload: Payload::Codes(Matrix::zeros(3, 1)),
            deadline_ms: None,
        });
        assert!(matches!(
            misshapen,
            Response::Error {
                kind: ErrorKind::BadRequest,
                ..
            }
        ));
    }

    #[test]
    fn overload_rejections_reach_the_response() {
        // One permit and a lingering runtime: the second concurrent
        // request must be rejected, not queued.
        let gateway = Arc::new(Gateway::new(
            models(&["m"], 4),
            GatewayConfig {
                shards: 1,
                runtime: RuntimeConfig {
                    workers: 1,
                    policy: BatchPolicy {
                        max_batch: 4096,
                        max_wait: Duration::from_millis(300),
                    },
                },
                admission: AdmissionConfig {
                    max_in_flight: 1,
                    max_queue_wait: Duration::from_secs(5),
                },
                ..GatewayConfig::default()
            },
        ));
        let model = gateway.router().model("m").expect("registered");
        let slow = {
            let gateway = Arc::clone(&gateway);
            let x = codes(&model, 1, 0);
            thread::spawn(move || gateway.infer("m", Payload::Codes(x)))
        };
        // Give the first request time to take the only permit.
        thread::sleep(Duration::from_millis(50));
        let shed = gateway.infer("m", Payload::Codes(codes(&model, 1, 1)));
        assert!(
            matches!(shed, Err(ServeError::Overloaded { .. })),
            "burst request was not shed: {shed:?}"
        );
        assert!(slow.join().expect("first request").is_ok());
        assert_eq!(gateway.stats().admission.rejected_capacity, 1);
    }

    #[test]
    fn multibyte_utf8_split_across_read_timeouts_survives() {
        use std::io::{BufRead, BufReader, Write};
        use std::net::TcpStream;
        let gateway = Arc::new(Gateway::new(models(&["m"], 12), GatewayConfig::default()));
        let server = GatewayServer::bind(Arc::clone(&gateway), "127.0.0.1:0").expect("bind");
        let mut raw = TcpStream::connect(server.local_addr()).expect("connect");
        let line =
            "{\"verb\":\"infer\",\"model\":\"modèle\",\"payload\":{\"kind\":\"codes\",\"rows\":1,\"cols\":1,\"data\":[1]}}\n";
        // Split the line *inside* the two-byte 'è' and stall past the
        // handler's read timeout: the name must reassemble intact (the
        // server answers unknown_model naming it), not be dropped or
        // mangled into a JSON parse error.
        let split = line.find('è').expect("è present") + 1;
        raw.write_all(&line.as_bytes()[..split]).expect("send head");
        raw.flush().expect("flush head");
        thread::sleep(POLL_INTERVAL * 3);
        raw.write_all(&line.as_bytes()[split..]).expect("send tail");
        let mut reply = String::new();
        BufReader::new(&raw)
            .read_line(&mut reply)
            .expect("answered");
        assert!(
            reply.contains("unknown_model") && reply.contains("modèle"),
            "name mangled in transit: {reply}"
        );
    }

    #[test]
    fn shutdown_is_prompt_while_a_client_drips_bytes() {
        use std::io::Write;
        use std::net::TcpStream;
        let gateway = Arc::new(Gateway::new(models(&["m"], 13), GatewayConfig::default()));
        let mut server = GatewayServer::bind(Arc::clone(&gateway), "127.0.0.1:0").expect("bind");
        let addr = server.local_addr();
        // A client dripping bytes without ever finishing a line: each
        // chunk keeps the handler's read loop spinning, so shutdown must
        // still be noticed between chunks.
        let stop_drip = Arc::new(AtomicBool::new(false));
        let dripper = {
            let stop_drip = Arc::clone(&stop_drip);
            thread::spawn(move || {
                let mut s = TcpStream::connect(addr).expect("connect");
                while !stop_drip.load(Ordering::Acquire) {
                    if s.write_all(b"[").and_then(|()| s.flush()).is_err() {
                        break; // server closed on us — expected after shutdown
                    }
                    thread::sleep(Duration::from_millis(10));
                }
            })
        };
        thread::sleep(Duration::from_millis(100)); // let the drip start mid-line
        let started = Instant::now();
        server.shutdown();
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "shutdown hung on the dripping client"
        );
        stop_drip.store(true, Ordering::Release);
        dripper.join().expect("dripper");
    }

    #[test]
    fn connection_limit_rejects_excess_connections() {
        use crate::GatewayClient;
        let gateway = Arc::new(Gateway::new(models(&["m"], 7), GatewayConfig::default()));
        let server = GatewayServer::bind_with(
            Arc::clone(&gateway),
            "127.0.0.1:0",
            ServerConfig {
                max_connections: 1,
                ..ServerConfig::default()
            },
        )
        .expect("bind");
        let mut first = GatewayClient::connect(server.local_addr()).expect("connect");
        assert!(first.stats().is_ok(), "first connection must serve");
        let mut second = GatewayClient::connect(server.local_addr()).expect("connect");
        let err = second.stats().expect_err("over-limit connection served");
        assert!(err.is_overloaded(), "wrong rejection: {err}");
        // Closing the first connection frees the slot (its handler exits
        // on EOF; the acceptor prunes finished handlers on the next
        // accept), so a later connection must get through.
        drop(first);
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let mut retry = GatewayClient::connect(server.local_addr()).expect("connect");
            if retry.stats().is_ok() {
                break;
            }
            assert!(Instant::now() < deadline, "connection slot never freed");
            thread::sleep(Duration::from_millis(10));
        }
    }

    #[test]
    fn shed_requests_do_not_linger_in_the_runtime_queue() {
        // A linger far beyond the queue-wait bound: every request is
        // shed before its batch dispatches. Shedding must cancel the
        // queued job, not leave it accumulating behind the freed permit.
        let gateway = Gateway::new(
            models(&["m"], 6),
            GatewayConfig {
                shards: 1,
                runtime: RuntimeConfig {
                    workers: 1,
                    policy: BatchPolicy {
                        max_batch: 4096,
                        max_wait: Duration::from_secs(60),
                    },
                },
                admission: AdmissionConfig {
                    max_in_flight: 16,
                    max_queue_wait: Duration::from_millis(10),
                },
                ..GatewayConfig::default()
            },
        );
        let model = gateway.router().model("m").expect("registered");
        for salt in 0..3 {
            let shed = gateway.infer("m", Payload::Codes(codes(&model, 1, salt)));
            assert!(
                matches!(shed, Err(ServeError::Overloaded { .. })),
                "request outran the 60s linger: {shed:?}"
            );
        }
        // Cancellation wakes the worker, which purges the abandoned
        // jobs; poll briefly to absorb scheduling noise.
        let deadline = Instant::now() + Duration::from_secs(5);
        let shard = gateway.router().shard(0);
        while shard.queue_depth().load() > 0 {
            assert!(Instant::now() < deadline, "shed jobs still queued");
            thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(shard.metrics().cancelled, 3);
        assert_eq!(shard.metrics().requests, 0, "a shed request executed");
        assert_eq!(gateway.stats().admission.rejected_timeout, 3);
    }

    #[test]
    fn stats_aggregate_all_layers() {
        let gateway = Gateway::new(models(&["a", "b"], 5), GatewayConfig::default());
        let a = gateway.router().model("a").expect("registered");
        for salt in 0..3 {
            gateway
                .infer("a", Payload::Codes(codes(&a, 1, salt)))
                .expect("served");
        }
        let s = gateway.stats();
        assert_eq!(s.shards.len(), 2);
        assert_eq!(s.shards.iter().map(|x| x.requests).sum::<u64>(), 3);
        assert_eq!(s.admission.admitted, 3);
        assert_eq!(s.cache.misses, 3);
        assert_eq!(s.cache.entries, 3);
    }
}
