//! `panacea-faultline` — deterministic fault injection for the serving
//! stack.
//!
//! Robustness work needs failures on demand: a panic in exactly one
//! fused decode pass, a stall in the gateway dispatch path, a connection
//! reset mid-read. This crate provides **named injection sites** that
//! production code queries unconditionally, and **seeded scenario
//! scripts** that decide which queries actually fire a fault:
//!
//! ```text
//!  Scenario ──compile(seed)──▶ FaultPlan ──arm()──▶ global registry
//!                                                     ▲
//!  serve / netcore / gateway ──fire("site")───────────┘
//! ```
//!
//! * **Disarmed is free.** [`fire`] is one relaxed atomic load when no
//!   plan is armed — the same discipline as the block crate's stage
//!   timing — so the sites stay wired in release builds and their cost
//!   is A/B-gated by `decode_bench`.
//! * **Deterministic.** A scenario names *query indices*, not wall
//!   clock: "the 3rd query of `serve.decode.fused_pass` panics". Each
//!   armed site carries an atomic query counter, so the same seed +
//!   scenario fires the same faults at the same per-site positions
//!   regardless of how threads interleave their queries (see the
//!   proptest in `tests/plan_props.rs`).
//! * **Scoped.** [`FaultPlan::arm`] returns a guard; dropping it
//!   disarms. Arming serializes on a global lock, so concurrent tests
//!   cannot observe each other's plans.
//!
//! # Site taxonomy
//!
//! Sites are plain strings, conventionally `layer.component.operation`.
//! The stack registers (see each crate for exact semantics):
//!
//! | site | layer | faults honoured |
//! |------|-------|-----------------|
//! | `serve.worker.execute`     | runtime batch worker | panic, delay |
//! | `serve.session.step`       | session step entry   | panic, delay, error |
//! | `serve.decode.fused_pass`  | decode batcher       | panic, delay |
//! | `serve.decode.solo_retry`  | decode batcher retry | panic |
//! | `gateway.execute`          | gateway dispatch     | panic, delay |
//! | `netcore.accept`           | transport accept     | reset |
//! | `netcore.read`             | transport read       | reset, delay |
//! | `netcore.dispatch`         | transport dispatch   | panic, delay |
//! | `netcore.write`            | transport write      | short write, reset |

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Duration;

/// What an injection site does when its query index is scripted.
///
/// A site only honours the faults that make sense for it (a read path
/// cannot "short write"); unsupported faults at a site are ignored by
/// the integration, not an error — scripts are free to be generic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Panic at the site (`panic!("faultline: injected panic at ...")`).
    /// The surrounding layer's `catch_unwind` isolation is the unit
    /// under test.
    Panic,
    /// Sleep for the given duration at the site — injected latency /
    /// a stalled dependency.
    Delay(Duration),
    /// Return an error from the site (mapped to the layer's error type,
    /// e.g. `ServeError::Internal`).
    Error,
    /// An I/O failure: connection reset on read/write, accept failure
    /// (the freshly accepted connection is dropped) on accept.
    Reset,
    /// A short write: the site writes fewer bytes than asked this round,
    /// exercising partial-write resumption.
    ShortWrite,
}

impl Fault {
    /// Stable spelling for logs and event details.
    pub fn as_str(self) -> &'static str {
        match self {
            Fault::Panic => "panic",
            Fault::Delay(_) => "delay",
            Fault::Error => "error",
            Fault::Reset => "reset",
            Fault::ShortWrite => "short_write",
        }
    }
}

/// One step of a scenario script (kept symbolic so a [`Scenario`] can be
/// compiled under different seeds).
#[derive(Debug, Clone)]
enum Step {
    /// Fire `fault` on exactly the `at`-th query (0-based) of `site`.
    At { site: String, at: u64, fault: Fault },
    /// Fire `fault` on `count` distinct seeded positions among the
    /// first `first` queries of `site`.
    Within {
        site: String,
        fault: Fault,
        count: u64,
        first: u64,
    },
}

/// A symbolic fault script: which sites misbehave, how often, and how.
///
/// Build one with the fluent constructors, then freeze it into a
/// [`FaultPlan`] with a seed. The same scenario compiles to different
/// (but individually deterministic) plans under different seeds.
#[derive(Debug, Clone, Default)]
pub struct Scenario {
    steps: Vec<Step>,
}

impl Scenario {
    /// An empty scenario (arming it still exercises the armed-site
    /// lookup path, which is what the overhead A/B gate measures).
    pub fn new() -> Self {
        Scenario::default()
    }

    /// Scripts `fault` on exactly the `at`-th query (0-based) of `site`.
    #[must_use]
    pub fn fire_at(mut self, site: &str, at: u64, fault: Fault) -> Self {
        self.steps.push(Step::At {
            site: site.to_string(),
            at,
            fault,
        });
        self
    }

    /// Scripts `fault` on `count` seeded positions among the first
    /// `first` queries of `site`. Positions are drawn at compile time
    /// from the plan seed — never from wall clock — so they are a pure
    /// function of `(seed, scenario)`.
    #[must_use]
    pub fn fire_within(mut self, site: &str, fault: Fault, count: u64, first: u64) -> Self {
        self.steps.push(Step::Within {
            site: site.to_string(),
            fault,
            count,
            first,
        });
        self
    }
}

/// A compiled, deterministic fault schedule: for each site, a map from
/// query index to the fault that query fires.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    by_site: HashMap<String, BTreeMap<u64, Fault>>,
}

impl FaultPlan {
    /// Compiles `scenario` under `seed`. Seeded positions come from a
    /// splitmix64 stream consumed in scenario-step order, so compilation
    /// is a pure function of its arguments: same seed + scenario, same
    /// plan — on every thread, every run.
    pub fn compile(seed: u64, scenario: &Scenario) -> FaultPlan {
        let mut rng = SplitMix64::new(seed);
        let mut by_site: HashMap<String, BTreeMap<u64, Fault>> = HashMap::new();
        for step in &scenario.steps {
            match step {
                Step::At { site, at, fault } => {
                    by_site.entry(site.clone()).or_default().insert(*at, *fault);
                }
                Step::Within {
                    site,
                    fault,
                    count,
                    first,
                } => {
                    let schedule = by_site.entry(site.clone()).or_default();
                    let first = (*first).max(1);
                    let want = (*count).min(first);
                    let mut placed = 0;
                    // Rejection-sample distinct positions; bounded
                    // because `want <= first`. Draw order is fixed by
                    // the rng stream, so the resulting set is too.
                    while placed < want {
                        let at = rng.next() % first;
                        if let std::collections::btree_map::Entry::Vacant(e) = schedule.entry(at) {
                            e.insert(*fault);
                            placed += 1;
                        }
                    }
                }
            }
        }
        FaultPlan { by_site }
    }

    /// The full deterministic schedule, sorted by `(site, query index)`
    /// — what [`compile`](Self::compile) decided, before anything runs.
    pub fn schedule(&self) -> Vec<(String, u64, Fault)> {
        let mut out: Vec<(String, u64, Fault)> = self
            .by_site
            .iter()
            .flat_map(|(site, m)| m.iter().map(|(at, f)| (site.clone(), *at, *f)))
            .collect();
        out.sort_by(|a, b| (a.0.as_str(), a.1).cmp(&(b.0.as_str(), b.1)));
        out
    }

    /// Total scripted firings across all sites.
    pub fn len(&self) -> usize {
        self.by_site.values().map(BTreeMap::len).sum()
    }

    /// Whether the plan scripts nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Arms this plan globally. Until the returned guard drops, every
    /// [`fire`] query consults the plan; scripted `(site, query)` pairs
    /// fire their fault and are appended to the firing log. Arming
    /// blocks while another plan is armed (plans never overlap).
    pub fn arm(self) -> ArmedGuard {
        let serial = arm_serial().lock().unwrap_or_else(PoisonError::into_inner);
        let counters = self
            .by_site
            .keys()
            .map(|site| (site.clone(), AtomicU64::new(0)))
            .collect();
        let state = Arc::new(ArmedState {
            plan: self,
            counters,
            log: Mutex::new(Vec::new()),
        });
        *registry().lock().unwrap_or_else(PoisonError::into_inner) = Some(Arc::clone(&state));
        ARMED.store(true, Ordering::Release);
        ArmedGuard {
            state,
            _serial: serial,
        }
    }
}

/// One fault that actually fired while a plan was armed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Firing {
    /// The site that fired.
    pub site: String,
    /// The site-local query index (0-based) that fired.
    pub query: u64,
    /// The fault it fired.
    pub fault: Fault,
}

/// Keeps a [`FaultPlan`] armed; dropping disarms and clears the global
/// registry. Holds the arm serialization lock, so at most one guard
/// exists at a time.
pub struct ArmedGuard {
    state: Arc<ArmedState>,
    _serial: MutexGuard<'static, ()>,
}

impl std::fmt::Debug for ArmedGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArmedGuard")
            .field("scripted", &self.state.plan.len())
            .finish()
    }
}

impl ArmedGuard {
    /// Faults fired so far, in global firing order (the per-site order
    /// is additionally deterministic: ascending query index).
    pub fn firings(&self) -> Vec<Firing> {
        self.state
            .log
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// How many queries `site` has received while armed (0 for sites
    /// the plan does not script — unscripted sites are not counted).
    pub fn queries(&self, site: &str) -> u64 {
        self.state
            .counters
            .get(site)
            .map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Disarms now and returns the complete firing log.
    pub fn disarm(self) -> Vec<Firing> {
        let log = self.firings();
        drop(self);
        log
    }
}

impl Drop for ArmedGuard {
    fn drop(&mut self) {
        ARMED.store(false, Ordering::Release);
        *registry().lock().unwrap_or_else(PoisonError::into_inner) = None;
    }
}

struct ArmedState {
    plan: FaultPlan,
    /// Per-scripted-site query counters — the deterministic clock.
    counters: HashMap<String, AtomicU64>,
    log: Mutex<Vec<Firing>>,
}

static ARMED: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<Option<Arc<ArmedState>>> {
    static REGISTRY: OnceLock<Mutex<Option<Arc<ArmedState>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(None))
}

fn arm_serial() -> &'static Mutex<()> {
    static SERIAL: OnceLock<Mutex<()>> = OnceLock::new();
    SERIAL.get_or_init(|| Mutex::new(()))
}

/// Queries an injection site: `None` almost always. Disarmed cost is a
/// single relaxed load (the branch predicts perfectly in steady state),
/// which is why the sites stay wired in release builds.
///
/// When a plan is armed, the query takes the site's next ticket from its
/// atomic counter and fires iff that index is scripted. The caller is
/// responsible for *applying* the returned fault in whatever way the
/// site supports; see [`point`] for the common panic/delay application.
#[inline]
pub fn fire(site: &str) -> Option<Fault> {
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    fire_armed(site)
}

#[cold]
fn fire_armed(site: &str) -> Option<Fault> {
    let state = registry()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()?;
    // Only scripted sites carry a counter: the determinism contract is
    // per-site, and unscripted sites firing nothing need no clock.
    let counter = state.counters.get(site)?;
    let query = counter.fetch_add(1, Ordering::Relaxed);
    let fault = *state.plan.by_site.get(site)?.get(&query)?;
    state
        .log
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .push(Firing {
            site: site.to_string(),
            query,
            fault,
        });
    Some(fault)
}

/// [`fire`] plus the two universal applications: a scripted
/// [`Fault::Panic`] panics here, a scripted [`Fault::Delay`] sleeps
/// here. Anything else (error returns, I/O faults) is handed back for
/// the site to apply in its own domain.
#[inline]
pub fn point(site: &str) -> Option<Fault> {
    match fire(site) {
        Some(Fault::Panic) => panic!("faultline: injected panic at {site}"),
        Some(Fault::Delay(d)) => {
            std::thread::sleep(d);
            None
        }
        other => other,
    }
}

/// Whether any plan is currently armed (one relaxed load).
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// The splitmix64 stream behind seeded scenario compilation — tiny,
/// dependency-free, and stable across platforms.
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_sites_fire_nothing() {
        assert!(!armed());
        assert_eq!(fire("serve.worker.execute"), None);
        assert_eq!(point("serve.worker.execute"), None);
    }

    #[test]
    fn scripted_query_indices_fire_in_order() {
        let plan = FaultPlan::compile(
            7,
            &Scenario::new()
                .fire_at("a", 1, Fault::Error)
                .fire_at("a", 3, Fault::Reset)
                .fire_at("b", 0, Fault::ShortWrite),
        );
        let guard = plan.arm();
        assert!(armed());
        let fired: Vec<_> = (0..5).map(|_| fire("a")).collect();
        assert_eq!(
            fired,
            vec![None, Some(Fault::Error), None, Some(Fault::Reset), None]
        );
        assert_eq!(fire("b"), Some(Fault::ShortWrite));
        assert_eq!(fire("unscripted"), None);
        assert_eq!(guard.queries("a"), 5);
        assert_eq!(guard.queries("unscripted"), 0);
        let log = guard.disarm();
        assert_eq!(
            log,
            vec![
                Firing {
                    site: "a".into(),
                    query: 1,
                    fault: Fault::Error
                },
                Firing {
                    site: "a".into(),
                    query: 3,
                    fault: Fault::Reset
                },
                Firing {
                    site: "b".into(),
                    query: 0,
                    fault: Fault::ShortWrite
                },
            ]
        );
        assert!(!armed());
        assert_eq!(fire("a"), None, "disarm fully clears the registry");
    }

    #[test]
    fn injected_panic_carries_the_site_name() {
        let guard = FaultPlan::compile(
            1,
            &Scenario::new().fire_at("serve.worker.execute", 0, Fault::Panic),
        )
        .arm();
        let caught = std::panic::catch_unwind(|| point("serve.worker.execute"));
        let payload = caught.expect_err("scripted panic must fire");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("serve.worker.execute"), "payload: {msg}");
        drop(guard);
    }

    #[test]
    fn within_draws_distinct_positions_deterministically() {
        let scenario = Scenario::new().fire_within("s", Fault::Panic, 4, 16);
        let a = FaultPlan::compile(42, &scenario).schedule();
        let b = FaultPlan::compile(42, &scenario).schedule();
        assert_eq!(a, b, "same seed, same plan");
        assert_eq!(a.len(), 4);
        assert!(a
            .iter()
            .all(|(site, at, f)| site == "s" && *at < 16 && *f == Fault::Panic));
        let other = FaultPlan::compile(43, &scenario).schedule();
        assert_eq!(other.len(), 4, "count honoured under any seed");
    }

    #[test]
    fn within_clamps_count_to_window() {
        let plan = FaultPlan::compile(5, &Scenario::new().fire_within("s", Fault::Error, 99, 3));
        assert_eq!(plan.len(), 3, "at most one firing per position");
    }
}
