//! Property: `FaultPlan` firing is a pure function of `(seed, scenario)`
//! — the same plan fires the same faults at the same per-site query
//! indices no matter how threads interleave their queries, because the
//! schedule is drawn from a seeded sequence at compile time and the
//! runtime clock is a per-site atomic ticket counter, never wall time.

use std::sync::Arc;
use std::thread;

use panacea_faultline::{Fault, FaultPlan, Scenario};
use proptest::prelude::*;

/// Builds a multi-site scenario from sampled parameters. Faults are
/// `Error` (inert at query time) so firing threads never unwind.
fn scenario(sites: usize, per_site: u64, window: u64) -> Scenario {
    let mut s = Scenario::new();
    for i in 0..sites {
        s = s.fire_within(&format!("site.{i}"), Fault::Error, per_site, window);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn compilation_is_deterministic(
        seed in 0u64..10_000,
        sites in 1usize..5,
        per_site in 1u64..6,
        window in 6u64..40,
    ) {
        let sc = scenario(sites, per_site, window);
        let a = FaultPlan::compile(seed, &sc).schedule();
        let b = FaultPlan::compile(seed, &sc).schedule();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), sites * per_site as usize);
    }

    #[test]
    fn thread_interleaving_cannot_move_a_firing(
        seed in 0u64..10_000,
        sites in 1usize..4,
        per_site in 1u64..5,
        window in 5u64..24,
        threads in 2usize..6,
    ) {
        let sc = scenario(sites, per_site, window);
        let plan = FaultPlan::compile(seed, &sc);
        let expected = plan.schedule();
        let guard = plan.arm();

        // Every thread hammers every site; together they issue exactly
        // `window` queries per site, split unevenly and raced freely.
        let names: Arc<Vec<String>> =
            Arc::new((0..sites).map(|i| format!("site.{i}")).collect());
        let per_thread = (window as usize).div_ceil(threads);
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let names = Arc::clone(&names);
                let quota = per_thread.min(window as usize - (t * per_thread).min(window as usize));
                thread::spawn(move || {
                    for _ in 0..quota {
                        for site in names.iter() {
                            let _ = panacea_faultline::fire(site);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("query thread never panics");
        }

        for site in names.iter() {
            prop_assert_eq!(guard.queries(site), window);
        }
        // The observed firings, re-sorted into the schedule's canonical
        // order, must be exactly the schedule: same sites, same query
        // indices, same faults — regardless of interleaving.
        let mut fired: Vec<(String, u64, Fault)> = guard
            .disarm()
            .into_iter()
            .map(|f| (f.site, f.query, f.fault))
            .collect();
        fired.sort_by(|a, b| (a.0.as_str(), a.1).cmp(&(b.0.as_str(), b.1)));
        prop_assert_eq!(fired, expected);
    }
}
