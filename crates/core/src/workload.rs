//! Hardware workload accounting and the closed-form expressions of the
//! paper's Table I.
//!
//! Counters measure three quantities for a GEMM kernel:
//!
//! * `mul` — 4b×4b multiplications (dense-GEMM baselines count an 8b×8b
//!   multiply as four 4b×4b ones, the paper's iso-resource convention);
//! * `add` — accumulator additions;
//! * `ema_slices` — 4-bit slices moved from memory into the compute core.
//!
//! Table I formalizes these for a `4 × K × 4` micro-tile with two slices
//! per operand, as a function of the HO *vector* sparsities `ρ_w`, `ρ_x`.

use serde::{Deserialize, Serialize};

/// Operation and memory-access counts for one GEMM invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Workload {
    /// Number of 4b×4b multiplications in the bit-slice GEMMs.
    pub mul: u64,
    /// Number of partial-sum additions in the bit-slice GEMMs.
    pub add: u64,
    /// Number of 4-bit slices loaded into the core (EMA proxy).
    pub ema_slices: u64,
    /// Extra multiplications spent on the compensation term.
    pub comp_mul: u64,
    /// Extra additions spent on the compensation term (the CS units).
    pub comp_add: u64,
}

impl Workload {
    /// Total multiplications including compensation.
    pub fn total_mul(&self) -> u64 {
        self.mul + self.comp_mul
    }

    /// Total additions including compensation.
    pub fn total_add(&self) -> u64 {
        self.add + self.comp_add
    }

    /// Element-wise sum of two workloads.
    pub fn merged(&self, other: &Workload) -> Workload {
        Workload {
            mul: self.mul + other.mul,
            add: self.add + other.add,
            ema_slices: self.ema_slices + other.ema_slices,
            comp_mul: self.comp_mul + other.comp_mul,
            comp_add: self.comp_add + other.comp_add,
        }
    }
}

/// Closed-form Table-I expressions (expectation under independent
/// compression events) for the `4 × K × 4`, two-slices-per-operand
/// micro-tile.
pub mod table1 {
    /// Panacea bit-slice GEMM multiplications: `16·K·(2−ρx)(2−ρw)`.
    pub fn panacea_mul(k: u64, rho_x: f64, rho_w: f64) -> f64 {
        16.0 * k as f64 * (2.0 - rho_x) * (2.0 - rho_w)
    }

    /// Panacea bit-slice GEMM additions (same count as multiplications —
    /// every product is accumulated once).
    pub fn panacea_add(k: u64, rho_x: f64, rho_w: f64) -> f64 {
        panacea_mul(k, rho_x, rho_w)
    }

    /// Panacea compensation multiplications: a single 4×4 outer product
    /// per output tile.
    pub fn panacea_comp_mul() -> f64 {
        16.0
    }

    /// Panacea compensation additions under the Eq. 6 formulation:
    /// `8·K·(1−ρx)` (the CS accumulates both weight slices of the 4 rows
    /// for every *uncompressed* activation position).
    pub fn panacea_comp_add(k: u64, rho_x: f64) -> f64 {
        8.0 * k as f64 * (1.0 - rho_x)
    }

    /// Naive Eq. 5 compensation additions: `8·K·ρx` — and it would also
    /// incur `8·K·ρx` extra EMA, which Eq. 6 eliminates.
    pub fn naive_comp_add(k: u64, rho_x: f64) -> f64 {
        8.0 * k as f64 * rho_x
    }

    /// Panacea 4-bit EMA: `4·K·(4−ρw−ρx)` (only uncompressed HO vectors
    /// plus the dense LO planes are moved).
    pub fn panacea_ema(k: u64, rho_x: f64, rho_w: f64) -> f64 {
        4.0 * k as f64 * (4.0 - rho_w - rho_x)
    }

    /// Sibia multiplications: `32·K·(2−max(ρx, ρw))` — only one operand's
    /// HO sparsity can be exploited.
    pub fn sibia_mul(k: u64, rho_x: f64, rho_w: f64) -> f64 {
        32.0 * k as f64 * (2.0 - rho_x.max(rho_w))
    }

    /// Sibia additions (same count as multiplications).
    pub fn sibia_add(k: u64, rho_x: f64, rho_w: f64) -> f64 {
        sibia_mul(k, rho_x, rho_w)
    }

    /// Sibia 4-bit EMA: `14·K` — it moves the dense (uncompressed) slice
    /// format regardless of sparsity: 8K weight + 8K activation slices
    /// minus the RLE savings it applies to the single skippable operand,
    /// which the paper rounds to `14K`.
    pub fn sibia_ema(k: u64) -> f64 {
        14.0 * k as f64
    }

    /// Dense 8-bit GEMM in 4b×4b-equivalents: `64·K` multiplications for
    /// the 4×K×4 tile (16 8b×8b MACs per k, each worth four 4b×4b).
    pub fn dense_mul(k: u64) -> f64 {
        64.0 * k as f64
    }

    /// Dense 4-bit EMA: 8K weight + 8K activation slices.
    pub fn dense_ema(k: u64) -> f64 {
        16.0 * k as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merged_adds_fields() {
        let a = Workload {
            mul: 1,
            add: 2,
            ema_slices: 3,
            comp_mul: 4,
            comp_add: 5,
        };
        let b = Workload {
            mul: 10,
            add: 20,
            ema_slices: 30,
            comp_mul: 40,
            comp_add: 50,
        };
        let m = a.merged(&b);
        assert_eq!(
            m,
            Workload {
                mul: 11,
                add: 22,
                ema_slices: 33,
                comp_mul: 44,
                comp_add: 55
            }
        );
        assert_eq!(m.total_mul(), 55);
        assert_eq!(m.total_add(), 77);
    }

    #[test]
    fn table1_dense_limits() {
        // With no sparsity Panacea's work equals the dense bit-slice total.
        assert_eq!(table1::panacea_mul(100, 0.0, 0.0), 6400.0);
        assert_eq!(table1::dense_mul(100), 6400.0);
        assert_eq!(table1::sibia_mul(100, 0.0, 0.0), 6400.0);
    }

    #[test]
    fn table1_full_sparsity_limits() {
        // Full HO sparsity on both sides leaves only the LO×LO quarter.
        assert_eq!(table1::panacea_mul(10, 1.0, 1.0), 160.0);
        // Sibia can only halve the work.
        assert_eq!(table1::sibia_mul(10, 1.0, 1.0), 320.0);
    }

    #[test]
    fn panacea_beats_sibia_when_both_sparsities_high() {
        let k = 64;
        for &(rx, rw) in &[(0.9, 0.5), (0.95, 0.95), (0.5, 0.5)] {
            assert!(
                table1::panacea_mul(k, rx, rw) <= table1::sibia_mul(k, rx, rw) + 1e-9,
                "rx={rx} rw={rw}"
            );
        }
    }

    #[test]
    fn eq6_beats_eq5_compensation_at_high_sparsity() {
        // The Eq. 6 reformulation wins exactly when sparsity is high.
        assert!(table1::panacea_comp_add(100, 0.9) < table1::naive_comp_add(100, 0.9));
        assert!(table1::panacea_comp_add(100, 0.1) > table1::naive_comp_add(100, 0.1));
    }

    #[test]
    fn ema_decreases_with_sparsity() {
        assert!(table1::panacea_ema(10, 0.9, 0.9) < table1::panacea_ema(10, 0.0, 0.0));
        assert_eq!(table1::panacea_ema(10, 0.0, 0.0), table1::dense_ema(10));
    }
}
