//! The asymmetrically-quantized bit-slice GEMM (AQS-GEMM), paper §III-B.
//!
//! Operands arrive pre-sliced: weights as SBR planes (`Σ_i W_i·8^i`),
//! activations as straightforward/DBS planes (`Σ_j x_j·c_j`). The kernel:
//!
//! 1. groups HO slices into length-4 vectors (4×1 for weights along M,
//!    1×4 for activations along N);
//! 2. **compresses** all-zero weight HO vectors and all-`r` activation HO
//!    vectors (`r` = HO slice of the zero-point) and **skips** every outer
//!    product that touches a compressed vector;
//! 3. restores exactness with the Eq. 6 **compensation term**: per output
//!    tile, the compensators accumulate the already-loaded weight slices of
//!    the *uncompressed* activation positions, one outer product with the
//!    all-`r` vector recreates `r·(ΣW)·Jᵁ`, and the offline-precomputed
//!    `b' = r·(ΣW)·1` completes `r·(ΣW)·Jᶜ = b' − r·(ΣW)·Jᵁ`.
//!
//! The result is bit-exact against the dense reference for type-1 DBS, and
//! exact against the DBS-truncated activations for types 2/3.

use panacea_bitslice::{SlicedActivation, SlicedWeight, VECTOR_LEN};
use panacea_tensor::Matrix;
use serde::{Deserialize, Serialize};

use crate::workload::Workload;

/// Per-tile scheduling statistics consumed by the accelerator simulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TileStats {
    /// Executed outer products that involve at least one HO plane
    /// (allocated to the dynamic workload operators, DWOs).
    pub dwo_outer_products: u64,
    /// Executed dense LO×LO outer products (static workload operators).
    pub swo_outer_products: u64,
    /// Outer products skipped thanks to compression.
    pub skipped_outer_products: u64,
    /// Compensator additions (weight-slice accumulation).
    pub comp_adds: u64,
    /// Compensator multiplications (final outer products with `r`).
    pub comp_muls: u64,
    /// 4-bit weight slices loaded from memory.
    pub w_slices_loaded: u64,
    /// 4-bit activation slices loaded from memory.
    pub x_slices_loaded: u64,
    /// Measured weight HO vector sparsity `ρ_w`.
    pub rho_w: f64,
    /// Measured activation HO vector sparsity `ρ_x`.
    pub rho_x: f64,
}

/// Extracts the 4×1 weight slice-vector at (`mg`, `k`) of a plane.
#[inline]
fn w_vec(plane: &Matrix<i8>, mg: usize, k: usize) -> [i8; VECTOR_LEN] {
    let base = mg * VECTOR_LEN;
    [
        plane[(base, k)],
        plane[(base + 1, k)],
        plane[(base + 2, k)],
        plane[(base + 3, k)],
    ]
}

/// Extracts the 1×4 activation slice-vector at (`k`, `ng`) of a plane.
#[inline]
fn x_vec(plane: &Matrix<u8>, k: usize, ng: usize) -> [u8; VECTOR_LEN] {
    let base = ng * VECTOR_LEN;
    [
        plane[(k, base)],
        plane[(k, base + 1)],
        plane[(k, base + 2)],
        plane[(k, base + 3)],
    ]
}

/// Computes `W · X` with the AQS-GEMM, returning the exact product of the
/// *represented* operands (dense-reference-exact for DBS type-1,
/// truncated-activation-exact for types 2/3) together with the measured
/// [`Workload`].
///
/// `r` is the frequent HO slice of the activation's zero-point (`zp_HO`,
/// possibly after ZPM). Symmetric activations correspond to `r = 0`.
///
/// # Panics
///
/// Panics if shapes are incompatible, or if `M`/`N` are not multiples of
/// the vector length 4.
///
/// # Examples
///
/// See the crate-level example; the central invariant is
/// `aqs_gemm(W, X, r).0 == W·X` for every `r`.
pub fn aqs_gemm(w: &SlicedWeight, x: &SlicedActivation, r: u8) -> (Matrix<i32>, Workload) {
    let (out, stats) = aqs_gemm_with_stats(w, x, r);
    let wl = Workload {
        mul: (stats.dwo_outer_products + stats.swo_outer_products) * 16,
        add: (stats.dwo_outer_products + stats.swo_outer_products) * 16,
        ema_slices: stats.w_slices_loaded + stats.x_slices_loaded,
        comp_mul: stats.comp_muls,
        comp_add: stats.comp_adds,
    };
    (out, wl)
}

/// Scheduling-level statistics only (no result materialization beyond the
/// same pass); used by the simulator and the workload-model tests.
pub fn aqs_tile_stats(w: &SlicedWeight, x: &SlicedActivation, r: u8) -> TileStats {
    aqs_gemm_with_stats(w, x, r).1
}

// The kernel walks (plane, group, k) coordinates across several parallel
// lookup tables; index loops keep it aligned with the paper's notation.
#[allow(clippy::needless_range_loop)]
fn aqs_gemm_with_stats(w: &SlicedWeight, x: &SlicedActivation, r: u8) -> (Matrix<i32>, TileStats) {
    let m = w.plane(0).rows();
    let k_dim = w.plane(0).cols();
    let n = x.plane(0).cols();
    assert_eq!(k_dim, x.plane(0).rows(), "inner dimensions differ");
    assert_eq!(
        m % VECTOR_LEN,
        0,
        "M = {m} must be a multiple of {VECTOR_LEN}"
    );
    assert_eq!(
        n % VECTOR_LEN,
        0,
        "N = {n} must be a multiple of {VECTOR_LEN}"
    );
    let n_w_planes = w.num_planes();
    let n_x_planes = x.num_planes();
    let w_ho = n_w_planes - 1;
    let x_ho = n_x_planes - 1;
    let m_groups = m / VECTOR_LEN;
    let n_groups = n / VECTOR_LEN;

    // Pre-compute compressibility of HO vectors.
    let mut w_comp = vec![vec![false; k_dim]; m_groups];
    let mut w_comp_count = 0u64;
    for (mg, row) in w_comp.iter_mut().enumerate() {
        for (k, flag) in row.iter_mut().enumerate() {
            let v = w_vec(w.plane(w_ho), mg, k);
            *flag = v.iter().all(|&s| s == 0);
            w_comp_count += u64::from(*flag);
        }
    }
    let mut x_comp = vec![vec![false; n_groups]; k_dim];
    let mut x_comp_count = 0u64;
    for (k, row) in x_comp.iter_mut().enumerate() {
        for (ng, flag) in row.iter_mut().enumerate() {
            let v = x_vec(x.plane(x_ho), k, ng);
            *flag = v.iter().all(|&s| s == r);
            x_comp_count += u64::from(*flag);
        }
    }

    let mut out = Matrix::<i32>::zeros(m, n);
    let mut stats = TileStats {
        rho_w: w_comp_count as f64 / (m_groups * k_dim).max(1) as f64,
        rho_x: x_comp_count as f64 / (k_dim * n_groups).max(1) as f64,
        ..TileStats::default()
    };

    // EMA accounting: LO planes always move; HO planes move only their
    // uncompressed vectors (weights once per tile, activations once per
    // tile — the dataflow reuse factors are modeled in the simulator).
    stats.w_slices_loaded = (m_groups * k_dim) as u64 * 4 * (n_w_planes as u64 - 1)
        + ((m_groups * k_dim) as u64 - w_comp_count) * 4;
    stats.x_slices_loaded = (k_dim * n_groups) as u64 * 4 * (n_x_planes as u64 - 1)
        + ((k_dim * n_groups) as u64 - x_comp_count) * 4;

    // Bit-slice GEMMs over all plane pairs.
    for i in 0..n_w_planes {
        let wp = w.plane(i);
        let w_scale = w.plane_weight(i);
        for j in 0..n_x_planes {
            let xp = x.plane(j);
            let scale = w_scale * x.plane_weight(j);
            let is_ho_pair = i == w_ho || j == x_ho;
            for mg in 0..m_groups {
                for kk in 0..k_dim {
                    let skip_w = i == w_ho && w_comp[mg][kk];
                    let wv = w_vec(wp, mg, kk);
                    for ng in 0..n_groups {
                        let skip_x = j == x_ho && x_comp[kk][ng];
                        if skip_w || skip_x {
                            stats.skipped_outer_products += 1;
                            continue;
                        }
                        if is_ho_pair {
                            stats.dwo_outer_products += 1;
                        } else {
                            stats.swo_outer_products += 1;
                        }
                        let xv = x_vec(xp, kk, ng);
                        for mm in 0..VECTOR_LEN {
                            let wval = i32::from(wv[mm]) * scale;
                            if wval == 0 {
                                continue;
                            }
                            for nn in 0..VECTOR_LEN {
                                out[(mg * VECTOR_LEN + mm, ng * VECTOR_LEN + nn)] +=
                                    wval * i32::from(xv[nn]);
                            }
                        }
                    }
                }
            }
        }
    }

    // Compensation (Eq. 6). r_eff is the value a compressed HO slice
    // contributes per activation position.
    let r_eff = i32::from(r) * x.plane_weight(x_ho);
    if r_eff != 0 {
        // Offline-precomputed b'[m] = r_eff · Σ_k W_int[m][k]; not counted
        // in the runtime workload (added to the layer bias in advance).
        let w_int = w.reconstruct();
        let b_prime: Vec<i64> = (0..m)
            .map(|mm| {
                w_int
                    .row(mm)
                    .iter()
                    .map(|&v| i64::from(v) * i64::from(r_eff))
                    .sum::<i64>()
            })
            .collect();
        for ng in 0..n_groups {
            for mg in 0..m_groups {
                // CS: accumulate loaded weight slices over *uncompressed*
                // activation positions (Eq. 6 reuses them; no extra EMA).
                let mut acc = [0i64; VECTOR_LEN];
                for kk in 0..k_dim {
                    if x_comp[kk][ng] {
                        continue;
                    }
                    for i in 0..n_w_planes {
                        if i == w_ho && w_comp[mg][kk] {
                            continue; // compressed weight vectors were never loaded
                        }
                        let wv = w_vec(w.plane(i), mg, kk);
                        let pw = i64::from(w.plane_weight(i));
                        for (slot, &s) in acc.iter_mut().zip(wv.iter()) {
                            *slot += i64::from(s) * pw;
                            stats.comp_adds += 1;
                        }
                    }
                }
                // One outer product with the all-r vector per 4×4 tile:
                // comp = b' − r_eff·acc, identical for the 4 columns.
                stats.comp_muls += 16;
                for mm in 0..VECTOR_LEN {
                    let row = mg * VECTOR_LEN + mm;
                    let comp = b_prime[row] - i64::from(r_eff) * acc[mm];
                    for nn in 0..VECTOR_LEN {
                        out[(row, ng * VECTOR_LEN + nn)] =
                            (i64::from(out[(row, ng * VECTOR_LEN + nn)]) + comp) as i32;
                    }
                }
            }
        }
    }

    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::table1;
    use panacea_quant::dbs::{dbs_truncate, DbsType};
    use rand::Rng;

    /// Random weight in the (3n+4)-bit range with controllable HO sparsity.
    fn random_weight(m: usize, k: usize, n_lo: usize, ho_sparse: f64, seed: u64) -> Matrix<i32> {
        let mut rng = panacea_tensor::seeded_rng(seed);
        Matrix::from_fn(m, k, |_, _| {
            if rng.gen::<f64>() < ho_sparse {
                rng.gen_range(-7i32..=7) // zero HO slice guaranteed by SBR
            } else {
                let bits = 3 * n_lo as u32 + 4;
                rng.gen_range(-(1i32 << (bits - 1))..(1i32 << (bits - 1)))
            }
        })
    }

    /// Random activation with controllable fraction inside the skip range
    /// of slice `r`.
    fn random_activation(k: usize, n: usize, r: u8, in_range: f64, seed: u64) -> Matrix<i32> {
        let mut rng = panacea_tensor::seeded_rng(seed);
        Matrix::from_fn(k, n, |_, _| {
            if rng.gen::<f64>() < in_range {
                (i32::from(r) << 4) + rng.gen_range(0..16)
            } else {
                rng.gen_range(0i32..256)
            }
        })
    }

    #[test]
    fn exact_against_dense_reference_across_sparsities() {
        for (i, &(ws, xs)) in [(0.0, 0.0), (0.9, 0.0), (0.0, 0.9), (0.8, 0.95), (1.0, 1.0)]
            .iter()
            .enumerate()
        {
            let w = random_weight(8, 12, 1, ws, 100 + i as u64);
            let x = random_activation(12, 8, 9, xs, 200 + i as u64);
            let sw = SlicedWeight::from_int(&w, 1).unwrap();
            let sx = SlicedActivation::from_uint(&x, 1, DbsType::Type1).unwrap();
            let (out, _) = aqs_gemm(&sw, &sx, 9);
            assert_eq!(out, w.gemm(&x).unwrap(), "ws={ws} xs={xs}");
        }
    }

    #[test]
    fn exact_with_r_zero_matches_symmetric_case() {
        // r = 0 degrades gracefully to the classic zero-skipping GEMM.
        let w = random_weight(4, 8, 1, 0.5, 7);
        let x = random_activation(8, 4, 0, 0.7, 8);
        let sw = SlicedWeight::from_int(&w, 1).unwrap();
        let sx = SlicedActivation::from_uint(&x, 1, DbsType::Type1).unwrap();
        let (out, wl) = aqs_gemm(&sw, &sx, 0);
        assert_eq!(out, w.gemm(&x).unwrap());
        // No compensation is ever computed when r = 0.
        assert_eq!(wl.comp_mul, 0);
        assert_eq!(wl.comp_add, 0);
    }

    #[test]
    fn exact_with_multi_plane_weights() {
        // 10-bit weights (n = 2), the paper's GPT-2 MLP mixed precision.
        let w = random_weight(4, 8, 2, 0.6, 31);
        let x = random_activation(8, 8, 5, 0.8, 32);
        let sw = SlicedWeight::from_int(&w, 2).unwrap();
        let sx = SlicedActivation::from_uint(&x, 1, DbsType::Type1).unwrap();
        let (out, _) = aqs_gemm(&sw, &sx, 5);
        assert_eq!(out, w.gemm(&x).unwrap());
    }

    #[test]
    fn exact_with_multi_plane_activations() {
        // 12-bit activations (k = 2), the paper's Llama down-projection.
        let mut rng = panacea_tensor::seeded_rng(55);
        let w = random_weight(4, 8, 1, 0.3, 41);
        let x = Matrix::from_fn(8, 4, |_, _| rng.gen_range(0i32..4096));
        let sw = SlicedWeight::from_int(&w, 1).unwrap();
        let sx = SlicedActivation::from_uint(&x, 2, DbsType::Type1).unwrap();
        let (out, _) = aqs_gemm(&sw, &sx, 3);
        assert_eq!(out, w.gemm(&x).unwrap());
    }

    #[test]
    fn exact_with_4bit_weights() {
        // n = 0: single-plane weights (the OPTQ 4-bit case of Fig. 19).
        let mut rng = panacea_tensor::seeded_rng(66);
        let w = Matrix::from_fn(4, 8, |_, _| rng.gen_range(-8i32..8));
        let x = random_activation(8, 4, 12, 0.9, 67);
        let sw = SlicedWeight::from_int(&w, 0).unwrap();
        let sx = SlicedActivation::from_uint(&x, 1, DbsType::Type1).unwrap();
        let (out, _) = aqs_gemm(&sw, &sx, 12);
        assert_eq!(out, w.gemm(&x).unwrap());
    }

    #[test]
    fn dbs_types_match_truncated_reference() {
        let w = random_weight(4, 8, 1, 0.4, 71);
        let x = random_activation(8, 4, 6, 0.5, 72);
        let sw = SlicedWeight::from_int(&w, 1).unwrap();
        for ty in [DbsType::Type2, DbsType::Type3] {
            let sx = SlicedActivation::from_uint(&x, 1, ty).unwrap();
            let x_trunc = x.map(|&v| dbs_truncate(v, ty));
            let (out, _) = aqs_gemm(&sw, &sx, 6 >> (ty.lo_bits() - 4));
            assert_eq!(out, w.gemm(&x_trunc).unwrap(), "ty={ty}");
        }
    }

    #[test]
    fn fully_compressed_activation_is_pure_compensation() {
        // Every activation value inside the skip range of r = 10.
        let w = random_weight(4, 8, 1, 0.0, 81);
        let x = Matrix::from_fn(8, 4, |_, _| 10 << 4); // all slices exactly r, LO 0
        let sw = SlicedWeight::from_int(&w, 1).unwrap();
        let sx = SlicedActivation::from_uint(&x, 1, DbsType::Type1).unwrap();
        let (out, wl) = aqs_gemm(&sw, &sx, 10);
        assert_eq!(out, w.gemm(&x).unwrap());
        // All HO-involving products skipped: only LO×LO remains.
        let stats = aqs_tile_stats(&sw, &sx, 10);
        assert_eq!(stats.rho_x, 1.0);
        assert_eq!(stats.dwo_outer_products, 8); // W_HO × x_LO only (ρw = 0)
        assert!(wl.comp_mul > 0);
    }

    #[test]
    fn workload_matches_table1_closed_forms() {
        // Construct exact sparsity patterns: the first ⌈ρK⌉ columns of the
        // weight HO are zero vectors; the first ⌈ρK⌉ rows of the
        // activation HO are all-r vectors. One m-group, one n-group, so
        // measured ρ equals the pattern fraction and products factorize.
        let k_dim = 40usize;
        for &(rho_w, rho_x) in &[(0.0, 0.0), (0.5, 0.0), (0.0, 0.5), (0.25, 0.75), (1.0, 1.0)] {
            let kw = (rho_w * k_dim as f64).round() as usize;
            let kx = (rho_x * k_dim as f64).round() as usize;
            let w = Matrix::from_fn(4, k_dim, |_, c| if c < kw { 3 } else { 40 });
            let r = 9u8;
            let x = Matrix::from_fn(k_dim, 4, |rr, _| {
                if rr < kx {
                    i32::from(r) << 4 | 5
                } else {
                    2 // HO slice 0 ≠ r: uncompressed
                }
            });
            let sw = SlicedWeight::from_int(&w, 1).unwrap();
            let sx = SlicedActivation::from_uint(&x, 1, DbsType::Type1).unwrap();
            let (out, wl) = aqs_gemm(&sw, &sx, r);
            assert_eq!(out, w.gemm(&x).unwrap());
            let stats = aqs_tile_stats(&sw, &sx, r);
            assert!((stats.rho_w - rho_w).abs() < 1e-9);
            assert!((stats.rho_x - rho_x).abs() < 1e-9);
            // Exact combinatorial count: pairs per k = 1 (LO,LO) + [x unc]
            // + [w unc] + [w unc][x unc].
            let exact = 16.0
                * ((k_dim) as f64
                    + (k_dim - kx) as f64
                    + (k_dim - kw) as f64
                    + ((0..k_dim).filter(|&i| i >= kw && i >= kx).count() as f64));
            assert_eq!(wl.mul as f64, exact, "rho_w={rho_w} rho_x={rho_x}");
            // The Table-I expectation formula matches the exact count when
            // one side is dense (independence is then trivial).
            if kw == 0 || kx == 0 {
                assert_eq!(
                    wl.mul as f64,
                    table1::panacea_mul(k_dim as u64, rho_x, rho_w),
                    "rho_w={rho_w} rho_x={rho_x}"
                );
            }
            // EMA matches Table I exactly for all patterns.
            assert_eq!(
                wl.ema_slices as f64,
                table1::panacea_ema(k_dim as u64, rho_x, rho_w),
                "rho_w={rho_w} rho_x={rho_x}"
            );
            // Compensation: 16 muls per 4×4 tile, 8·K·(1−ρx) adds when
            // ρw = 0 (Table I's assumption).
            if rho_w == 0.0 && rho_x > 0.0 {
                assert_eq!(wl.comp_mul as f64, table1::panacea_comp_mul());
                assert_eq!(
                    wl.comp_add as f64,
                    table1::panacea_comp_add(k_dim as u64, rho_x)
                );
            }
        }
    }

    #[test]
    fn stats_partition_outer_products() {
        let w = random_weight(8, 16, 1, 0.5, 91);
        let x = random_activation(16, 8, 4, 0.6, 92);
        let sw = SlicedWeight::from_int(&w, 1).unwrap();
        let sx = SlicedActivation::from_uint(&x, 1, DbsType::Type1).unwrap();
        let s = aqs_tile_stats(&sw, &sx, 4);
        let total_pairs = (2 * 2 * (8 / 4) * 16 * (8 / 4)) as u64;
        assert_eq!(
            s.dwo_outer_products + s.swo_outer_products + s.skipped_outer_products,
            total_pairs
        );
        // LO×LO products are never skipped.
        assert_eq!(s.swo_outer_products, (16 * 2 * 2) as u64);
    }

    #[test]
    #[should_panic(expected = "multiple of")]
    fn rejects_non_vector_aligned_shapes() {
        let w = Matrix::<i32>::zeros(6, 4);
        let x = Matrix::<i32>::zeros(4, 4);
        let sw = SlicedWeight::from_int(&w, 1).unwrap();
        let sx = SlicedActivation::from_uint(&x, 1, DbsType::Type1).unwrap();
        aqs_gemm(&sw, &sx, 0);
    }
}
