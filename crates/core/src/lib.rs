//! AQS-GEMM — the Panacea paper's primary algorithmic contribution —
//! together with the baseline GEMMs it is evaluated against and the
//! Table-I workload model.
//!
//! * [`dense`] — plain integer GEMM with workload accounting (what the
//!   SA-WS / SA-OS / SIMD baselines execute);
//! * [`sibia`] — the Sibia bit-slice GEMM: SBR slicing for both operands,
//!   skipping of all-zero HO slice-vectors of *one* operand (the paper's
//!   `max(ρ_w, ρ_x)` limitation);
//! * [`aqs`] — the **asymmetrically-quantized bit-slice GEMM**: SBR
//!   weights × straightforward-sliced unsigned activations, compression of
//!   all-zero weight HO vectors *and* all-`r` activation HO vectors, MAC
//!   skipping for both, and the Eq. 5→6 compensation term that restores
//!   bit-exact results while reusing already-loaded weight slices;
//! * [`workload`] — operation/EMA counters and the closed-form Table-I
//!   expressions they are validated against;
//! * [`pipeline`] — a prepared quantized linear layer (weights sliced,
//!   zero-point folded into the bias, optional requantization) tying the
//!   whole inference flow together.
//!
//! # Examples
//!
//! Bit-exactness of AQS-GEMM against the dense reference:
//!
//! ```
//! use panacea_bitslice::{SlicedActivation, SlicedWeight};
//! use panacea_core::aqs::aqs_gemm;
//! use panacea_quant::dbs::DbsType;
//! use panacea_tensor::Matrix;
//!
//! let w = Matrix::from_fn(4, 8, |r, c| (r as i32 * 3 + c as i32) % 63 - 31);
//! let x = Matrix::from_fn(8, 4, |r, c| ((r * 17 + c * 53) % 256) as i32);
//! let sw = SlicedWeight::from_int(&w, 1).unwrap();
//! let sx = SlicedActivation::from_uint(&x, 1, DbsType::Type1).unwrap();
//! let (out, _workload) = aqs_gemm(&sw, &sx, 10);
//! assert_eq!(out, w.gemm(&x).unwrap());
//! ```

pub mod aqs;
pub mod dense;
pub mod pipeline;
pub mod sibia;
pub mod workload;

pub use aqs::{aqs_gemm, aqs_tile_stats, TileStats};
pub use workload::Workload;
