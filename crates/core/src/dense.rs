//! Dense integer GEMM with workload accounting — the kernel the SA-WS,
//! SA-OS and SIMD baselines execute on 8-bit operands.

use panacea_tensor::{matrix::MatrixError, Matrix};

use crate::workload::Workload;

/// Computes `w (M×K) · x (K×N)` densely, counting every MAC.
///
/// `bits_w`/`bits_x` determine the 4b×4b-equivalent multiplication cost:
/// an `a`-bit × `b`-bit multiply costs `⌈a/4⌉·⌈b/4⌉` 4b×4b multiplies
/// (the paper's iso-resource convention: one 8b×8b = four 4b×4b).
///
/// # Errors
///
/// Returns [`MatrixError::ShapeMismatch`] on incompatible shapes.
///
/// # Examples
///
/// ```
/// use panacea_tensor::Matrix;
///
/// let w = Matrix::from_vec(4, 2, vec![1; 8]).unwrap();
/// let x = Matrix::from_vec(2, 4, vec![2; 8]).unwrap();
/// let (out, wl) = panacea_core::dense::dense_gemm(&w, &x, 8, 8)?;
/// assert_eq!(out[(0, 0)], 4);
/// // 4·2·4 MACs, each one 8b×8b = four 4b×4b.
/// assert_eq!(wl.mul, 4 * 2 * 4 * 4);
/// # Ok::<(), panacea_tensor::matrix::MatrixError>(())
/// ```
pub fn dense_gemm(
    w: &Matrix<i32>,
    x: &Matrix<i32>,
    bits_w: u8,
    bits_x: u8,
) -> Result<(Matrix<i32>, Workload), MatrixError> {
    let out = w.gemm(x)?;
    let macs = (w.rows() * w.cols() * x.cols()) as u64;
    let mul_cost = u64::from(bits_w.div_ceil(4)) * u64::from(bits_x.div_ceil(4));
    // EMA: every weight element is streamed once per output tile; at the
    // kernel level we count one pass of each operand in 4-bit slices.
    let w_slices = (w.rows() * w.cols()) as u64 * u64::from(bits_w.div_ceil(4));
    let x_slices = (x.rows() * x.cols()) as u64 * u64::from(bits_x.div_ceil(4));
    Ok((
        out,
        Workload {
            mul: macs * mul_cost,
            add: macs * mul_cost,
            ema_slices: w_slices + x_slices,
            comp_mul: 0,
            comp_add: 0,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::table1;

    #[test]
    fn matches_reference_gemm() {
        let w = Matrix::from_fn(3, 5, |r, c| r as i32 - c as i32);
        let x = Matrix::from_fn(5, 2, |r, c| (r * 2 + c) as i32);
        let (out, _) = dense_gemm(&w, &x, 8, 8).unwrap();
        assert_eq!(out, w.gemm(&x).unwrap());
    }

    #[test]
    fn workload_matches_table1_micro_tile() {
        // 4 × K × 4 with 8-bit operands: 64K 4b-equivalent multiplies.
        let k = 32usize;
        let w = Matrix::from_fn(4, k, |_, _| 1);
        let x = Matrix::from_fn(k, 4, |_, _| 1);
        let (_, wl) = dense_gemm(&w, &x, 8, 8).unwrap();
        assert_eq!(wl.mul as f64, table1::dense_mul(k as u64));
        assert_eq!(wl.ema_slices as f64, table1::dense_ema(k as u64));
    }

    #[test]
    fn lower_precision_costs_fewer_equivalent_muls() {
        let w = Matrix::from_fn(4, 8, |_, _| 1);
        let x = Matrix::from_fn(8, 4, |_, _| 1);
        let (_, wl8) = dense_gemm(&w, &x, 8, 8).unwrap();
        let (_, wl4) = dense_gemm(&w, &x, 4, 8).unwrap();
        assert_eq!(wl4.mul * 2, wl8.mul);
    }

    #[test]
    fn shape_mismatch_is_error() {
        let w = Matrix::<i32>::zeros(2, 3);
        let x = Matrix::<i32>::zeros(4, 2);
        assert!(dense_gemm(&w, &x, 8, 8).is_err());
    }
}
