//! The Sibia bit-slice GEMM (Im et al., HPCA 2023) — the strongest prior
//! baseline (paper §II-B, Fig. 4, Table I).
//!
//! Both operands are symmetrically quantized to `(3n+4)` bits and sliced
//! with SBR. Zero HO slice-vectors of **one** operand (weights *or*
//! activations, whichever is configured) are compressed and their outer
//! products skipped; the other operand's HO sparsity is left on the table.
//! That single-sided limitation is exactly what AQS-GEMM lifts, and it is
//! where Table I's `max(ρ_w, ρ_x)` factor comes from.

use panacea_bitslice::{SlicedWeight, VECTOR_LEN};
use panacea_tensor::Matrix;
use serde::{Deserialize, Serialize};

use crate::workload::Workload;

/// Which operand's zero HO vectors Sibia compresses and skips.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SkipSide {
    /// Skip zero weight HO vectors (4×1 along M).
    Weight,
    /// Skip zero activation HO vectors (1×4 along N).
    Activation,
}

#[inline]
fn col_vec(plane: &Matrix<i8>, mg: usize, k: usize) -> [i8; VECTOR_LEN] {
    let b = mg * VECTOR_LEN;
    [
        plane[(b, k)],
        plane[(b + 1, k)],
        plane[(b + 2, k)],
        plane[(b + 3, k)],
    ]
}

#[inline]
fn row_vec(plane: &Matrix<i8>, k: usize, ng: usize) -> [i8; VECTOR_LEN] {
    let b = ng * VECTOR_LEN;
    [
        plane[(k, b)],
        plane[(k, b + 1)],
        plane[(k, b + 2)],
        plane[(k, b + 3)],
    ]
}

/// Computes `W · X` with Sibia's single-sided zero-vector skipping; both
/// operands are SBR slice stacks (activations symmetric, hence also
/// [`SlicedWeight`]). Returns the bit-exact product and the measured
/// workload.
///
/// EMA is counted in 4-bit units of the *packed* `(3n+4)`-bit format
/// (e.g. 7-bit operands cost 1.75 units per element — Table I's `14K`).
///
/// # Panics
///
/// Panics if shapes are incompatible or `M`/`N` are not multiples of 4.
///
/// # Examples
///
/// ```
/// use panacea_bitslice::SlicedWeight;
/// use panacea_core::sibia::{sibia_gemm, SkipSide};
/// use panacea_tensor::Matrix;
///
/// let w = Matrix::from_fn(4, 4, |r, c| (r as i32 - c as i32) * 3);
/// let x = Matrix::from_fn(4, 4, |r, c| (r as i32 * c as i32) % 7 - 3);
/// let sw = SlicedWeight::from_int(&w, 1).unwrap();
/// let sx = SlicedWeight::from_int(&x, 1).unwrap();
/// let (out, _) = sibia_gemm(&sw, &sx, SkipSide::Activation);
/// assert_eq!(out, w.gemm(&x).unwrap());
/// ```
pub fn sibia_gemm(w: &SlicedWeight, x: &SlicedWeight, side: SkipSide) -> (Matrix<i32>, Workload) {
    let m = w.plane(0).rows();
    let k_dim = w.plane(0).cols();
    let n = x.plane(0).cols();
    assert_eq!(k_dim, x.plane(0).rows(), "inner dimensions differ");
    assert_eq!(
        m % VECTOR_LEN,
        0,
        "M = {m} must be a multiple of {VECTOR_LEN}"
    );
    assert_eq!(
        n % VECTOR_LEN,
        0,
        "N = {n} must be a multiple of {VECTOR_LEN}"
    );
    let w_ho = w.num_planes() - 1;
    let x_ho = x.num_planes() - 1;
    let m_groups = m / VECTOR_LEN;
    let n_groups = n / VECTOR_LEN;

    let w_comp: Vec<Vec<bool>> = (0..m_groups)
        .map(|mg| {
            (0..k_dim)
                .map(|k| col_vec(w.plane(w_ho), mg, k).iter().all(|&s| s == 0))
                .collect()
        })
        .collect();
    let x_comp: Vec<Vec<bool>> = (0..k_dim)
        .map(|k| {
            (0..n_groups)
                .map(|ng| row_vec(x.plane(x_ho), k, ng).iter().all(|&s| s == 0))
                .collect()
        })
        .collect();

    let mut out = Matrix::<i32>::zeros(m, n);
    let mut executed = 0u64;
    for i in 0..w.num_planes() {
        for j in 0..x.num_planes() {
            let scale = w.plane_weight(i) * x.plane_weight(j);
            for mg in 0..m_groups {
                for kk in 0..k_dim {
                    let wv = col_vec(w.plane(i), mg, kk);
                    for ng in 0..n_groups {
                        let skip = match side {
                            SkipSide::Weight => i == w_ho && w_comp[mg][kk],
                            SkipSide::Activation => j == x_ho && x_comp[kk][ng],
                        };
                        if skip {
                            continue;
                        }
                        executed += 1;
                        let xv = row_vec(x.plane(j), kk, ng);
                        for mm in 0..VECTOR_LEN {
                            let wval = i32::from(wv[mm]) * scale;
                            if wval == 0 {
                                continue;
                            }
                            for nn in 0..VECTOR_LEN {
                                out[(mg * VECTOR_LEN + mm, ng * VECTOR_LEN + nn)] +=
                                    wval * i32::from(xv[nn]);
                            }
                        }
                    }
                }
            }
        }
    }
    let bits_w = u64::from(w.bits());
    let bits_x = u64::from(x.bits());
    let ema = ((m * k_dim) as u64 * bits_w + (k_dim * n) as u64 * bits_x).div_ceil(4);
    (
        out,
        Workload {
            mul: executed * 16,
            add: executed * 16,
            ema_slices: ema,
            comp_mul: 0,
            comp_add: 0,
        },
    )
}

/// Measures the HO vector sparsities and picks the better [`SkipSide`],
/// as Sibia's scheduler would.
pub fn choose_skip_side(w: &SlicedWeight, x: &SlicedWeight) -> SkipSide {
    let w_ho = w.plane(w.num_planes() - 1);
    let x_ho = x.plane(x.num_planes() - 1);
    let rho_w = panacea_bitslice::sparsity::weight_vector_sparsity(w_ho);
    // Activation vectors run along N; reuse the weight metric on the
    // transposed plane.
    let rho_x = panacea_bitslice::sparsity::weight_vector_sparsity(&x_ho.transposed());
    if rho_w >= rho_x {
        SkipSide::Weight
    } else {
        SkipSide::Activation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::table1;
    use rand::Rng;

    fn random_sym(m: usize, k: usize, sparse: f64, seed: u64) -> Matrix<i32> {
        let mut rng = panacea_tensor::seeded_rng(seed);
        Matrix::from_fn(m, k, |_, _| {
            if rng.gen::<f64>() < sparse {
                rng.gen_range(-7i32..=7)
            } else {
                rng.gen_range(-64i32..64)
            }
        })
    }

    #[test]
    fn exact_for_both_skip_sides() {
        let w = random_sym(8, 12, 0.6, 1);
        let x = random_sym(12, 8, 0.7, 2);
        let sw = SlicedWeight::from_int(&w, 1).unwrap();
        let sx = SlicedWeight::from_int(&x, 1).unwrap();
        let reference = w.gemm(&x).unwrap();
        for side in [SkipSide::Weight, SkipSide::Activation] {
            let (out, _) = sibia_gemm(&sw, &sx, side);
            assert_eq!(out, reference, "side={side:?}");
        }
    }

    #[test]
    fn workload_matches_table1() {
        let k_dim = 40usize;
        for &rho in &[0.0, 0.25, 0.5, 1.0] {
            let kx = (rho * k_dim as f64).round() as usize;
            // First kx rows of the activation HO are zero vectors.
            let x = Matrix::from_fn(k_dim, 4, |r, _| if r < kx { 3 } else { 40 });
            let w = Matrix::from_fn(4, k_dim, |_, _| 40);
            let sw = SlicedWeight::from_int(&w, 1).unwrap();
            let sx = SlicedWeight::from_int(&x, 1).unwrap();
            let (out, wl) = sibia_gemm(&sw, &sx, SkipSide::Activation);
            assert_eq!(out, w.gemm(&x).unwrap());
            assert_eq!(
                wl.mul as f64,
                table1::sibia_mul(k_dim as u64, rho, 0.0),
                "rho={rho}"
            );
            assert_eq!(wl.ema_slices as f64, table1::sibia_ema(k_dim as u64));
        }
    }

    #[test]
    fn single_sided_skipping_leaves_other_sparsity_unused() {
        // Sparse weights but skipping configured on (dense) activations:
        // no work is saved — the Sibia limitation AQS-GEMM removes.
        let w = random_sym(8, 16, 1.0, 5); // all-zero HO weight vectors
        let x = random_sym(16, 8, 0.0, 6);
        let sw = SlicedWeight::from_int(&w, 1).unwrap();
        let sx = SlicedWeight::from_int(&x, 1).unwrap();
        let (_, wl_wrong) = sibia_gemm(&sw, &sx, SkipSide::Activation);
        let (_, wl_right) = sibia_gemm(&sw, &sx, SkipSide::Weight);
        assert!(wl_right.mul < wl_wrong.mul);
        assert_eq!(choose_skip_side(&sw, &sx), SkipSide::Weight);
    }

    #[test]
    fn ema_is_constant_in_sparsity() {
        let w = random_sym(4, 20, 0.9, 7);
        let x_dense = random_sym(20, 4, 0.0, 8);
        let x_sparse = random_sym(20, 4, 1.0, 9);
        let sw = SlicedWeight::from_int(&w, 1).unwrap();
        let (_, a) = sibia_gemm(
            &sw,
            &SlicedWeight::from_int(&x_dense, 1).unwrap(),
            SkipSide::Activation,
        );
        let (_, b) = sibia_gemm(
            &sw,
            &SlicedWeight::from_int(&x_sparse, 1).unwrap(),
            SkipSide::Activation,
        );
        assert_eq!(a.ema_slices, b.ema_slices);
    }

    #[test]
    fn mixed_precision_10bit_weights() {
        // The paper's GPT-2 MLP case: 10-bit weights = 3 SBR slices.
        let mut rng = panacea_tensor::seeded_rng(10);
        let w = Matrix::from_fn(4, 8, |_, _| rng.gen_range(-512i32..512));
        let x = random_sym(8, 4, 0.5, 11);
        let sw = SlicedWeight::from_int(&w, 2).unwrap();
        let sx = SlicedWeight::from_int(&x, 1).unwrap();
        let (out, _) = sibia_gemm(&sw, &sx, SkipSide::Activation);
        assert_eq!(out, w.gemm(&x).unwrap());
    }
}
