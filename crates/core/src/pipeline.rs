//! A complete quantized linear layer — the unit of work Panacea executes.
//!
//! [`QuantizedLinear`] packages everything the paper's inference flow
//! (Fig. 6, right half) attaches to one GEMM: the SBR-sliced symmetric
//! weights, the calibrated asymmetric activation format (ZPM/DBS
//! applied), the bias with the `zp·W·1` term folded in offline (Eq. 3),
//! and optionally a requantizer producing the next layer's input codes
//! (the PPU loop of Fig. 11). `forward` runs the AQS-GEMM — compressed,
//! skipped, compensated, and bit-exact.

use panacea_bitslice::{SliceError, SlicedActivation, SlicedWeight};
use panacea_quant::requant::Requantizer;
use panacea_quant::{LayerQuantConfig, QuantError, Quantizer, SymmetricQuantizer};
use panacea_tensor::Matrix;

use crate::aqs::aqs_gemm;
use crate::workload::Workload;

/// Errors from layer preparation.
#[derive(Debug)]
pub enum PipelineError {
    /// Weight quantization/slicing failed.
    Slice(SliceError),
    /// Quantizer construction failed.
    Quant(QuantError),
    /// Bias length does not match the weight rows.
    BiasMismatch {
        /// Expected entries (weight rows).
        expected: usize,
        /// Provided entries.
        actual: usize,
    },
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Slice(e) => write!(f, "slicing failed: {e}"),
            PipelineError::Quant(e) => write!(f, "quantization failed: {e}"),
            PipelineError::BiasMismatch { expected, actual } => {
                write!(f, "bias has {actual} entries, weight has {expected} rows")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<SliceError> for PipelineError {
    fn from(e: SliceError) -> Self {
        PipelineError::Slice(e)
    }
}

impl From<QuantError> for PipelineError {
    fn from(e: QuantError) -> Self {
        PipelineError::Quant(e)
    }
}

/// A prepared quantized linear layer (weights resident, bias folded).
#[derive(Debug, Clone)]
pub struct QuantizedLinear {
    sliced_weight: SlicedWeight,
    w_scale: f32,
    act: LayerQuantConfig,
    /// `b̂ = b_int − zp·(W·1)`, added after the GEMM.
    folded_bias: Vec<i64>,
    requant: Option<Requantizer>,
}

impl QuantizedLinear {
    /// Prepares a layer from float weights + bias and a finalized
    /// activation calibration.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError`] if the bias length mismatches or the
    /// weights cannot be quantized/sliced at `w_bits`.
    ///
    /// # Examples
    ///
    /// ```
    /// use panacea_core::pipeline::QuantizedLinear;
    /// use panacea_quant::ActivationCalibrator;
    /// use panacea_tensor::{dist::DistributionKind, seeded_rng};
    ///
    /// let mut rng = seeded_rng(2);
    /// let w = DistributionKind::Gaussian { mean: 0.0, std: 0.05 }.sample_matrix(8, 16, &mut rng);
    /// let x = DistributionKind::Gaussian { mean: 0.0, std: 0.5 }.sample_matrix(16, 8, &mut rng);
    /// let mut cal = ActivationCalibrator::new(8).with_zpm(true);
    /// cal.observe(&x);
    /// let layer = QuantizedLinear::prepare(&w, &[0.0; 8], 7, cal.finalize())?;
    /// let (out, _) = layer.forward_f32(&x);
    /// assert_eq!(out.shape(), (8, 8));
    /// # Ok::<(), panacea_core::pipeline::PipelineError>(())
    /// ```
    pub fn prepare(
        w_f: &Matrix<f32>,
        bias: &[f32],
        w_bits: u8,
        act: LayerQuantConfig,
    ) -> Result<Self, PipelineError> {
        if bias.len() != w_f.rows() {
            return Err(PipelineError::BiasMismatch {
                expected: w_f.rows(),
                actual: bias.len(),
            });
        }
        let wq = SymmetricQuantizer::calibrate(w_f.as_slice(), w_bits);
        let w_int = wq.quantize_matrix(w_f);
        let n_lo = usize::from((w_bits - 4) / 3);
        let sliced_weight = SlicedWeight::from_int(&w_int, n_lo)?;
        let acc_scale = f64::from(wq.params().scale) * f64::from(act.quantizer.params().scale);
        let zp = i64::from(act.quantizer.params().zero_point);
        let folded_bias = (0..w_int.rows())
            .map(|m| {
                let b_int = (f64::from(bias[m]) / acc_scale).round() as i64;
                let row_sum: i64 = w_int.row(m).iter().map(|&v| i64::from(v)).sum();
                b_int - zp * row_sum
            })
            .collect();
        Ok(QuantizedLinear {
            sliced_weight,
            w_scale: wq.params().scale,
            act,
            folded_bias,
            requant: None,
        })
    }

    /// Attaches a requantizer so [`forward_codes`](Self::forward_codes)
    /// can emit the next layer's 8-bit input codes directly.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Quant`] if the accumulator scale is
    /// degenerate.
    pub fn with_output(mut self, next: LayerQuantConfig) -> Result<Self, PipelineError> {
        let acc_scale = f64::from(self.w_scale) * f64::from(self.act.quantizer.params().scale);
        self.requant = Some(Requantizer::new(acc_scale, next.quantizer)?);
        Ok(self)
    }

    /// The activation configuration this layer expects at its input.
    pub fn input_config(&self) -> &LayerQuantConfig {
        &self.act
    }

    /// The accumulator scale `s_W · s_x`.
    pub fn accumulator_scale(&self) -> f64 {
        f64::from(self.w_scale) * f64::from(self.act.quantizer.params().scale)
    }

    /// Runs the layer on already-quantized input codes (`K × N`,
    /// unsigned). Returns the biased integer accumulators
    /// (`≈ (Wx + b)/s_W s_x`) and the measured workload.
    ///
    /// # Panics
    ///
    /// Panics if shapes are incompatible or codes exceed the activation
    /// format.
    pub fn forward(&self, x_codes: &Matrix<i32>) -> (Matrix<i32>, Workload) {
        let k = self.act.quantizer.params().bits / 4 - 1;
        let sx = SlicedActivation::from_uint(x_codes, usize::from(k), self.act.dbs_type)
            .expect("input codes exceed the calibrated activation format");
        let (mut acc, wl) = aqs_gemm(&self.sliced_weight, &sx, self.act.frequent_ho_slice);
        for m in 0..acc.rows() {
            let b = self.folded_bias[m];
            for v in acc.row_mut(m) {
                *v = (i64::from(*v) + b) as i32;
            }
        }
        (acc, wl)
    }

    /// Quantizes a float input, runs the layer, and dequantizes the
    /// output — the float-in/float-out convenience path.
    pub fn forward_f32(&self, x_f: &Matrix<f32>) -> (Matrix<f32>, Workload) {
        let codes = self.act.quantizer.quantize_matrix(x_f);
        let (acc, wl) = self.forward(&codes);
        let s = self.accumulator_scale();
        (acc.map(|&v| (f64::from(v) * s) as f32), wl)
    }

    /// Runs the layer and requantizes into the next layer's input codes.
    ///
    /// # Panics
    ///
    /// Panics if no output format was attached via
    /// [`with_output`](Self::with_output).
    pub fn forward_codes(&self, x_codes: &Matrix<i32>) -> (Matrix<i32>, Workload) {
        let rq = self
            .requant
            .as_ref()
            .expect("attach an output format with with_output() before forward_codes()");
        let (acc, wl) = self.forward(x_codes);
        (rq.requantize_matrix(&acc), wl)
    }

    /// Runs the layer on several requests' codes at once by coalescing
    /// their columns into one wide GEMM `N` dimension and splitting the
    /// accumulators back per request.
    ///
    /// The PE array processes activations in vectors of
    /// [`VECTOR_LEN`](panacea_bitslice::VECTOR_LEN) columns, so the
    /// coalesced batch is zero-padded up to the vector width and the
    /// padding trimmed from the output — narrow lone requests pay that
    /// padding in full, which is precisely the waste batching amortizes.
    /// Every AQS-GEMM step is element-exact regardless of how columns are
    /// grouped, so each returned matrix is bit-identical to running that
    /// request alone; only the [`Workload`] accounting reflects the
    /// amortization. This is the single-layer batched entry point;
    /// `panacea-serve`'s `PreparedModel::forward_batch` runs the same
    /// [`run_coalesced`] contract across a whole layer chain.
    ///
    /// # Panics
    ///
    /// Panics if the requests disagree on the feature dimension `K` or if
    /// codes exceed the activation format.
    pub fn forward_batch(&self, requests: &[&Matrix<i32>]) -> (Vec<Matrix<i32>>, Workload) {
        run_coalesced(requests, |stacked| self.forward_padded(stacked))
    }

    /// [`forward`](Self::forward) for any column count: pads up to the PE
    /// vector width when needed (skipping the copy when already aligned)
    /// and trims the padding from the accumulators.
    ///
    /// # Panics
    ///
    /// Same conditions as [`forward`](Self::forward).
    pub fn forward_padded(&self, x_codes: &Matrix<i32>) -> (Matrix<i32>, Workload) {
        if x_codes.cols().is_multiple_of(panacea_bitslice::VECTOR_LEN) {
            return self.forward(x_codes);
        }
        let (padded, pad) = pad_cols_to_vector_len(x_codes);
        let (acc, wl) = self.forward(&padded);
        (acc.submatrix(0, 0, acc.rows(), acc.cols() - pad), wl)
    }
}

/// The shared contract of every batched entry point: coalesce the
/// requests' columns into one wide matrix, run `f` exactly once over it,
/// and split the result back per request. `f` must return a matrix with
/// one output column per input column (AQS-GEMM's column independence
/// makes the split bit-exact).
///
/// # Panics
///
/// Panics if the requests disagree on the feature dimension.
pub fn run_coalesced<F>(requests: &[&Matrix<i32>], f: F) -> (Vec<Matrix<i32>>, Workload)
where
    F: FnOnce(&Matrix<i32>) -> (Matrix<i32>, Workload),
{
    if requests.is_empty() {
        return (Vec::new(), Workload::default());
    }
    let widths: Vec<usize> = requests.iter().map(|x| x.cols()).collect();
    let stacked =
        Matrix::hstack(requests).expect("batched requests must share the feature dimension");
    let (out, wl) = f(&stacked);
    let parts = out
        .split_cols(&widths)
        .expect("batched op must keep one output column per input column");
    (parts, wl)
}

/// Zero-pads a code matrix with extra columns until its width is a
/// multiple of the PE array's vector length, returning the padded matrix
/// and the number of columns added. Zero is always a representable code,
/// and GEMM columns are independent, so padding never perturbs real
/// outputs.
pub fn pad_cols_to_vector_len(codes: &Matrix<i32>) -> (Matrix<i32>, usize) {
    let vlen = panacea_bitslice::VECTOR_LEN;
    let pad = (vlen - codes.cols() % vlen) % vlen;
    if pad == 0 {
        return (codes.clone(), 0);
    }
    let padded = Matrix::from_fn(codes.rows(), codes.cols() + pad, |r, c| {
        if c < codes.cols() {
            codes[(r, c)]
        } else {
            0
        }
    });
    (padded, pad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use panacea_quant::dbs::DbsConfig;
    use panacea_quant::ActivationCalibrator;
    use panacea_tensor::dist::DistributionKind;
    use panacea_tensor::stats;

    fn calib(x: &Matrix<f32>, zpm: bool) -> LayerQuantConfig {
        let mut cal = ActivationCalibrator::new(8)
            .with_zpm(zpm)
            .with_dbs(DbsConfig::default());
        cal.observe(x);
        cal.finalize()
    }

    fn setup(seed: u64) -> (Matrix<f32>, Matrix<f32>, Vec<f32>) {
        let mut rng = panacea_tensor::seeded_rng(seed);
        let w = DistributionKind::Gaussian {
            mean: 0.0,
            std: 0.05,
        }
        .sample_matrix(16, 32, &mut rng);
        let x = DistributionKind::TransformerAct {
            core_mean: 0.1,
            core_std: 0.4,
            pos_scale: 8.0,
            neg_scale: 5.0,
            outlier_frac: 0.02,
        }
        .sample_matrix(32, 16, &mut rng);
        let bias: Vec<f32> = (0..16)
            .map(|_| {
                DistributionKind::Gaussian {
                    mean: 0.0,
                    std: 0.1,
                }
                .sample(&mut rng)
            })
            .collect();
        (w, x, bias)
    }

    #[test]
    fn forward_tracks_float_reference() {
        let (w, x, bias) = setup(60);
        let layer = QuantizedLinear::prepare(&w, &bias, 7, calib(&x, true)).expect("prepare");
        let (out, _) = layer.forward_f32(&x);
        let mut reference = w.gemm_f32(&x).expect("shapes");
        for m in 0..reference.rows() {
            for n in 0..reference.cols() {
                reference[(m, n)] += bias[m];
            }
        }
        let sqnr = stats::sqnr_db(reference.as_slice(), out.as_slice());
        assert!(sqnr > 15.0, "quantized layer too lossy: {sqnr} dB");
    }

    #[test]
    fn zero_point_folding_matches_direct_computation() {
        let (w, x, bias) = setup(61);
        let cfg = calib(&x, true);
        let layer = QuantizedLinear::prepare(&w, &bias, 7, cfg).expect("prepare");
        let codes = cfg.quantizer.quantize_matrix(&x);
        let (acc, _) = layer.forward(&codes);
        // Recompute: W_int (codes − zp) + b_int, using truncated codes.
        let wq = SymmetricQuantizer::calibrate(w.as_slice(), 7);
        let w_int = wq.quantize_matrix(&w);
        let zp = cfg.quantizer.params().zero_point;
        let trunc = codes.map(|&v| panacea_quant::dbs::dbs_truncate(v, cfg.dbs_type) - zp);
        let mut direct = w_int.gemm(&trunc).expect("shapes");
        let s = layer.accumulator_scale();
        for (m, &bv) in bias.iter().enumerate() {
            let b = (f64::from(bv) / s).round() as i32;
            for v in direct.row_mut(m) {
                *v += b;
            }
        }
        // The only difference allowed is the DBS truncation constant, which
        // cancels because both paths use truncated codes.
        assert_eq!(acc, direct);
    }

    #[test]
    fn two_layer_chain_produces_valid_codes() {
        let (w1, x, bias1) = setup(62);
        let mut rng = panacea_tensor::seeded_rng(63);
        let w2 = DistributionKind::Gaussian {
            mean: 0.0,
            std: 0.05,
        }
        .sample_matrix(8, 16, &mut rng);
        // Calibrate layer-2 input from the float intermediate.
        let mut inter = w1.gemm_f32(&x).expect("shapes");
        for m in 0..inter.rows() {
            for n in 0..inter.cols() {
                inter[(m, n)] += bias1[m];
            }
        }
        let cfg1 = calib(&x, true);
        let cfg2 = calib(&inter, true);
        let layer1 = QuantizedLinear::prepare(&w1, &bias1, 7, cfg1)
            .expect("layer1")
            .with_output(cfg2)
            .expect("requant");
        let layer2 = QuantizedLinear::prepare(&w2, &[0.0; 8], 7, cfg2).expect("layer2");

        let codes1 = cfg1.quantizer.quantize_matrix(&x);
        let (codes2, _) = layer1.forward_codes(&codes1);
        assert!(codes2.iter().all(|&v| (0..=255).contains(&v)));
        let (out, _) = layer2.forward(&codes2);
        assert_eq!(out.shape(), (8, 16));
    }

    #[test]
    fn bias_mismatch_rejected() {
        let (w, x, _) = setup(64);
        let err = QuantizedLinear::prepare(&w, &[0.0; 3], 7, calib(&x, false)).unwrap_err();
        assert!(matches!(
            err,
            PipelineError::BiasMismatch {
                expected: 16,
                actual: 3
            }
        ));
    }

    #[test]
    #[should_panic(expected = "attach an output format")]
    fn forward_codes_without_output_panics() {
        let (w, x, bias) = setup(65);
        let cfg = calib(&x, false);
        let layer = QuantizedLinear::prepare(&w, &bias, 7, cfg).expect("prepare");
        let codes = cfg.quantizer.quantize_matrix(&x);
        layer.forward_codes(&codes);
    }

    #[test]
    fn forward_batch_is_bit_exact_vs_single_requests() {
        let (w, x, bias) = setup(67);
        let cfg = calib(&x, true);
        let layer = QuantizedLinear::prepare(&w, &bias, 7, cfg).expect("prepare");
        let codes = cfg.quantizer.quantize_matrix(&x);
        // Slice the 16 columns into uneven requests (incl. width 1 and 5).
        let requests = codes.split_cols(&[1, 5, 3, 7]).expect("widths");
        let refs: Vec<&Matrix<i32>> = requests.iter().collect();
        let (batched, wl) = layer.forward_batch(&refs);
        assert!(wl.mul > 0);
        for (req, got) in requests.iter().zip(&batched) {
            // Solo reference: pad the lone request to the vector width
            // (what a caller without a batcher is forced to do) and trim.
            let (padded, pad) = pad_cols_to_vector_len(req);
            let (alone, _) = layer.forward(&padded);
            let alone = alone.submatrix(0, 0, alone.rows(), alone.cols() - pad);
            assert_eq!(got, &alone);
        }
    }

    #[test]
    fn pad_cols_preserves_content_and_alignment() {
        let m = Matrix::from_fn(4, 5, |r, c| (r * 5 + c) as i32);
        let (p, pad) = pad_cols_to_vector_len(&m);
        assert_eq!(pad, 3);
        assert_eq!(p.shape(), (4, 8));
        assert_eq!(p.submatrix(0, 0, 4, 5), m);
        assert!((5..8).all(|c| (0..4).all(|r| p[(r, c)] == 0)));
        let aligned = Matrix::from_fn(4, 8, |r, c| (r + c) as i32);
        let (q, pad0) = pad_cols_to_vector_len(&aligned);
        assert_eq!(pad0, 0);
        assert_eq!(q, aligned);
    }

    #[test]
    fn forward_batch_of_nothing_is_empty() {
        let (w, x, bias) = setup(68);
        let layer = QuantizedLinear::prepare(&w, &bias, 7, calib(&x, true)).expect("prepare");
        let (outs, wl) = layer.forward_batch(&[]);
        assert!(outs.is_empty());
        assert_eq!(wl, Workload::default());
    }

    #[test]
    fn works_with_4bit_weights() {
        let (w, x, bias) = setup(66);
        let layer = QuantizedLinear::prepare(&w, &bias, 4, calib(&x, true)).expect("prepare");
        let (out, wl) = layer.forward_f32(&x);
        assert_eq!(out.shape(), (16, 16));
        assert!(wl.mul > 0);
    }
}
