//! Property-based tests of the AQS-GEMM invariants: bit-exactness for
//! arbitrary operands, sparsity patterns, `r` values and plane counts.

use panacea_bitslice::{SlicedActivation, SlicedWeight};
use panacea_core::aqs::{aqs_gemm, aqs_tile_stats};
use panacea_core::sibia::{sibia_gemm, SkipSide};
use panacea_quant::dbs::{dbs_truncate, DbsType};
use panacea_tensor::Matrix;
use proptest::prelude::*;

fn weight_strategy(m: usize, k: usize) -> impl Strategy<Value = Matrix<i32>> {
    proptest::collection::vec(-64i32..=63, m * k)
        .prop_map(move |v| Matrix::from_vec(m, k, v).expect("sized"))
}

fn act_strategy(k: usize, n: usize) -> impl Strategy<Value = Matrix<i32>> {
    proptest::collection::vec(0i32..=255, k * n)
        .prop_map(move |v| Matrix::from_vec(k, n, v).expect("sized"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// AQS-GEMM is exact for every operand pair and every r.
    #[test]
    fn aqs_exact_for_arbitrary_operands(
        w in weight_strategy(8, 12),
        x in act_strategy(12, 8),
        r in 0u8..16,
    ) {
        let sw = SlicedWeight::from_int(&w, 1).expect("weights");
        let sx = SlicedActivation::from_uint(&x, 1, DbsType::Type1).expect("acts");
        let (out, _) = aqs_gemm(&sw, &sx, r);
        prop_assert_eq!(out, w.gemm(&x).expect("shapes"));
    }

    /// The result never depends on r — r only moves work between the
    /// skipped set and the compensation term.
    #[test]
    fn result_independent_of_r(
        w in weight_strategy(4, 8),
        x in act_strategy(8, 4),
    ) {
        let sw = SlicedWeight::from_int(&w, 1).expect("weights");
        let sx = SlicedActivation::from_uint(&x, 1, DbsType::Type1).expect("acts");
        let (first, _) = aqs_gemm(&sw, &sx, 0);
        for r in 1u8..16 {
            let (out, _) = aqs_gemm(&sw, &sx, r);
            prop_assert_eq!(&out, &first, "r = {}", r);
        }
    }

    /// DBS types 2/3 compute exactly the truncated-operand product.
    #[test]
    fn dbs_exactness(
        w in weight_strategy(4, 8),
        x in act_strategy(8, 4),
        r in 0u8..8,
    ) {
        let sw = SlicedWeight::from_int(&w, 1).expect("weights");
        for ty in [DbsType::Type2, DbsType::Type3] {
            let sx = SlicedActivation::from_uint(&x, 1, ty).expect("acts");
            let x_eff = x.map(|&v| dbs_truncate(v, ty));
            let (out, _) = aqs_gemm(&sw, &sx, r);
            prop_assert_eq!(out, w.gemm(&x_eff).expect("shapes"));
        }
    }

    /// Work never increases when values move into the skip range.
    #[test]
    fn more_compressible_data_never_costs_more(
        base in act_strategy(16, 8),
        r in 0u8..16,
    ) {
        let w = Matrix::from_fn(4, 16, |a, b| ((a * 7 + b * 3) % 120) as i32 - 60);
        let sw = SlicedWeight::from_int(&w, 1).expect("weights");
        // Force the first half of the rows into the skip range.
        let squeezed = Matrix::from_fn(16, 8, |k, n| {
            if k < 8 { (i32::from(r) << 4) | (base[(k, n)] & 0xF) } else { base[(k, n)] }
        });
        let sx_base = SlicedActivation::from_uint(&base, 1, DbsType::Type1).expect("acts");
        let sx_sq = SlicedActivation::from_uint(&squeezed, 1, DbsType::Type1).expect("acts");
        let (_, wl_base) = aqs_gemm(&sw, &sx_base, r);
        let (_, wl_sq) = aqs_gemm(&sw, &sx_sq, r);
        prop_assert!(wl_sq.mul <= wl_base.mul);
        prop_assert!(wl_sq.ema_slices <= wl_base.ema_slices);
    }

    /// Measured vector sparsities are consistent with the skip counts.
    #[test]
    fn stats_are_internally_consistent(
        w in weight_strategy(8, 8),
        x in act_strategy(8, 8),
        r in 0u8..16,
    ) {
        let sw = SlicedWeight::from_int(&w, 1).expect("weights");
        let sx = SlicedActivation::from_uint(&x, 1, DbsType::Type1).expect("acts");
        let s = aqs_tile_stats(&sw, &sx, r);
        prop_assert!((0.0..=1.0).contains(&s.rho_w));
        prop_assert!((0.0..=1.0).contains(&s.rho_x));
        let total = s.dwo_outer_products + s.swo_outer_products + s.skipped_outer_products;
        prop_assert_eq!(total, 2 * 2 * 2 * 8 * 2); // planes² × mg × K × ng
    }

    /// Sibia and AQS agree bit-for-bit on shared representable inputs.
    #[test]
    fn engines_agree_on_common_domain(
        w in weight_strategy(4, 8),
        x_small in proptest::collection::vec(0i32..=63, 8 * 4),
    ) {
        let x = Matrix::from_vec(8, 4, x_small).expect("sized");
        let sw = SlicedWeight::from_int(&w, 1).expect("weights");
        let sx = SlicedActivation::from_uint(&x, 1, DbsType::Type1).expect("acts");
        let sx_sbr = SlicedWeight::from_int(&x, 1).expect("acts as SBR");
        let reference = w.gemm(&x).expect("shapes");
        prop_assert_eq!(aqs_gemm(&sw, &sx, 0).0, reference.clone());
        prop_assert_eq!(sibia_gemm(&sw, &sx_sbr, SkipSide::Weight).0, reference);
    }
}
