//! Zero-point manipulation (ZPM), paper §III-C and Eq. 7.
//!
//! Under AQS-GEMM, a high-order (HO) activation slice is skippable when it
//! equals the frequent value `r = zp_HO`. The values whose HO slice equals
//! `r` form the *skip range* `[r·2^l, r·2^l + 2^l − 1]` of width `2^l`
//! (`l` = LO-slice bit-width). A zero-point that sits near the *edge* of a
//! skip range wastes half of it: the quantized distribution is centred at
//! `zp`, so only the half of the bell inside the range is skippable.
//!
//! ZPM moves the zero-point to the *centre* of a skip range during PTQ
//! calibration:
//!
//! ```text
//! zp' = 2^l · round(zp / 2^l) + 2^{l−1}     (zp > 0)
//! zp' = 0                                   (otherwise)
//! r'  = (zp' − 2^{l−1}) >> l
//! ```
//!
//! The shift is at most `2^{l−1}` quantization steps, which the paper
//! observes does not measurably change model quality (the dequantized
//! values move by ≤ half of the HO-slice granularity, while scale is
//! untouched).

use serde::{Deserialize, Serialize};

use crate::quantizer::AsymmetricQuantizer;

/// Result of applying ZPM to a calibrated zero-point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ZpmResult {
    /// Manipulated zero-point `zp'`.
    pub zero_point: i32,
    /// The frequent HO slice value `r'` whose vectors are compressible.
    pub frequent_ho_slice: u8,
    /// Inclusive start of the skip range in the quantized domain.
    pub skip_lo: i32,
    /// Inclusive end of the skip range in the quantized domain.
    pub skip_hi: i32,
}

/// Applies Eq. 7 to a zero-point for total width `bits` and LO-slice width
/// `lo_bits`, returning the manipulated zero-point and the induced skip
/// range.
///
/// The result is clamped so the skip range stays inside `[0, 2^bits − 1]`.
///
/// # Panics
///
/// Panics if `lo_bits >= bits` or `bits > 16`.
///
/// # Examples
///
/// The paper's running example (Fig. 8): an OPT-2.7B FC layer calibrates to
/// `zp = 161`; with 4-bit LO slices ZPM moves it to `zp' = 168`, centring
/// the distribution in the skip range of HO slice `r' = 1010₂ = 10`:
///
/// ```
/// let z = panacea_quant::zpm::manipulate_zero_point(161, 8, 4);
/// assert_eq!(z.zero_point, 168);
/// assert_eq!(z.frequent_ho_slice, 0b1010);
/// assert_eq!((z.skip_lo, z.skip_hi), (160, 175));
/// ```
pub fn manipulate_zero_point(zp: i32, bits: u8, lo_bits: u8) -> ZpmResult {
    assert!(
        lo_bits < bits,
        "LO width {lo_bits} must be below total width {bits}"
    );
    assert!(bits <= 16, "unsupported bit-width {bits}");
    let step = 1i32 << lo_bits;
    let half = step / 2;
    let qmax = (1i32 << bits) - 1;
    let zp_prime = if zp > 0 {
        // Snap to the centre of the skip range containing zp; this is the
        // nearest centre, so the zero-point moves by at most 2^{l−1} steps.
        ((zp >> lo_bits) * step + half).clamp(half, qmax - half + 1)
    } else {
        0
    };
    let r = ((zp_prime - half).max(0) >> lo_bits) as u8;
    let skip_lo = i32::from(r) << lo_bits;
    ZpmResult {
        zero_point: zp_prime,
        frequent_ho_slice: r,
        skip_lo,
        skip_hi: skip_lo + step - 1,
    }
}

/// Convenience wrapper: returns a quantizer whose zero-point has been
/// manipulated, together with the [`ZpmResult`] bookkeeping.
///
/// # Examples
///
/// ```
/// use panacea_quant::{AsymmetricQuantizer, Quantizer};
///
/// let q = AsymmetricQuantizer::from_params(0.05, 161, 8).unwrap();
/// let (q2, z) = panacea_quant::zpm::apply_zpm(&q, 4);
/// assert_eq!(q2.params().zero_point, z.zero_point);
/// ```
pub fn apply_zpm(q: &AsymmetricQuantizer, lo_bits: u8) -> (AsymmetricQuantizer, ZpmResult) {
    use crate::quantizer::Quantizer;
    let p = q.params();
    let z = manipulate_zero_point(p.zero_point, p.bits, lo_bits);
    (q.with_zero_point(z.zero_point), z)
}

/// The frequent HO slice for an *unmanipulated* zero-point: `r = zp_HO`
/// (paper §III-B). Used when ZPM is disabled.
///
/// # Examples
///
/// ```
/// assert_eq!(panacea_quant::zpm::frequent_slice_without_zpm(161, 4), 0b1010);
/// ```
pub fn frequent_slice_without_zpm(zp: i32, lo_bits: u8) -> u8 {
    ((zp.max(0)) >> lo_bits) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_zp_161() {
        // Fig. 8: zp = 161 → r = 1010₂ without ZPM, zp' = 168 with ZPM.
        assert_eq!(frequent_slice_without_zpm(161, 4), 0b1010);
        let z = manipulate_zero_point(161, 8, 4);
        assert_eq!(z.zero_point, 168);
        assert_eq!(z.frequent_ho_slice, 0b1010);
        assert_eq!(z.skip_lo, 160);
        assert_eq!(z.skip_hi, 175);
    }

    #[test]
    fn zero_and_negative_zp_map_to_zero() {
        let z = manipulate_zero_point(0, 8, 4);
        assert_eq!(z.zero_point, 0);
        assert_eq!(z.frequent_ho_slice, 0);
        let z = manipulate_zero_point(-5, 8, 4);
        assert_eq!(z.zero_point, 0);
    }

    #[test]
    fn manipulated_zp_is_centre_of_its_skip_range() {
        for zp in 1..=255 {
            let z = manipulate_zero_point(zp, 8, 4);
            if z.zero_point == 0 {
                continue;
            }
            assert_eq!(
                z.zero_point,
                (z.skip_lo + z.skip_hi + 1) / 2,
                "zp'={} not centred in [{}, {}]",
                z.zero_point,
                z.skip_lo,
                z.skip_hi
            );
        }
    }

    #[test]
    fn shift_is_bounded_by_half_range() {
        for zp in 1..=255 {
            let z = manipulate_zero_point(zp, 8, 4);
            assert!(
                (z.zero_point - zp).abs() <= 8,
                "zp={zp} moved to {} (> 2^{{l-1}} steps)",
                z.zero_point
            );
        }
    }

    #[test]
    fn skip_range_stays_inside_quantized_domain() {
        for lo_bits in 4..=6u8 {
            for zp in 0..=255 {
                let z = manipulate_zero_point(zp, 8, lo_bits);
                assert!(z.skip_lo >= 0);
                assert!(
                    z.skip_hi <= 255,
                    "lo_bits={lo_bits} zp={zp} hi={}",
                    z.skip_hi
                );
            }
        }
    }

    #[test]
    fn wider_lo_slices_give_wider_skip_ranges() {
        let z4 = manipulate_zero_point(128, 8, 4);
        let z5 = manipulate_zero_point(128, 8, 5);
        let z6 = manipulate_zero_point(128, 8, 6);
        assert_eq!(z4.skip_hi - z4.skip_lo + 1, 16);
        assert_eq!(z5.skip_hi - z5.skip_lo + 1, 32);
        assert_eq!(z6.skip_hi - z6.skip_lo + 1, 64);
    }

    #[test]
    fn apply_zpm_changes_only_zero_point() {
        use crate::quantizer::Quantizer;
        let q = AsymmetricQuantizer::from_params(0.1, 93, 8).unwrap();
        let (q2, z) = apply_zpm(&q, 4);
        assert_eq!(q2.params().scale, 0.1);
        assert_eq!(q2.params().zero_point, z.zero_point);
        assert_eq!(q2.params().bits, 8);
    }
}
