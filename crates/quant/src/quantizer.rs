//! Uniform symmetric and asymmetric quantizers (paper Eq. 1 and Eq. 2).

use std::fmt;

use panacea_tensor::{stats, Matrix};
use serde::{Deserialize, Serialize};

/// Errors produced by quantizer constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuantError {
    /// The requested bit-width is outside the supported `2..=16` range.
    UnsupportedBits(u8),
    /// A scale factor was zero, negative, or non-finite.
    InvalidScale(String),
}

impl fmt::Display for QuantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantError::UnsupportedBits(b) => write!(f, "unsupported bit-width {b}"),
            QuantError::InvalidScale(s) => write!(f, "invalid scale factor: {s}"),
        }
    }
}

impl std::error::Error for QuantError {}

/// Quantization parameters shared by both schemes.
///
/// For symmetric quantization `zero_point == 0` and the integer range is
/// signed; for asymmetric quantization the range is unsigned and
/// `zero_point ∈ [0, 2^bits − 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantParams {
    /// Scale factor `s` mapping integers back to reals.
    pub scale: f32,
    /// Zero-point `zp` (0 for symmetric quantization).
    pub zero_point: i32,
    /// Bit-width `b`.
    pub bits: u8,
    /// Whether the integer range is signed (`true` for symmetric).
    pub signed: bool,
}

impl QuantParams {
    /// Smallest representable integer.
    pub fn qmin(&self) -> i32 {
        if self.signed {
            -(1 << (self.bits - 1))
        } else {
            0
        }
    }

    /// Largest representable integer.
    pub fn qmax(&self) -> i32 {
        if self.signed {
            (1 << (self.bits - 1)) - 1
        } else {
            (1 << self.bits) - 1
        }
    }
}

/// Common quantize/dequantize interface for both schemes.
///
/// The trait is object-safe so layers can hold `Box<dyn Quantizer>` when
/// mixing schemes (e.g. symmetric weights + asymmetric activations).
pub trait Quantizer {
    /// The parameters in effect.
    fn params(&self) -> QuantParams;

    /// Quantizes one real value to its clipped integer code.
    fn quantize(&self, x: f32) -> i32;

    /// Maps one integer code back to a real value.
    fn dequantize(&self, q: i32) -> f32;

    /// Quantizes a whole matrix element-wise.
    fn quantize_matrix(&self, m: &Matrix<f32>) -> Matrix<i32>
    where
        Self: Sized,
    {
        m.map(|&x| self.quantize(x))
    }

    /// Dequantizes a whole matrix element-wise.
    fn dequantize_matrix(&self, m: &Matrix<i32>) -> Matrix<f32>
    where
        Self: Sized,
    {
        m.map(|&q| self.dequantize(q))
    }
}

/// Round-half-away-from-zero, the `⌊·⌉` of the paper.
pub(crate) fn round_ties_away(x: f32) -> i32 {
    x.round() as i32
}

/// Uniform **symmetric** quantizer (Eq. 1):
/// `x_int = clip(⌊x/s⌉; −2^{b−1}, 2^{b−1}−1)` with
/// `s = 2·max(|x|)/(2^b − 1)`.
///
/// # Examples
///
/// ```
/// use panacea_quant::{Quantizer, SymmetricQuantizer};
///
/// let q = SymmetricQuantizer::calibrate(&[-1.0, 0.5, 1.0], 8);
/// assert_eq!(q.params().zero_point, 0);
/// assert_eq!(q.quantize(0.0), 0);
/// assert!(q.quantize(1.0) > 120);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SymmetricQuantizer {
    params: QuantParams,
}

impl SymmetricQuantizer {
    /// Builds a quantizer from an explicit scale.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::UnsupportedBits`] for `bits ∉ 2..=16` and
    /// [`QuantError::InvalidScale`] for non-positive or non-finite scales.
    pub fn from_scale(scale: f32, bits: u8) -> Result<Self, QuantError> {
        if !(2..=16).contains(&bits) {
            return Err(QuantError::UnsupportedBits(bits));
        }
        if !(scale.is_finite() && scale > 0.0) {
            return Err(QuantError::InvalidScale(format!("{scale}")));
        }
        Ok(SymmetricQuantizer {
            params: QuantParams {
                scale,
                zero_point: 0,
                bits,
                signed: true,
            },
        })
    }

    /// Calibrates the scale from data: `s = 2·max|x| / (2^b − 1)`.
    ///
    /// An all-zero (or empty) calibration tensor yields a degenerate scale
    /// of 1.0, so every value quantizes to 0 — the same convention PyTorch
    /// observers use.
    ///
    /// # Panics
    ///
    /// Panics if `bits ∉ 2..=16`.
    pub fn calibrate(data: &[f32], bits: u8) -> Self {
        assert!((2..=16).contains(&bits), "unsupported bit-width {bits}");
        let max_abs = data.iter().fold(0f32, |acc, &v| acc.max(v.abs()));
        let denom = ((1u32 << bits) - 1) as f32;
        let scale = if max_abs > 0.0 {
            2.0 * max_abs / denom
        } else {
            1.0
        };
        SymmetricQuantizer {
            params: QuantParams {
                scale,
                zero_point: 0,
                bits,
                signed: true,
            },
        }
    }
}

impl Quantizer for SymmetricQuantizer {
    fn params(&self) -> QuantParams {
        self.params
    }

    fn quantize(&self, x: f32) -> i32 {
        round_ties_away(x / self.params.scale).clamp(self.params.qmin(), self.params.qmax())
    }

    fn dequantize(&self, q: i32) -> f32 {
        q as f32 * self.params.scale
    }
}

/// Uniform **asymmetric** quantizer (Eq. 2):
/// `x_uint = clip(⌊x/s'⌉ + zp; 0, 2^b − 1)` with
/// `s' = (max(x) − min(x))/(2^b − 1)` and
/// `zp = clip(⌊−min(x)/s'⌉; 0, 2^b − 1)`.
///
/// # Examples
///
/// ```
/// use panacea_quant::{AsymmetricQuantizer, Quantizer};
///
/// let q = AsymmetricQuantizer::calibrate(&[0.0, 1.0, 2.0, 4.0], 8);
/// assert_eq!(q.quantize(0.0), q.params().zero_point);
/// assert_eq!(q.quantize(4.0), 255);
/// assert_eq!(q.quantize(-100.0), 0); // clipped
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AsymmetricQuantizer {
    params: QuantParams,
}

impl AsymmetricQuantizer {
    /// Builds a quantizer from explicit `(scale, zero_point)`.
    ///
    /// The zero-point is clamped into `[0, 2^bits − 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::UnsupportedBits`] for `bits ∉ 2..=16` and
    /// [`QuantError::InvalidScale`] for non-positive or non-finite scales.
    pub fn from_params(scale: f32, zero_point: i32, bits: u8) -> Result<Self, QuantError> {
        if !(2..=16).contains(&bits) {
            return Err(QuantError::UnsupportedBits(bits));
        }
        if !(scale.is_finite() && scale > 0.0) {
            return Err(QuantError::InvalidScale(format!("{scale}")));
        }
        let qmax = (1i32 << bits) - 1;
        Ok(AsymmetricQuantizer {
            params: QuantParams {
                scale,
                zero_point: zero_point.clamp(0, qmax),
                bits,
                signed: false,
            },
        })
    }

    /// Calibrates `(s', zp)` from data via min/max.
    ///
    /// A constant (or empty) calibration tensor yields scale 1.0 and a
    /// zero-point mapping the constant exactly.
    ///
    /// # Panics
    ///
    /// Panics if `bits ∉ 2..=16`.
    pub fn calibrate(data: &[f32], bits: u8) -> Self {
        assert!((2..=16).contains(&bits), "unsupported bit-width {bits}");
        let (lo, hi) = stats::min_max(data);
        // The representable range must include zero so that zp is exact.
        let lo = lo.min(0.0);
        let hi = hi.max(0.0);
        let qmax = (1i32 << bits) - 1;
        let scale = if hi > lo {
            (hi - lo) / qmax as f32
        } else {
            1.0
        };
        let zp = round_ties_away(-lo / scale).clamp(0, qmax);
        AsymmetricQuantizer {
            params: QuantParams {
                scale,
                zero_point: zp,
                bits,
                signed: false,
            },
        }
    }

    /// Calibrates with percentile clipping: the range is set to the
    /// `[100−q, q]` percentiles instead of min/max, sacrificing rare
    /// outliers for finer resolution on the bulk — the standard PTQ
    /// calibration refinement for outlier-heavy activations.
    ///
    /// # Panics
    ///
    /// Panics if `bits ∉ 2..=16`, `q ∉ (50, 100]`, or `data` is empty.
    pub fn calibrate_percentile(data: &[f32], bits: u8, q: f32) -> Self {
        assert!((2..=16).contains(&bits), "unsupported bit-width {bits}");
        assert!(q > 50.0 && q <= 100.0, "percentile {q} out of range");
        let lo = stats::percentile(data, 100.0 - q).min(0.0);
        let hi = stats::percentile(data, q).max(0.0);
        let qmax = (1i32 << bits) - 1;
        let scale = if hi > lo {
            (hi - lo) / qmax as f32
        } else {
            1.0
        };
        let zp = round_ties_away(-lo / scale).clamp(0, qmax);
        AsymmetricQuantizer {
            params: QuantParams {
                scale,
                zero_point: zp,
                bits,
                signed: false,
            },
        }
    }

    /// Returns a copy with a replaced zero-point (used by the ZPM), clamped
    /// to the representable range.
    pub fn with_zero_point(&self, zero_point: i32) -> Self {
        let mut p = self.params;
        p.zero_point = zero_point.clamp(0, p.qmax());
        AsymmetricQuantizer { params: p }
    }
}

impl Quantizer for AsymmetricQuantizer {
    fn params(&self) -> QuantParams {
        self.params
    }

    fn quantize(&self, x: f32) -> i32 {
        (round_ties_away(x / self.params.scale) + self.params.zero_point)
            .clamp(0, self.params.qmax())
    }

    fn dequantize(&self, q: i32) -> f32 {
        (q - self.params.zero_point) as f32 * self.params.scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panacea_tensor::dist::DistributionKind;

    #[test]
    fn symmetric_zero_maps_to_zero() {
        let q = SymmetricQuantizer::calibrate(&[-3.0, 3.0], 8);
        assert_eq!(q.quantize(0.0), 0);
        assert_eq!(q.dequantize(0), 0.0);
    }

    #[test]
    fn symmetric_range_is_signed() {
        let q = SymmetricQuantizer::calibrate(&[-1.0, 1.0], 8);
        assert_eq!(q.params().qmin(), -128);
        assert_eq!(q.params().qmax(), 127);
        assert_eq!(q.quantize(-100.0), -128);
        assert_eq!(q.quantize(100.0), 127);
    }

    #[test]
    fn symmetric_scale_formula() {
        let q = SymmetricQuantizer::calibrate(&[-2.0, 1.0], 7);
        let expected = 2.0 * 2.0 / 127.0;
        assert!((q.params().scale - expected).abs() < 1e-7);
    }

    #[test]
    fn asymmetric_zero_point_represents_zero_exactly() {
        let q = AsymmetricQuantizer::calibrate(&[-1.5, 4.5], 8);
        let zp = q.params().zero_point;
        assert_eq!(q.quantize(0.0), zp);
        assert_eq!(q.dequantize(zp), 0.0);
    }

    #[test]
    fn asymmetric_covers_full_unsigned_range() {
        let q = AsymmetricQuantizer::calibrate(&[-1.0, 3.0], 8);
        assert_eq!(q.quantize(-1.0), 0);
        assert_eq!(q.quantize(3.0), 255);
    }

    #[test]
    fn asymmetric_positive_only_data_gets_small_zero_point() {
        let q = AsymmetricQuantizer::calibrate(&[0.1, 5.0], 8);
        assert_eq!(q.params().zero_point, 0);
    }

    #[test]
    fn constant_tensor_degenerates_gracefully() {
        let q = AsymmetricQuantizer::calibrate(&[2.0; 16], 8);
        let code = q.quantize(2.0);
        assert!((q.dequantize(code) - 2.0).abs() < 0.5 * q.params().scale + 1e-6);
        let s = SymmetricQuantizer::calibrate(&[0.0; 16], 8);
        assert_eq!(s.quantize(0.0), 0);
    }

    #[test]
    fn unsupported_bits_is_error() {
        assert!(matches!(
            SymmetricQuantizer::from_scale(1.0, 1),
            Err(QuantError::UnsupportedBits(1))
        ));
        assert!(matches!(
            AsymmetricQuantizer::from_params(1.0, 0, 17),
            Err(QuantError::UnsupportedBits(17))
        ));
    }

    #[test]
    fn invalid_scale_is_error() {
        assert!(matches!(
            SymmetricQuantizer::from_scale(0.0, 8),
            Err(QuantError::InvalidScale(_))
        ));
        assert!(matches!(
            AsymmetricQuantizer::from_params(f32::NAN, 0, 8),
            Err(QuantError::InvalidScale(_))
        ));
    }

    #[test]
    fn asymmetric_beats_symmetric_on_one_sided_data() {
        let mut rng = panacea_tensor::seeded_rng(3);
        let data = DistributionKind::AsymmetricGaussian {
            mean: 2.0,
            std: 0.5,
            skew: 0.1,
        }
        .sample_matrix(64, 64, &mut rng);
        let sym = SymmetricQuantizer::calibrate(data.as_slice(), 8);
        let asym = AsymmetricQuantizer::calibrate(data.as_slice(), 8);
        let err = |deq: Vec<f32>| -> f64 { panacea_tensor::stats::mse(data.as_slice(), &deq) };
        let e_sym = err(data
            .iter()
            .map(|&x| sym.dequantize(sym.quantize(x)))
            .collect());
        let e_asym = err(data
            .iter()
            .map(|&x| asym.dequantize(asym.quantize(x)))
            .collect());
        assert!(
            e_asym < e_sym,
            "asymmetric MSE {e_asym} should beat symmetric {e_sym} on one-sided data"
        );
    }

    #[test]
    fn quantize_matrix_round_trip_error_bounded_by_half_step() {
        let mut rng = panacea_tensor::seeded_rng(11);
        let data = DistributionKind::Uniform { lo: -2.0, hi: 6.0 }.sample_matrix(32, 32, &mut rng);
        let q = AsymmetricQuantizer::calibrate(data.as_slice(), 8);
        let qm = q.quantize_matrix(&data);
        let deq = q.dequantize_matrix(&qm);
        let half_step = 0.5 * q.params().scale + 1e-5;
        for (x, y) in data.iter().zip(deq.iter()) {
            assert!((x - y).abs() <= half_step, "|{x} - {y}| > {half_step}");
        }
    }

    #[test]
    fn percentile_calibration_improves_bulk_resolution() {
        let mut rng = panacea_tensor::seeded_rng(21);
        // Near-zero bulk plus a handful of extreme outliers.
        let mut data = DistributionKind::Gaussian {
            mean: 0.2,
            std: 0.1,
        }
        .sample_matrix(64, 64, &mut rng)
        .into_vec();
        data.extend([25.0, -18.0, 30.0]);
        let minmax = AsymmetricQuantizer::calibrate(&data, 8);
        let clipped = AsymmetricQuantizer::calibrate_percentile(&data, 8, 99.9);
        assert!(clipped.params().scale < minmax.params().scale / 5.0);
        // Bulk reconstruction error shrinks accordingly.
        let bulk: Vec<f32> = data.iter().copied().filter(|v| v.abs() < 1.0).collect();
        let err = |q: &AsymmetricQuantizer| -> f64 {
            let deq: Vec<f32> = bulk.iter().map(|&v| q.dequantize(q.quantize(v))).collect();
            panacea_tensor::stats::mse(&bulk, &deq)
        };
        assert!(err(&clipped) < err(&minmax) / 4.0);
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn percentile_out_of_range_panics() {
        AsymmetricQuantizer::calibrate_percentile(&[1.0], 8, 40.0);
    }

    #[test]
    fn with_zero_point_clamps() {
        let q = AsymmetricQuantizer::calibrate(&[0.0, 1.0], 8);
        assert_eq!(q.with_zero_point(400).params().zero_point, 255);
        assert_eq!(q.with_zero_point(-3).params().zero_point, 0);
    }
}
