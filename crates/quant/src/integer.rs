//! Integer GEMM with asymmetric activations (paper Eq. 3).
//!
//! `W x + b ≈ s_W s_x (W_int x_uint − zp_x W_int 1 + b_int)`
//! `        = s_W s_x (W_int x_uint + b̂_int)`
//!
//! The zero-point correction `zp_x · W_int · 1` depends only on the weights
//! and the calibrated zero-point, so it is folded into the bias **offline**;
//! inference then runs a plain unsigned×signed integer GEMM with no extra
//! work — the property that makes asymmetric activation quantization "free"
//! at the algorithm level (and which AQS-GEMM preserves at the *bit-slice*
//! level via its compensation term).

use panacea_tensor::{matrix::MatrixError, Matrix};

/// Folds the asymmetric zero-point into an integer bias:
/// `b̂[m] = b[m] − zp_x · Σ_k W[m][k]`.
///
/// # Panics
///
/// Panics if `bias.len() != w_int.rows()`.
///
/// # Examples
///
/// ```
/// use panacea_tensor::Matrix;
///
/// let w = Matrix::from_vec(2, 2, vec![1, -2, 3, 4]).unwrap();
/// let bhat = panacea_quant::integer::fold_zero_point_bias(&w, 10, &[100, 200]);
/// assert_eq!(bhat, vec![100 - 10 * (1 - 2), 200 - 10 * (3 + 4)]);
/// ```
pub fn fold_zero_point_bias(w_int: &Matrix<i32>, zp_x: i32, bias: &[i32]) -> Vec<i32> {
    assert_eq!(
        bias.len(),
        w_int.rows(),
        "bias length must match weight rows"
    );
    (0..w_int.rows())
        .map(|m| {
            let row_sum: i64 = w_int.row(m).iter().map(|&w| i64::from(w)).sum();
            (i64::from(bias[m]) - i64::from(zp_x) * row_sum) as i32
        })
        .collect()
}

/// Computes the inference-time integer GEMM of Eq. 3:
/// `W_int (M×K) · x_uint (K×N) + b̂` with `b̂` broadcast along columns.
///
/// # Errors
///
/// Returns [`MatrixError::ShapeMismatch`] on incompatible shapes.
///
/// # Panics
///
/// Panics if `bhat.len() != w_int.rows()`.
pub fn asym_integer_gemm(
    w_int: &Matrix<i32>,
    x_uint: &Matrix<i32>,
    bhat: &[i32],
) -> Result<Matrix<i32>, MatrixError> {
    assert_eq!(
        bhat.len(),
        w_int.rows(),
        "folded bias length must match weight rows"
    );
    let mut out = w_int.gemm(x_uint)?;
    for (m, &b) in bhat.iter().enumerate() {
        for v in out.row_mut(m) {
            *v += b;
        }
    }
    Ok(out)
}

/// Checks the Eq. 3 identity in exact integer arithmetic:
/// `W (x − zp·1) + b == W x + b̂`. Returns the two sides for inspection.
///
/// This is the oracle used by integration tests; production code calls
/// [`asym_integer_gemm`] directly.
///
/// # Errors
///
/// Returns [`MatrixError::ShapeMismatch`] on incompatible shapes.
pub fn eq3_both_sides(
    w_int: &Matrix<i32>,
    x_uint: &Matrix<i32>,
    zp_x: i32,
    bias: &[i32],
) -> Result<(Matrix<i32>, Matrix<i32>), MatrixError> {
    // Left side: W (x − zp) + b, centred activations.
    let x_centered = x_uint.map(|&v| v - zp_x);
    let mut left = w_int.gemm(&x_centered)?;
    for (m, &b) in bias.iter().enumerate() {
        for v in left.row_mut(m) {
            *v += b;
        }
    }
    // Right side: W x + b̂ with the folded bias.
    let bhat = fold_zero_point_bias(w_int, zp_x, bias);
    let right = asym_integer_gemm(w_int, x_uint, &bhat)?;
    Ok((left, right))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn eq3_identity_holds_exactly() {
        let mut rng = panacea_tensor::seeded_rng(77);
        for _ in 0..10 {
            let m = rng.gen_range(1..8);
            let k = rng.gen_range(1..16);
            let n = rng.gen_range(1..8);
            let w = Matrix::from_fn(m, k, |_, _| rng.gen_range(-64i32..64));
            let x = Matrix::from_fn(k, n, |_, _| rng.gen_range(0i32..256));
            let zp = rng.gen_range(0i32..256);
            let bias: Vec<i32> = (0..m).map(|_| rng.gen_range(-1000..1000)).collect();
            let (left, right) = eq3_both_sides(&w, &x, zp, &bias).unwrap();
            assert_eq!(left, right);
        }
    }

    #[test]
    fn zero_zero_point_means_no_fold() {
        let w = Matrix::from_vec(2, 2, vec![5, -3, 2, 2]).unwrap();
        let bias = vec![7, -7];
        assert_eq!(fold_zero_point_bias(&w, 0, &bias), bias);
    }

    #[test]
    fn gemm_broadcasts_bias_per_row() {
        let w = Matrix::from_vec(2, 1, vec![1, 1]).unwrap();
        let x = Matrix::from_vec(1, 3, vec![10, 20, 30]).unwrap();
        let out = asym_integer_gemm(&w, &x, &[1, -1]).unwrap();
        assert_eq!(out.row(0), &[11, 21, 31]);
        assert_eq!(out.row(1), &[9, 19, 29]);
    }

    #[test]
    fn shape_mismatch_propagates() {
        let w = Matrix::<i32>::zeros(2, 3);
        let x = Matrix::<i32>::zeros(2, 3);
        assert!(asym_integer_gemm(&w, &x, &[0, 0]).is_err());
    }

    #[test]
    #[should_panic(expected = "bias length")]
    fn wrong_bias_length_panics() {
        let w = Matrix::<i32>::zeros(2, 2);
        fold_zero_point_bias(&w, 1, &[0]);
    }
}
