//! Requantization of `i32` accumulators into the next layer's activation
//! format (performed by Panacea's post-processing unit, paper §III-D).
//!
//! A GEMM accumulator represents `acc · s_W · s_x`; the next layer wants
//! `clip(⌊acc · s_W s_x / s_out⌉ + zp_out)`. The PPU implements the
//! rescale as a fixed-point multiply — `(acc · m) >> shift` with a 32-bit
//! mantissa — exactly like production integer inference stacks; this module
//! provides both the float reference and the fixed-point path and tests
//! they agree.

use panacea_tensor::Matrix;
use serde::{Deserialize, Serialize};

use crate::quantizer::{AsymmetricQuantizer, QuantError, Quantizer};

/// Requantizer from an `i32` accumulator domain (`scale = input_scale`)
/// into an asymmetric output format.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Requantizer {
    input_scale: f64,
    output: AsymmetricQuantizer,
    /// Fixed-point mantissa `m` (Q31).
    mantissa: i64,
    /// Right shift applied after the mantissa multiply.
    shift: u32,
}

impl Requantizer {
    /// Creates a requantizer given the accumulator scale
    /// (`s_W · s_x`) and the output quantizer.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidScale`] if `input_scale` is not a
    /// positive finite number.
    pub fn new(input_scale: f64, output: AsymmetricQuantizer) -> Result<Self, QuantError> {
        if !(input_scale.is_finite() && input_scale > 0.0) {
            return Err(QuantError::InvalidScale(format!("{input_scale}")));
        }
        let ratio = input_scale / f64::from(output.params().scale);
        // Normalize ratio = m · 2^{−shift} with m in [2^30, 2^31).
        let mut shift = 0u32;
        let mut r = ratio;
        while r < (1u64 << 30) as f64 && shift < 62 {
            r *= 2.0;
            shift += 1;
        }
        while r >= (1u64 << 31) as f64 && shift > 0 {
            r /= 2.0;
            shift -= 1;
        }
        Ok(Requantizer {
            input_scale,
            output,
            mantissa: r.round() as i64,
            shift,
        })
    }

    /// The output quantizer this requantizer targets.
    pub fn output(&self) -> &AsymmetricQuantizer {
        &self.output
    }

    /// Float-reference requantization.
    pub fn requantize_ref(&self, acc: i32) -> i32 {
        self.output
            .quantize((f64::from(acc) * self.input_scale) as f32)
    }

    /// Fixed-point requantization as the PPU hardware computes it:
    /// `clip(round_shift(acc · m, shift) + zp)`.
    pub fn requantize(&self, acc: i32) -> i32 {
        let prod = i64::from(acc) * self.mantissa;
        // Rounding right shift (round half away from zero).
        let rounded = if self.shift == 0 {
            prod
        } else {
            let bias = 1i64 << (self.shift - 1);
            if prod >= 0 {
                (prod + bias) >> self.shift
            } else {
                -((-prod + bias) >> self.shift)
            }
        };
        let p = self.output.params();
        (rounded + i64::from(p.zero_point)).clamp(0, i64::from(p.qmax())) as i32
    }

    /// Requantizes a whole accumulator matrix with the fixed-point path.
    pub fn requantize_matrix(&self, acc: &Matrix<i32>) -> Matrix<i32> {
        acc.map(|&v| self.requantize(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn mk(input_scale: f64, out_scale: f32, zp: i32) -> Requantizer {
        let out = AsymmetricQuantizer::from_params(out_scale, zp, 8).unwrap();
        Requantizer::new(input_scale, out).unwrap()
    }

    #[test]
    fn fixed_point_matches_float_reference_within_one_lsb() {
        let mut rng = panacea_tensor::seeded_rng(123);
        for _ in 0..20 {
            let input_scale = 10f64.powf(rng.gen_range(-6.0..-2.0));
            let out_scale = 10f32.powf(rng.gen_range(-3.0..0.0));
            let zp = rng.gen_range(0..256);
            let rq = mk(input_scale, out_scale, zp);
            for _ in 0..200 {
                let acc: i32 = rng.gen_range(-1_000_000..1_000_000);
                let a = rq.requantize(acc);
                let b = rq.requantize_ref(acc);
                assert!(
                    (a - b).abs() <= 1,
                    "acc={acc} fixed={a} ref={b} (scale {input_scale}/{out_scale})"
                );
            }
        }
    }

    #[test]
    fn zero_accumulator_maps_to_zero_point() {
        let rq = mk(1e-4, 0.05, 131);
        assert_eq!(rq.requantize(0), 131);
    }

    #[test]
    fn saturation_clamps_to_unsigned_range() {
        let rq = mk(1.0, 0.001, 128);
        assert_eq!(rq.requantize(i32::MAX / 4), 255);
        assert_eq!(rq.requantize(i32::MIN / 4), 0);
    }

    #[test]
    fn invalid_scale_rejected() {
        let out = AsymmetricQuantizer::from_params(0.1, 0, 8).unwrap();
        assert!(Requantizer::new(0.0, out).is_err());
        assert!(Requantizer::new(f64::NAN, out).is_err());
    }

    #[test]
    fn matrix_requantization_is_elementwise() {
        let rq = mk(0.01, 0.02, 10);
        let acc = Matrix::from_vec(1, 3, vec![0, 100, -100]).unwrap();
        let out = rq.requantize_matrix(&acc);
        assert_eq!(out[(0, 0)], rq.requantize(0));
        assert_eq!(out[(0, 1)], rq.requantize(100));
        assert_eq!(out[(0, 2)], rq.requantize(-100));
    }
}
