//! Entropy (KL-divergence) calibration — the TensorRT-style refinement of
//! min/max calibration the PTQ literature the paper builds on uses for
//! outlier-heavy activations.
//!
//! Instead of mapping the full `[min, max]` range onto the 8-bit grid,
//! entropy calibration searches over clip thresholds and keeps the one
//! whose quantized distribution is closest (in KL divergence) to the
//! original — trading saturation of rare outliers for resolution on the
//! bulk. It composes with the rest of the pipeline: the result is an
//! ordinary [`AsymmetricQuantizer`] that ZPM/DBS then operate on.

use panacea_tensor::stats;

use crate::quantizer::{AsymmetricQuantizer, QuantError};

/// Number of fine histogram bins used for the threshold search.
const FINE_BINS: usize = 2048;

/// Calibrates an asymmetric quantizer by KL-divergence threshold search.
///
/// The candidate clip ranges shrink symmetrically in quantile space from
/// the full range down to the central 80%; the range minimizing the KL
/// divergence between the original (fine-binned) distribution and its
/// quantized-then-expanded counterpart wins.
///
/// # Errors
///
/// Returns [`QuantError::UnsupportedBits`] for `bits ∉ 2..=16` or
/// [`QuantError::InvalidScale`] for empty/degenerate data.
///
/// # Examples
///
/// ```
/// use panacea_quant::entropy::calibrate_entropy;
/// use panacea_quant::Quantizer;
/// use panacea_tensor::{dist::DistributionKind, seeded_rng};
///
/// let mut rng = seeded_rng(4);
/// let mut data = DistributionKind::Gaussian { mean: 0.3, std: 0.2 }
///     .sample_matrix(64, 64, &mut rng)
///     .into_vec();
/// data.extend([40.0, -25.0]); // extreme outliers
/// let q = calibrate_entropy(&data, 8)?;
/// // The entropy range clips the outliers: scale far below min/max.
/// assert!(q.params().scale < 65.0 / 255.0 / 5.0);
/// # Ok::<(), panacea_quant::QuantError>(())
/// ```
// `!(hi > lo)` deliberately treats NaN bounds as degenerate; partial_cmp
// would obscure that.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
pub fn calibrate_entropy(data: &[f32], bits: u8) -> Result<AsymmetricQuantizer, QuantError> {
    if !(2..=16).contains(&bits) {
        return Err(QuantError::UnsupportedBits(bits));
    }
    let (lo, hi) = stats::min_max(data);
    if data.is_empty() || !(hi > lo) {
        return Err(QuantError::InvalidScale(
            "degenerate calibration data".to_string(),
        ));
    }
    let lo = lo.min(0.0);
    let hi = hi.max(0.0);
    // Fine histogram over the full range.
    let width = (hi - lo) / FINE_BINS as f32;
    let mut hist = vec![0f64; FINE_BINS];
    for &v in data {
        let b = (((v - lo) / width) as usize).min(FINE_BINS - 1);
        hist[b] += 1.0;
    }
    let levels = 1usize << bits;

    let mut best: Option<(f64, f32, f32)> = None;
    // Candidate clip ranges walk *quantile* space — outlier-stretched
    // tensors concentrate the bulk in a sliver of the value range, so
    // bin-space shrinking would never reach it.
    for &tail in &[0.0f32, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 2.5e-2, 5e-2] {
        let c_lo = stats::percentile(data, tail * 100.0);
        let c_hi = stats::percentile(data, 100.0 - tail * 100.0);
        if !(c_hi > c_lo) {
            continue;
        }
        let b0 = (((c_lo - lo) / width) as usize).min(FINE_BINS - 1);
        let b1 = ((((c_hi - lo) / width) as usize) + 1).clamp(b0 + 1, FINE_BINS);
        // Clip: mass outside collapses onto the edge bins.
        let mut clipped = hist[b0..b1].to_vec();
        clipped[0] += hist[..b0].iter().sum::<f64>();
        let last = clipped.len() - 1;
        clipped[last] += hist[b1..].iter().sum::<f64>();
        let kl = kl_after_requantize(&clipped, levels);
        if best.is_none_or(|(b, _, _)| kl < b) {
            best = Some((kl, c_lo, c_hi));
        }
    }
    let (_, c_lo, c_hi) = best.expect("at least one candidate");
    // The representable range must include zero for an exact zero-point.
    let c_lo = c_lo.min(0.0);
    let c_hi = c_hi.max(0.0);
    let qmax = (levels - 1) as f32;
    let scale = (c_hi - c_lo) / qmax;
    let zp = (-c_lo / scale).round() as i32;
    AsymmetricQuantizer::from_params(scale, zp, bits)
}

/// KL(P ‖ Q) where Q is P merged into `levels` equal buckets and spread
/// back uniformly — the standard entropy-calibration surrogate.
fn kl_after_requantize(p: &[f64], levels: usize) -> f64 {
    let n = p.len();
    let chunk = n.div_ceil(levels);
    let total: f64 = p.iter().sum();
    if total == 0.0 {
        return 0.0;
    }
    let mut kl = 0.0;
    for c in p.chunks(chunk) {
        let mass: f64 = c.iter().sum();
        let nonzero = c.iter().filter(|&&v| v > 0.0).count();
        if nonzero == 0 {
            continue;
        }
        let q = mass / nonzero as f64;
        for &v in c {
            if v > 0.0 {
                kl += (v / total) * ((v / total) / (q / total)).ln();
            }
        }
    }
    kl
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantizer::Quantizer;
    use panacea_tensor::dist::DistributionKind;

    fn outlier_data(seed: u64) -> Vec<f32> {
        let mut rng = panacea_tensor::seeded_rng(seed);
        let mut d = DistributionKind::Gaussian {
            mean: 0.2,
            std: 0.15,
        }
        .sample_matrix(128, 64, &mut rng)
        .into_vec();
        d.extend([30.0, 28.0, -22.0]);
        d
    }

    #[test]
    fn entropy_clips_extreme_outliers() {
        let data = outlier_data(1);
        let minmax = AsymmetricQuantizer::calibrate(&data, 8);
        let entropy = calibrate_entropy(&data, 8).unwrap();
        assert!(
            entropy.params().scale < minmax.params().scale / 3.0,
            "entropy {} vs minmax {}",
            entropy.params().scale,
            minmax.params().scale
        );
    }

    #[test]
    fn entropy_improves_bulk_mse() {
        let data = outlier_data(2);
        let bulk: Vec<f32> = data.iter().copied().filter(|v| v.abs() < 2.0).collect();
        let err = |q: &AsymmetricQuantizer| {
            let deq: Vec<f32> = bulk.iter().map(|&v| q.dequantize(q.quantize(v))).collect();
            panacea_tensor::stats::mse(&bulk, &deq)
        };
        let minmax = AsymmetricQuantizer::calibrate(&data, 8);
        let entropy = calibrate_entropy(&data, 8).unwrap();
        assert!(err(&entropy) < err(&minmax) / 2.0);
    }

    #[test]
    fn clean_data_keeps_nearly_full_range() {
        let mut rng = panacea_tensor::seeded_rng(3);
        let data = DistributionKind::Uniform { lo: -1.0, hi: 1.0 }
            .sample_matrix(64, 64, &mut rng)
            .into_vec();
        let minmax = AsymmetricQuantizer::calibrate(&data, 8);
        let entropy = calibrate_entropy(&data, 8).unwrap();
        let ratio = entropy.params().scale / minmax.params().scale;
        assert!(
            ratio > 0.75,
            "uniform data should not be clipped hard: {ratio}"
        );
    }

    #[test]
    fn zero_maps_exactly() {
        let data = outlier_data(4);
        let q = calibrate_entropy(&data, 8).unwrap();
        let zp = q.params().zero_point;
        assert_eq!(q.quantize(0.0), zp);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(calibrate_entropy(&[], 8).is_err());
        assert!(calibrate_entropy(&[1.0; 10], 8).is_err());
        assert!(calibrate_entropy(&[0.0, 1.0], 1).is_err());
    }

    #[test]
    fn composes_with_zpm() {
        let data = outlier_data(5);
        let q = calibrate_entropy(&data, 8).unwrap();
        let (q2, z) = crate::zpm::apply_zpm(&q, 4);
        assert_eq!(q2.params().zero_point, z.zero_point);
        assert!(z.skip_hi <= 255);
    }
}
