//! Per-output-channel symmetric weight quantization.
//!
//! Trained weight tensors carry per-channel scale differences of an order
//! of magnitude or more; quantizing each output row with its own scale is
//! the standard practice the paper inherits from its PTQ baselines (and
//! what the "64 channel-wise quantization" of the Llama experiments
//! generalizes). The integer GEMM is unchanged — each output row is simply
//! dequantized by its own scale, which folds into the requantizer.

use panacea_tensor::Matrix;
use serde::{Deserialize, Serialize};

use crate::quantizer::{QuantError, Quantizer, SymmetricQuantizer};

/// A weight matrix quantized with one symmetric scale per output row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerChannelWeights {
    codes: Matrix<i32>,
    scales: Vec<f32>,
    bits: u8,
}

impl PerChannelWeights {
    /// Calibrates and quantizes `w` (`M × K`) row-wise at `bits`.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::UnsupportedBits`] for `bits ∉ 2..=16`.
    ///
    /// # Examples
    ///
    /// ```
    /// use panacea_quant::perchannel::PerChannelWeights;
    /// use panacea_tensor::Matrix;
    ///
    /// // Row 1 is 100× larger than row 0; per-channel scales keep both
    /// // rows at full precision (both hit the format maximum).
    /// let w = Matrix::from_vec(2, 2, vec![0.01, -0.02, 1.0, -2.0]).unwrap();
    /// let q = PerChannelWeights::quantize(&w, 7)?;
    /// // Both rows use ~half the signed range for their own magnitude…
    /// assert!((q.codes()[(0, 1)] + 64).abs() <= 1);
    /// assert!((q.codes()[(1, 1)] + 64).abs() <= 1);
    /// // …because the scales track the 100× per-row magnitude gap.
    /// assert!(q.scales()[1] / q.scales()[0] > 90.0);
    /// # Ok::<(), panacea_quant::QuantError>(())
    /// ```
    pub fn quantize(w: &Matrix<f32>, bits: u8) -> Result<Self, QuantError> {
        if !(2..=16).contains(&bits) {
            return Err(QuantError::UnsupportedBits(bits));
        }
        let mut codes = Matrix::<i32>::zeros(w.rows(), w.cols());
        let mut scales = Vec::with_capacity(w.rows());
        for m in 0..w.rows() {
            let q = SymmetricQuantizer::calibrate(w.row(m), bits);
            scales.push(q.params().scale);
            for k in 0..w.cols() {
                codes[(m, k)] = q.quantize(w[(m, k)]);
            }
        }
        Ok(PerChannelWeights {
            codes,
            scales,
            bits,
        })
    }

    /// The integer codes (`M × K`).
    pub fn codes(&self) -> &Matrix<i32> {
        &self.codes
    }

    /// Per-row scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Bit-width used.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Dequantizes back to floats.
    pub fn dequantize(&self) -> Matrix<f32> {
        Matrix::from_fn(self.codes.rows(), self.codes.cols(), |m, k| {
            self.codes[(m, k)] as f32 * self.scales[m]
        })
    }

    /// Mean squared reconstruction error against the original weights.
    ///
    /// # Panics
    ///
    /// Panics if `original` has a different shape.
    pub fn reconstruction_mse(&self, original: &Matrix<f32>) -> f64 {
        assert_eq!(original.shape(), self.codes.shape(), "shape mismatch");
        panacea_tensor::stats::mse(original.as_slice(), self.dequantize().as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panacea_tensor::dist::DistributionKind;

    fn ragged_weights(seed: u64) -> Matrix<f32> {
        // Rows with wildly different magnitudes.
        let mut rng = panacea_tensor::seeded_rng(seed);
        let base = DistributionKind::Gaussian {
            mean: 0.0,
            std: 1.0,
        }
        .sample_matrix(16, 32, &mut rng);
        Matrix::from_fn(16, 32, |m, k| base[(m, k)] * 10f32.powi((m % 4) as i32 - 2))
    }

    #[test]
    fn per_channel_beats_per_tensor_on_ragged_rows() {
        let w = ragged_weights(1);
        let pc = PerChannelWeights::quantize(&w, 7).unwrap();
        let pt = SymmetricQuantizer::calibrate(w.as_slice(), 7);
        let pt_deq = w.map(|&v| pt.dequantize(pt.quantize(v)));
        let e_pc = pc.reconstruction_mse(&w);
        let e_pt = panacea_tensor::stats::mse(w.as_slice(), pt_deq.as_slice());
        assert!(
            e_pc < e_pt / 2.0,
            "per-channel {e_pc} should beat per-tensor {e_pt}"
        );
    }

    #[test]
    fn codes_stay_in_range() {
        let w = ragged_weights(2);
        for bits in [4u8, 7, 8] {
            let pc = PerChannelWeights::quantize(&w, bits).unwrap();
            let hi = (1i32 << (bits - 1)) - 1;
            assert!(
                pc.codes().iter().all(|&c| (-hi - 1..=hi).contains(&c)),
                "bits={bits}"
            );
        }
    }

    #[test]
    fn scales_are_per_row() {
        let w = ragged_weights(3);
        let pc = PerChannelWeights::quantize(&w, 7).unwrap();
        assert_eq!(pc.scales().len(), 16);
        // Rows scaled 10× apart get scales ~10× apart.
        let ratio = pc.scales()[2] / pc.scales()[0];
        assert!(ratio > 30.0, "scale ratio {ratio}");
    }

    #[test]
    fn unsupported_bits_rejected() {
        let w = Matrix::<f32>::zeros(2, 2);
        assert!(matches!(
            PerChannelWeights::quantize(&w, 1),
            Err(QuantError::UnsupportedBits(1))
        ));
    }

    #[test]
    fn zero_rows_quantize_to_zero() {
        let mut w = ragged_weights(4);
        for k in 0..w.cols() {
            w[(5, k)] = 0.0;
        }
        let pc = PerChannelWeights::quantize(&w, 7).unwrap();
        assert!(pc.codes().row(5).iter().all(|&c| c == 0));
    }
}
