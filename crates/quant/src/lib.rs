//! Post-training quantization (PTQ) for the Panacea reproduction.
//!
//! Implements every quantization ingredient of the paper:
//!
//! * [`quantizer`] — uniform **symmetric** (Eq. 1) and **asymmetric**
//!   (Eq. 2) quantizers with min/max calibration;
//! * [`calibrate`] — multi-batch PTQ calibration producing per-layer
//!   activation parameters (scale, zero-point) and recording the quantized
//!   histograms that drive DBS;
//! * [`zpm`] — **zero-point manipulation** (Eq. 7): snap the zero-point to
//!   the centre of a high-order-slice skip range to maximize slice sparsity;
//! * [`dbs`] — **distribution-based bit-slicing**: classify each layer's
//!   quantized distribution into three types by `std × z` and pick the LO
//!   slice width (4/5/6 bits);
//! * [`optq`] — the OPTQ (GPTQ) weight quantization algorithm with a real
//!   Hessian from calibration activations, used for 4-bit weights and for
//!   the Llama models (Fig. 17/19);
//! * [`perchannel`] — per-output-channel symmetric weight quantization
//!   (the standard practice the paper's PTQ baselines inherit);
//! * [`entropy`] — KL-divergence (TensorRT-style) range calibration for
//!   outlier-heavy activations, composing with ZPM/DBS;
//! * [`integer`] — the integer GEMM identity with asymmetric activations
//!   (Eq. 3): folding `zp·W·1` into the bias so inference adds no overhead;
//! * [`requant`] — requantization of `i32` accumulators into the next
//!   layer's 8-bit activation format.
//!
//! # Examples
//!
//! ```
//! use panacea_quant::{AsymmetricQuantizer, Quantizer, SymmetricQuantizer};
//!
//! let data = [0.5f32, 1.5, 2.5, 3.0];
//! let asym = AsymmetricQuantizer::calibrate(&data, 8);
//! let sym = SymmetricQuantizer::calibrate(&data, 8);
//! // Asymmetric quantization uses the full unsigned range and therefore
//! // reconstructs a one-sided distribution with less error.
//! let e_asym: f32 = data.iter().map(|&x| (x - asym.dequantize(asym.quantize(x))).abs()).sum();
//! let e_sym: f32 = data.iter().map(|&x| (x - sym.dequantize(sym.quantize(x))).abs()).sum();
//! assert!(e_asym <= e_sym);
//! ```

pub mod calibrate;
pub mod dbs;
pub mod entropy;
pub mod integer;
pub mod optq;
pub mod perchannel;
pub mod quantizer;
pub mod requant;
pub mod zpm;

pub use calibrate::{ActivationCalibrator, LayerQuantConfig};
pub use dbs::{DbsConfig, DbsType};
pub use quantizer::{AsymmetricQuantizer, QuantError, QuantParams, Quantizer, SymmetricQuantizer};
pub use zpm::ZpmResult;
