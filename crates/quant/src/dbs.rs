//! Distribution-based bit-slicing (DBS), paper §III-C and Figs. 9–10.
//!
//! ZPM centres the quantized distribution inside a skip range, but a *wide*
//! distribution still spills past the `2^l`-value range. DBS widens the LO
//! slice (`l` = 4 → 5 → 6 bits) for wide distributions, doubling or
//! quadrupling the skip range, at the cost of discarding `l − 4` LSBs so the
//! hardware can keep uniform 4-bit slice datapaths (the S-ACC simply shifts
//! partial sums back, Fig. 10).
//!
//! Classification happens during calibration: the monitored histogram's
//! standard deviation `std` is compared against the half-width of each
//! candidate skip range using a z-score: the smallest `l` with
//! `std · z ≤ 2^{l−1}` achieves the target coverage. `l = 4, 5, 6`
//! correspond to DBS **type-1/2/3**.

use panacea_tensor::stats::Histogram;
use serde::{Deserialize, Serialize};

/// The three DBS distribution types (Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DbsType {
    /// Narrow distribution — default 4-bit LO slice.
    Type1,
    /// Medium-width distribution — 5-bit LO slice (skip range ×2).
    Type2,
    /// Wide distribution — 6-bit LO slice (skip range ×4).
    Type3,
}

impl DbsType {
    /// LO-slice bit-width `l` for this type (paper: 4, 5, 6).
    pub fn lo_bits(self) -> u8 {
        match self {
            DbsType::Type1 => 4,
            DbsType::Type2 => 5,
            DbsType::Type3 => 6,
        }
    }

    /// Number of LSBs discarded to keep 4-bit slice containers.
    pub fn discarded_lsbs(self) -> u8 {
        self.lo_bits() - 4
    }

    /// Shift applied by the S-ACC when accumulating LO partial sums.
    pub fn lo_shift(self) -> u8 {
        self.discarded_lsbs()
    }

    /// All types, in increasing LO width, for sweeps.
    pub fn all() -> [DbsType; 3] {
        [DbsType::Type1, DbsType::Type2, DbsType::Type3]
    }
}

impl std::fmt::Display for DbsType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbsType::Type1 => write!(f, "type-1"),
            DbsType::Type2 => write!(f, "type-2"),
            DbsType::Type3 => write!(f, "type-3"),
        }
    }
}

/// One row of the z-score table used during calibration (Fig. 9): the area
/// under a standard normal from the mean up to `z` standard deviations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ZTableEntry {
    /// Number of standard deviations from the mean.
    pub z: f64,
    /// One-sided area `Φ(z) − 0.5`.
    pub area_from_mean: f64,
}

/// The z-score table: `Φ(z) − 0.5` for `z = 0.0, 0.1, …, 3.5`.
pub const Z_TABLE: &[ZTableEntry] = &[
    ZTableEntry {
        z: 0.0,
        area_from_mean: 0.0000,
    },
    ZTableEntry {
        z: 0.1,
        area_from_mean: 0.0398,
    },
    ZTableEntry {
        z: 0.2,
        area_from_mean: 0.0793,
    },
    ZTableEntry {
        z: 0.3,
        area_from_mean: 0.1179,
    },
    ZTableEntry {
        z: 0.4,
        area_from_mean: 0.1554,
    },
    ZTableEntry {
        z: 0.5,
        area_from_mean: 0.1915,
    },
    ZTableEntry {
        z: 0.6,
        area_from_mean: 0.2257,
    },
    ZTableEntry {
        z: 0.7,
        area_from_mean: 0.2580,
    },
    ZTableEntry {
        z: 0.8,
        area_from_mean: 0.2881,
    },
    ZTableEntry {
        z: 0.9,
        area_from_mean: 0.3159,
    },
    ZTableEntry {
        z: 1.0,
        area_from_mean: 0.3413,
    },
    ZTableEntry {
        z: 1.1,
        area_from_mean: 0.3643,
    },
    ZTableEntry {
        z: 1.2,
        area_from_mean: 0.3849,
    },
    ZTableEntry {
        z: 1.3,
        area_from_mean: 0.4032,
    },
    ZTableEntry {
        z: 1.4,
        area_from_mean: 0.4192,
    },
    ZTableEntry {
        z: 1.5,
        area_from_mean: 0.4332,
    },
    ZTableEntry {
        z: 1.6,
        area_from_mean: 0.4452,
    },
    ZTableEntry {
        z: 1.7,
        area_from_mean: 0.4554,
    },
    ZTableEntry {
        z: 1.8,
        area_from_mean: 0.4641,
    },
    ZTableEntry {
        z: 1.9,
        area_from_mean: 0.4713,
    },
    ZTableEntry {
        z: 2.0,
        area_from_mean: 0.4772,
    },
    ZTableEntry {
        z: 2.1,
        area_from_mean: 0.4821,
    },
    ZTableEntry {
        z: 2.2,
        area_from_mean: 0.4861,
    },
    ZTableEntry {
        z: 2.3,
        area_from_mean: 0.4893,
    },
    ZTableEntry {
        z: 2.4,
        area_from_mean: 0.4918,
    },
    ZTableEntry {
        z: 2.5,
        area_from_mean: 0.4938,
    },
    ZTableEntry {
        z: 2.6,
        area_from_mean: 0.4953,
    },
    ZTableEntry {
        z: 2.7,
        area_from_mean: 0.4965,
    },
    ZTableEntry {
        z: 2.8,
        area_from_mean: 0.4974,
    },
    ZTableEntry {
        z: 2.9,
        area_from_mean: 0.4981,
    },
    ZTableEntry {
        z: 3.0,
        area_from_mean: 0.4987,
    },
    ZTableEntry {
        z: 3.1,
        area_from_mean: 0.4990,
    },
    ZTableEntry {
        z: 3.2,
        area_from_mean: 0.4993,
    },
    ZTableEntry {
        z: 3.3,
        area_from_mean: 0.4995,
    },
    ZTableEntry {
        z: 3.4,
        area_from_mean: 0.4997,
    },
    ZTableEntry {
        z: 3.5,
        area_from_mean: 0.4998,
    },
];

/// Looks up the smallest tabulated `z` whose area-from-mean reaches
/// `area` (one-sided, `0 ≤ area < 0.5`). Returns the last table entry for
/// unreachable areas.
///
/// # Examples
///
/// ```
/// // 45% one-sided coverage (90% two-sided) needs z ≈ 1.7.
/// let z = panacea_quant::dbs::z_for_area(0.45);
/// assert!((z - 1.7).abs() < 0.11);
/// ```
pub fn z_for_area(area: f64) -> f64 {
    for e in Z_TABLE {
        if e.area_from_mean >= area {
            return e.z;
        }
    }
    Z_TABLE[Z_TABLE.len() - 1].z
}

/// DBS calibration configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DbsConfig {
    /// Target two-sided coverage of the skip range (the paper's "target
    /// sparsity"); default 0.93.
    pub target_coverage: f64,
}

impl Default for DbsConfig {
    fn default() -> Self {
        DbsConfig {
            target_coverage: 0.93,
        }
    }
}

impl DbsConfig {
    /// Classifies a quantized-activation histogram into a DBS type.
    ///
    /// The smallest `l ∈ {4, 5, 6}` satisfying `std · z ≤ 2^{l−1}` is
    /// chosen; if even `l = 6` cannot reach the target the layer is still
    /// type-3 (best effort, as in the paper).
    ///
    /// # Examples
    ///
    /// ```
    /// use panacea_quant::dbs::{DbsConfig, DbsType};
    /// use panacea_tensor::stats::Histogram;
    ///
    /// let mut narrow = Histogram::new(0, 255);
    /// for v in 124..=132 {
    ///     narrow.record(v);
    /// }
    /// assert_eq!(DbsConfig::default().classify(&narrow), DbsType::Type1);
    /// ```
    pub fn classify(&self, hist: &Histogram) -> DbsType {
        let std = hist.std_dev();
        self.classify_std(std)
    }

    /// Classification from a pre-computed standard deviation.
    pub fn classify_std(&self, std: f64) -> DbsType {
        let z = z_for_area(self.target_coverage / 2.0);
        let required_half_width = std * z;
        if required_half_width <= f64::from(1u32 << 3) {
            DbsType::Type1
        } else if required_half_width <= f64::from(1u32 << 4) {
            DbsType::Type2
        } else {
            DbsType::Type3
        }
    }
}

/// Truncates a quantized value the way the DBS hardware does: the
/// `l − 4` LSBs of the long LO slice are discarded (Fig. 10), i.e. zeroed.
///
/// Type-1 (`l = 4`) is the identity; type-2 drops 1 LSB; type-3 drops 2.
///
/// # Examples
///
/// ```
/// use panacea_quant::dbs::{dbs_truncate, DbsType};
///
/// assert_eq!(dbs_truncate(0b0101_0101, DbsType::Type1), 0b0101_0101);
/// assert_eq!(dbs_truncate(0b0101_0101, DbsType::Type2), 0b0101_0100);
/// assert_eq!(dbs_truncate(0b0101_0111, DbsType::Type3), 0b0101_0100);
/// ```
pub fn dbs_truncate(q: i32, ty: DbsType) -> i32 {
    let drop = ty.discarded_lsbs();
    (q >> drop) << drop
}

/// Splits an 8-bit quantized value into the type's `(HO, LO)` 4-bit slice
/// containers (Fig. 10): HO holds the top `8 − l` bits (zero-padded), LO
/// holds the top 4 bits of the `l`-bit low part.
///
/// The represented value is `HO·2^l + LO·2^{l−4}`, i.e.
/// [`dbs_truncate`]`(q, ty)`.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 255]`.
///
/// # Examples
///
/// The paper's type-2 example: `01010101₂` splits into HO `010₂` and LO
/// `10101₂`, stored as 4-bit containers `0010₂` and `1010₂`:
///
/// ```
/// use panacea_quant::dbs::{dbs_slices, DbsType};
///
/// let (ho, lo) = dbs_slices(0b0101_0101, DbsType::Type2);
/// assert_eq!(ho, 0b0010);
/// assert_eq!(lo, 0b1010);
/// ```
pub fn dbs_slices(q: i32, ty: DbsType) -> (u8, u8) {
    assert!((0..=255).contains(&q), "value {q} outside u8 range");
    let l = u32::from(ty.lo_bits());
    let ho = (q as u32) >> l;
    let lo_full = (q as u32) & ((1 << l) - 1);
    let lo = lo_full >> (l - 4);
    (ho as u8, lo as u8)
}

/// Reassembles the value represented by DBS slice containers.
///
/// # Examples
///
/// ```
/// use panacea_quant::dbs::{dbs_slices, dbs_truncate, dbs_unslice, DbsType};
///
/// for ty in [DbsType::Type1, DbsType::Type2, DbsType::Type3] {
///     let (ho, lo) = dbs_slices(201, ty);
///     assert_eq!(dbs_unslice(ho, lo, ty), dbs_truncate(201, ty));
/// }
/// ```
pub fn dbs_unslice(ho: u8, lo: u8, ty: DbsType) -> i32 {
    let l = u32::from(ty.lo_bits());
    ((u32::from(ho) << l) + (u32::from(lo) << (l - 4))) as i32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lo_bits_match_paper() {
        assert_eq!(DbsType::Type1.lo_bits(), 4);
        assert_eq!(DbsType::Type2.lo_bits(), 5);
        assert_eq!(DbsType::Type3.lo_bits(), 6);
    }

    #[test]
    fn z_table_is_monotonic() {
        for w in Z_TABLE.windows(2) {
            assert!(w[1].z > w[0].z);
            assert!(w[1].area_from_mean >= w[0].area_from_mean);
        }
    }

    #[test]
    fn z_for_area_endpoints() {
        assert_eq!(z_for_area(0.0), 0.0);
        assert_eq!(z_for_area(0.9), 3.5); // unreachable → last entry
    }

    #[test]
    fn classify_narrow_medium_wide() {
        let cfg = DbsConfig {
            target_coverage: 0.90,
        };
        // z(0.45) ≈ 1.7 → thresholds std ≤ 8/1.7 ≈ 4.7 and std ≤ 16/1.7 ≈ 9.4.
        assert_eq!(cfg.classify_std(2.0), DbsType::Type1);
        assert_eq!(cfg.classify_std(6.0), DbsType::Type2);
        assert_eq!(cfg.classify_std(20.0), DbsType::Type3);
    }

    #[test]
    fn classify_from_histogram() {
        let cfg = DbsConfig::default();
        let mut wide = Histogram::new(0, 255);
        for v in (0..=255).step_by(4) {
            wide.record(v);
        }
        assert_eq!(cfg.classify(&wide), DbsType::Type3);
    }

    #[test]
    fn higher_target_coverage_never_narrows_the_type() {
        let lo = DbsConfig {
            target_coverage: 0.80,
        };
        let hi = DbsConfig {
            target_coverage: 0.99,
        };
        for std in [1.0, 3.0, 5.0, 8.0, 12.0, 30.0] {
            let a = lo.classify_std(std);
            let b = hi.classify_std(std);
            assert!(
                b.lo_bits() >= a.lo_bits(),
                "std={std}: target 0.99 gave {b} narrower than {a}"
            );
        }
    }

    #[test]
    fn truncate_is_identity_for_type1() {
        for q in 0..=255 {
            assert_eq!(dbs_truncate(q, DbsType::Type1), q);
        }
    }

    #[test]
    fn truncate_error_bounded_by_dropped_lsbs() {
        for q in 0..=255 {
            assert!(q - dbs_truncate(q, DbsType::Type2) <= 1);
            assert!(q - dbs_truncate(q, DbsType::Type3) <= 3);
        }
    }

    #[test]
    fn paper_type2_slicing_example() {
        // 01010101₂ → HO 010₂, LO 10101₂ → containers 0010₂ / 1010₂ (Fig. 10b).
        let (ho, lo) = dbs_slices(0b0101_0101, DbsType::Type2);
        assert_eq!(ho, 0b0010);
        assert_eq!(lo, 0b1010);
        assert_eq!(dbs_unslice(ho, lo, DbsType::Type2), 0b0101_0100);
    }

    #[test]
    fn slices_fit_in_four_bits_and_round_trip() {
        for ty in DbsType::all() {
            for q in 0..=255 {
                let (ho, lo) = dbs_slices(q, ty);
                assert!(ho < 16 && lo < 16, "ty={ty} q={q} ho={ho} lo={lo}");
                assert_eq!(dbs_unslice(ho, lo, ty), dbs_truncate(q, ty));
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside u8 range")]
    fn dbs_slices_rejects_out_of_range() {
        dbs_slices(256, DbsType::Type1);
    }
}
