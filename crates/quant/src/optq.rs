//! OPTQ (a.k.a. GPTQ) weight-only quantization — Frantar et al., ICLR 2023.
//!
//! The paper uses OPTQ for 4-bit weights (Fig. 19) and for the Llama models
//! with 64-channel group-wise quantization (Fig. 17). This is a complete
//! implementation, not a stub: the layer Hessian `H = 2 X Xᵀ + λI` is
//! accumulated from calibration activations, inverted via Cholesky, and
//! weights are quantized column-by-column with error feedback through the
//! upper-triangular Cholesky factor of `H⁻¹` — exactly the published
//! algorithm (without the lazy-batch blocking, which only matters for GPU
//! throughput).

use panacea_tensor::Matrix;
use serde::{Deserialize, Serialize};

use crate::quantizer::QuantError;

/// Configuration for OPTQ weight quantization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OptqConfig {
    /// Weight bit-width (symmetric signed), e.g. 4 or 7.
    pub bits: u8,
    /// Group size along the input dimension for group-wise scales;
    /// `None` = one scale per output row. The paper's Llama setup uses 64.
    pub group_size: Option<usize>,
    /// Dampening added to the Hessian diagonal as a fraction of its mean
    /// (OPTQ default 0.01).
    pub damping: f64,
}

impl Default for OptqConfig {
    fn default() -> Self {
        OptqConfig {
            bits: 4,
            group_size: None,
            damping: 0.01,
        }
    }
}

/// Output of [`optq_quantize`]: integer weights plus their scales.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptqResult {
    /// Quantized integer weights, `M × K`.
    pub q_weights: Matrix<i32>,
    /// Scales, one row per output channel; each row has one entry per
    /// group (a single entry when `group_size` is `None`).
    pub scales: Vec<Vec<f32>>,
    /// Group size used (K when ungrouped).
    pub group_size: usize,
}

impl OptqResult {
    /// Dequantizes entry `(m, k)`.
    pub fn dequantize_at(&self, m: usize, k: usize) -> f32 {
        self.q_weights[(m, k)] as f32 * self.scales[m][k / self.group_size]
    }

    /// Dequantizes the full weight matrix.
    pub fn dequantize(&self) -> Matrix<f32> {
        Matrix::from_fn(self.q_weights.rows(), self.q_weights.cols(), |m, k| {
            self.dequantize_at(m, k)
        })
    }
}

/// Quantizes `w` (`M × K`, layer computing `w · x`) with OPTQ, using
/// calibration activations `x_cal` (`K × N`).
///
/// # Errors
///
/// Returns [`QuantError::UnsupportedBits`] for `bits ∉ 2..=16`, or
/// [`QuantError::InvalidScale`] if the (damped) Hessian cannot be
/// Cholesky-factorized even after escalating the damping.
///
/// # Panics
///
/// Panics if `x_cal.rows() != w.cols()`.
///
/// # Examples
///
/// ```
/// use panacea_quant::optq::{optq_quantize, OptqConfig};
/// use panacea_tensor::{dist::DistributionKind, seeded_rng};
///
/// let mut rng = seeded_rng(1);
/// let w = DistributionKind::Gaussian { mean: 0.0, std: 0.1 }.sample_matrix(8, 16, &mut rng);
/// let x = DistributionKind::Gaussian { mean: 0.0, std: 1.0 }.sample_matrix(16, 32, &mut rng);
/// let r = optq_quantize(&w, &x, OptqConfig { bits: 4, ..OptqConfig::default() })?;
/// assert_eq!(r.q_weights.shape(), (8, 16));
/// assert!(r.q_weights.iter().all(|&q| (-8..=7).contains(&q)));
/// # Ok::<(), panacea_quant::QuantError>(())
/// ```
pub fn optq_quantize(
    w: &Matrix<f32>,
    x_cal: &Matrix<f32>,
    cfg: OptqConfig,
) -> Result<OptqResult, QuantError> {
    if !(2..=16).contains(&cfg.bits) {
        return Err(QuantError::UnsupportedBits(cfg.bits));
    }
    assert_eq!(
        x_cal.rows(),
        w.cols(),
        "calibration activations must have K = {} rows",
        w.cols()
    );
    let k = w.cols();
    let m_rows = w.rows();
    let group = cfg.group_size.unwrap_or(k).max(1);
    let qmax = (1i32 << (cfg.bits - 1)) - 1;
    let qmin = -(1i32 << (cfg.bits - 1));

    // H = 2 X Xᵀ (K × K), f64.
    let mut h = vec![0f64; k * k];
    for i in 0..k {
        for j in i..k {
            let mut acc = 0f64;
            for n in 0..x_cal.cols() {
                acc += f64::from(x_cal[(i, n)]) * f64::from(x_cal[(j, n)]);
            }
            h[i * k + j] = 2.0 * acc;
            h[j * k + i] = 2.0 * acc;
        }
    }
    // Dead columns (zero diagonal) get unit diagonal, as in the reference
    // implementation, so they quantize independently.
    let mean_diag = (0..k).map(|i| h[i * k + i]).sum::<f64>() / k as f64;
    for i in 0..k {
        if h[i * k + i] == 0.0 {
            h[i * k + i] = 1.0;
        }
    }
    // Escalating damping until the Cholesky succeeds.
    let mut damp = cfg.damping.max(1e-8) * mean_diag.max(1e-12);
    let hinv_u = loop {
        let mut hd = h.clone();
        for i in 0..k {
            hd[i * k + i] += damp;
        }
        if let Some(u) = inverse_upper_cholesky(&hd, k) {
            break u;
        }
        damp *= 10.0;
        if damp > 1e12 * mean_diag.max(1.0) {
            return Err(QuantError::InvalidScale(
                "hessian not factorizable even with extreme damping".to_string(),
            ));
        }
    };

    // Working copy of weights in f64.
    let mut wf: Vec<f64> = w.iter().map(|&v| f64::from(v)).collect();
    let mut q = Matrix::<i32>::zeros(m_rows, k);
    let n_groups = k.div_ceil(group);
    let mut scales = vec![vec![1f32; n_groups]; m_rows];

    for col in 0..k {
        // At a group boundary, (re)compute each row's scale from the
        // *current* (error-compensated) weights of the group.
        if col % group == 0 {
            let g = col / group;
            let end = (col + group).min(k);
            for (m, row_scales) in scales.iter_mut().enumerate() {
                let max_abs = (col..end).map(|c| wf[m * k + c].abs()).fold(0f64, f64::max);
                row_scales[g] = if max_abs > 0.0 {
                    (max_abs / qmax as f64) as f32
                } else {
                    1.0
                };
            }
        }
        let g = col / group;
        let d = hinv_u[col * k + col];
        for m in 0..m_rows {
            let s = f64::from(scales[m][g]);
            let wv = wf[m * k + col];
            let qv = ((wv / s).round() as i32).clamp(qmin, qmax);
            q[(m, col)] = qv;
            let err = (wv - f64::from(qv) as f64 * s) / d;
            // Propagate the quantization error into the not-yet-quantized
            // columns through the Cholesky factor row.
            for j in (col + 1)..k {
                wf[m * k + j] -= err * hinv_u[col * k + j];
            }
        }
    }
    Ok(OptqResult {
        q_weights: q,
        scales,
        group_size: group,
    })
}

/// Baseline: plain round-to-nearest symmetric quantization with the same
/// scale structure, for OPTQ-vs-RTN comparisons.
pub fn rtn_quantize(w: &Matrix<f32>, cfg: OptqConfig) -> Result<OptqResult, QuantError> {
    if !(2..=16).contains(&cfg.bits) {
        return Err(QuantError::UnsupportedBits(cfg.bits));
    }
    let k = w.cols();
    let group = cfg.group_size.unwrap_or(k).max(1);
    let qmax = (1i32 << (cfg.bits - 1)) - 1;
    let qmin = -(1i32 << (cfg.bits - 1));
    let n_groups = k.div_ceil(group);
    let mut scales = vec![vec![1f32; n_groups]; w.rows()];
    for (m, row_scales) in scales.iter_mut().enumerate() {
        for (g, slot) in row_scales.iter_mut().enumerate() {
            let end = ((g + 1) * group).min(k);
            let max_abs = (g * group..end)
                .map(|c| w[(m, c)].abs())
                .fold(0f32, f32::max);
            *slot = if max_abs > 0.0 {
                max_abs / qmax as f32
            } else {
                1.0
            };
        }
    }
    let q = Matrix::from_fn(w.rows(), k, |m, c| {
        ((w[(m, c)] / scales[m][c / group]).round() as i32).clamp(qmin, qmax)
    });
    Ok(OptqResult {
        q_weights: q,
        scales,
        group_size: group,
    })
}

/// Layer-output squared error `‖(W − Ŵ) X‖²` — the objective OPTQ
/// minimizes; used to verify OPTQ beats RTN.
pub fn layer_output_error(w: &Matrix<f32>, w_hat: &Matrix<f32>, x: &Matrix<f32>) -> f64 {
    let diff = Matrix::from_fn(w.rows(), w.cols(), |m, c| w[(m, c)] - w_hat[(m, c)]);
    let e = diff
        .gemm_f32(x)
        .expect("shape mismatch in layer_output_error");
    e.iter().map(|&v| f64::from(v).powi(2)).sum()
}

/// Computes the upper-triangular Cholesky factor `U` of `A⁻¹` (so that
/// `A⁻¹ = Uᵀ U` row-major with `U[i][j]` for `j ≥ i`), returning `None` if
/// `A` is not positive definite.
fn inverse_upper_cholesky(a: &[f64], k: usize) -> Option<Vec<f64>> {
    // 1. Cholesky A = L Lᵀ.
    let mut l = vec![0f64; k * k];
    for i in 0..k {
        for j in 0..=i {
            let mut sum = a[i * k + j];
            for p in 0..j {
                sum -= l[i * k + p] * l[j * k + p];
            }
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                l[i * k + i] = sum.sqrt();
            } else {
                l[i * k + j] = sum / l[j * k + j];
            }
        }
    }
    // 2. A⁻¹ by solving A X = I column-by-column (forward + back subst).
    let mut inv = vec![0f64; k * k];
    for col in 0..k {
        // Forward: L y = e_col.
        let mut y = vec![0f64; k];
        for i in 0..k {
            let mut sum = if i == col { 1.0 } else { 0.0 };
            for p in 0..i {
                sum -= l[i * k + p] * y[p];
            }
            y[i] = sum / l[i * k + i];
        }
        // Back: Lᵀ x = y.
        for i in (0..k).rev() {
            let mut sum = y[i];
            for p in (i + 1)..k {
                sum -= l[p * k + i] * inv[p * k + col];
            }
            inv[i * k + col] = sum / l[i * k + i];
        }
    }
    // 3. Upper Cholesky of A⁻¹ in the GPTQ sense: A⁻¹ = Uᵀ U, i.e.
    //    U = Mᵀ where M is the ordinary lower Cholesky factor of A⁻¹.
    let mut m_low = vec![0f64; k * k];
    for i in 0..k {
        for j in 0..=i {
            let mut sum = inv[i * k + j];
            for p in 0..j {
                sum -= m_low[i * k + p] * m_low[j * k + p];
            }
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                m_low[i * k + i] = sum.sqrt();
            } else {
                m_low[i * k + j] = sum / m_low[j * k + j];
            }
        }
    }
    let mut u = vec![0f64; k * k];
    for i in 0..k {
        for j in i..k {
            u[i * k + j] = m_low[j * k + i];
        }
    }
    Some(u)
}

#[cfg(test)]
mod tests {
    use super::*;
    use panacea_tensor::dist::DistributionKind;

    fn setup(k: usize, m: usize, n: usize, seed: u64) -> (Matrix<f32>, Matrix<f32>) {
        let mut rng = panacea_tensor::seeded_rng(seed);
        let w = DistributionKind::Gaussian {
            mean: 0.0,
            std: 0.05,
        }
        .sample_matrix(m, k, &mut rng);
        let x = DistributionKind::OutlierChannels {
            core_std: 1.0,
            outlier_scale: 8.0,
            outlier_frac: 0.1,
        }
        .sample_matrix(k, n, &mut rng);
        (w, x)
    }

    #[test]
    fn optq_beats_rtn_on_layer_output_error() {
        let (w, x) = setup(32, 16, 64, 21);
        let cfg = OptqConfig {
            bits: 3,
            group_size: None,
            damping: 0.01,
        };
        let optq = optq_quantize(&w, &x, cfg).unwrap();
        let rtn = rtn_quantize(&w, cfg).unwrap();
        let e_optq = layer_output_error(&w, &optq.dequantize(), &x);
        let e_rtn = layer_output_error(&w, &rtn.dequantize(), &x);
        assert!(
            e_optq < e_rtn,
            "OPTQ error {e_optq} should beat RTN {e_rtn} at 3 bits"
        );
    }

    #[test]
    fn optq_codes_stay_in_range() {
        let (w, x) = setup(24, 8, 48, 3);
        for bits in [2u8, 4, 7] {
            let r = optq_quantize(
                &w,
                &x,
                OptqConfig {
                    bits,
                    group_size: None,
                    damping: 0.01,
                },
            )
            .unwrap();
            let lo = -(1i32 << (bits - 1));
            let hi = (1i32 << (bits - 1)) - 1;
            assert!(
                r.q_weights.iter().all(|&q| (lo..=hi).contains(&q)),
                "bits={bits}"
            );
        }
    }

    #[test]
    fn group_wise_scales_have_expected_count() {
        let (w, x) = setup(32, 4, 32, 5);
        let r = optq_quantize(
            &w,
            &x,
            OptqConfig {
                bits: 4,
                group_size: Some(8),
                damping: 0.01,
            },
        )
        .unwrap();
        assert_eq!(r.scales[0].len(), 4);
        assert_eq!(r.group_size, 8);
    }

    #[test]
    fn high_bits_reconstruct_nearly_exactly() {
        let (w, x) = setup(16, 8, 32, 9);
        let r = optq_quantize(
            &w,
            &x,
            OptqConfig {
                bits: 12,
                group_size: None,
                damping: 0.01,
            },
        )
        .unwrap();
        let err = layer_output_error(&w, &r.dequantize(), &x);
        let sig: f64 = w
            .gemm_f32(&x)
            .unwrap()
            .iter()
            .map(|&v| f64::from(v).powi(2))
            .sum();
        assert!(
            err / sig < 1e-4,
            "relative error {} too high at 12 bits",
            err / sig
        );
    }

    #[test]
    fn unsupported_bits_rejected() {
        let (w, x) = setup(8, 4, 8, 1);
        assert!(matches!(
            optq_quantize(
                &w,
                &x,
                OptqConfig {
                    bits: 1,
                    group_size: None,
                    damping: 0.01
                }
            ),
            Err(QuantError::UnsupportedBits(1))
        ));
    }

    #[test]
    fn zero_weight_matrix_quantizes_to_zero() {
        let w = Matrix::<f32>::zeros(4, 8);
        let mut rng = panacea_tensor::seeded_rng(2);
        let x = DistributionKind::Gaussian {
            mean: 0.0,
            std: 1.0,
        }
        .sample_matrix(8, 16, &mut rng);
        let r = optq_quantize(&w, &x, OptqConfig::default()).unwrap();
        assert!(r.q_weights.iter().all(|&q| q == 0));
    }

    #[test]
    fn inverse_upper_cholesky_reconstructs_inverse() {
        // A = diag(4, 9) → A⁻¹ = diag(1/4, 1/9) = Uᵀ U with U = diag(1/2, 1/3).
        let a = vec![4.0, 0.0, 0.0, 9.0];
        let u = inverse_upper_cholesky(&a, 2).unwrap();
        assert!((u[0] - 0.5).abs() < 1e-12);
        assert!((u[3] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn non_positive_definite_detected() {
        let a = vec![1.0, 2.0, 2.0, 1.0]; // eigenvalues 3, −1.
        assert!(inverse_upper_cholesky(&a, 2).is_none());
    }
}
