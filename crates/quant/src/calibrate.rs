//! Multi-batch PTQ calibration for activations (paper Fig. 6, left half).
//!
//! The calibrator is fed activation batches (what the paper calls the
//! "calibration dataset", typically a small subset of the training set),
//! accumulates streaming min/max plus a value reservoir, and on
//! [`finalize`](ActivationCalibrator::finalize) produces a
//! [`LayerQuantConfig`]: the asymmetric quantizer (optionally zero-point
//! manipulated), the DBS type, the frequent HO slice `r`, and the achieved
//! skip-range coverage.

use panacea_tensor::Matrix;
use serde::{Deserialize, Serialize};

use crate::dbs::{DbsConfig, DbsType};
use crate::quantizer::{AsymmetricQuantizer, Quantizer};
use crate::zpm;

/// Default cap on retained calibration samples; beyond it the reservoir
/// thins itself by striding, keeping calibration O(1) in memory.
const DEFAULT_RESERVOIR_CAP: usize = 1 << 18;

/// Streaming activation calibrator.
///
/// # Examples
///
/// ```
/// use panacea_quant::{ActivationCalibrator, Quantizer};
/// use panacea_tensor::dist::DistributionKind;
///
/// let mut rng = panacea_tensor::seeded_rng(5);
/// let mut cal = ActivationCalibrator::new(8).with_zpm(true);
/// for _ in 0..4 {
///     // Near-zero activation core with rare outliers pinning the range.
///     let batch = DistributionKind::Gaussian { mean: 0.0, std: 0.02 }
///         .sample_matrix(32, 32, &mut rng);
///     cal.observe(&batch);
/// }
/// cal.observe_slice(&[-1.5, 2.0]);
/// let cfg = cal.finalize();
/// assert!(cfg.coverage > 0.5);
/// assert_eq!(cfg.quantizer.params().bits, 8);
/// ```
#[derive(Debug, Clone)]
pub struct ActivationCalibrator {
    bits: u8,
    use_zpm: bool,
    dbs: Option<DbsConfig>,
    lo: f32,
    hi: f32,
    samples: Vec<f32>,
    cap: usize,
    stride: usize,
    phase: usize,
}

impl ActivationCalibrator {
    /// Creates a calibrator for `bits`-wide asymmetric activations with
    /// ZPM and DBS disabled (enable via [`with_zpm`](Self::with_zpm) /
    /// [`with_dbs`](Self::with_dbs)).
    ///
    /// # Panics
    ///
    /// Panics if `bits ∉ 2..=16`.
    pub fn new(bits: u8) -> Self {
        assert!((2..=16).contains(&bits), "unsupported bit-width {bits}");
        ActivationCalibrator {
            bits,
            use_zpm: false,
            dbs: None,
            lo: f32::INFINITY,
            hi: f32::NEG_INFINITY,
            samples: Vec::new(),
            cap: DEFAULT_RESERVOIR_CAP,
            stride: 1,
            phase: 0,
        }
    }

    /// Enables or disables zero-point manipulation.
    pub fn with_zpm(mut self, on: bool) -> Self {
        self.use_zpm = on;
        self
    }

    /// Enables distribution-based slicing with the given configuration.
    pub fn with_dbs(mut self, cfg: DbsConfig) -> Self {
        self.dbs = Some(cfg);
        self
    }

    /// Overrides the sample-reservoir capacity (mainly for tests).
    pub fn with_reservoir_cap(mut self, cap: usize) -> Self {
        self.cap = cap.max(16);
        self
    }

    /// Feeds one activation batch into the calibrator.
    pub fn observe(&mut self, batch: &Matrix<f32>) {
        self.observe_slice(batch.as_slice());
    }

    /// Feeds a flat slice of activation values.
    pub fn observe_slice(&mut self, values: &[f32]) {
        for &v in values {
            self.lo = self.lo.min(v);
            self.hi = self.hi.max(v);
            // Strided reservoir: keep every `stride`-th sample; double the
            // stride (and thin retained samples) whenever the cap is hit.
            if self.phase == 0 {
                if self.samples.len() >= self.cap {
                    let mut keep = Vec::with_capacity(self.cap / 2 + 1);
                    keep.extend(self.samples.iter().copied().step_by(2));
                    self.samples = keep;
                    self.stride *= 2;
                }
                self.samples.push(v);
            }
            self.phase = (self.phase + 1) % self.stride;
        }
    }

    /// Number of samples currently retained.
    pub fn retained(&self) -> usize {
        self.samples.len()
    }

    /// Builds the candidate configuration for one DBS type (applying
    /// type-based ZPM when enabled) and measures its coverage.
    fn candidate(&self, base: &AsymmetricQuantizer, dbs_type: DbsType) -> LayerQuantConfig {
        let lo_bits = dbs_type.lo_bits();
        let measure = |quantizer: AsymmetricQuantizer, frequent: u8, skip_lo: i32, skip_hi: i32| {
            let total = self.samples.len().max(1);
            let inside = self
                .samples
                .iter()
                .filter(|&&v| {
                    let q = quantizer.quantize(v);
                    (skip_lo..=skip_hi).contains(&q)
                })
                .count();
            LayerQuantConfig {
                quantizer,
                dbs_type,
                frequent_ho_slice: frequent,
                skip_lo,
                skip_hi,
                coverage: inside as f64 / total as f64,
            }
        };
        let zp = base.params().zero_point;
        let r = zpm::frequent_slice_without_zpm(zp, lo_bits);
        let lo = i32::from(r) << lo_bits;
        let plain = measure(*base, r, lo, lo + (1 << lo_bits) - 1);
        if !self.use_zpm {
            return plain;
        }
        // Sparsity-aware ZPM: adopt the manipulated zero-point only when it
        // actually raises the skip-range coverage (its sole purpose).
        let (q, z) = zpm::apply_zpm(base, lo_bits);
        let manipulated = measure(q, z.frequent_ho_slice, z.skip_lo, z.skip_hi);
        if manipulated.coverage >= plain.coverage {
            manipulated
        } else {
            plain
        }
    }

    /// Finishes calibration and produces the layer configuration.
    ///
    /// The pipeline matches Fig. 6: base min/max calibration → distribution
    /// monitoring → DBS type selection → type-based ZPM. The type chosen is
    /// the *narrowest* LO slice whose (manipulated) skip range reaches the
    /// DBS target coverage — the robust formulation of the paper's
    /// `std × z` comparison (raw histogram std is inflated by outlier
    /// channels, while the skip range only needs to cover the bulk).
    pub fn finalize(&self) -> LayerQuantConfig {
        let base = AsymmetricQuantizer::calibrate(&self.samples, self.bits);
        match &self.dbs {
            Some(cfg) => {
                let mut best = self.candidate(&base, DbsType::Type1);
                for ty in [DbsType::Type2, DbsType::Type3] {
                    if best.coverage >= cfg.target_coverage {
                        break;
                    }
                    let cand = self.candidate(&base, ty);
                    if cand.coverage > best.coverage {
                        best = cand;
                    }
                }
                best
            }
            None => self.candidate(&base, DbsType::Type1),
        }
    }
}

/// Finalized per-layer activation quantization configuration, consumed by
/// the bit-slicing and AQS-GEMM layers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerQuantConfig {
    /// The (possibly zero-point-manipulated) asymmetric quantizer.
    pub quantizer: AsymmetricQuantizer,
    /// DBS distribution type chosen during calibration.
    pub dbs_type: DbsType,
    /// Frequent HO slice value `r` that AQS-GEMM compresses.
    pub frequent_ho_slice: u8,
    /// Inclusive start of the skip range in the quantized domain.
    pub skip_lo: i32,
    /// Inclusive end of the skip range.
    pub skip_hi: i32,
    /// Fraction of calibration values falling inside the skip range
    /// (slice-level sparsity before vector grouping).
    pub coverage: f64,
}

impl LayerQuantConfig {
    /// The largest code representable in this activation format
    /// (`2^bits − 1`).
    pub fn max_code(&self) -> i32 {
        (1i32 << self.quantizer.params().bits) - 1
    }

    /// Whether every entry of `codes` fits the calibrated unsigned format.
    ///
    /// The serving runtime uses this to reject malformed requests before
    /// they reach a worker, where an out-of-range code would panic the
    /// slicer mid-batch.
    pub fn codes_in_range(&self, codes: &Matrix<i32>) -> bool {
        let max = self.max_code();
        codes.iter().all(|&v| (0..=max).contains(&v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panacea_tensor::dist::DistributionKind;

    /// Realistic narrow activation: a tight near-zero core (the mode) with
    /// rare large outliers pinning the quantization range — the regime of
    /// the paper's Fig. 8 where ZPM pays off.
    fn narrow_batches(cal: &mut ActivationCalibrator, seed: u64) {
        let mut rng = panacea_tensor::seeded_rng(seed);
        for _ in 0..4 {
            let b = DistributionKind::Gaussian {
                mean: 0.0,
                std: 0.02,
            }
            .sample_matrix(64, 64, &mut rng);
            cal.observe(&b);
        }
        cal.observe_slice(&[-2.0, 2.1]);
    }

    #[test]
    fn zpm_improves_coverage_on_narrow_distributions() {
        let mut base = ActivationCalibrator::new(8);
        narrow_batches(&mut base, 42);
        let mut zpm = ActivationCalibrator::new(8).with_zpm(true);
        narrow_batches(&mut zpm, 42);
        let c0 = base.finalize();
        let c1 = zpm.finalize();
        assert!(
            c1.coverage >= c0.coverage,
            "ZPM lowered coverage: {} -> {}",
            c0.coverage,
            c1.coverage
        );
        assert!(
            c1.coverage > 0.9,
            "narrow distribution should be highly coverable"
        );
    }

    #[test]
    fn dbs_widens_slices_for_wide_distributions() {
        let mut rng = panacea_tensor::seeded_rng(8);
        let mut cal = ActivationCalibrator::new(8)
            .with_zpm(true)
            .with_dbs(DbsConfig::default());
        for _ in 0..4 {
            // Full-range uniform: quantized std ≈ 74 ⇒ type-3.
            let b = DistributionKind::Uniform { lo: -4.0, hi: 4.0 }.sample_matrix(64, 64, &mut rng);
            cal.observe(&b);
        }
        let cfg = cal.finalize();
        assert_eq!(cfg.dbs_type, DbsType::Type3);
        assert_eq!(cfg.skip_hi - cfg.skip_lo + 1, 64);
    }

    #[test]
    fn dbs_keeps_narrow_distributions_type1() {
        let mut cal = ActivationCalibrator::new(8)
            .with_zpm(true)
            .with_dbs(DbsConfig::default());
        narrow_batches(&mut cal, 7);
        let cfg = cal.finalize();
        assert_eq!(cfg.dbs_type, DbsType::Type1);
    }

    #[test]
    fn frequent_slice_matches_zero_point_ho() {
        let mut cal = ActivationCalibrator::new(8);
        narrow_batches(&mut cal, 9);
        let cfg = cal.finalize();
        let zp = cfg.quantizer.params().zero_point;
        assert_eq!(cfg.frequent_ho_slice, (zp >> 4) as u8);
    }

    #[test]
    fn reservoir_thins_but_keeps_statistics() {
        let mut rng = panacea_tensor::seeded_rng(10);
        let mut cal = ActivationCalibrator::new(8).with_reservoir_cap(256);
        for _ in 0..8 {
            let b = DistributionKind::Gaussian {
                mean: 1.0,
                std: 0.2,
            }
            .sample_matrix(64, 64, &mut rng);
            cal.observe(&b);
        }
        assert!(
            cal.retained() <= 257,
            "reservoir exceeded cap: {}",
            cal.retained()
        );
        let cfg = cal.finalize();
        // zp should map ~1.0-mean data near mid-range despite thinning.
        let zp = cfg.quantizer.params().zero_point;
        assert!(zp < 128, "zp={zp} unexpected for positive-mean data");
    }

    #[test]
    fn empty_calibration_degenerates_gracefully() {
        let cal = ActivationCalibrator::new(8);
        let cfg = cal.finalize();
        assert_eq!(cfg.quantizer.params().zero_point, 0);
        assert_eq!(cfg.coverage, 0.0);
    }

    #[test]
    fn coverage_counts_final_zero_point_range() {
        // Mass concentrated at zero (the activation mode): nearly all
        // values must land in the skip range around the zero-point.
        let mut cal = ActivationCalibrator::new(8).with_zpm(true);
        let mut vals = vec![0.0f32; 510];
        vals.push(-0.5);
        vals.push(0.5);
        cal.observe_slice(&vals);
        let cfg = cal.finalize();
        assert!(cfg.coverage > 0.99, "coverage {}", cfg.coverage);
        let zp = cfg.quantizer.params().zero_point;
        assert!((cfg.skip_lo..=cfg.skip_hi).contains(&zp));
    }
}
