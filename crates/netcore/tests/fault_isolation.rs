//! Fault-injection tests for the reactor transport: handler panics,
//! injected dispatch panics, short writes, and connection resets.
//!
//! Own test binary (process) on purpose: arming a `faultline` plan is
//! process-global, so these tests must not share a process with suites
//! that traverse the same sites. Every test arms a plan (an empty one
//! when it needs no faults) so the arm guard's serialization lock keeps
//! the scripts from overlapping.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use panacea_faultline::{Fault, FaultPlan, Scenario};
use panacea_netcore::{ConnectionCounters, NullObserver, Reactor, ReactorConfig, Service};

/// `ok:`-echo, except `boom` panics inside the handler.
struct ChaosService;

impl Service for ChaosService {
    fn serve(&self, line: &str) -> String {
        if line == "boom" {
            panic!("handler exploded");
        }
        if let Some(n) = line.strip_prefix("pad:") {
            let n: usize = n.parse().expect("pad size");
            return "x".repeat(n);
        }
        format!("ok:{line}")
    }

    fn bad_request(&self, detail: &str) -> String {
        format!("err:{detail}")
    }

    fn overloaded(&self, detail: &str) -> String {
        format!("overloaded:{detail}")
    }

    fn internal_error(&self, detail: &str) -> String {
        format!("internal:{detail}")
    }
}

fn start(workers: usize) -> (Reactor, std::net::SocketAddr, ConnectionCounters) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let counters = ConnectionCounters::default();
    let reactor = Reactor::spawn(
        listener,
        Arc::new(ChaosService),
        Arc::new(NullObserver),
        counters.clone(),
        ReactorConfig {
            workers,
            ..ReactorConfig::default()
        },
    )
    .expect("spawn reactor");
    let addr = reactor.local_addr();
    (reactor, addr, counters)
}

fn round_trip(reader: &mut BufReader<TcpStream>, request: &str) -> String {
    reader
        .get_mut()
        .write_all(format!("{request}\n").as_bytes())
        .expect("write request");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response");
    line.trim_end().to_string()
}

#[test]
fn panicking_handler_answers_internal_error_and_pool_survives() {
    let guard = FaultPlan::compile(0, &Scenario::new()).arm();
    let (mut reactor, addr, counters) = start(1);
    let mut client = BufReader::new(TcpStream::connect(addr).expect("connect"));
    // The handler panic is caught on the worker: the request still
    // completes (no hang), the connection stays open, and with only one
    // worker the follow-up proves the thread survived.
    assert_eq!(
        round_trip(&mut client, "boom"),
        "internal:request handler panicked"
    );
    assert_eq!(round_trip(&mut client, "ping"), "ok:ping");
    let snap = counters.snapshot();
    assert_eq!(snap.worker_panics, 1);
    assert_eq!(snap.workers_alive, 1, "the worker thread died");
    reactor.shutdown();
    drop(guard);
}

#[test]
fn injected_dispatch_panic_is_answered_not_hung() {
    let guard = FaultPlan::compile(
        0,
        &Scenario::new().fire_at("netcore.dispatch", 0, Fault::Panic),
    )
    .arm();
    let (mut reactor, addr, counters) = start(2);
    let mut client = BufReader::new(TcpStream::connect(addr).expect("connect"));
    assert_eq!(
        round_trip(&mut client, "first"),
        "internal:request handler panicked"
    );
    // Only query 0 was scripted: the connection keeps serving.
    assert_eq!(round_trip(&mut client, "second"), "ok:second");
    assert_eq!(counters.snapshot().worker_panics, 1);
    reactor.shutdown();
    drop(guard);
}

#[test]
fn short_writes_still_deliver_the_complete_response() {
    // The first three write passes push a single byte each; POLLOUT
    // resumes the backlog and the client still reassembles the full
    // line.
    let guard = FaultPlan::compile(
        0,
        &Scenario::new()
            .fire_at("netcore.write", 0, Fault::ShortWrite)
            .fire_at("netcore.write", 1, Fault::ShortWrite)
            .fire_at("netcore.write", 2, Fault::ShortWrite),
    )
    .arm();
    let (mut reactor, addr, _counters) = start(1);
    let mut client = BufReader::new(TcpStream::connect(addr).expect("connect"));
    let response = round_trip(&mut client, "pad:4096");
    assert_eq!(response.len(), 4096);
    assert!(response.bytes().all(|b| b == b'x'));
    reactor.shutdown();
    drop(guard);
}

#[test]
fn read_reset_closes_the_connection_and_the_next_one_serves() {
    let guard =
        FaultPlan::compile(0, &Scenario::new().fire_at("netcore.read", 0, Fault::Reset)).arm();
    let (mut reactor, addr, _counters) = start(1);
    let mut doomed = BufReader::new(TcpStream::connect(addr).expect("connect"));
    doomed.get_mut().write_all(b"ping\n").expect("write");
    let mut line = String::new();
    // The injected reset closes the connection before the request is
    // read: the client sees EOF or ECONNRESET (the kernel RSTs a close
    // with unread bytes), never a stuck socket.
    doomed
        .get_mut()
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    match doomed.read_line(&mut line) {
        Ok(0) | Err(_) => {}
        Ok(n) => panic!("expected a dropped connection, read {n} bytes"),
    }
    let mut fresh = BufReader::new(TcpStream::connect(addr).expect("reconnect"));
    assert_eq!(round_trip(&mut fresh, "again"), "ok:again");
    reactor.shutdown();
    drop(guard);
}

#[test]
fn accept_reset_drops_the_connection_and_the_next_one_serves() {
    let guard = FaultPlan::compile(
        0,
        &Scenario::new().fire_at("netcore.accept", 0, Fault::Reset),
    )
    .arm();
    let (mut reactor, addr, counters) = start(1);
    let mut doomed = BufReader::new(TcpStream::connect(addr).expect("connect"));
    doomed
        .get_mut()
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let mut line = String::new();
    // Accepted then dropped on the floor: EOF, and it never counted as
    // an open connection.
    assert_eq!(doomed.read_line(&mut line).expect("eof"), 0);
    let mut fresh = BufReader::new(TcpStream::connect(addr).expect("reconnect"));
    assert_eq!(round_trip(&mut fresh, "again"), "ok:again");
    assert!(counters.snapshot().peak <= 1, "dropped conn counted open");
    reactor.shutdown();
    drop(guard);
}
