//! Loopback tests for the reactor: request/response round-trips,
//! deterministic write-backpressure eviction with an interleaved healthy
//! connection, connection-limit rejection, drain-on-shutdown, and
//! oversized-frame handling.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use panacea_netcore::{
    ConnObserver, ConnectionCounters, EvictReason, Reactor, ReactorConfig, Service,
};

/// Line protocol for the tests: `ok:`-echo by default, `pad:<n>` for an
/// `n`-byte response, `sleep:<ms>` to hold a worker.
struct TestService;

impl Service for TestService {
    fn serve(&self, line: &str) -> String {
        if let Some(n) = line.strip_prefix("pad:") {
            let n: usize = n.parse().expect("pad size");
            return "x".repeat(n);
        }
        if let Some(ms) = line.strip_prefix("sleep:") {
            let ms: u64 = ms.parse().expect("sleep ms");
            thread::sleep(Duration::from_millis(ms));
            return format!("slept:{ms}");
        }
        format!("ok:{line}")
    }

    fn bad_request(&self, detail: &str) -> String {
        format!("err:{detail}")
    }

    fn overloaded(&self, detail: &str) -> String {
        format!("overloaded:{detail}")
    }
}

/// Records every lifecycle event for later assertion.
#[derive(Default)]
struct RecordingObserver {
    events: Mutex<Vec<String>>,
}

impl RecordingObserver {
    fn evictions(&self) -> Vec<String> {
        self.events
            .lock()
            .expect("events")
            .iter()
            .filter(|e| e.starts_with("evict:"))
            .cloned()
            .collect()
    }
}

impl ConnObserver for RecordingObserver {
    fn conn_open(&self, open_now: u64) {
        self.events
            .lock()
            .expect("events")
            .push(format!("open:{open_now}"));
    }

    fn conn_close(&self, open_now: u64) {
        self.events
            .lock()
            .expect("events")
            .push(format!("close:{open_now}"));
    }

    fn conn_evict(&self, reason: EvictReason, _open_now: u64) {
        self.events
            .lock()
            .expect("events")
            .push(format!("evict:{}", reason.as_str()));
    }
}

fn start(
    config: ReactorConfig,
) -> (
    Reactor,
    std::net::SocketAddr,
    ConnectionCounters,
    Arc<RecordingObserver>,
) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let counters = ConnectionCounters::default();
    let observer = Arc::new(RecordingObserver::default());
    let reactor = Reactor::spawn(
        listener,
        Arc::new(TestService),
        observer.clone(),
        counters.clone(),
        config,
    )
    .expect("spawn reactor");
    let addr = reactor.local_addr();
    (reactor, addr, counters, observer)
}

fn round_trip(reader: &mut BufReader<TcpStream>, request: &str) -> String {
    reader
        .get_mut()
        .write_all(format!("{request}\n").as_bytes())
        .expect("write request");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response");
    line.trim_end().to_string()
}

fn wait_until(timeout: Duration, mut condition: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if condition() {
            return true;
        }
        thread::sleep(Duration::from_millis(10));
    }
    condition()
}

#[test]
fn many_connections_round_trip_and_counters_settle() {
    let (mut reactor, addr, counters, _observer) = start(ReactorConfig {
        workers: 2,
        ..ReactorConfig::default()
    });

    let mut clients: Vec<BufReader<TcpStream>> = (0..3)
        .map(|_| BufReader::new(TcpStream::connect(addr).expect("connect")))
        .collect();
    for round in 0..20 {
        for (i, client) in clients.iter_mut().enumerate() {
            let req = format!("c{i}-r{round}");
            assert_eq!(round_trip(client, &req), format!("ok:{req}"));
        }
    }
    assert!(
        wait_until(Duration::from_secs(2), || counters.snapshot().open == 3),
        "all three connections should register as open"
    );
    assert!(counters.snapshot().peak >= 3);

    drop(clients);
    assert!(
        wait_until(Duration::from_secs(5), || counters.snapshot().open == 0),
        "closed clients should drain the open gauge, got {:?}",
        counters.snapshot()
    );
    assert_eq!(counters.snapshot().evicted, 0);
    reactor.shutdown();
}

/// The deterministic backpressure interleaving: connection A pipelines
/// large-response requests and never reads, so its write backlog stalls
/// and it is evicted as a slow consumer — while connection B keeps
/// getting served the whole time.
#[test]
fn slow_consumer_is_evicted_while_healthy_connection_is_served() {
    let (mut reactor, addr, counters, observer) = start(ReactorConfig {
        workers: 2,
        max_write_backlog: 64 * 1024,
        write_stall_timeout: Duration::from_millis(300),
        ..ReactorConfig::default()
    });

    // A: pipeline eight 1 MiB responses and never read a byte. Kernel
    // socket buffers absorb only the first couple, after which the
    // reactor-side backlog can make no progress.
    let mut slow = TcpStream::connect(addr).expect("connect slow");
    for _ in 0..8 {
        slow.write_all(b"pad:1048576\n").expect("pipeline request");
    }

    // B: keeps doing short round-trips throughout.
    let mut healthy = BufReader::new(TcpStream::connect(addr).expect("connect healthy"));
    let evicted = wait_until(Duration::from_secs(10), || {
        assert_eq!(round_trip(&mut healthy, "ping"), "ok:ping");
        observer
            .evictions()
            .contains(&"evict:slow_consumer".to_string())
    });
    assert!(evicted, "slow consumer was never evicted");
    assert_eq!(counters.snapshot().evicted, 1);

    // B is still healthy after A's eviction.
    assert_eq!(round_trip(&mut healthy, "after"), "ok:after");
    reactor.shutdown();
}

#[test]
fn over_limit_connection_gets_one_overload_line_then_eof() {
    let (mut reactor, addr, counters, observer) = start(ReactorConfig {
        max_connections: 1,
        workers: 1,
        ..ReactorConfig::default()
    });

    let mut first = BufReader::new(TcpStream::connect(addr).expect("connect first"));
    assert_eq!(round_trip(&mut first, "hold"), "ok:hold");

    let second = TcpStream::connect(addr).expect("connect second");
    let mut reader = BufReader::new(second);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read overload line");
    assert_eq!(
        line.trim_end(),
        "overloaded:connection limit 1 reached; retry later"
    );
    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("read to eof");
    assert!(rest.is_empty(), "nothing follows the overload line");

    assert!(observer
        .evictions()
        .contains(&"evict:max_connections".to_string()));
    assert_eq!(counters.snapshot().evicted, 1);
    // The first connection is untouched.
    assert_eq!(round_trip(&mut first, "still"), "ok:still");
    reactor.shutdown();
}

#[test]
fn shutdown_drains_the_in_flight_response() {
    let (mut reactor, addr, _counters, observer) = start(ReactorConfig {
        workers: 1,
        ..ReactorConfig::default()
    });

    let mut client = BufReader::new(TcpStream::connect(addr).expect("connect"));
    client
        .get_mut()
        .write_all(b"sleep:200\n")
        .expect("write request");
    // Let the request reach a worker before shutdown starts.
    thread::sleep(Duration::from_millis(50));
    reactor.shutdown();

    let mut line = String::new();
    client.read_line(&mut line).expect("read drained response");
    assert_eq!(line.trim_end(), "slept:200");
    assert!(
        observer.evictions().contains(&"evict:shutdown".to_string()),
        "survivor should be evicted with reason shutdown, got {:?}",
        observer.evictions()
    );
}

#[test]
fn oversized_line_is_answered_then_connection_closes() {
    let (mut reactor, addr, _counters, _observer) = start(ReactorConfig {
        max_line_bytes: 256,
        workers: 1,
        ..ReactorConfig::default()
    });

    let mut client = BufReader::new(TcpStream::connect(addr).expect("connect"));
    let big = vec![b'a'; 300];
    client.get_mut().write_all(&big).expect("write oversize");
    client.get_mut().write_all(b"\n").expect("write newline");

    let mut line = String::new();
    client.read_line(&mut line).expect("read error line");
    assert_eq!(line.trim_end(), "err:request line exceeds 256 bytes");
    let mut rest = String::new();
    client.read_to_string(&mut rest).expect("read to eof");
    assert!(rest.is_empty(), "connection closes after the error line");
    reactor.shutdown();
}
