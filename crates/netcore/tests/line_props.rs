//! Property tests for [`panacea_netcore::LineAssembler`]: whatever the
//! socket's chunking does to a byte stream — mid-line splits, splits in
//! the middle of a multi-byte UTF-8 sequence, one byte at a time — the
//! reassembled lines must be exactly the lines that were sent, and the
//! per-line bound must hold under every chunking.

use panacea_netcore::{LineAssembler, LineError};
use proptest::prelude::*;

/// Line palette mixing ASCII, multi-byte UTF-8 (2-, 3-, and 4-byte
/// sequences), JSON-ish content, and the empty line.
const PALETTE: [&str; 6] = [
    "",
    "{\"verb\":\"infer\",\"model\":\"chain\"}",
    "naïve café — überschüssig",
    "日本語のテキスト行",
    "emoji tail 🦀🦀🦀",
    "mixed ascii→ünicode→字",
];

/// Feeds `payload` to `assembler` sliced into chunks whose sizes cycle
/// through `chunk_sizes`, returning the first error.
fn feed_chunked(
    assembler: &mut LineAssembler,
    payload: &[u8],
    chunk_sizes: &[usize],
) -> Result<(), LineError> {
    let mut offset = 0;
    let mut i = 0;
    while offset < payload.len() {
        let take = chunk_sizes[i % chunk_sizes.len()].min(payload.len() - offset);
        assembler.feed(&payload[offset..offset + take])?;
        offset += take;
        i += 1;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any message sequence under any chunking reassembles exactly,
    /// even when a chunk boundary lands inside a multi-byte sequence.
    #[test]
    fn reassembly_is_exact_under_any_chunking(
        picks in proptest::collection::vec(0usize..PALETTE.len(), 0..12),
        chunk_sizes in proptest::collection::vec(1usize..9, 1..16),
    ) {
        let lines: Vec<&str> = picks.iter().map(|&i| PALETTE[i]).collect();
        let mut payload = Vec::new();
        for line in &lines {
            payload.extend_from_slice(line.as_bytes());
            payload.push(b'\n');
        }

        let mut assembler = LineAssembler::new(1024);
        feed_chunked(&mut assembler, &payload, &chunk_sizes).expect("within bound");

        let mut got = Vec::new();
        while let Some(raw) = assembler.pop_line() {
            got.push(String::from_utf8(raw).expect("palette lines are UTF-8"));
        }
        prop_assert_eq!(got, lines);
        prop_assert_eq!(assembler.partial_bytes(), 0);
        prop_assert!(!assembler.is_poisoned());
    }

    /// A line one byte over the bound is rejected under every chunking,
    /// and the assembler stays poisoned afterwards.
    #[test]
    fn oversize_is_caught_under_any_chunking(
        chunk_sizes in proptest::collection::vec(1usize..64, 1..8),
    ) {
        const LIMIT: usize = 512;
        let mut payload = vec![b'['; LIMIT + 1];
        payload.push(b'\n');

        let mut assembler = LineAssembler::new(LIMIT);
        let err = feed_chunked(&mut assembler, &payload, &chunk_sizes)
            .expect_err("over-limit line must be refused");
        prop_assert_eq!(err, LineError::TooLong { limit: LIMIT });
        prop_assert!(assembler.is_poisoned());
        prop_assert_eq!(assembler.feed(b"x\n"), Err(LineError::TooLong { limit: LIMIT }));
    }
}

/// The parser-bomb shape from the gateway e2e suite: a million-`[` line
/// within the bound must arrive intact as one line (rejecting it is the
/// JSON layer's judgment call, not the framing layer's).
#[test]
fn million_bracket_line_within_bound_passes_intact() {
    let bomb = vec![b'['; 1_000_000];
    let mut assembler = LineAssembler::new(panacea_netcore::DEFAULT_MAX_LINE_BYTES);
    for chunk in bomb.chunks(64 * 1024) {
        assembler.feed(chunk).expect("bomb is within the bound");
    }
    assembler.feed(b"\n").expect("newline completes the line");
    let line = assembler.pop_line().expect("one line ready");
    assert_eq!(line.len(), 1_000_000);
    assert!(line.iter().all(|&b| b == b'['));
    assert_eq!(assembler.pop_line(), None);
}
