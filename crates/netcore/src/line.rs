//! Byte-level line reassembly with a hard per-line bound.
//!
//! The reactor reads whatever the socket has — which may be half a
//! multi-byte UTF-8 sequence, ten complete requests, or one byte of a
//! sixteen-megabyte line — and feeds it here. [`LineAssembler`] splits
//! on `\n`, queues complete lines (newline stripped, bytes otherwise
//! untouched — UTF-8 validation happens at dispatch, once a full line
//! exists), and keeps the trailing partial line across feeds. A line
//! exceeding the bound poisons the assembler: the current and every
//! later feed fail, so a byte-dripping client cannot grow per-connection
//! memory without limit.

use std::collections::VecDeque;
use std::fmt;

/// The default per-line bound, matching the gateway's wire contract.
pub const DEFAULT_MAX_LINE_BYTES: usize = 16 << 20;

/// Why a feed was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineError {
    /// A line (complete or still accumulating) exceeded the bound.
    TooLong {
        /// The configured bound, in bytes excluding the newline.
        limit: usize,
    },
}

impl fmt::Display for LineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LineError::TooLong { limit } => {
                write!(f, "request line exceeds {limit} bytes")
            }
        }
    }
}

impl std::error::Error for LineError {}

/// Reassembles newline-delimited frames from arbitrary read chunks.
#[derive(Debug)]
pub struct LineAssembler {
    partial: Vec<u8>,
    ready: VecDeque<Vec<u8>>,
    max_line: usize,
    poisoned: bool,
}

impl LineAssembler {
    /// An assembler bounding every line at `max_line` bytes (newline
    /// excluded).
    pub fn new(max_line: usize) -> Self {
        LineAssembler {
            partial: Vec::new(),
            ready: VecDeque::new(),
            max_line,
            poisoned: false,
        }
    }

    /// Feeds one read chunk. Complete lines become
    /// [`pop_line`](Self::pop_line)-able; a trailing fragment is kept
    /// for the next feed.
    ///
    /// # Errors
    ///
    /// [`LineError::TooLong`] once any line outgrows the bound — and on
    /// every feed after that (the connection is beyond saving; the
    /// caller answers an error and closes).
    pub fn feed(&mut self, chunk: &[u8]) -> Result<(), LineError> {
        if self.poisoned {
            return Err(LineError::TooLong {
                limit: self.max_line,
            });
        }
        let mut rest = chunk;
        while let Some(nl) = rest.iter().position(|&b| b == b'\n') {
            let mut line = std::mem::take(&mut self.partial);
            line.extend_from_slice(&rest[..nl]);
            rest = &rest[nl + 1..];
            if line.len() > self.max_line {
                self.poisoned = true;
                return Err(LineError::TooLong {
                    limit: self.max_line,
                });
            }
            self.ready.push_back(line);
        }
        self.partial.extend_from_slice(rest);
        if self.partial.len() > self.max_line {
            self.poisoned = true;
            return Err(LineError::TooLong {
                limit: self.max_line,
            });
        }
        Ok(())
    }

    /// The oldest complete line, newline stripped.
    pub fn pop_line(&mut self) -> Option<Vec<u8>> {
        self.ready.pop_front()
    }

    /// Complete lines waiting to be popped.
    pub fn ready_lines(&self) -> usize {
        self.ready.len()
    }

    /// Bytes of the still-incomplete trailing line.
    pub fn partial_bytes(&self) -> usize {
        self.partial.len()
    }

    /// Whether a too-long line has permanently failed this assembler.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_lines_across_arbitrary_chunks() {
        let mut a = LineAssembler::new(64);
        a.feed(b"hel").expect("feed");
        a.feed(b"lo\nwor").expect("feed");
        assert_eq!(a.pop_line().as_deref(), Some(b"hello".as_slice()));
        assert_eq!(a.pop_line(), None);
        a.feed(b"ld\n\ntail").expect("feed");
        assert_eq!(a.pop_line().as_deref(), Some(b"world".as_slice()));
        assert_eq!(a.pop_line().as_deref(), Some(b"".as_slice()));
        assert_eq!(a.partial_bytes(), 4);
    }

    #[test]
    fn oversized_line_poisons_permanently() {
        let mut a = LineAssembler::new(8);
        assert_eq!(
            a.feed(b"123456789"),
            Err(LineError::TooLong { limit: 8 }),
            "partial overflow undetected"
        );
        assert!(a.is_poisoned());
        assert_eq!(a.feed(b"\n"), Err(LineError::TooLong { limit: 8 }));
        // A complete line arriving in one chunk is bounded too.
        let mut b = LineAssembler::new(8);
        assert_eq!(b.feed(b"123456789\n"), Err(LineError::TooLong { limit: 8 }));
    }

    #[test]
    fn exact_limit_line_passes() {
        let mut a = LineAssembler::new(5);
        a.feed(b"12345\n").expect("at-limit line is legal");
        assert_eq!(a.pop_line().as_deref(), Some(b"12345".as_slice()));
    }
}
