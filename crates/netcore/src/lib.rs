//! `panacea-netcore`: the readiness-driven connection core.
//!
//! A std-only C10K-capable server substrate: one [`Reactor`] thread
//! multiplexes every connection over `poll(2)` (via the vendored
//! [`sys_poll`] shim), request execution runs on a fixed
//! [`WorkerPool`], and each connection is a small state machine —
//! bounded line reassembly on the read side ([`LineAssembler`]),
//! a backpressured write queue with slow-consumer eviction on the
//! write side. Memory and thread count scale with configured bounds
//! (`max_connections`, `workers`), not with the number of open
//! sockets.
//!
//! The transport is deliberately protocol-agnostic: a [`Service`]
//! turns request lines into response lines, and a [`ConnObserver`]
//! hears about connection lifecycle and stage timings. The gateway
//! layers its JSON protocol and telemetry on top.

mod counters;
mod line;
mod reactor;
mod workers;

pub use counters::{ConnectionCounters, ConnectionStats};
pub use line::{LineAssembler, LineError, DEFAULT_MAX_LINE_BYTES};
pub use reactor::{
    ConnObserver, ConnStage, EvictReason, NullObserver, Reactor, ReactorConfig, Service,
};
pub use workers::WorkerPool;
