//! The request-execution pool: a fixed set of threads draining a shared
//! job queue, so the reactor thread never runs a request itself.
//!
//! The queue is effectively bounded by the reactor's dispatch
//! discipline (at most one in-flight request per connection, and
//! connections are bounded), so no separate queue bound is needed.
//! Shutdown drains: queued jobs still run before workers exit, which is
//! what lets the reactor flush their responses during its drain phase.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queue: VecDeque<Job>,
    stop: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    available: Condvar,
}

/// A fixed-size worker pool executing boxed jobs in FIFO order.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.threads.len())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns `workers` threads (at least one) named
    /// `{name_prefix}-{index}`.
    pub fn new(workers: usize, name_prefix: &str) -> WorkerPool {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                stop: false,
            }),
            available: Condvar::new(),
        });
        let threads = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("{name_prefix}-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { shared, threads }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.threads.len()
    }

    /// Enqueues one job; a parked worker wakes to run it.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        let mut state = self.shared.state.lock().expect("pool state poisoned");
        if state.stop {
            return; // shutting down: the job's completion would be dropped anyway
        }
        state.queue.push_back(Box::new(job));
        drop(state);
        self.shared.available.notify_one();
    }

    /// Stops accepting jobs, lets the queue drain, and joins every
    /// worker. Idempotent; also invoked by `Drop`.
    pub fn shutdown(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool state poisoned");
            state.stop = true;
        }
        self.shared.available.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool state poisoned");
            loop {
                if let Some(job) = state.queue.pop_front() {
                    break Some(job);
                }
                if state.stop {
                    break None;
                }
                state = shared.available.wait(state).expect("pool state poisoned");
            }
        };
        match job {
            Some(job) => job(),
            None => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn jobs_run_and_shutdown_drains_the_queue() {
        let ran = Arc::new(AtomicUsize::new(0));
        let mut pool = WorkerPool::new(2, "test-worker");
        for _ in 0..64 {
            let ran = Arc::clone(&ran);
            pool.execute(move || {
                ran.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.shutdown();
        assert_eq!(ran.load(Ordering::Relaxed), 64, "shutdown dropped jobs");
        // Post-shutdown submits are ignored, not panics.
        pool.execute(|| unreachable!("executed after shutdown"));
    }

    #[test]
    fn zero_workers_is_clamped_to_one() {
        let pool = WorkerPool::new(0, "clamped");
        assert_eq!(pool.workers(), 1);
    }
}
